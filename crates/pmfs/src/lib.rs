#![warn(missing_docs)]

//! A PMFS-style PM file system (EuroSys '14).
//!
//! PMFS pioneered in-kernel PM file systems: block-based layout, *in-place*
//! file data writes (no copy-on-write), fine-grained metadata updates made
//! atomic through a variable-length **undo journal**, a persistent
//! **truncate list** that completes interrupted truncations at mount, and a
//! volatile free list rebuilt by scanning the inode table (§2, §5 of the
//! Chipmunk paper; bug 13 is exactly the truncate-list/free-list ordering
//! bug, bug 16 the journal-replay out-of-bounds walk).
//!
//! Persistence discipline: every metadata mutation runs under an undo
//! transaction (old bytes journaled first), with data writes going straight
//! to their home location. Because data writes are in place, PMFS does
//! *not* guarantee data-write atomicity — Chipmunk applies its relaxed
//! torn-write check.
//!
//! Injected bugs (Table 1): 13 (truncate-list replay before the free list
//! exists), 14 (write path returns without the final fence), 16 (journal
//! replay walks past the transaction tail into stale records), 17 (the
//! non-temporal copy optimization leaves the partial tail cache line
//! unflushed).

pub mod fsimpl;
pub mod journal;
pub mod layout;

pub use fsimpl::Pmfs;

use pmem::PmBackend;
use vfs::{
    fs::{FsKind, FsOptions, Guarantees},
    FsName, FsResult,
};

/// Factory for [`Pmfs`] instances.
#[derive(Debug, Clone, Default)]
pub struct PmfsKind {
    /// Construction options (bug set, coverage, trace).
    pub opts: FsOptions,
}

impl FsKind for PmfsKind {
    type Fs<D: PmBackend> = Pmfs<D>;

    fn name(&self) -> FsName {
        FsName::Pmfs
    }

    fn options(&self) -> &FsOptions {
        &self.opts
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        Self { opts }
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees { strong: true, atomic_data_writes: false, data_checksums: false }
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        Pmfs::mkfs(dev, &self.opts)
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        Pmfs::mount(dev, &self.opts)
    }

    fn fork_fs<D: pmem::PmBackend + Clone>(&self, fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        Some(fs.clone())
    }
}
