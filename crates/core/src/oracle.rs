//! The oracle: legal post-crash states captured from a crash-free run.
//!
//! Chipmunk's checker compares each crash state against oracle versions of
//! the file-system tree (§3.3). The oracle runs the same workload on a
//! fresh instance of the same file system (on its own device, never
//! crashed) and snapshots the whole tree before every system call plus once
//! at the end, so snapshot *k* is the legal state "before op *k*" and
//! snapshot *k+1* the legal state "after op *k*".
//!
//! Snapshots are persistent, structurally-shared trees: every node is an
//! `Arc`-shared [`SnapEntry`] carrying a content hash ([`pmem::snap_key`]),
//! and [`advance_snapshot`] builds snapshot *k+1* from snapshot *k* by
//! re-walking only the paths op *k* could have touched — consecutive
//! snapshots share every untouched node, so an *n*-op oracle holds each
//! file's bytes once instead of *n* times. The content hashes double as a
//! diff fast path: [`diff_trees_pruned`] skips node comparisons whose
//! hashes match (equality-only, so verdicts and messages are byte-identical
//! to the exhaustive diff). Both behaviours are gated by
//! [`TestConfig::shared_oracle`]; with the knob off, every snapshot is an
//! independent full walk and the diffs compare every field.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use pmem::PmDevice;
use vfs::{FileSystem, FileType, FsError, FsKind, Workload};

use crate::config::TestConfig;
use crate::exec::{Executor, OpResult};

/// The set of paths a crash point's in-flight operations can affect —
/// the targets themselves, their parent directories (entry lists and link
/// counts change there), and every hard-link alias of a target file.
///
/// Scoped checking (§ [`crate::TestConfig::scoped_check`]) compares file
/// *contents* against the oracle only inside the scope; structure and
/// metadata (presence, type, size, link counts, directory entries) are
/// always compared everywhere. `Full` is the escape hatch: everything is
/// in scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// Every path is in scope (full comparison).
    Full,
    /// Only the listed paths are in scope for data comparison.
    Paths(BTreeSet<String>),
}

impl Scope {
    /// Whether `path`'s file contents are compared.
    pub fn contains(&self, path: &str) -> bool {
        match self {
            Scope::Full => true,
            Scope::Paths(set) => set.contains(path),
        }
    }

    /// Whether this is the full (unscoped) comparison.
    pub fn is_full(&self) -> bool {
        matches!(self, Scope::Full)
    }

    /// Whether every path in scope for `other` is also in scope here.
    ///
    /// Used by cross-state artifact reuse: a tree walked under scope `a` can
    /// stand in for a walk under scope `b` only when `a.covers(&b)` — the
    /// wider walk compared file contents everywhere the narrower one would.
    pub fn covers(&self, other: &Scope) -> bool {
        match (self, other) {
            (Scope::Full, _) => true,
            (Scope::Paths(_), Scope::Full) => false,
            (Scope::Paths(a), Scope::Paths(b)) => b.is_subset(a),
        }
    }
}

/// Snapshot of one file or directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSnap {
    /// A regular file: metadata and full contents.
    File {
        /// Inode number (compared only when configured).
        ino: u64,
        /// Link count.
        nlink: u64,
        /// Size in bytes.
        size: u64,
        /// Full contents.
        data: Vec<u8>,
    },
    /// A directory: link count and child names.
    Dir {
        /// Inode number.
        ino: u64,
        /// Link count.
        nlink: u64,
        /// Sorted child names.
        entries: Vec<String>,
    },
}

/// One tree node plus its content hash, shared (`Arc`) across every
/// snapshot that holds it unchanged.
///
/// The hash is a pure function of the node's stored content (kind, ino,
/// nlink, size, data bytes, sorted entry names — see [`node_hash`]), so key
/// equality is treated as node equality by the diff pruner, under the same
/// 128-bit-collision assumption the crash-state dedup and memo layers
/// already make. Equality compares node *content* (two entries with the
/// same node are equal whether or not they share the allocation).
#[derive(Debug, Clone)]
pub struct SnapEntry {
    /// Content hash of `node` (see [`node_hash`]).
    pub hash: pmem::ImageKey,
    /// The node itself.
    pub node: Arc<NodeSnap>,
}

impl SnapEntry {
    /// Wraps `node`, computing its content hash.
    pub fn new(node: NodeSnap) -> SnapEntry {
        SnapEntry { hash: node_hash(&node), node: Arc::new(node) }
    }
}

impl PartialEq for SnapEntry {
    fn eq(&self, other: &SnapEntry) -> bool {
        self.node == other.node
    }
}

impl Eq for SnapEntry {}

/// Content hash of one snapshot node over its serialized form: a fixed
/// 25-byte header (kind tag, ino, nlink, size or entry count) framing the
/// payload (file bytes, or the sorted length-prefixed entry names), hashed
/// in [`pmem::snap_key`]'s private term namespace. The serialization is
/// injective, and it covers exactly the fields the diffs compare — sorted
/// entries, because that is how [`diff_trees_scoped`] compares them — so
/// hash equality implies the exhaustive node diff finds no difference.
pub fn node_hash(node: &NodeSnap) -> pmem::ImageKey {
    let mut head = [0u8; 25];
    match node {
        NodeSnap::File { ino, nlink, size, data } => {
            head[0] = b'F';
            head[1..9].copy_from_slice(&ino.to_le_bytes());
            head[9..17].copy_from_slice(&nlink.to_le_bytes());
            head[17..25].copy_from_slice(&size.to_le_bytes());
            pmem::snap_key(&head, data)
        }
        NodeSnap::Dir { ino, nlink, entries } => {
            head[0] = b'D';
            head[1..9].copy_from_slice(&ino.to_le_bytes());
            head[9..17].copy_from_slice(&nlink.to_le_bytes());
            head[17..25].copy_from_slice(&(entries.len() as u64).to_le_bytes());
            let mut sorted: Vec<&String> = entries.iter().collect();
            sorted.sort();
            let mut body = Vec::with_capacity(entries.iter().map(|n| n.len() + 4).sum());
            for name in sorted {
                body.extend_from_slice(&(name.len() as u32).to_le_bytes());
                body.extend_from_slice(name.as_bytes());
            }
            pmem::snap_key(&head, &body)
        }
    }
}

/// A whole-tree snapshot: path → hashed, structurally-shared node.
pub type Tree = BTreeMap<String, SnapEntry>;

/// Walks the file system from the root, producing a [`Tree`].
///
/// Any corruption error surfaced during the walk is returned as `Err` with
/// a description — on a crash state this is itself a consistency violation.
pub fn snapshot_tree<F: FileSystem>(fs: &F) -> Result<Tree, String> {
    snapshot_tree_scoped(fs, &Scope::Full)
}

/// [`snapshot_tree`], but file *contents* are read only for paths inside
/// `scope` — out-of-scope files get their real metadata (ino, nlink, size)
/// and empty placeholder data. Such a tree may only be compared with the
/// same scope (the scoped diffs skip exactly those bytes).
pub fn snapshot_tree_scoped<F: FileSystem>(fs: &F, scope: &Scope) -> Result<Tree, String> {
    let mut tree = Tree::new();
    walk_into(fs, "/".to_string(), scope, &mut tree)?;
    Ok(tree)
}

/// Walks the subtree rooted at `root` (which must name a directory) into
/// `tree`. Single pass per directory: entry names move from the `readdir`
/// result straight into the `Dir` node after their child paths are built —
/// no per-entry name clone, no second walk over the entry list.
fn walk_into<F: FileSystem>(
    fs: &F,
    root: String,
    scope: &Scope,
    tree: &mut Tree,
) -> Result<(), String> {
    let mut queue = vec![root];
    while let Some(dir) = queue.pop() {
        pmem::fault::walk_probe();
        let entries = fs
            .readdir(&dir)
            .map_err(|e| format!("readdir({dir}) failed during tree walk: {e}"))?;
        pmem::fault::walk_probe();
        let meta =
            fs.stat(&dir).map_err(|e| format!("stat({dir}) failed during tree walk: {e}"))?;
        let mut names = Vec::with_capacity(entries.len());
        for e in entries {
            let path = if dir == "/" { format!("/{}", e.name) } else { format!("{dir}/{}", e.name) };
            match e.ftype {
                FileType::Directory => queue.push(path),
                FileType::Regular => {
                    snap_file(fs, path, scope, tree)?;
                }
            }
            names.push(e.name);
        }
        tree.insert(
            dir,
            SnapEntry::new(NodeSnap::Dir { ino: meta.ino, nlink: meta.nlink, entries: names }),
        );
    }
    Ok(())
}

/// Stats and (in scope) reads one regular file into `tree`.
fn snap_file<F: FileSystem>(
    fs: &F,
    path: String,
    scope: &Scope,
    tree: &mut Tree,
) -> Result<(), String> {
    pmem::fault::walk_probe();
    let meta = fs.stat(&path).map_err(|e| format!("stat({path}) failed during tree walk: {e}"))?;
    let data = if scope.contains(&path) {
        fs.read_file(&path).map_err(|e| format!("read({path}) failed during tree walk: {e}"))?
    } else {
        Vec::new()
    };
    tree.insert(
        path,
        SnapEntry::new(NodeSnap::File { ino: meta.ino, nlink: meta.nlink, size: meta.size, data }),
    );
    Ok(())
}

/// The oracle for one workload: per-op snapshots and results.
#[derive(Debug)]
pub struct Oracle {
    /// `snaps[k]` is the tree before op `k`; `snaps[n]` the final tree.
    /// With [`TestConfig::shared_oracle`] on, consecutive snapshots
    /// structurally share every node op `k` could not have touched.
    pub snaps: Vec<Arc<Tree>>,
    /// Per-op results from the crash-free run.
    pub results: Vec<OpResult>,
    /// File-data bytes each snapshot shares with its predecessor instead of
    /// re-reading and re-storing (0 with `shared_oracle` off).
    pub snap_bytes_shared: u64,
}

impl Oracle {
    /// The legal state before op `k`.
    pub fn before(&self, k: usize) -> &Tree {
        &self.snaps[k]
    }

    /// The legal state after op `k`.
    pub fn after(&self, k: usize) -> &Tree {
        &self.snaps[k + 1]
    }
}

/// Runs `workload` crash-free on a fresh `kind` instance, capturing
/// snapshots. With `cfg.shared_oracle` each post-op snapshot is advanced
/// incrementally from its predecessor ([`advance_snapshot`]); otherwise
/// every snapshot is an independent full walk.
pub fn build_oracle<K: FsKind>(
    kind: &K,
    workload: &Workload,
    cfg: &TestConfig,
) -> Result<Oracle, FsError> {
    let dev = PmDevice::new(cfg.device_size);
    let mut fs = kind.mkfs(dev)?;
    let mut ex = Executor::new();
    let mut snaps = Vec::with_capacity(workload.ops.len() + 1);
    let mut results = Vec::with_capacity(workload.ops.len());
    let mut snap_bytes_shared = 0u64;
    snaps.push(Arc::new(snapshot_tree(&fs).map_err(FsError::Corrupt)?));
    for (seq, op) in workload.ops.iter().enumerate() {
        let r = ex.exec(&mut fs, op, seq);
        let next = if cfg.shared_oracle {
            let (next, shared) =
                advance_snapshot(&fs, snaps.last().unwrap(), op, r.target.as_deref())
                    .map_err(FsError::Corrupt)?;
            snap_bytes_shared += shared;
            next
        } else {
            Arc::new(snapshot_tree(&fs).map_err(FsError::Corrupt)?)
        };
        snaps.push(next);
        results.push(r);
    }
    Ok(Oracle { snaps, results, snap_bytes_shared })
}

/// The paths an op addresses, or `None` when its footprint is unbounded
/// (`sync`) or unresolvable (a slot op whose descriptor never resolved).
pub(crate) fn op_paths<'a>(op: &'a vfs::Op, target: Option<&'a str>) -> Option<Vec<&'a str>> {
    use vfs::Op;
    match op {
        Op::Sync | Op::SetCpu { .. } => None,
        Op::Creat { path }
        | Op::Mkdir { path }
        | Op::Rmdir { path }
        | Op::Unlink { path }
        | Op::Remove { path }
        | Op::Truncate { path, .. }
        | Op::WritePath { path, .. }
        | Op::FallocPath { path, .. }
        | Op::FsyncPath { path }
        | Op::Open { path, .. }
        | Op::SetXattr { path, .. }
        | Op::RemoveXattr { path, .. } => Some(vec![path]),
        Op::Link { old, new } | Op::Rename { old, new } => Some(vec![old, new]),
        Op::Close { .. }
        | Op::Write { .. }
        | Op::Pwrite { .. }
        | Op::Falloc { .. }
        | Op::Fsync { .. }
        | Op::Fdatasync { .. }
        | Op::Read { .. } => target.map(|t| vec![t]),
    }
}

/// The paths whose oracle nodes op `op` could have changed: empty for ops
/// with no logical-tree effect (`sync` only flushes; reads and CPU pins
/// mutate nothing), [`op_paths`] otherwise. `None` means the footprint is
/// unknown and the caller must fall back to a full walk.
fn oracle_footprint<'a>(op: &'a vfs::Op, target: Option<&'a str>) -> Option<Vec<&'a str>> {
    use vfs::Op;
    match op {
        Op::Sync | Op::SetCpu { .. } | Op::Read { .. } => Some(Vec::new()),
        _ => op_paths(op, target),
    }
}

/// The parent directory of `p`, or `None` for the root.
fn parent_of(p: &str) -> Option<&str> {
    match p.rfind('/') {
        Some(0) if p.len() > 1 => Some("/"),
        Some(i) => Some(&p[..i]),
        None => None,
    }
}

/// Whether `k` lies strictly inside the subtree rooted at directory `d`
/// (`d` itself excluded; `d` must not be `"/"`, which the callers special-
/// case into a full walk).
fn under(k: &str, d: &str) -> bool {
    k.len() > d.len() && k.starts_with(d) && k.as_bytes()[d.len()] == b'/'
}

/// Total file-data bytes stored in `tree`.
fn tree_data_bytes(tree: &Tree) -> u64 {
    tree.values()
        .map(|e| match e.node.as_ref() {
            NodeSnap::File { data, .. } => data.len() as u64,
            NodeSnap::Dir { .. } => 0,
        })
        .sum()
}

/// Builds the snapshot after `op` from the snapshot before it, re-walking
/// only the paths `op` could have touched. Returns the new tree plus the
/// file-data bytes it shares with `prev`.
///
/// Dirty-set construction: each footprint path is re-walked as a whole
/// subtree (a directory rename or rmdir moves or drops everything beneath
/// it); each footprint path's parent and every hard-link alias the previous
/// snapshot knows for it are refreshed as single nodes (entry lists, link
/// counts, and — for aliases of a written inode — data change there without
/// the path itself moving). Everything else is carried over by `Arc` clone.
/// A footprint of `"/"` or an unknown footprint falls back to a full walk,
/// so the result is always *observationally identical* to `snapshot_tree`.
pub fn advance_snapshot<F: FileSystem>(
    fs: &F,
    prev: &Arc<Tree>,
    op: &vfs::Op,
    target: Option<&str>,
) -> Result<(Arc<Tree>, u64), String> {
    let Some(footprint) = oracle_footprint(op, target) else {
        return Ok((Arc::new(snapshot_tree(fs)?), 0));
    };
    if footprint.is_empty() {
        // No logical-tree effect: the previous snapshot is the new snapshot.
        return Ok((Arc::clone(prev), tree_data_bytes(prev)));
    }
    let mut subtree_dirty: BTreeSet<String> = BTreeSet::new();
    let mut node_dirty: BTreeSet<String> = BTreeSet::new();
    for p in &footprint {
        subtree_dirty.insert((*p).to_string());
        if let Some(par) = parent_of(p) {
            node_dirty.insert(par.to_string());
        }
        for a in alias_set(prev, p) {
            node_dirty.insert(a);
        }
    }
    if subtree_dirty.contains("/") {
        return Ok((Arc::new(snapshot_tree(fs)?), 0));
    }
    // Start from the previous snapshot (an Arc-bump per node), drop every
    // dirty path, then rebuild the dropped parts from the live tree.
    let mut next: Tree = (**prev).clone();
    next.retain(|k, _| {
        !(node_dirty.contains(k) || subtree_dirty.iter().any(|d| k == d || under(k, d)))
    });
    for d in &subtree_dirty {
        if subtree_dirty.iter().any(|o| o != d && under(d, o)) {
            continue; // an enclosing dirty subtree re-walks this one
        }
        match fs.stat(d) {
            // Gone in the new state — including a prefix component that is
            // now a regular file; a full walk reaches paths only through
            // readdir, so it would never visit this one.
            Err(FsError::NotFound | FsError::NotDir) => {}
            Err(e) => return Err(format!("stat({d}) failed during tree walk: {e}")),
            Ok(meta) => match meta.ftype {
                FileType::Directory => walk_into(fs, d.clone(), &Scope::Full, &mut next)?,
                FileType::Regular => snap_file(fs, d.clone(), &Scope::Full, &mut next)?,
            },
        }
    }
    for p in &node_dirty {
        if next.contains_key(p.as_str()) {
            continue; // already rebuilt by a subtree walk
        }
        match fs.stat(p) {
            Err(FsError::NotFound | FsError::NotDir) => {} // gone in the new state
            Err(e) => return Err(format!("stat({p}) failed during tree walk: {e}")),
            Ok(meta) => match meta.ftype {
                FileType::Directory => {
                    // Node-only refresh: the children were not dirtied, only
                    // this directory's entry list / link count / identity.
                    let entries = fs
                        .readdir(p)
                        .map_err(|e| format!("readdir({p}) failed during tree walk: {e}"))?;
                    let names = entries.into_iter().map(|e| e.name).collect();
                    next.insert(
                        p.clone(),
                        SnapEntry::new(NodeSnap::Dir {
                            ino: meta.ino,
                            nlink: meta.nlink,
                            entries: names,
                        }),
                    );
                }
                FileType::Regular => snap_file(fs, p.clone(), &Scope::Full, &mut next)?,
            },
        }
    }
    // Re-share rebuilt nodes that came back unchanged (hash equality), then
    // total up the bytes the new snapshot shares with the old one.
    let mut shared = 0u64;
    for (k, e) in next.iter_mut() {
        if let Some(pe) = prev.get(k) {
            if !Arc::ptr_eq(&e.node, &pe.node) && e.hash == pe.hash {
                *e = pe.clone();
            }
            if Arc::ptr_eq(&e.node, &pe.node) {
                if let NodeSnap::File { data, .. } = e.node.as_ref() {
                    shared += data.len() as u64;
                }
            }
        }
    }
    Ok((Arc::new(next), shared))
}

/// Compares a crash-state tree against an oracle tree.
///
/// Returns `None` on a match, or a human-readable first difference.
pub fn diff_trees(actual: &Tree, expect: &Tree, compare_ino: bool) -> Option<String> {
    diff_trees_scoped(actual, expect, compare_ino, &Scope::Full)
}

/// [`diff_trees`], but file *contents* are compared only for paths inside
/// `scope`. Structure — presence, type, ino (when configured), nlink, size,
/// directory entries — is still compared for every path.
pub fn diff_trees_scoped(
    actual: &Tree,
    expect: &Tree,
    compare_ino: bool,
    scope: &Scope,
) -> Option<String> {
    let mut pruned = 0;
    diff_trees_pruned(actual, expect, compare_ino, scope, false, &mut pruned)
}

/// [`diff_trees_scoped`] with an optional hash fast path: when `prune` is
/// set, a node pair whose content hashes match (or that share the same
/// allocation) is skipped without field-by-field comparison, and `pruned`
/// is incremented. Pruning is equality-only — hash equality implies the
/// exhaustive node diff returns `None` — so verdicts and messages are
/// byte-identical with pruning on or off.
pub fn diff_trees_pruned(
    actual: &Tree,
    expect: &Tree,
    compare_ino: bool,
    scope: &Scope,
    prune: bool,
    pruned: &mut u64,
) -> Option<String> {
    for (path, enode) in expect {
        match actual.get(path) {
            None => return Some(format!("{path} missing (expected to exist)")),
            Some(anode) => {
                if prune && nodes_hash_equal(anode, enode) {
                    *pruned += 1;
                    continue;
                }
                if let Some(d) = diff_nodes_scoped(
                    path,
                    &anode.node,
                    &enode.node,
                    compare_ino,
                    scope.contains(path),
                ) {
                    return Some(d);
                }
            }
        }
    }
    for path in actual.keys() {
        if !expect.contains_key(path) {
            return Some(format!("{path} present (expected not to exist)"));
        }
    }
    None
}

/// The pruning test: same allocation, or same content hash.
#[inline]
fn nodes_hash_equal(a: &SnapEntry, b: &SnapEntry) -> bool {
    Arc::ptr_eq(&a.node, &b.node) || a.hash == b.hash
}

fn diff_nodes_scoped(
    path: &str,
    actual: &NodeSnap,
    expect: &NodeSnap,
    compare_ino: bool,
    compare_data: bool,
) -> Option<String> {
    match (actual, expect) {
        (
            NodeSnap::File { ino: ai, nlink: an, size: asz, data: ad },
            NodeSnap::File { ino: ei, nlink: en, size: esz, data: ed },
        ) => {
            if compare_ino && ai != ei {
                return Some(format!("{path}: ino {ai} != expected {ei}"));
            }
            if an != en {
                return Some(format!("{path}: nlink {an} != expected {en}"));
            }
            if asz != esz {
                return Some(format!("{path}: size {asz} != expected {esz}"));
            }
            if compare_data && ad != ed {
                let first = ad.iter().zip(ed.iter()).position(|(a, b)| a != b);
                return Some(format!(
                    "{path}: contents differ (first difference at offset {})",
                    first.map_or_else(|| ad.len().min(ed.len()).to_string(), |o| o.to_string())
                ));
            }
            None
        }
        (
            NodeSnap::Dir { ino: ai, nlink: an, entries: ae },
            NodeSnap::Dir { ino: ei, nlink: en, entries: ee },
        ) => {
            if compare_ino && ai != ei {
                return Some(format!("{path}: ino {ai} != expected {ei}"));
            }
            if an != en {
                return Some(format!("{path}: dir nlink {an} != expected {en}"));
            }
            let (mut a, mut e) = (ae.clone(), ee.clone());
            a.sort();
            e.sort();
            if a != e {
                return Some(format!("{path}: entries {a:?} != expected {e:?}"));
            }
            None
        }
        _ => Some(format!("{path}: file/directory type mismatch")),
    }
}

/// All paths that name the same inode as `target` in `tree` — the write's
/// alias set. A data write through one name is equally visible through
/// every hard link, so the relaxation must cover them all. Always contains
/// `target` itself; inode 0 is treated as "unknown" and never grouped.
fn write_aliases<'t>(tree: &'t Tree, target: &'t str) -> std::collections::BTreeSet<&'t str> {
    let mut set = std::collections::BTreeSet::new();
    set.insert(target);
    if let Some(NodeSnap::File { ino, .. }) = tree.get(target).map(|e| e.node.as_ref()) {
        if *ino != 0 {
            for (p, n) in tree {
                if matches!(n.node.as_ref(), NodeSnap::File { ino: i, .. } if i == ino) {
                    set.insert(p.as_str());
                }
            }
        }
    }
    set
}

/// Owned alias set for scope construction: every path in `tree` that names
/// the same inode as `target` (plus `target` itself). Used by the harness
/// to expand a crash point's scope across hard links.
pub fn alias_set(tree: &Tree, target: &str) -> BTreeSet<String> {
    write_aliases(tree, target).into_iter().map(str::to_string).collect()
}

/// Relaxed comparison for crashes in the middle of a non-atomic data write:
/// every file other than the written inode (under any of its hard-linked
/// names) must match `cur`, while the written file's size must be the old
/// or new size and every byte must be explainable as the old byte, the new
/// byte, or zero (an allocated-but-unwritten block).
pub fn diff_relaxed_write(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
) -> Option<String> {
    diff_relaxed_write_scoped(actual, prev, cur, target, compare_ino, &Scope::Full)
}

/// [`diff_relaxed_write`] with scoped data comparison for the untouched
/// files (the written inode's aliases are always fully checked; the caller
/// must have them in scope so the walk read their bytes).
pub fn diff_relaxed_write_scoped(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
    scope: &Scope,
) -> Option<String> {
    let mut pruned = 0;
    diff_relaxed_write_pruned(actual, prev, cur, target, compare_ino, scope, false, &mut pruned)
}

/// [`diff_relaxed_write_scoped`] with the hash fast path of
/// [`diff_trees_pruned`] applied to the untouched-file comparisons (the
/// written inode's aliases are always checked byte-wise).
#[allow(clippy::too_many_arguments)]
pub fn diff_relaxed_write_pruned(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
    scope: &Scope,
    prune: bool,
    pruned: &mut u64,
) -> Option<String> {
    let aliases = write_aliases(cur, target);
    // Check all non-target nodes against the current oracle.
    for (path, enode) in cur {
        if aliases.contains(path.as_str()) {
            continue;
        }
        match actual.get(path) {
            None => return Some(format!("{path} missing (untouched by the data write)")),
            Some(anode) => {
                if prune && nodes_hash_equal(anode, enode) {
                    *pruned += 1;
                    continue;
                }
                if let Some(d) = diff_nodes_scoped(
                    path,
                    &anode.node,
                    &enode.node,
                    compare_ino,
                    scope.contains(path),
                ) {
                    return Some(format!("untouched file changed: {d}"));
                }
            }
        }
    }
    for path in actual.keys() {
        if !aliases.contains(path.as_str()) && !cur.contains_key(path) {
            return Some(format!("{path} appeared (untouched by the data write)"));
        }
    }
    // Check the written file byte-wise, under each of its names.
    for &alias in &aliases {
        let pn = prev.get(alias).map(|e| e.node.as_ref());
        let cn = cur.get(alias).map(|e| e.node.as_ref());
        let (pd, cd) = match (pn, cn) {
            (Some(NodeSnap::File { data: pd, .. }), Some(NodeSnap::File { data: cd, .. })) => {
                (pd, cd)
            }
            // Created by this write: treat missing previous as empty.
            (None, Some(NodeSnap::File { data: cd, .. })) => {
                static EMPTY: Vec<u8> = Vec::new();
                (&EMPTY, cd)
            }
            _ => return Some(format!("{alias}: not a regular file in the oracle")),
        };
        match actual.get(alias).map(|e| e.node.as_ref()) {
            None if pd.is_empty() => {} // file not yet created: previous state
            None => return Some(format!("{alias} missing (had data before the write)")),
            Some(NodeSnap::File { size, data, .. }) => {
                if *size != pd.len() as u64 && *size != cd.len() as u64 {
                    return Some(format!(
                        "{alias}: size {size} is neither old ({}) nor new ({})",
                        pd.len(),
                        cd.len()
                    ));
                }
                for (i, &b) in data.iter().enumerate() {
                    let old = pd.get(i).copied().unwrap_or(0);
                    let new = cd.get(i).copied().unwrap_or(0);
                    if b != old && b != new && b != 0 {
                        return Some(format!(
                            "{alias}: byte {i} = {b:#04x} is neither old ({old:#04x}), new \
                             ({new:#04x}), nor zero"
                        ));
                    }
                }
            }
            Some(NodeSnap::Dir { .. }) => return Some(format!("{alias}: became a directory")),
        }
    }
    None
}

/// Atomic-data-write comparison (WineFS/SplitFS strict modes): every file
/// other than `target` must match `cur`, and `target` must be *exactly* the
/// previous version, the new version, or the freshly created empty file (a
/// bundled create-then-write op legitimately crashes between its two
/// underlying system calls) — torn contents are violations.
pub fn diff_atomic_write(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
) -> Option<String> {
    diff_atomic_write_scoped(actual, prev, cur, target, compare_ino, &Scope::Full)
}

/// [`diff_atomic_write`] with scoped data comparison for the untouched
/// files (the written inode's aliases are always fully checked; the caller
/// must have them in scope so the walk read their bytes).
pub fn diff_atomic_write_scoped(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
    scope: &Scope,
) -> Option<String> {
    let mut pruned = 0;
    diff_atomic_write_pruned(actual, prev, cur, target, compare_ino, scope, false, &mut pruned)
}

/// [`diff_atomic_write_scoped`] with the hash fast path of
/// [`diff_trees_pruned`] applied to the untouched-file comparisons.
#[allow(clippy::too_many_arguments)]
pub fn diff_atomic_write_pruned(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
    scope: &Scope,
    prune: bool,
    pruned: &mut u64,
) -> Option<String> {
    let aliases = write_aliases(cur, target);
    for (path, enode) in cur {
        if aliases.contains(path.as_str()) {
            continue;
        }
        match actual.get(path) {
            None => return Some(format!("{path} missing (untouched by the data write)")),
            Some(anode) => {
                if prune && nodes_hash_equal(anode, enode) {
                    *pruned += 1;
                    continue;
                }
                if let Some(d) = diff_nodes_scoped(
                    path,
                    &anode.node,
                    &enode.node,
                    compare_ino,
                    scope.contains(path),
                ) {
                    return Some(format!("untouched file changed: {d}"));
                }
            }
        }
    }
    for path in actual.keys() {
        if !aliases.contains(path.as_str()) && !cur.contains_key(path) {
            return Some(format!("{path} appeared (untouched by the data write)"));
        }
    }
    for &alias in &aliases {
        let ok = match actual.get(alias).map(|e| e.node.as_ref()) {
            None => !prev.contains_key(alias),
            Some(NodeSnap::File { size, data, .. }) => {
                let is_prev = matches!(
                    prev.get(alias).map(|e| e.node.as_ref()),
                    Some(NodeSnap::File { data: pd, .. }) if pd == data
                );
                let is_cur = matches!(
                    cur.get(alias).map(|e| e.node.as_ref()),
                    Some(NodeSnap::File { data: cd, .. }) if cd == data
                );
                let is_fresh_empty = *size == 0 && !prev.contains_key(alias);
                is_prev || is_cur || is_fresh_empty
            }
            Some(NodeSnap::Dir { .. }) => false,
        };
        if !ok {
            return Some(format!(
                "{alias}: contents are neither the old version, the new version, nor a freshly \
                 created empty file — the atomic write tore"
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmBackend;
    use vfs::model::ModelFs;
    use vfs::Op;

    fn file(nlink: u64, data: &[u8]) -> SnapEntry {
        SnapEntry::new(NodeSnap::File {
            ino: 0,
            nlink,
            size: data.len() as u64,
            data: data.to_vec(),
        })
    }

    fn dir(ino: u64, nlink: u64, entries: &[&str]) -> SnapEntry {
        SnapEntry::new(NodeSnap::Dir {
            ino,
            nlink,
            entries: entries.iter().map(|s| s.to_string()).collect(),
        })
    }

    #[test]
    fn snapshot_walks_nested_dirs() {
        let mut m = ModelFs::new();
        m.mkdir("/a").unwrap();
        m.mkdir("/a/b").unwrap();
        m.creat("/a/b/f").unwrap();
        let t = snapshot_tree(&m).unwrap();
        assert_eq!(t.len(), 4);
        assert!(matches!(t.get("/a/b/f").map(|e| e.node.as_ref()), Some(NodeSnap::File { .. })));
        assert!(matches!(t.get("/a/b").map(|e| e.node.as_ref()), Some(NodeSnap::Dir { .. })));
    }

    #[test]
    fn diff_detects_everything() {
        let mut a = Tree::new();
        let mut b = Tree::new();
        a.insert("/f".into(), file(1, b"xx"));
        b.insert("/f".into(), file(1, b"xx"));
        assert_eq!(diff_trees(&a, &b, false), None);
        b.insert("/f".into(), file(2, b"xx"));
        assert!(diff_trees(&a, &b, false).unwrap().contains("nlink"));
        b.insert("/f".into(), file(1, b"xy"));
        assert!(diff_trees(&a, &b, false).unwrap().contains("contents"));
        b.insert("/f".into(), file(1, b"xxx"));
        assert!(diff_trees(&a, &b, false).unwrap().contains("size"));
        b.remove("/f");
        assert!(diff_trees(&a, &b, false).unwrap().contains("present"));
        a.remove("/f");
        b.insert("/g".into(), file(1, b""));
        assert!(diff_trees(&a, &b, false).unwrap().contains("missing"));
    }

    #[test]
    fn oracle_snapshots_bracket_ops() {
        let kind = TestModelKind;
        let w = Workload::new(
            "t",
            vec![Op::Creat { path: "/f".into() }, Op::Unlink { path: "/f".into() }],
        );
        let cfg = TestConfig { device_size: 1024, ..TestConfig::default() };
        let o = build_oracle(&kind, &w, &cfg).unwrap();
        assert_eq!(o.snaps.len(), 3);
        assert!(!o.before(0).contains_key("/f"));
        assert!(o.after(0).contains_key("/f"));
        assert!(!o.after(1).contains_key("/f"));
    }

    #[test]
    fn relaxed_write_accepts_torn_data() {
        let mut prev = Tree::new();
        let mut cur = Tree::new();
        prev.insert("/".into(), dir(1, 2, &["f"]));
        cur.insert("/".into(), dir(1, 2, &["f"]));
        prev.insert("/f".into(), file(1, &[1, 1, 1, 1]));
        cur.insert("/f".into(), file(1, &[2, 2, 2, 2]));
        let mut actual = cur.clone();
        // Torn: half old, half new — allowed.
        actual.insert("/f".into(), file(1, &[1, 1, 2, 2]));
        assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
        // Zeros (unwritten allocated block) — allowed.
        actual.insert("/f".into(), file(1, &[0, 0, 2, 2]));
        assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
        // Garbage — rejected.
        actual.insert("/f".into(), file(1, &[9, 9, 9, 9]));
        assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false).is_some());
        // Wrong size — rejected.
        actual.insert("/f".into(), file(1, &[1, 1]));
        assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false)
            .unwrap()
            .contains("size"));
    }

    fn file_ino(ino: u64, nlink: u64, data: &[u8]) -> SnapEntry {
        SnapEntry::new(NodeSnap::File { ino, nlink, size: data.len() as u64, data: data.to_vec() })
    }

    #[test]
    fn relaxed_write_covers_hard_link_aliases() {
        // /f and /d/g are the same inode; a write through /f tears both
        // names identically. The relaxation must accept the alias too.
        let mut prev = Tree::new();
        let mut cur = Tree::new();
        for t in [&mut prev, &mut cur] {
            t.insert("/".into(), dir(1, 3, &["d", "f"]));
            t.insert("/d".into(), dir(2, 2, &["g"]));
        }
        prev.insert("/f".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        prev.insert("/d/g".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        cur.insert("/f".into(), file_ino(7, 2, &[2, 2, 2, 2]));
        cur.insert("/d/g".into(), file_ino(7, 2, &[2, 2, 2, 2]));
        let mut actual = cur.clone();
        actual.insert("/f".into(), file_ino(7, 2, &[1, 1, 2, 2]));
        actual.insert("/d/g".into(), file_ino(7, 2, &[1, 1, 2, 2]));
        assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
        // The torn mix is fine for the relaxed check but not the atomic one.
        assert!(diff_atomic_write(&actual, &prev, &cur, "/f", false).is_some());
        // Old version under both names passes the atomic check.
        actual.insert("/f".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        actual.insert("/d/g".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        assert_eq!(diff_atomic_write(&actual, &prev, &cur, "/f", false), None);
        // A garbage alias is still rejected.
        actual.insert("/d/g".into(), file_ino(7, 2, &[9, 9, 9, 9]));
        assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false).is_some());
        // A changed *unrelated* file (different inode) is still rejected.
        let mut actual = cur.clone();
        actual.insert("/f".into(), file_ino(7, 2, &[1, 1, 2, 2]));
        actual.insert("/d/g".into(), file_ino(8, 1, &[5, 5, 5, 5]));
        let mut cur2 = cur.clone();
        cur2.insert("/d/g".into(), file_ino(8, 1, &[2, 2, 2, 2]));
        let mut prev2 = prev.clone();
        prev2.insert("/d/g".into(), file_ino(8, 1, &[2, 2, 2, 2]));
        assert!(diff_relaxed_write(&actual, &prev2, &cur2, "/f", false)
            .unwrap()
            .contains("untouched"));
    }

    #[test]
    fn advance_snapshot_tracks_structural_ops() {
        // Walk an op mix that stresses every dirty-set rule: parent entry
        // lists, hard-link aliases (nlink and data visible through the
        // other name), whole-subtree moves, and deletions. After every op
        // the incremental snapshot must equal an independent full walk.
        let mut fs = ModelFs::new();
        let mut ex = Executor::new();
        let ops = vec![
            Op::Mkdir { path: "/d".into() },
            Op::Creat { path: "/d/x".into() },
            Op::WritePath { path: "/d/x".into(), off: 0, size: 24 },
            Op::Link { old: "/d/x".into(), new: "/l".into() },
            Op::WritePath { path: "/l".into(), off: 8, size: 8 },
            Op::Rename { old: "/d".into(), new: "/e".into() },
            Op::Unlink { path: "/l".into() },
            Op::Truncate { path: "/e/x".into(), size: 4 },
            Op::Sync,
            Op::Remove { path: "/e/x".into() },
            Op::Rmdir { path: "/e".into() },
        ];
        let mut prev = Arc::new(snapshot_tree(&fs).unwrap());
        for (seq, op) in ops.iter().enumerate() {
            let r = ex.exec(&mut fs, op, seq);
            let (next, _) = advance_snapshot(&fs, &prev, op, r.target.as_deref()).unwrap();
            let full = snapshot_tree(&fs).unwrap();
            assert_eq!(diff_trees(&next, &full, true), None, "op {seq}: {}", op.describe());
            assert_eq!(&*next, &full, "op {seq}: {}", op.describe());
            prev = next;
        }
    }

    #[test]
    fn advance_snapshot_shares_untouched_file_data() {
        let mut fs = ModelFs::new();
        let mut ex = Executor::new();
        for (seq, op) in [
            Op::Creat { path: "/big".into() },
            Op::WritePath { path: "/big".into(), off: 0, size: 4096 },
        ]
        .iter()
        .enumerate()
        {
            ex.exec(&mut fs, op, seq);
        }
        let prev = Arc::new(snapshot_tree(&fs).unwrap());
        // An op that does not touch /big: its data Arc must carry over.
        let op = Op::Creat { path: "/small".into() };
        let r = ex.exec(&mut fs, &op, 2);
        let (next, shared) = advance_snapshot(&fs, &prev, &op, r.target.as_deref()).unwrap();
        assert!(Arc::ptr_eq(&next.get("/big").unwrap().node, &prev.get("/big").unwrap().node));
        assert_eq!(shared, 4096);
        // Sync shares the whole tree by handle.
        let r = ex.exec(&mut fs, &Op::Sync, 3);
        let (next2, shared2) =
            advance_snapshot(&fs, &next, &Op::Sync, r.target.as_deref()).unwrap();
        assert!(Arc::ptr_eq(&next2, &next));
        assert_eq!(shared2, 4096);
    }

    #[test]
    fn pruned_diff_is_equivalent_and_counts() {
        let mut actual = Tree::new();
        let mut expect = Tree::new();
        actual.insert("/".into(), dir(1, 3, &["d", "f"]));
        expect.insert("/".into(), dir(1, 3, &["d", "f"]));
        actual.insert("/d".into(), dir(2, 2, &[]));
        expect.insert("/d".into(), dir(2, 2, &[]));
        actual.insert("/f".into(), file(1, b"same"));
        expect.insert("/f".into(), file(1, b"same"));
        let mut pruned = 0;
        assert_eq!(
            diff_trees_pruned(&actual, &expect, true, &Scope::Full, true, &mut pruned),
            None
        );
        assert_eq!(pruned, 3);
        // A mismatching node is still compared exhaustively: same message,
        // and only the matching nodes are pruned.
        actual.insert("/f".into(), file(1, b"diff"));
        let unpruned = diff_trees_scoped(&actual, &expect, true, &Scope::Full);
        let mut pruned = 0;
        let fast = diff_trees_pruned(&actual, &expect, true, &Scope::Full, true, &mut pruned);
        assert_eq!(fast, unpruned);
        assert!(fast.unwrap().contains("contents differ"));
        assert_eq!(pruned, 2);
    }

    #[test]
    fn node_hash_distinguishes_all_compared_fields() {
        let base = file_ino(7, 1, b"abc");
        assert_ne!(base.hash, file_ino(8, 1, b"abc").hash, "ino");
        assert_ne!(base.hash, file_ino(7, 2, b"abc").hash, "nlink");
        assert_ne!(base.hash, file_ino(7, 1, b"abd").hash, "data");
        assert_ne!(base.hash, file_ino(7, 1, b"abcd").hash, "size");
        // Scoped-walk placeholder (empty data, real size) hashes unlike the
        // full node — pruning against a full oracle stays conservative.
        let placeholder = SnapEntry::new(NodeSnap::File {
            ino: 7,
            nlink: 1,
            size: 3,
            data: Vec::new(),
        });
        assert_ne!(base.hash, placeholder.hash);
        let d = dir(7, 2, &["a", "b"]);
        assert_ne!(d.hash, dir(7, 2, &["a"]).hash, "entry count");
        assert_ne!(d.hash, dir(7, 2, &["a", "c"]).hash, "entry names");
        assert_ne!(d.hash, file_ino(7, 2, b"ab").hash, "kind");
        // Entry order is not compared by the diff, so it must not change
        // the hash either.
        assert_eq!(d.hash, dir(7, 2, &["b", "a"]).hash);
    }

    use proptest::prelude::*;

    fn arb_path() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("/a".to_string()),
            Just("/b".to_string()),
            Just("/d".to_string()),
            Just("/d/x".to_string()),
            Just("/d/y".to_string()),
            Just("/e".to_string()),
        ]
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            arb_path().prop_map(|path| Op::Creat { path }),
            arb_path().prop_map(|path| Op::Mkdir { path }),
            arb_path().prop_map(|path| Op::Rmdir { path }),
            arb_path().prop_map(|path| Op::Unlink { path }),
            arb_path().prop_map(|path| Op::Remove { path }),
            (arb_path(), arb_path()).prop_map(|(old, new)| Op::Link { old, new }),
            (arb_path(), arb_path()).prop_map(|(old, new)| Op::Rename { old, new }),
            (arb_path(), 0u64..64).prop_map(|(path, size)| Op::Truncate { path, size }),
            (arb_path(), 0u64..32, 1u64..48)
                .prop_map(|(path, off, size)| Op::WritePath { path, off, size }),
            arb_path().prop_map(|path| Op::FsyncPath { path }),
            Just(Op::Sync),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The structurally-shared oracle is observationally identical to
        /// the deep-copy oracle on arbitrary op sequences, and building
        /// later snapshots never reaches back into earlier ones (each
        /// incremental snapshot still equals its independently-walked
        /// ground truth after the whole sequence was built).
        #[test]
        fn shared_oracle_matches_deep_copy(
            ops in proptest::collection::vec(arb_op(), 1..20),
        ) {
            let kind = TestModelKind;
            let w = Workload::new("p", ops);
            let shared_cfg = TestConfig {
                device_size: 1 << 20,
                shared_oracle: true,
                ..TestConfig::default()
            };
            let deep_cfg = TestConfig { shared_oracle: false, ..shared_cfg.clone() };
            let a = build_oracle(&kind, &w, &shared_cfg).unwrap();
            let b = build_oracle(&kind, &w, &deep_cfg).unwrap();
            prop_assert_eq!(a.snaps.len(), b.snaps.len());
            for k in 0..a.snaps.len() {
                prop_assert_eq!(
                    diff_trees(&a.snaps[k], &b.snaps[k], true), None, "snapshot {}", k
                );
                prop_assert_eq!(&*a.snaps[k], &*b.snaps[k], "snapshot {}", k);
            }
            prop_assert_eq!(a.results, b.results);
            prop_assert_eq!(b.snap_bytes_shared, 0);
        }

        /// Mutating a clone of one snapshot never aliases into another:
        /// the `Arc`s share storage, but the trees are value-semantic.
        #[test]
        fn snapshot_clones_do_not_alias(
            ops in proptest::collection::vec(arb_op(), 1..12),
        ) {
            let kind = TestModelKind;
            let w = Workload::new("p", ops);
            let cfg = TestConfig {
                device_size: 1 << 20,
                shared_oracle: true,
                ..TestConfig::default()
            };
            let o = build_oracle(&kind, &w, &cfg).unwrap();
            let rendered: Vec<String> =
                o.snaps.iter().map(|t| format!("{t:?}")).collect();
            for k in 0..o.snaps.len() {
                let mut clone = (*o.snaps[k]).clone();
                clone.insert("/mutant".into(), file(1, b"zzz"));
                clone.remove("/");
            }
            for (snap, before) in o.snaps.iter().zip(&rendered) {
                prop_assert_eq!(format!("{snap:?}"), before.clone());
            }
        }
    }

    /// A trivial FsKind over the in-memory model, for oracle unit tests.
    #[derive(Clone)]
    struct TestModelKind;

    struct ModelWithDev(ModelFs);

    impl FileSystem for ModelWithDev {
        fn open(&mut self, p: &str, f: vfs::OpenFlags) -> Result<vfs::Fd, FsError> {
            self.0.open(p, f)
        }
        fn close(&mut self, fd: vfs::Fd) -> Result<(), FsError> {
            self.0.close(fd)
        }
        fn mkdir(&mut self, p: &str) -> Result<(), FsError> {
            self.0.mkdir(p)
        }
        fn rmdir(&mut self, p: &str) -> Result<(), FsError> {
            self.0.rmdir(p)
        }
        fn unlink(&mut self, p: &str) -> Result<(), FsError> {
            self.0.unlink(p)
        }
        fn link(&mut self, a: &str, b: &str) -> Result<(), FsError> {
            self.0.link(a, b)
        }
        fn rename(&mut self, a: &str, b: &str) -> Result<(), FsError> {
            self.0.rename(a, b)
        }
        fn truncate(&mut self, p: &str, s: u64) -> Result<(), FsError> {
            self.0.truncate(p, s)
        }
        fn fallocate(
            &mut self,
            fd: vfs::Fd,
            m: vfs::FallocMode,
            o: u64,
            l: u64,
        ) -> Result<(), FsError> {
            self.0.fallocate(fd, m, o, l)
        }
        fn write(&mut self, fd: vfs::Fd, d: &[u8]) -> Result<usize, FsError> {
            self.0.write(fd, d)
        }
        fn pwrite(&mut self, fd: vfs::Fd, o: u64, d: &[u8]) -> Result<usize, FsError> {
            self.0.pwrite(fd, o, d)
        }
        fn pread(&self, fd: vfs::Fd, o: u64, b: &mut [u8]) -> Result<usize, FsError> {
            self.0.pread(fd, o, b)
        }
        fn fsync(&mut self, fd: vfs::Fd) -> Result<(), FsError> {
            self.0.fsync(fd)
        }
        fn sync(&mut self) -> Result<(), FsError> {
            self.0.sync()
        }
        fn stat(&self, p: &str) -> Result<vfs::Metadata, FsError> {
            self.0.stat(p)
        }
        fn readdir(&self, p: &str) -> Result<Vec<vfs::DirEntry>, FsError> {
            self.0.readdir(p)
        }
        fn read_file(&self, p: &str) -> Result<Vec<u8>, FsError> {
            self.0.read_file(p)
        }
    }

    impl FsKind for TestModelKind {
        type Fs<D: PmBackend> = ModelWithDev;
        fn name(&self) -> vfs::FsName {
            vfs::FsName::Ext4Dax
        }
        fn options(&self) -> &vfs::fs::FsOptions {
            static OPTS: std::sync::OnceLock<vfs::fs::FsOptions> = std::sync::OnceLock::new();
            OPTS.get_or_init(vfs::fs::FsOptions::default)
        }
        fn with_options(&self, _opts: vfs::fs::FsOptions) -> Self {
            self.clone()
        }
        fn guarantees(&self) -> vfs::Guarantees {
            vfs::Guarantees { strong: false, atomic_data_writes: false, data_checksums: false }
        }
        fn mkfs<D: PmBackend>(&self, _dev: D) -> Result<Self::Fs<D>, FsError> {
            Ok(ModelWithDev(ModelFs::new()))
        }
        fn mount<D: PmBackend>(&self, _dev: D) -> Result<Self::Fs<D>, FsError> {
            Ok(ModelWithDev(ModelFs::new()))
        }
    }
}
