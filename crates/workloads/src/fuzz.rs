//! The Syzkaller-style gray-box fuzzer (§3.4.2).
//!
//! Like the paper's adaptation of Syzkaller, the fuzzer generates
//! semantically plausible programs from per-call templates (arguments drawn
//! from a small path universe, live descriptor slots, valid-but-unusual
//! sizes), keeps seeds that produce new coverage, and mutates them by
//! insertion, deletion, argument mutation, and splicing. It deliberately
//! reaches the argument shapes ACE omits for tractability: multiple open
//! descriptors on one file, append descriptors, non-8-byte-aligned write
//! sizes, and operations on CPUs other than zero.

use rand::{rngs::StdRng, Rng, SeedableRng};
use vfs::{FallocMode, Op, OpenFlags, Workload};

/// Fuzzer tuning knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Maximum operations per generated workload.
    pub max_ops: usize,
    /// Number of descriptor slots programs may use.
    pub slots: usize,
    /// Number of simulated CPUs to roam over.
    pub cpus: usize,
    /// Maximum corpus size (oldest low-yield seeds evicted).
    pub max_corpus: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { max_ops: 20, slots: 3, cpus: 4, max_corpus: 64 }
    }
}

/// The coverage-guided workload generator.
pub struct Fuzzer {
    rng: StdRng,
    cfg: FuzzConfig,
    corpus: Vec<Workload>,
    generated: u64,
}

const FILE_NAMES: [&str; 9] = [
    "/f0", "/f1", "/f2", "/d0/f0", "/d0/f1", "/d1/f0", "/d1/f1", "/d0/s/f0", "/x0",
];
const DIR_NAMES: [&str; 4] = ["/d0", "/d1", "/d0/s", "/d2"];

impl Fuzzer {
    /// Creates a fuzzer with a deterministic seed (the paper starts from an
    /// empty seed set; so does this).
    pub fn new(seed: u64, cfg: FuzzConfig) -> Self {
        Fuzzer { rng: StdRng::seed_from_u64(seed), cfg, corpus: Vec::new(), generated: 0 }
    }

    /// Number of workloads generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Current corpus size.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    fn file(&mut self) -> String {
        FILE_NAMES[self.rng.gen_range(0..FILE_NAMES.len())].to_string()
    }

    fn dir(&mut self) -> String {
        DIR_NAMES[self.rng.gen_range(0..DIR_NAMES.len())].to_string()
    }

    fn any_path(&mut self) -> String {
        if self.rng.gen_bool(0.7) {
            self.file()
        } else {
            self.dir()
        }
    }

    /// A size that is often unaligned — the trigger space for bugs 17/18/20.
    fn size(&mut self) -> u64 {
        match self.rng.gen_range(0..4) {
            0 => self.rng.gen_range(1..128),
            1 => self.rng.gen_range(1..9000),
            2 => 4096 * self.rng.gen_range(1..3),
            _ => 8 * self.rng.gen_range(1..512),
        }
    }

    fn offset(&mut self) -> u64 {
        match self.rng.gen_range(0..3) {
            0 => 0,
            1 => self.rng.gen_range(0..10_000),
            _ => 4096 * self.rng.gen_range(0..4),
        }
    }

    fn flags(&mut self) -> OpenFlags {
        OpenFlags {
            create: self.rng.gen_bool(0.8),
            excl: self.rng.gen_bool(0.1),
            trunc: self.rng.gen_bool(0.2),
            append: self.rng.gen_bool(0.3),
        }
    }

    fn random_op(&mut self) -> Op {
        let slot = self.rng.gen_range(0..self.cfg.slots);
        match self.rng.gen_range(0..17) {
            0 => Op::Creat { path: self.file() },
            1 => Op::Mkdir { path: self.dir() },
            2 => Op::Rmdir { path: self.dir() },
            3 => Op::Unlink { path: self.file() },
            4 => Op::Remove { path: self.any_path() },
            5 => Op::Link { old: self.file(), new: self.file() },
            6 => Op::Rename { old: self.any_path(), new: self.any_path() },
            7 => Op::Truncate { path: self.file(), size: self.size() },
            8 => {
                let (off, size) = (self.offset(), self.size());
                Op::WritePath { path: self.file(), off, size }
            }
            9 => {
                let flags = self.flags();
                Op::Open { slot, path: self.file(), flags }
            }
            10 => Op::Close { slot },
            11 => Op::Write { slot, size: self.size() },
            12 => {
                let (off, size) = (self.offset(), self.size());
                Op::Pwrite { slot, off, size }
            }
            13 => {
                let mode = FallocMode::ALL[self.rng.gen_range(0..4)];
                let (off, len) = (self.offset(), self.size());
                Op::Falloc { slot, mode, off, len }
            }
            14 => Op::SetCpu { cpu: self.rng.gen_range(0..self.cfg.cpus) },
            15 => {
                let (off, len) = (self.offset(), self.size());
                Op::Read { slot, off, len }
            }
            _ => {
                let (off, size) = (self.offset(), self.size());
                Op::WritePath { path: self.file(), off, size }
            }
        }
    }

    fn fresh_workload(&mut self) -> Vec<Op> {
        let n = self.rng.gen_range(2..=self.cfg.max_ops);
        // Seed the namespace so later ops have something to chew on.
        let mut ops = vec![
            Op::Mkdir { path: "/d0".into() },
            Op::Mkdir { path: "/d1".into() },
        ];
        for _ in 0..n {
            ops.push(self.random_op());
        }
        ops
    }

    fn mutate(&mut self, base: &Workload) -> Vec<Op> {
        let mut ops = base.ops.clone();
        for _ in 0..self.rng.gen_range(1..=3) {
            match self.rng.gen_range(0..4) {
                0 if ops.len() < self.cfg.max_ops + 2 => {
                    let at = self.rng.gen_range(0..=ops.len());
                    let op = self.random_op();
                    ops.insert(at, op);
                }
                1 if ops.len() > 1 => {
                    let at = self.rng.gen_range(0..ops.len());
                    ops.remove(at);
                }
                2 if !ops.is_empty() => {
                    let at = self.rng.gen_range(0..ops.len());
                    ops[at] = self.random_op();
                }
                2 => {}
                _ => {
                    // Splice with another corpus entry.
                    if let Some(other) =
                        (!self.corpus.is_empty()).then(|| {
                            let i = self.rng.gen_range(0..self.corpus.len());
                            self.corpus[i].clone()
                        })
                    {
                        let cut_a = self.rng.gen_range(0..=ops.len());
                        let cut_b = self.rng.gen_range(0..=other.ops.len());
                        ops.truncate(cut_a);
                        ops.extend(other.ops[cut_b..].iter().cloned());
                        ops.truncate(self.cfg.max_ops + 2);
                    }
                }
            }
        }
        if ops.is_empty() {
            ops.push(self.random_op());
        }
        ops
    }

    /// Produces the next workload to execute.
    pub fn next_workload(&mut self) -> Workload {
        self.generated += 1;
        let ops = if self.corpus.is_empty() || self.rng.gen_bool(0.3) {
            self.fresh_workload()
        } else {
            let i = self.rng.gen_range(0..self.corpus.len());
            let base = self.corpus[i].clone();
            self.mutate(&base)
        };
        Workload::new(format!("fuzz-{:06}", self.generated), ops)
    }

    /// Feedback after executing `w`: keep it as a seed if it uncovered new
    /// coverage (Syzkaller's rule).
    pub fn feedback(&mut self, w: &Workload, new_cov: usize) {
        if new_cov > 0 {
            self.corpus.push(w.clone());
            if self.corpus.len() > self.cfg.max_corpus {
                self.corpus.remove(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Fuzzer::new(42, FuzzConfig::default());
        let mut b = Fuzzer::new(42, FuzzConfig::default());
        for _ in 0..10 {
            assert_eq!(a.next_workload().ops, b.next_workload().ops);
        }
        let mut c = Fuzzer::new(43, FuzzConfig::default());
        let wa = a.next_workload();
        let wc = c.next_workload();
        assert_ne!(wa.ops, wc.ops);
    }

    #[test]
    fn corpus_grows_only_on_new_coverage() {
        let mut f = Fuzzer::new(1, FuzzConfig::default());
        let w = f.next_workload();
        f.feedback(&w, 0);
        assert_eq!(f.corpus_len(), 0);
        f.feedback(&w, 5);
        assert_eq!(f.corpus_len(), 1);
    }

    #[test]
    fn generates_ace_unreachable_patterns() {
        // Over a modest budget the fuzzer must emit each pattern ACE cannot:
        // two opens of one file, non-8-byte-aligned writes, non-zero CPUs.
        let mut f = Fuzzer::new(7, FuzzConfig::default());
        let mut two_opens = false;
        let mut unaligned = false;
        let mut nonzero_cpu = false;
        for _ in 0..400 {
            let w = f.next_workload();
            let mut opens: Vec<&String> = Vec::new();
            for op in &w.ops {
                match op {
                    Op::Open { path, .. } => opens.push(path),
                    Op::SetCpu { cpu } if *cpu != 0 => nonzero_cpu = true,
                    Op::WritePath { size, .. } | Op::Write { size, .. }
                    | Op::Pwrite { size, .. }
                        if size % 8 != 0 =>
                    {
                        unaligned = true;
                    }
                    _ => {}
                }
            }
            let mut sorted = opens.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() < opens.len() {
                two_opens = true;
            }
            f.feedback(&w, usize::from(f.generated().is_multiple_of(3)));
        }
        assert!(two_opens, "never opened one file twice");
        assert!(unaligned, "never generated an unaligned write");
        assert!(nonzero_cpu, "never switched CPUs");
    }

    #[test]
    fn workloads_stay_within_bounds() {
        let cfg = FuzzConfig { max_ops: 6, ..Default::default() };
        let mut f = Fuzzer::new(3, cfg);
        for _ in 0..200 {
            let w = f.next_workload();
            assert!(w.ops.len() <= 6 + 2, "{}", w.ops.len());
            f.feedback(&w, 1);
        }
    }
}
