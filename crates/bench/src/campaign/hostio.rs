//! Host-I/O mediation for the campaign store: every filesystem touch the
//! campaign service makes (store documents, journals, leases, merged
//! artifacts) goes through a [`HostIo`] implementation, so the same fault
//! machinery `pmem::fault` points at the file system under test can be
//! pointed at our own persistence layer.
//!
//! Three pieces:
//!
//! 1. [`HostIo`] — the path-based operation trait, with a passthrough
//!    implementation ([`PassthroughIo`]) and a deterministic, seed-driven
//!    fault injector ([`FaultyHostIo`]) that produces short writes, EIO,
//!    ENOSPC, torn appends cut at a configurable byte boundary, lying
//!    writes (success reported, tail dropped), and crash-before/after-
//!    rename schedules.
//! 2. [`HostCtx`] — the retry/recovery layer every store component holds: a
//!    bounded deterministic retry loop (simulated-clock backoff, no
//!    wall-time nondeterminism), atomic-write and verified-append
//!    primitives, and the host-health flags (`degraded` after ENOSPC,
//!    `crashed` after a simulated host death) plus the `io_retries` /
//!    `backoff_ticks` / `tasks_quarantined` observability counters.
//! 3. [`StoreError`] — the typed error taxonomy (Transient / Corrupt /
//!    Exhausted / Fatal) that replaces the stringly-typed plumbing, with
//!    process exit codes and the recovery action taken baked into the
//!    display form.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// What the store did (or will do) about a corrupt artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The artifact was moved aside to `quarantine/` and its task will be
    /// re-leased and re-run; the campaign continues.
    Quarantined,
    /// The torn tail was truncated away; the valid prefix is still used.
    Truncated,
    /// Nothing can be rebuilt from this artifact; the operation stops.
    Fatal,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryAction::Quarantined => "quarantined",
            RecoveryAction::Truncated => "truncated",
            RecoveryAction::Fatal => "fatal",
        })
    }
}

/// The campaign store's typed error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A retryable host fault (EIO, a short or torn write) that survived
    /// the bounded retry loop. The task that hit it is abandoned and
    /// re-leased; the campaign continues.
    Transient {
        /// The operation that failed.
        op: &'static str,
        /// The path it failed on.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// An artifact that exists but does not parse (torn, truncated, or
    /// garbled JSON). Carries which file, which byte offset, and the
    /// recovery action taken.
    Corrupt {
        /// The corrupt file.
        path: String,
        /// Byte offset of the first unparsable input, when known.
        offset: Option<u64>,
        /// What was wrong.
        detail: String,
        /// What the store did about it.
        action: RecoveryAction,
    },
    /// The host is out of space (ENOSPC). The store switches to read-only
    /// degraded mode: committed state keeps serving `--resume` and triage,
    /// but no new artifacts are written.
    Exhausted {
        /// The operation that hit ENOSPC.
        op: &'static str,
        /// The path it failed on.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// Unrecoverable: a simulated host crash, a spec mismatch, or a
    /// corruption with no quarantine path.
    Fatal {
        /// What happened.
        detail: String,
    },
}

impl StoreError {
    /// A bare fatal error.
    pub fn fatal(detail: impl Into<String>) -> Self {
        StoreError::Fatal { detail: detail.into() }
    }

    /// A corruption error for `path`, extracting the `at byte N` offset the
    /// hand-rolled parser embeds in its messages.
    pub fn corrupt(path: &Path, detail: impl Into<String>, action: RecoveryAction) -> Self {
        let detail = detail.into();
        StoreError::Corrupt {
            path: path.display().to_string(),
            offset: parse_byte_offset(&detail),
            detail,
            action,
        }
    }

    /// The process exit code this error maps to: 2 for malformed input
    /// (corrupt artifacts), 3 for the degraded out-of-space mode, 1 for
    /// everything else. (Usage errors exit 2 before a store is opened.)
    pub fn exit_code(&self) -> i32 {
        match self {
            StoreError::Corrupt { .. } => 2,
            StoreError::Exhausted { .. } => 3,
            _ => 1,
        }
    }

    /// Whether the campaign can continue past this error by abandoning the
    /// current task (Transient, or a quarantined corruption).
    pub fn task_recoverable(&self) -> bool {
        matches!(
            self,
            StoreError::Transient { .. }
                | StoreError::Corrupt { action: RecoveryAction::Quarantined | RecoveryAction::Truncated, .. }
        )
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Transient { op, path, detail } => {
                write!(f, "{path}: {op} failed after {MAX_ATTEMPTS} attempts: {detail}")
            }
            StoreError::Corrupt { path, offset, detail, action } => match offset {
                Some(n) => write!(f, "{path}: corrupt at byte {n}: {detail} (recovery: {action})"),
                None => write!(f, "{path}: corrupt: {detail} (recovery: {action})"),
            },
            StoreError::Exhausted { op, path, detail } => write!(
                f,
                "{path}: {op}: {detail}; store is read-only (degraded mode) — committed \
                 state still serves --resume and triage"
            ),
            StoreError::Fatal { detail } => f.write_str(detail),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<String> for StoreError {
    fn from(detail: String) -> Self {
        StoreError::Fatal { detail }
    }
}

/// Pulls the `at byte N` offset out of a parser error message.
fn parse_byte_offset(detail: &str) -> Option<u64> {
    let idx = detail.rfind("at byte ")?;
    let digits: String = detail[idx + "at byte ".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The path-based host-I/O operations the campaign store performs. All
/// writes are durable on success (`write` syncs the file, `append` syncs
/// data); atomicity is composed above this trait by [`HostCtx`].
pub trait HostIo: Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates `path` and writes `bytes`, fsyncing the file.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` in one `write` call and syncs file data.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Exclusive create (`O_EXCL`) with `bytes`; `Ok(false)` when the file
    /// already exists.
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool>;
    /// Recursive directory create.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Truncates (or extends) `path` to `len`.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// File length, `None` when the file does not exist.
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>>;
    /// Fsyncs a directory (rename durability).
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether writes should be read back and verified. Off for the
    /// passthrough (a page-cache read-back cannot catch real firmware
    /// lies); on for the injector, whose lies it provably catches.
    fn verify_writes(&self) -> bool {
        false
    }
    /// Total faults injected so far (0 for the passthrough).
    fn faults_injected(&self) -> u64 {
        0
    }
}

/// Direct `std::fs` implementation.
#[derive(Debug, Default)]
pub struct PassthroughIo;

impl HostIo for PassthroughIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        // One write call per append: a torn line can only be the very tail.
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        use std::io::Write;
        let mut f = match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(false),
            Err(e) => return Err(e),
        };
        f.write_all(bytes)?;
        f.sync_data()?;
        Ok(true)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
}

/// Which side of a rename the simulated host crash lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSide {
    /// The host dies before the rename takes effect (tmp file orphaned).
    Before,
    /// The rename lands, then the host dies.
    After,
}

/// A deterministic fault schedule. All probabilities are per-mille and
/// drawn from a splitmix64 stream keyed by `(seed, op index)`, so two runs
/// with the same seed inject byte-identical fault sequences regardless of
/// timing.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// RNG seed.
    pub seed: u64,
    /// Per-mille chance of a plain transient EIO on any fallible op.
    pub eio_permille: u32,
    /// Per-mille chance a `write` persists only a prefix before failing.
    pub short_permille: u32,
    /// Per-mille chance an `append` is torn at [`Self::torn_boundary`]
    /// before failing.
    pub torn_permille: u32,
    /// Per-mille chance a `write` reports success but drops its tail (a
    /// lying device; caught by the read-back verification).
    pub lying_permille: u32,
    /// Byte boundary torn appends are cut at.
    pub torn_boundary: usize,
    /// After this many bytes written, every write/append fails ENOSPC.
    pub enospc_after_bytes: Option<u64>,
    /// Simulate whole-host death at the nth rename (0-based).
    pub crash_at_rename: Option<(u64, CrashSide)>,
}

impl FaultSpec {
    /// The standard torture mix: every fault class enabled at rates high
    /// enough to fire many times per campaign yet low enough that the
    /// bounded retry loop almost always recovers.
    pub fn standard(seed: u64) -> Self {
        FaultSpec {
            seed,
            eio_permille: 30,
            short_permille: 15,
            torn_permille: 15,
            lying_permille: 10,
            torn_boundary: 7,
            enospc_after_bytes: None,
            crash_at_rename: None,
        }
    }

    /// A fault-free spec (useful as a base for targeted schedules).
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            eio_permille: 0,
            short_permille: 0,
            torn_permille: 0,
            lying_permille: 0,
            torn_boundary: 7,
            enospc_after_bytes: None,
            crash_at_rename: None,
        }
    }
}

/// The error text every operation returns once the simulated host has
/// died; [`HostCtx`] classifies it as [`StoreError::Fatal`].
pub const CRASH_MARKER: &str = "simulated host crash";

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seed-driven fault injector wrapping [`PassthroughIo`]. Interior state is
/// all atomics, so one injector can be shared by every store component of a
/// worker.
pub struct FaultyHostIo {
    spec: FaultSpec,
    inner: PassthroughIo,
    ops: AtomicU64,
    renames: AtomicU64,
    bytes_written: AtomicU64,
    dead: AtomicBool,
    faults: AtomicU64,
}

enum Roll {
    Clean,
    Eio,
    Short,
    Torn,
    Lying,
}

impl FaultyHostIo {
    /// A new injector for `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultyHostIo {
            spec,
            inner: PassthroughIo,
            ops: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            faults: AtomicU64::new(0),
        }
    }

    /// Whether the simulated host has died (crash schedule fired).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn crash_err() -> io::Error {
        io::Error::other(CRASH_MARKER)
    }

    fn enospc() -> io::Error {
        io::Error::from_raw_os_error(28) // ENOSPC
    }

    /// Draws the fault decision for the next op. Each call consumes one op
    /// index, so a retried operation sees an independent roll.
    fn roll(&self) -> io::Result<Roll> {
        if self.is_dead() {
            return Err(Self::crash_err());
        }
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        let r = splitmix64(self.spec.seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 1000;
        let s = &self.spec;
        let mut hi = s.eio_permille;
        if (r as u32) < hi {
            return Ok(Roll::Eio);
        }
        hi += s.short_permille;
        if (r as u32) < hi {
            return Ok(Roll::Short);
        }
        hi += s.torn_permille;
        if (r as u32) < hi {
            return Ok(Roll::Torn);
        }
        hi += s.lying_permille;
        if (r as u32) < hi {
            return Ok(Roll::Lying);
        }
        Ok(Roll::Clean)
    }

    fn fault(&self) -> io::Error {
        self.faults.fetch_add(1, Ordering::SeqCst);
        io::Error::other("injected EIO")
    }

    fn charge_bytes(&self, n: usize) -> io::Result<()> {
        let total = self.bytes_written.fetch_add(n as u64, Ordering::SeqCst) + n as u64;
        if let Some(budget) = self.spec.enospc_after_bytes {
            if total > budget {
                self.faults.fetch_add(1, Ordering::SeqCst);
                return Err(Self::enospc());
            }
        }
        Ok(())
    }
}

impl HostIo for FaultyHostIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.roll()? {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let roll = self.roll()?;
        self.charge_bytes(bytes.len())?;
        match roll {
            Roll::Eio => Err(self.fault()),
            Roll::Short => {
                // A short write persists an arbitrary prefix, then errors.
                let cut = bytes.len() / 2;
                let _ = self.inner.write(path, &bytes[..cut]);
                Err(self.fault())
            }
            Roll::Lying => {
                // The device claims success but drops the tail. Only the
                // read-back verification can catch this.
                let cut = bytes.len().saturating_sub(1);
                self.faults.fetch_add(1, Ordering::SeqCst);
                self.inner.write(path, &bytes[..cut])
            }
            Roll::Torn | Roll::Clean => self.inner.write(path, bytes),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let roll = self.roll()?;
        self.charge_bytes(bytes.len())?;
        match roll {
            Roll::Eio => Err(self.fault()),
            Roll::Torn | Roll::Short => {
                // A torn append persists a prefix cut at the configured
                // boundary — the half-written journal line of a dying host.
                let cut = self.spec.torn_boundary.min(bytes.len().saturating_sub(1));
                let _ = self.inner.append(path, &bytes[..cut]);
                Err(self.fault())
            }
            Roll::Lying => {
                let cut = bytes.len().saturating_sub(1);
                self.faults.fetch_add(1, Ordering::SeqCst);
                self.inner.append(path, &bytes[..cut])
            }
            Roll::Clean => self.inner.append(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.is_dead() {
            return Err(Self::crash_err());
        }
        let n = self.renames.fetch_add(1, Ordering::SeqCst);
        if let Some((at, side)) = self.spec.crash_at_rename {
            if n == at {
                self.dead.store(true, Ordering::SeqCst);
                self.faults.fetch_add(1, Ordering::SeqCst);
                return match side {
                    CrashSide::Before => Err(Self::crash_err()),
                    CrashSide::After => {
                        let _ = self.inner.rename(from, to);
                        Err(Self::crash_err())
                    }
                };
            }
        }
        match self.roll()? {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.roll()? {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.remove_file(path),
        }
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        let roll = self.roll()?;
        self.charge_bytes(bytes.len())?;
        match roll {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.create_new(path, bytes),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.roll()? {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.create_dir_all(path),
        }
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.roll()? {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.set_len(path, len),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        if self.is_dead() {
            return Err(Self::crash_err());
        }
        self.inner.file_len(path)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        match self.roll()? {
            Roll::Eio => Err(self.fault()),
            _ => self.inner.fsync_dir(path),
        }
    }

    fn verify_writes(&self) -> bool {
        true
    }

    fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }
}

/// Retry attempts per operation (first try + three retries).
pub const MAX_ATTEMPTS: u32 = 4;

/// Simulated-clock backoff schedule, in ticks, between attempts.
const BACKOFF_TICKS: [u64; 3] = [1, 2, 4];

struct CtxInner {
    io: Arc<dyn HostIo>,
    retries: AtomicU64,
    backoff_ticks: AtomicU64,
    clock: AtomicU64,
    quarantined: AtomicU64,
    degraded: AtomicBool,
    crashed: AtomicBool,
}

/// The shared retry/recovery context every store component holds. Cloning
/// shares the underlying injector and counters.
#[derive(Clone)]
pub struct HostCtx {
    inner: Arc<CtxInner>,
}

impl std::fmt::Debug for HostCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostCtx")
            .field("io_retries", &self.io_retries())
            .field("degraded", &self.degraded())
            .field("crashed", &self.crashed())
            .finish()
    }
}

impl HostCtx {
    /// A context over the real filesystem.
    pub fn passthrough() -> Self {
        Self::with_io(Arc::new(PassthroughIo))
    }

    /// A context over a fault injector with the given schedule.
    pub fn faulty(spec: FaultSpec) -> Self {
        Self::with_io(Arc::new(FaultyHostIo::new(spec)))
    }

    /// A context over an arbitrary [`HostIo`].
    pub fn with_io(io: Arc<dyn HostIo>) -> Self {
        HostCtx {
            inner: Arc::new(CtxInner {
                io,
                retries: AtomicU64::new(0),
                backoff_ticks: AtomicU64::new(0),
                clock: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// Retries performed (attempts beyond the first, across all ops).
    pub fn io_retries(&self) -> u64 {
        self.inner.retries.load(Ordering::SeqCst)
    }

    /// Simulated-clock ticks spent backing off.
    pub fn backoff_ticks(&self) -> u64 {
        self.inner.backoff_ticks.load(Ordering::SeqCst)
    }

    /// Results quarantined through this context.
    pub fn tasks_quarantined(&self) -> u64 {
        self.inner.quarantined.load(Ordering::SeqCst)
    }

    /// Counts one quarantined artifact.
    pub fn note_quarantine(&self) {
        self.inner.quarantined.fetch_add(1, Ordering::SeqCst);
    }

    /// Whether the store has entered read-only degraded mode (ENOSPC seen).
    pub fn degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::SeqCst)
    }

    /// Whether the simulated host has died under this context.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Faults the underlying injector produced (0 for the passthrough).
    pub fn faults_injected(&self) -> u64 {
        self.inner.io.faults_injected()
    }

    /// Classifies a raw I/O error, updating the host-health flags.
    fn classify(&self, op: &'static str, path: &Path, e: &io::Error) -> StoreError {
        let detail = e.to_string();
        if detail.contains(CRASH_MARKER) {
            self.inner.crashed.store(true, Ordering::SeqCst);
            return StoreError::Fatal {
                detail: format!("{}: {op}: {detail}", path.display()),
            };
        }
        if e.raw_os_error() == Some(28) {
            self.inner.degraded.store(true, Ordering::SeqCst);
            return StoreError::Exhausted { op, path: path.display().to_string(), detail };
        }
        StoreError::Transient { op, path: path.display().to_string(), detail }
    }

    /// One backoff step on the simulated clock. Deterministic: no wall
    /// time, just a counted tick plus a scheduler yield (so a racing
    /// sibling worker can make progress in in-process fleet tests).
    fn backoff(&self, attempt: u32) {
        let ticks = BACKOFF_TICKS[(attempt as usize).min(BACKOFF_TICKS.len() - 1)];
        self.inner.clock.fetch_add(ticks, Ordering::SeqCst);
        self.inner.backoff_ticks.fetch_add(ticks, Ordering::SeqCst);
        std::thread::yield_now();
    }

    /// Runs `f` with bounded retry: Transient errors are retried
    /// [`MAX_ATTEMPTS`] times with simulated-clock backoff; Exhausted and
    /// Fatal return immediately.
    fn retrying<T>(
        &self,
        op: &'static str,
        path: &Path,
        mut f: impl FnMut(&dyn HostIo) -> io::Result<T>,
    ) -> Result<T, StoreError> {
        let mut last: Option<StoreError> = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.inner.retries.fetch_add(1, Ordering::SeqCst);
                self.backoff(attempt - 1);
            }
            match f(self.inner.io.as_ref()) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let se = self.classify(op, path, &e);
                    if !matches!(se, StoreError::Transient { .. }) {
                        return Err(se);
                    }
                    last = Some(se);
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Atomic durable write: tmp sibling → fsync → rename → parent-dir
    /// fsync, with the whole sequence retried on transient faults and (for
    /// injecting backends) the final contents read back and verified, so a
    /// lying write can never commit a corrupt artifact.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let mut last: Option<StoreError> = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.inner.retries.fetch_add(1, Ordering::SeqCst);
                self.backoff(attempt - 1);
            }
            let res = (|| -> Result<(), StoreError> {
                let io = self.inner.io.as_ref();
                io.write(&tmp, bytes).map_err(|e| self.classify("write", &tmp, &e))?;
                if io.verify_writes() {
                    let back = io.read(&tmp).map_err(|e| self.classify("read", &tmp, &e))?;
                    if back != bytes {
                        return Err(StoreError::Transient {
                            op: "write-verify",
                            path: tmp.display().to_string(),
                            detail: format!(
                                "read back {} bytes, wrote {} (lying write)",
                                back.len(),
                                bytes.len()
                            ),
                        });
                    }
                }
                io.rename(&tmp, path).map_err(|e| self.classify("rename", path, &e))?;
                // The rename is not durable until the directory is synced.
                io.fsync_dir(&parent).map_err(|e| self.classify("fsync-dir", &parent, &e))?;
                Ok(())
            })();
            match res {
                Ok(()) => return Ok(()),
                Err(se) => {
                    if !matches!(se, StoreError::Transient { .. }) {
                        let _ = self.inner.io.remove_file(&tmp);
                        return Err(se);
                    }
                    last = Some(se);
                }
            }
        }
        let _ = self.inner.io.remove_file(&tmp);
        Err(last.expect("at least one attempt ran"))
    }

    /// Durable single-line append with torn-write rollback: the file length
    /// is recorded first; a failed or lying append truncates back to it
    /// before retrying, so a torn half-line can never sit *inside* a
    /// journal — only at the tail of a genuine crash.
    pub fn append_line(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let base = self
            .retrying("stat", path, |io| io.file_len(path))?
            .unwrap_or(0);
        let mut last: Option<StoreError> = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.inner.retries.fetch_add(1, Ordering::SeqCst);
                self.backoff(attempt - 1);
            }
            let res = (|| -> Result<(), StoreError> {
                let io = self.inner.io.as_ref();
                io.append(path, bytes).map_err(|e| self.classify("append", path, &e))?;
                if io.verify_writes() {
                    let back = io.read(path).map_err(|e| self.classify("read", path, &e))?;
                    let want = base as usize + bytes.len();
                    if back.len() != want || &back[base as usize..] != bytes {
                        return Err(StoreError::Transient {
                            op: "append-verify",
                            path: path.display().to_string(),
                            detail: format!("file is {} bytes, expected {want}", back.len()),
                        });
                    }
                }
                Ok(())
            })();
            match res {
                Ok(()) => return Ok(()),
                Err(se) => {
                    // Roll the torn tail back before the next attempt (or
                    // before handing the file to a successor).
                    self.rollback_len(path, base);
                    if !matches!(se, StoreError::Transient { .. }) {
                        return Err(se);
                    }
                    last = Some(se);
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Best-effort truncate back to `base` (append rollback).
    fn rollback_len(&self, path: &Path, base: u64) {
        for _ in 0..MAX_ATTEMPTS {
            match self.inner.io.file_len(path) {
                Ok(Some(len)) if len > base => {
                    if self.inner.io.set_len(path, base).is_ok() {
                        return;
                    }
                }
                Ok(_) => return,
                Err(_) => {}
            }
            std::thread::yield_now();
        }
    }

    /// Reads a whole file with retry.
    pub fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.retrying("read", path, |io| io.read(path))
    }

    /// Reads a whole file, `None` when it does not exist.
    pub fn read_opt(&self, path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
        let mut last: Option<StoreError> = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.inner.retries.fetch_add(1, Ordering::SeqCst);
                self.backoff(attempt - 1);
            }
            match self.inner.io.read(path) {
                Ok(v) => return Ok(Some(v)),
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
                Err(e) => {
                    let se = self.classify("read", path, &e);
                    if !matches!(se, StoreError::Transient { .. }) {
                        return Err(se);
                    }
                    last = Some(se);
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Reads a file as UTF-8 text, `None` when absent.
    pub fn read_to_string_opt(&self, path: &Path) -> Result<Option<String>, StoreError> {
        match self.read_opt(path)? {
            None => Ok(None),
            Some(bytes) => String::from_utf8(bytes)
                .map(Some)
                .map_err(|e| StoreError::corrupt(path, format!("not UTF-8: {e}"), RecoveryAction::Fatal)),
        }
    }

    /// Exclusive create with retry; `Ok(false)` when the file exists.
    pub fn create_new(&self, path: &Path, bytes: &[u8]) -> Result<bool, StoreError> {
        self.retrying("create", path, |io| io.create_new(path, bytes))
    }

    /// Recursive directory create with retry.
    pub fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        self.retrying("mkdir", path, |io| io.create_dir_all(path))
    }

    /// Removes a file with retry; absence is success.
    pub fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        let mut last: Option<StoreError> = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.inner.retries.fetch_add(1, Ordering::SeqCst);
                self.backoff(attempt - 1);
            }
            match self.inner.io.remove_file(path) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
                Err(e) => {
                    let se = self.classify("remove", path, &e);
                    if !matches!(se, StoreError::Transient { .. }) {
                        return Err(se);
                    }
                    last = Some(se);
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Renames with retry.
    pub fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        self.retrying("rename", to, |io| io.rename(from, to))
    }

    /// Fire-and-forget overwrite for heartbeat tokens: one attempt, errors
    /// swallowed (a missed heartbeat only risks needless reclamation, which
    /// is harmless — results are deterministic and journal appends are
    /// first-writer-wins).
    pub fn overwrite_quiet(&self, path: &Path, bytes: &[u8]) {
        let _ = self.inner.io.write(path, bytes);
    }

    /// Whether `path` exists (best effort; errors read as "absent").
    pub fn exists(&self, path: &Path) -> bool {
        matches!(self.inner.io.file_len(path), Ok(Some(_)))
    }

    /// Truncates a file with retry.
    pub fn set_len(&self, path: &Path, len: u64) -> Result<(), StoreError> {
        self.retrying("truncate", path, |io| io.set_len(path, len))
    }

    /// File length with retry; `None` when the file does not exist.
    pub fn file_len(&self, path: &Path) -> Result<Option<u64>, StoreError> {
        self.retrying("stat", path, |io| io.file_len(path))
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// The process-wide passthrough context `jsonout::write_atomic` delegates
/// to, so every artifact the binaries emit flows through the same mediated
/// path as the campaign store.
pub fn default_ctx() -> &'static HostCtx {
    static CTX: OnceLock<HostCtx> = OnceLock::new();
    CTX.get_or_init(HostCtx::passthrough)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chipmunk-hostio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let dir = tmpdir("det");
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let io = FaultyHostIo::new(FaultSpec::standard(42));
                (0..200)
                    .map(|i| io.write(&dir.join("f"), format!("x{i}").as_bytes()).is_ok())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed must inject the same schedule");
        assert!(runs[0].iter().any(|ok| !ok), "standard mix must inject something in 200 ops");
        assert!(runs[0].iter().any(|ok| *ok), "standard mix must also let ops through");
        let other: Vec<bool> = {
            let io = FaultyHostIo::new(FaultSpec::standard(43));
            (0..200)
                .map(|i| io.write(&dir.join("f"), format!("x{i}").as_bytes()).is_ok())
                .collect()
        };
        assert_ne!(runs[0], other, "different seeds must differ");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_retries_through_transient_faults() {
        let dir = tmpdir("retry");
        let path = dir.join("doc.json");
        // Aggressive EIO: each write_atomic needs several clean ops in a
        // row, so in-context retries fire constantly — and a write that
        // exhausts all its attempts is re-issued whole, exactly like the
        // runner abandoning and re-claiming a task. Every retry draws fresh
        // op indices, so the loop always terminates.
        let ctx = HostCtx::faulty(FaultSpec { eio_permille: 300, ..FaultSpec::none(7) });
        for i in 0..50 {
            let doc = format!("{{\"i\":{i}}}\n");
            let mut reissues = 0;
            while let Err(e) = ctx.write_atomic(&path, doc.as_bytes()) {
                assert!(matches!(e, StoreError::Transient { .. }), "{e}");
                reissues += 1;
                assert!(reissues < 64, "write {i} must eventually land");
            }
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"i\":49}\n");
        assert!(ctx.io_retries() > 0, "must have retried at least once");
        assert!(ctx.backoff_ticks() > 0, "retries tick the simulated clock");
        assert!(!ctx.degraded() && !ctx.crashed());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_atomic_leaves_target_and_no_tmp_behind() {
        let dir = tmpdir("intact");
        let path = dir.join("doc.json");
        std::fs::write(&path, "{\"old\": true}\n").unwrap();
        // Every op fails: the write cannot land, but the old contents and
        // directory must be untouched.
        let ctx = HostCtx::faulty(FaultSpec { eio_permille: 1000, ..FaultSpec::none(1) });
        let err = ctx.write_atomic(&path, b"{\"new\": true}\n").unwrap_err();
        assert!(matches!(err, StoreError::Transient { .. }), "{err}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"old\": true}\n");
        assert!(ctx.io_retries() >= (MAX_ATTEMPTS - 1) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lying_writes_are_caught_by_verification() {
        let dir = tmpdir("lying");
        let path = dir.join("doc.json");
        // Only lying writes: every write claims success but drops a byte.
        // Verification must catch each one and the retry loop re-rolls (the
        // lie fires per-op, so with permille 1000 it never recovers — the
        // final error must be the verify failure, and the *target* file must
        // never hold the corrupt bytes).
        let ctx = HostCtx::faulty(FaultSpec { lying_permille: 1000, ..FaultSpec::none(3) });
        let err = ctx.write_atomic(&path, b"{\"x\": 1}\n").unwrap_err();
        match &err {
            StoreError::Transient { op, .. } => assert_eq!(*op, "write-verify"),
            other => panic!("expected verify failure, got {other}"),
        }
        assert!(!path.exists(), "a lying write must never be renamed into place");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_rolls_back_and_retries() {
        let dir = tmpdir("torn");
        let path = dir.join("task-0.log");
        let ctx = HostCtx::faulty(FaultSpec { torn_permille: 400, ..FaultSpec::none(11) });
        let lines: Vec<String> = (0..40).map(|i| format!("{{\"i\":{i}}}\n")).collect();
        for l in &lines {
            // A line may exhaust its in-context attempts under this tear
            // rate; the caller-level retry mirrors the runner's
            // abandon-and-re-lease loop and must find a rolled-back tail.
            let mut tries = 0;
            while let Err(e) = ctx.append_line(&path, l.as_bytes()) {
                assert!(matches!(e, StoreError::Transient { .. }), "{e}");
                tries += 1;
                assert!(tries < 64, "append never succeeded under the schedule");
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, lines.concat(), "torn prefixes must never survive inside the journal");
        assert!(ctx.faults_injected() > 0, "schedule must actually tear appends");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_classifies_exhausted_and_degrades() {
        let dir = tmpdir("enospc");
        let ctx = HostCtx::faulty(FaultSpec { enospc_after_bytes: Some(64), ..FaultSpec::none(5) });
        ctx.write_atomic(&dir.join("a.json"), &[b'x'; 60]).unwrap();
        let err = ctx.write_atomic(&dir.join("b.json"), &[b'y'; 60]).unwrap_err();
        assert!(matches!(err, StoreError::Exhausted { .. }), "{err}");
        assert_eq!(err.exit_code(), 3);
        assert!(ctx.degraded(), "ENOSPC must flip the degraded flag");
        // Reads still work in degraded mode.
        assert_eq!(ctx.read(&dir.join("a.json")).unwrap(), vec![b'x'; 60]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_at_rename_kills_the_host() {
        for side in [CrashSide::Before, CrashSide::After] {
            let dir = tmpdir(&format!("crash-{side:?}"));
            let ctx = HostCtx::faulty(FaultSpec {
                crash_at_rename: Some((1, side)),
                ..FaultSpec::none(9)
            });
            ctx.write_atomic(&dir.join("a.json"), b"one\n").unwrap();
            let err = ctx.write_atomic(&dir.join("b.json"), b"two\n").unwrap_err();
            assert!(matches!(err, StoreError::Fatal { .. }), "{err}");
            assert!(ctx.crashed());
            match side {
                CrashSide::Before => assert!(!dir.join("b.json").exists()),
                CrashSide::After => {
                    assert_eq!(std::fs::read_to_string(dir.join("b.json")).unwrap(), "two\n")
                }
            }
            // Everything after the crash fails fatally — the host is dead.
            let err = ctx.read(&dir.join("a.json")).unwrap_err();
            assert!(matches!(err, StoreError::Fatal { .. }));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn store_error_reports_file_offset_and_action() {
        let e = StoreError::corrupt(
            Path::new("/store/results/task-3.json"),
            "expected ',' or '}' at byte 117",
            RecoveryAction::Quarantined,
        );
        assert_eq!(e.exit_code(), 2);
        let msg = e.to_string();
        assert!(msg.contains("task-3.json"), "{msg}");
        assert!(msg.contains("byte 117"), "{msg}");
        assert!(msg.contains("quarantined"), "{msg}");
        assert!(e.task_recoverable());
        assert!(!StoreError::fatal("x").task_recoverable());
    }
}
