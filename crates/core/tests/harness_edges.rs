//! Edge-case tests for the harness and checker that the mainline FS suites
//! do not isolate: weak-mode comparison details, cap semantics, report
//! bookkeeping, and stop-on-first behaviour.

use chipmunk::{test_workload, TestConfig};
use ext4dax::Ext4DaxKind;
use vfs::{Op, OpenFlags, Workload};

fn w(name: &str, ops: Vec<Op>) -> Workload {
    Workload::new(name, ops)
}

#[test]
fn weak_mode_checks_only_the_synced_file() {
    // Two files dirty; fsync only one. A crash after the fsync may lose the
    // other file entirely — the weak check must not flag that.
    let kind = Ext4DaxKind::default();
    let wl = w(
        "selective",
        vec![
            Op::Creat { path: "/synced".into() },
            Op::Creat { path: "/unsynced".into() },
            Op::WritePath { path: "/synced".into(), off: 0, size: 500 },
            Op::WritePath { path: "/unsynced".into(), off: 0, size: 500 },
            Op::FsyncPath { path: "/synced".into() },
        ],
    );
    let out = test_workload(&kind, &wl, &TestConfig::default());
    assert!(out.reports.is_empty(), "{:#?}", out.reports);
    assert_eq!(out.crash_points, 1);
}

#[test]
fn weak_mode_sync_checks_everything() {
    let kind = Ext4DaxKind::default();
    let wl = w(
        "sync-all",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::WritePath { path: "/d/f".into(), off: 0, size: 100 },
            Op::Sync,
        ],
    );
    let out = test_workload(&kind, &wl, &TestConfig::default());
    assert!(out.reports.is_empty(), "{:#?}", out.reports);
}

#[test]
fn fsync_of_fresh_file_requires_parent_linkage() {
    // fsync on ext4 commits the whole journal, so the new file's dentry
    // must be durable too; the weak check verifies the file is reachable.
    let kind = Ext4DaxKind::default();
    let wl = w(
        "fsync-new",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::Creat { path: "/d/new".into() },
            Op::FsyncPath { path: "/d/new".into() },
        ],
    );
    let out = test_workload(&kind, &wl, &TestConfig::default());
    assert!(out.reports.is_empty(), "{:#?}", out.reports);
    assert!(out.crash_states >= 1);
}

#[test]
fn cap_reduces_states_but_full_set_always_checked() {
    use novafs::NovaKind;
    use vfs::fs::FsOptions;
    let kind = NovaKind { opts: FsOptions::fixed(), fortis: false };
    let wl = w(
        "states",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::WritePath { path: "/d/f".into(), off: 0, size: 12_288 },
        ],
    );
    let uncapped = test_workload(&kind, &wl, &TestConfig::default());
    let capped = test_workload(&kind, &wl, &TestConfig::default().with_cap(1));
    assert!(uncapped.reports.is_empty() && capped.reports.is_empty());
    assert!(
        capped.crash_states < uncapped.crash_states,
        "cap did not reduce states: {} vs {}",
        capped.crash_states,
        uncapped.crash_states
    );
    // Crash points are placement-only and unaffected by the cap.
    assert_eq!(capped.crash_points, uncapped.crash_points);
}

#[test]
fn stop_on_first_halts_early() {
    use novafs::NovaKind;
    use vfs::{fs::FsOptions, BugId, BugSet};
    let kind = NovaKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B04])),
        fortis: false,
    };
    let wl = w(
        "early",
        vec![
            Op::Creat { path: "/a".into() },
            Op::Rename { old: "/a".into(), new: "/b".into() },
            Op::Creat { path: "/c".into() },
        ],
    );
    let all = test_workload(&kind, &wl, &TestConfig::default());
    let first = test_workload(
        &kind,
        &wl,
        &TestConfig { stop_on_first: true, ..TestConfig::default() },
    );
    assert!(all.found_bug() && first.found_bug());
    assert_eq!(first.reports.len(), 1);
    assert!(first.crash_states <= all.crash_states);
}

#[test]
fn duplicate_reports_are_suppressed_within_a_run() {
    use vfs::{fs::FsOptions, BugId, BugSet};
    use winefs::WineFsKind;
    // Bug 15 produces the same synchrony violation at several crash points;
    // the harness keeps one report per (op, violation) pair.
    let kind = WineFsKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B15])),
        strict: true,
    };
    let wl = w("dups", vec![Op::WritePath { path: "/f".into(), off: 0, size: 512 }]);
    let out = test_workload(&kind, &wl, &TestConfig::default());
    assert!(out.found_bug());
    let mut keyed: Vec<(usize, String)> = out
        .reports
        .iter()
        .map(|r| (r.op_seq, r.violation.detail().to_string()))
        .collect();
    let before = keyed.len();
    keyed.sort();
    keyed.dedup();
    assert_eq!(keyed.len(), before, "duplicate (op, detail) pairs survived");
}

#[test]
fn nonmutating_ops_host_no_crash_points() {
    let kind = Ext4DaxKind::default();
    let wl = w(
        "reads",
        vec![
            Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::CREAT_TRUNC },
            Op::Pwrite { slot: 0, off: 0, size: 64 },
            Op::Read { slot: 0, off: 0, len: 64 },
            Op::Fsync { slot: 0 },
            Op::Read { slot: 0, off: 0, len: 64 },
        ],
    );
    let out = test_workload(&kind, &wl, &TestConfig::default());
    assert!(out.reports.is_empty(), "{:#?}", out.reports);
    // Only the fsync creates a weak-mode crash point; the reads never do.
    assert_eq!(out.crash_points, 1);
}

#[test]
fn eadr_hides_pm_bugs_but_not_logic_bugs() {
    use novafs::NovaKind;
    use vfs::{fs::FsOptions, BugId, BugSet};
    let eadr = TestConfig { eadr: true, ..TestConfig::default() };
    let adr = TestConfig::default();

    // Bug 2 (PM: inode never flushed): visible under ADR, gone under eADR —
    // persistent caches make the missing flush irrelevant.
    let pm_kind = NovaKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B02])),
        fortis: false,
    };
    let wl = w("pm", vec![Op::Mkdir { path: "/d".into() }]);
    assert!(test_workload(&pm_kind, &wl, &adr).found_bug(), "B02 must show under ADR");
    let out = test_workload(&pm_kind, &wl, &eadr);
    assert!(!out.found_bug(), "B02 must vanish under eADR: {:#?}", out.reports);

    // Bug 4 (logic: in-place rename invalidation): visible under both.
    let logic_kind = NovaKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B04])),
        fortis: false,
    };
    let wl = w(
        "logic",
        vec![
            Op::Creat { path: "/a".into() },
            Op::Rename { old: "/a".into(), new: "/b".into() },
        ],
    );
    assert!(test_workload(&logic_kind, &wl, &adr).found_bug());
    assert!(
        test_workload(&logic_kind, &wl, &eadr).found_bug(),
        "B04 must persist under eADR"
    );
}

#[test]
fn subset_order_changes_cost_not_outcome() {
    use novafs::NovaKind;
    use vfs::{fs::FsOptions, BugId, BugSet};
    // Observation 7 ablation: large-first enumeration visits the same
    // subsets in a different order, so without stop-on-first the outcome
    // AND the total cost are identical; with stop-on-first only the cost
    // may differ (the aggregate effect is measured by `bench --bin
    // ablation`, not per-workload).
    let kind = NovaKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B04])),
        fortis: false,
    };
    let wl = w(
        "order",
        vec![
            Op::Creat { path: "/a".into() },
            Op::Rename { old: "/a".into(), new: "/b".into() },
        ],
    );
    let small = test_workload(&kind, &wl, &TestConfig::default());
    let large = test_workload(
        &kind,
        &wl,
        &TestConfig { large_first_subsets: true, ..TestConfig::default() },
    );
    assert!(small.found_bug() && large.found_bug());
    assert_eq!(small.crash_states, large.crash_states);
    assert_eq!(small.crash_points, large.crash_points);
    // Stop-on-first still finds it under both orders.
    let early = TestConfig { stop_on_first: true, large_first_subsets: true, ..TestConfig::default() };
    assert!(test_workload(&kind, &wl, &early).found_bug());
}

#[test]
fn eadr_fixed_filesystems_stay_clean() {
    use novafs::NovaKind;
    use vfs::fs::FsOptions;
    let eadr = TestConfig { eadr: true, ..TestConfig::default() };
    let kind = NovaKind { opts: FsOptions::fixed(), fortis: false };
    let wl = w(
        "clean",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::WritePath { path: "/d/f".into(), off: 0, size: 3000 },
            Op::Rename { old: "/d/f".into(), new: "/g".into() },
            Op::Unlink { path: "/g".into() },
        ],
    );
    let out = test_workload(&kind, &wl, &eadr);
    assert!(out.reports.is_empty(), "{:#?}", out.reports);
    assert!(out.crash_states > 0);
}
