//! Functional, crash, and per-bug tests for the WineFS analogue.

use chipmunk::{test_workload, TestConfig};
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet, FsError, Op, OpenFlags, Workload,
};
use winefs::{WineFs, WineFsKind};

const DEV: u64 = 4 * 1024 * 1024;

fn fixed_kind() -> WineFsKind {
    WineFsKind { opts: FsOptions::fixed(), strict: true }
}

fn kind_with(bugs: &[BugId]) -> WineFsKind {
    WineFsKind { opts: FsOptions::with_bugs(BugSet::only(bugs)), strict: true }
}

fn fresh(kind: &WineFsKind) -> WineFs<PmDevice> {
    kind.mkfs(PmDevice::new(DEV)).unwrap()
}

fn crash_and_remount(kind: &WineFsKind, fs: WineFs<PmDevice>) -> Result<WineFs<PmDevice>, FsError> {
    let img = fs.into_device().persistent_image().to_vec();
    kind.mount(PmDevice::from_image(img))
}

#[test]
fn roundtrip_and_synchrony() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[3u8; 9000]).unwrap();
    fs.close(fd).unwrap();
    fs.link("/d/f", "/g").unwrap();
    fs.truncate("/d/f", 100).unwrap();
    let fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.read_file("/d/f").unwrap(), vec![3u8; 100]);
    assert_eq!(fs.stat("/g").unwrap().nlink, 2);
}

#[test]
fn strict_writes_replace_blocks_atomically() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[1u8; 5000]).unwrap();
    fs.pwrite(fd, 100, &[2u8; 300]).unwrap();
    fs.close(fd).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..100], &[1u8; 100][..]);
    assert_eq!(&data[100..400], &[2u8; 300][..]);
    assert_eq!(&data[400..5000], &[1u8; 4600][..]);
}

#[test]
fn per_cpu_operations_work() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    for cpu in 0..4 {
        fs.set_cpu(cpu);
        fs.creat(&format!("/f{cpu}")).unwrap();
    }
    let fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.readdir("/").unwrap().len(), 4);
}

#[test]
fn aligned_run_allocation() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    // Multi-block write goes through the aligned allocator.
    fs.pwrite(fd, 0, &vec![7u8; 16384]).unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.stat("/f").unwrap().blocks, 4);
    assert_eq!(fs.read_file("/f").unwrap(), vec![7u8; 16384]);
}

fn wl(name: &str, ops: Vec<Op>) -> Workload {
    Workload::new(name, ops)
}

#[test]
fn fixed_winefs_passes_core_workloads() {
    let kind = fixed_kind();
    let workloads = vec![
        wl("creat", vec![Op::Creat { path: "/A".into() }]),
        wl(
            "overwrite-aligned",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
                Op::WritePath { path: "/f".into(), off: 256, size: 512 },
            ],
        ),
        wl(
            "unaligned-write",
            // 1000 % 8 == 0 is false for 1003: exercises the tail path the
            // fixed code must still handle atomically.
            vec![Op::WritePath { path: "/f".into(), off: 0, size: 1003 }],
        ),
        wl(
            "rename-cross",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/a".into() },
                Op::Rename { old: "/d/a".into(), new: "/b".into() },
            ],
        ),
        wl(
            "truncate",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
                Op::Truncate { path: "/f".into(), size: 100 },
            ],
        ),
        wl(
            "multi-cpu",
            vec![
                Op::SetCpu { cpu: 1 },
                Op::Creat { path: "/f".into() },
                Op::SetCpu { cpu: 2 },
                Op::Link { old: "/f".into(), new: "/g".into() },
                Op::SetCpu { cpu: 3 },
                Op::Unlink { path: "/f".into() },
            ],
        ),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed WineFS violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        assert!(out.crash_states > 0);
    }
}

#[test]
fn bug15_commit_not_fenced() {
    let kind = kind_with(&[BugId::B15]);
    let w = wl("b15", vec![Op::WritePath { path: "/f".into(), off: 0, size: 1024 }]);
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"),
        "bug 15 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B15));
}

#[test]
fn bug18_nt_tail_data_loss() {
    let kind = kind_with(&[BugId::B18]);
    let w = wl("b18", vec![Op::WritePath { path: "/f".into(), off: 0, size: 1000 }]);
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"),
        "bug 18 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B18));
}

#[test]
fn bug19_needs_nonzero_cpu() {
    let kind = kind_with(&[BugId::B19]);
    // On CPU 0 the misindexed journal lookup happens to be right: no bug.
    let w0 = wl(
        "b19-cpu0",
        vec![Op::Creat { path: "/f".into() }, Op::Unlink { path: "/f".into() }],
    );
    let out0 = test_workload(&kind, &w0, &TestConfig::default());
    assert!(
        out0.reports.is_empty(),
        "bug 19 fired on cpu 0: {:#?}",
        out0.reports
    );
    // On CPU 2 the journal is never recovered: half-applied transactions
    // survive.
    let w2 = wl(
        "b19-cpu2",
        vec![
            Op::SetCpu { cpu: 2 },
            Op::Creat { path: "/f".into() },
            Op::Link { old: "/f".into(), new: "/g".into() },
            Op::Unlink { path: "/f".into() },
        ],
    );
    let out2 = test_workload(&kind, &w2, &TestConfig::default());
    assert!(out2.found_bug(), "bug 19 not detected on cpu 2");
    assert!(out2.traced_bugs.contains(&BugId::B19));
}

#[test]
fn bug20_unaligned_write_not_atomic() {
    let kind = kind_with(&[BugId::B20]);
    // Aligned writes stay atomic.
    let wa = wl(
        "b20-aligned",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
            Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
        ],
    );
    let outa = test_workload(&kind, &wa, &TestConfig::default());
    assert!(outa.reports.is_empty(), "bug 20 fired on aligned write: {:#?}", outa.reports);
    // A non-8-byte-aligned overwrite tears.
    let wu = wl(
        "b20-unaligned",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
            Op::WritePath { path: "/f".into(), off: 0, size: 1003 },
        ],
    );
    let outu = test_workload(&kind, &wu, &TestConfig::default());
    assert!(
        outu.reports.iter().any(|r| matches!(
            r.violation.class(),
            "atomicity" | "synchrony"
        )),
        "bug 20 not detected: {:#?}",
        outu.reports
    );
    assert!(outu.traced_bugs.contains(&BugId::B20));
}

#[test]
fn fixed_winefs_clean_on_trigger_workloads() {
    let kind = fixed_kind();
    let workloads = vec![
        wl("t15", vec![Op::WritePath { path: "/f".into(), off: 0, size: 1024 }]),
        wl("t18", vec![Op::WritePath { path: "/f".into(), off: 0, size: 1000 }]),
        wl(
            "t19",
            vec![
                Op::SetCpu { cpu: 2 },
                Op::Creat { path: "/f".into() },
                Op::Link { old: "/f".into(), new: "/g".into() },
                Op::Unlink { path: "/f".into() },
            ],
        ),
        wl(
            "t20",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
                Op::WritePath { path: "/f".into(), off: 0, size: 1003 },
            ],
        ),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed WineFS violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
    }
}
