#![warn(missing_docs)]

//! A WineFS-style PM file system (SOSP '21).
//!
//! WineFS derives from PMFS (the paper notes two bugs shared between them
//! through this ancestry) and adds scalability and alignment machinery:
//!
//! * **Per-CPU undo journals** — each system call runs its transaction in
//!   the journal of the CPU it executes on; recovery must roll back every
//!   journal (bug 19 indexes the array with a constant instead of the CPU
//!   id, so journals of CPUs > 0 are never replayed).
//! * **Strict mode** — data writes are made *atomic* by copy-on-write block
//!   swaps under the journal (bug 20: the non-8-byte-aligned tail of a
//!   write bypasses the atomic path and lands after the commit).
//! * An alignment-aware allocator that serves multi-block writes from
//!   naturally aligned runs (the hugepage-friendliness WineFS is named
//!   for, in miniature).
//!
//! Shared-ancestry bugs: 15 (the write path's final commit is not fenced —
//! the same missing-fence root cause as PMFS bug 14) and 18 (the
//! non-temporal copy helper leaves the partial tail cache line unflushed,
//! as PMFS bug 17).

pub mod fsimpl;
pub mod journal;
pub mod layout;

pub use fsimpl::WineFs;

use pmem::PmBackend;
use vfs::{
    fs::{FsKind, FsOptions, Guarantees},
    FsName, FsResult,
};

/// Factory for [`WineFs`] instances.
#[derive(Debug, Clone)]
pub struct WineFsKind {
    /// Construction options. `opts.cpus` controls the number of per-CPU
    /// journals (0 defaults to 4, the paper's WineFS VM configuration).
    pub opts: FsOptions,
    /// Strict mode: data writes are atomic (the configuration the paper
    /// tests).
    pub strict: bool,
}

impl Default for WineFsKind {
    fn default() -> Self {
        WineFsKind { opts: FsOptions::default(), strict: true }
    }
}

impl FsKind for WineFsKind {
    type Fs<D: PmBackend> = WineFs<D>;

    fn name(&self) -> FsName {
        FsName::WineFs
    }

    fn options(&self) -> &FsOptions {
        &self.opts
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        Self { opts, ..self.clone() }
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees { strong: true, atomic_data_writes: self.strict, data_checksums: false }
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        WineFs::mkfs(dev, &self.opts, self.strict)
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        WineFs::mount(dev, &self.opts, self.strict)
    }

    fn fork_fs<D: pmem::PmBackend + Clone>(&self, fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        Some(fs.clone())
    }
}
