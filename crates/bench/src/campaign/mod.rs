//! `campaignd`: a persistent, resumable, multi-process campaign service.
//!
//! The paper ran Chipmunk as a long-lived fleet (QEMU VMs on EC2 and
//! Chameleon, millions of crash states over days); the batch binaries in
//! this workspace lose every piece of campaign state — fuzzer corpus,
//! coverage, crash-state dedup keys, prefix-cache warmth — the moment a run
//! ends or dies. This module is the fleet analogue, three cooperating
//! layers:
//!
//! 1. **On-disk campaign store** ([`store::CampaignStore`]): a versioned
//!    directory holding the campaign spec, the fuzzer corpus (wire-form
//!    workloads), per-FS coverage and crash-state bitmaps, and discovered
//!    bug reports. Every document goes through
//!    [`crate::jsonout::write_atomic`] and is read back with the hand-rolled
//!    parser ([`crate::jsonout::parse`]), so a crash mid-write never
//!    corrupts the store.
//! 2. **Campaign journal** ([`store::TaskJournal`]): an append-only,
//!    per-task record of progress — one line per completed workload,
//!    prefixed by the serialized prefix-subtree plan signature. A SIGKILL'd
//!    campaign resumes at the exact workload index; the runner re-warms the
//!    `PrefixCache` by replaying the last journaled workload of the
//!    interrupted subtree group, so a resumed sweep re-earns exactly the
//!    per-workload `prefix_ops_saved` an uninterrupted run would have.
//! 3. **Multi-process worker fleet** ([`runner`], driven by the `campaignd`
//!    bin): N worker processes over a file-based work queue
//!    ([`queue::WorkQueue`]) with lease + heartbeat files; leases of crashed
//!    workers are reclaimed (liveness via `/proc/<pid>`, falling back to
//!    heartbeat age). Each worker runs the existing scheduling machinery
//!    ([`crate::plan_subtrees`] + `PrefixCache`) in-process; per-workload
//!    results are pure functions of their task (the invariant the
//!    `Scheduler` already pins), so the merged document is byte-identical
//!    to a serial run at any worker count, kill pattern, or thread count.

pub mod hostio;
pub mod queue;
pub mod runner;
pub mod store;
pub mod wire;

use chipmunk::TestConfig;
use vfs::{FsName, Workload};
use workloads::ace::{seq1, seq2};

use crate::jsonout::JVal;
use wire::{jval_u64, ju};

/// Fuzz workloads per campaign task — one fuzzer batch (see
/// `crate::FUZZ_BATCH`); fuzz tasks are sequentially dependent because
/// coverage feedback steers generation.
pub const FUZZ_TASK_LEN: u64 = crate::FUZZ_BATCH as u64;

/// Everything that defines a campaign's workload population and checking
/// knobs. Persisted in `store.json`; a pure function from spec to task plan
/// means every worker (and every resume) recomputes the identical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The file system under test (campaigns run it as-released).
    pub fs: FsName,
    /// How many seq-1 ACE workloads to take (`0` = all).
    pub seq1_take: usize,
    /// Sampling stride over seq-2 (`0` = skip seq-2 entirely).
    pub seq2_step: usize,
    /// Total fuzzer workloads.
    pub fuzz_budget: u64,
    /// Fuzzer RNG seed.
    pub fuzz_seed: u64,
    /// ACE workloads per task (the unit of work-queue claiming; also the
    /// batch the prefix-subtree plan is computed over).
    pub batch: usize,
    /// Replay cap for ACE checking (`None` = exhaustive).
    pub cap: Option<usize>,
    /// Size, in bits, of the persistent coverage / crash-state bitmaps.
    /// Must be a power of two.
    pub bitmap_bits: u64,
    /// Restrict the hunt to one injected Table 1 bug (`hunt --store` mode);
    /// `None` campaigns against the as-released bug set.
    pub bug: Option<u32>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            fs: FsName::Nova,
            seq1_take: 0,
            seq2_step: 3,
            fuzz_budget: 0,
            fuzz_seed: 0xca3b,
            batch: 64,
            cap: Some(2),
            bitmap_bits: 1 << 20,
            bug: None,
        }
    }
}

/// One claimable unit of campaign work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// ACE workloads `start..start + len` of the spec's ACE population.
    Ace {
        /// First ACE workload index.
        start: usize,
        /// Number of workloads in this task.
        len: usize,
    },
    /// The `index`-th fuzzer batch. Claimable only once batch `index - 1`
    /// has a committed result (generation replays its predecessors).
    Fuzz {
        /// Fuzzer batch ordinal.
        index: u64,
    },
}

impl CampaignSpec {
    /// The ACE workload population, in canonical order (seq-1 then sampled
    /// seq-2). Cheap enough for every worker to recompute.
    pub fn ace_workloads(&self) -> Vec<Workload> {
        let mode = crate::mode_for(self.fs);
        let mut ws = seq1(mode);
        if self.seq1_take > 0 {
            ws.truncate(self.seq1_take);
        }
        if self.seq2_step > 0 {
            ws.extend(seq2(mode).step_by(self.seq2_step));
        }
        ws
    }

    /// Number of ACE tasks.
    pub fn ace_tasks(&self) -> usize {
        self.ace_workloads().len().div_ceil(self.batch.max(1))
    }

    /// Number of fuzz tasks.
    pub fn fuzz_tasks(&self) -> usize {
        (self.fuzz_budget.div_ceil(FUZZ_TASK_LEN)) as usize
    }

    /// Total task count. Task ids `0..ace_tasks()` are ACE; the rest fuzz.
    pub fn total_tasks(&self) -> usize {
        self.ace_tasks() + self.fuzz_tasks()
    }

    /// What task `id` is (`id < total_tasks()`).
    pub fn task_kind(&self, id: usize, ace_total: usize) -> TaskKind {
        let ace_tasks = ace_total.div_ceil(self.batch.max(1));
        if id < ace_tasks {
            let start = id * self.batch;
            TaskKind::Ace { start, len: self.batch.min(ace_total - start) }
        } else {
            TaskKind::Fuzz { index: (id - ace_tasks) as u64 }
        }
    }

    /// Checking config for ACE tasks (full checking under the campaign cap,
    /// crash-state keys collected for the store's bitmaps).
    pub fn ace_cfg(&self, threads: usize) -> TestConfig {
        TestConfig { cap: self.cap, collect_state_keys: true, ..TestConfig::default() }
            .with_threads(threads)
    }

    /// Checking config for fuzz tasks (the paper's fuzzing config: cap of
    /// two, stop on first violation).
    pub fn fuzz_cfg(&self, threads: usize) -> TestConfig {
        TestConfig { collect_state_keys: true, ..TestConfig::fuzzing() }.with_threads(threads)
    }

    /// Serializes the spec for `store.json`.
    pub fn to_jval(&self) -> JVal {
        JVal::Obj(vec![
            ("fs".into(), JVal::Str(self.fs.to_string())),
            ("seq1_take".into(), ju(self.seq1_take as u64)),
            ("seq2_step".into(), ju(self.seq2_step as u64)),
            ("fuzz_budget".into(), ju(self.fuzz_budget)),
            ("fuzz_seed".into(), JVal::Str(format!("{:016x}", self.fuzz_seed))),
            ("batch".into(), ju(self.batch as u64)),
            (
                "cap".into(),
                match self.cap {
                    Some(c) => ju(c as u64),
                    None => JVal::Null,
                },
            ),
            ("bitmap_bits".into(), ju(self.bitmap_bits)),
            (
                "bug".into(),
                match self.bug {
                    Some(n) => ju(n as u64),
                    None => JVal::Null,
                },
            ),
        ])
    }

    /// Parses a spec back from its [`to_jval`](Self::to_jval) form.
    pub fn from_jval(v: &JVal) -> Result<Self, String> {
        let fs: FsName = v
            .get("fs")
            .and_then(JVal::as_str)
            .ok_or("spec: missing fs")?
            .parse()?;
        let cap = match v.get("cap") {
            Some(JVal::Null) | None => None,
            Some(c) => Some(c.as_u64().ok_or("spec: bad cap")? as usize),
        };
        let bug = match v.get("bug") {
            Some(JVal::Null) | None => None,
            Some(b) => Some(b.as_u64().ok_or("spec: bad bug")? as u32),
        };
        let seed_hex = v.get("fuzz_seed").and_then(JVal::as_str).ok_or("spec: missing fuzz_seed")?;
        let spec = CampaignSpec {
            fs,
            seq1_take: jval_u64(v, "seq1_take")? as usize,
            seq2_step: jval_u64(v, "seq2_step")? as usize,
            fuzz_budget: jval_u64(v, "fuzz_budget")?,
            fuzz_seed: u64::from_str_radix(seed_hex, 16)
                .map_err(|_| format!("spec: bad fuzz_seed {seed_hex:?}"))?,
            batch: jval_u64(v, "batch")?.max(1) as usize,
            cap,
            bitmap_bits: jval_u64(v, "bitmap_bits")?,
            bug,
        };
        if !spec.bitmap_bits.is_power_of_two() {
            return Err(format!("spec: bitmap_bits {} is not a power of two", spec.bitmap_bits));
        }
        if let Some(n) = spec.bug {
            if !vfs::bugs::bug_table().iter().any(|b| b.id.number() == n) {
                return Err(format!("spec: no bug #{n} in the Table 1 corpus"));
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_plans_tasks() {
        let spec = CampaignSpec {
            fs: FsName::Pmfs,
            seq1_take: 10,
            seq2_step: 0,
            fuzz_budget: 20,
            fuzz_seed: 0xdead_beef_cafe_f00d,
            batch: 4,
            cap: None,
            bitmap_bits: 1 << 12,
            bug: Some(14),
        };
        let back = CampaignSpec::from_jval(&crate::jsonout::parse(&spec.to_jval().render()).unwrap())
            .unwrap();
        assert_eq!(back, spec);

        assert_eq!(spec.ace_workloads().len(), 10);
        assert_eq!(spec.ace_tasks(), 3, "10 workloads in tasks of 4");
        assert_eq!(spec.fuzz_tasks(), 3, "20 fuzz workloads in batches of 8");
        assert_eq!(spec.total_tasks(), 6);
        assert_eq!(spec.task_kind(0, 10), TaskKind::Ace { start: 0, len: 4 });
        assert_eq!(spec.task_kind(2, 10), TaskKind::Ace { start: 8, len: 2 });
        assert_eq!(spec.task_kind(3, 10), TaskKind::Fuzz { index: 0 });
        assert_eq!(spec.task_kind(5, 10), TaskKind::Fuzz { index: 2 });
    }

    #[test]
    fn spec_rejects_bad_bitmap_and_fs() {
        let mut v = crate::jsonout::parse(&CampaignSpec::default().to_jval().render()).unwrap();
        if let JVal::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "bitmap_bits" {
                    *val = JVal::Num(1000.0);
                }
            }
        }
        assert!(CampaignSpec::from_jval(&v).unwrap_err().contains("power of two"));
        assert!(CampaignSpec::from_jval(&JVal::Obj(vec![(
            "fs".into(),
            JVal::Str("NotAFs".into())
        )]))
        .is_err());
    }
}
