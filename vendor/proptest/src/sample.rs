//! `sample::select` — uniform choice from a fixed list.

use rand::Rng;

use crate::{strategy::Strategy, test_runner::TestRng};

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.choices.len());
        self.choices[i].clone()
    }
}

/// Uniformly selects one of `choices`. Panics on an empty list.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "sample::select on an empty list");
    Select { choices }
}
