//! The paper's end-to-end methodology, reproduced: run Chipmunk against the
//! *as-released* file systems, triage the reports, attribute each cluster to
//! a root cause, "fix" it (disable the injected bug), and repeat until the
//! suite runs clean — counting unique bugs by unique fixes, exactly as §4.4
//! does ("the number of bugs is based on the number of unique fixes
//! required to patch all of the bugs").
//!
//! ```sh
//! cargo run --release -p bench --bin campaign [threads]
//! cargo run --release -p bench --bin campaign -- [threads] --store <dir>
//! cargo run --release -p bench --bin campaign -- [threads] --resume <dir>
//! ```
//!
//! `threads` (default 1) shards crash-state checking and workload batches;
//! rounds, clusters, and fixes are identical for any value.
//!
//! With `--store <dir>`, the sweep runs through the persistent campaign
//! store instead (see `bench::campaign`): one as-released sweep of the
//! default campaign spec, journaled and resumable — rerunning after a kill
//! (or with `--resume <dir>`) picks up at the exact workload index and
//! triages the merged results identically. Unknown flags, malformed
//! numbers, and extra arguments are fatal (exit 2).

use bench::campaign::{
    runner::{self, RunOpts},
    store::CampaignStore,
    CampaignSpec,
};
use bench::{dispatch, mode_for, run_batch, WithKind, STRONG_SYSTEMS};
use chipmunk::{exemplar, report::triage, BugReport, TestConfig};
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet, FsName, Workload,
};
use workloads::ace::{seq1, seq2};

fn usage() -> ! {
    eprintln!("usage: campaign [threads] [--store <dir> | --resume <dir>]");
    std::process::exit(2);
}

struct Iteration<'a> {
    cfg: &'a TestConfig,
}

impl WithKind for Iteration<'_> {
    type Out = (Vec<BugReport>, std::collections::BTreeSet<BugId>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let mode = mode_for(kind.name());
        let mut reports = Vec::new();
        let mut traced = std::collections::BTreeSet::new();
        let mut workloads = 0u64;
        let mut dedup = 0u64;
        let threads = self.cfg.threads.max(1);
        let batch_len = if threads <= 1 { 1 } else { threads * 2 };
        let mut stream = seq1(mode).into_iter().chain(seq2(mode).step_by(3));
        'outer: loop {
            let batch: Vec<Workload> = stream.by_ref().take(batch_len).collect();
            if batch.is_empty() {
                break;
            }
            for (out, _cov) in run_batch(&kind, &batch, self.cfg) {
                workloads += 1;
                dedup += out.dedup_hits;
                if !out.reports.is_empty() {
                    traced.extend(out.traced_bugs.iter().copied());
                    reports.extend(out.reports);
                }
                if reports.len() >= 600 {
                    break 'outer; // plenty for one triage round
                }
            }
        }
        (reports, traced, workloads, dedup)
    }
}

fn main() {
    let mut pos: Vec<String> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut resume_dir: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                store_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--store needs a value");
                    usage()
                }));
            }
            "--resume" => {
                resume_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--resume needs a value");
                    usage()
                }));
            }
            s if s.starts_with('-') => {
                eprintln!("unknown flag {s:?}");
                usage();
            }
            _ => pos.push(a),
        }
    }
    if pos.len() > 1 {
        eprintln!("unexpected argument {:?}", pos[1]);
        usage();
    }
    let threads: usize = match pos.first() {
        None => 1,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad thread count: {s:?}");
            usage()
        }),
    };
    if store_dir.is_some() && resume_dir.is_some() {
        eprintln!("--store and --resume are mutually exclusive");
        usage();
    }
    if let Some(dir) = store_dir.or(resume_dir.clone()) {
        run_store_campaign(&dir, resume_dir.is_some(), threads);
        return;
    }

    let cfg = TestConfig { cap: Some(2), ..TestConfig::default() }.with_threads(threads);
    println!("threads = {threads}");
    let mut fixed_groups: std::collections::BTreeSet<u32> = Default::default();
    let (mut dedup_total, mut workloads_total) = (0u64, 0u64);

    println!("iterative find → triage → fix → re-run campaign (ACE seq-1 + sampled seq-2)\n");
    for fs in STRONG_SYSTEMS {
        let mut bugs = BugSet::as_released();
        // Only this file system's bugs matter for its run; the others are
        // irrelevant to the dispatched kind.
        let mut round = 0;
        loop {
            round += 1;
            let (reports, traced, workloads, dedup) =
                dispatch(fs, FsOptions::with_bugs(bugs), Iteration { cfg: &cfg });
            dedup_total += dedup;
            workloads_total += workloads;
            if reports.is_empty() {
                println!("{fs}: clean after {round} rounds ({workloads} workloads in the last)");
                break;
            }
            let clusters = triage(&reports, 0.4);
            // "Fix" the bugs whose injected code ran during the failing
            // workloads (the developer diagnoses the cluster back to its
            // root cause; the trace is our stand-in for that diagnosis).
            // NOVA-Fortis inherits all of NOVA's code, so NOVA bugs are
            // among its fixable causes.
            let relevant: Vec<BugId> = traced
                .iter()
                .copied()
                .filter(|b| {
                    b.info().fs == fs || (fs == FsName::NovaFortis && b.info().fs == FsName::Nova)
                })
                .collect();
            println!(
                "{fs}: round {round}: {} reports in {} clusters -> fixing {:?}",
                reports.len(),
                clusters.len(),
                relevant.iter().map(|b| b.number()).collect::<Vec<_>>()
            );
            // One minimal exemplar per cluster (fewest ops, then smallest
            // replayed subset): the report a developer would debug first,
            // and the one `hunt --shrink` would package as the bundle.
            for cluster in &clusters {
                let e = &reports[exemplar(&reports, cluster)];
                println!(
                    "    [{} x{}] {} | {} @ op {} | {} in subset",
                    e.violation.class(),
                    cluster.len(),
                    e.workload,
                    e.op_desc,
                    e.op_seq,
                    e.subset_ids.len(),
                );
            }
            if relevant.is_empty() {
                println!("{fs}: reports without traced cause — stopping");
                break;
            }
            for b in relevant {
                bugs = bugs.without(b);
                fixed_groups.insert(b.info().fix_group);
            }
        }
    }

    // The four fuzzer-only bugs never fall to ACE; account for them
    // separately so the tally matches Table 1's frontier.
    println!(
        "\n{workloads_total} workloads tested; {dedup_total} crash states served from the \
         dedup cache"
    );
    let ace_only = fixed_groups.len();
    println!(
        "\nunique fixes applied by the ACE campaign: {ace_only} (paper: ACE finds 19 of 23; \
         the remaining {} need the fuzzer — see `table1`)",
        23 - ace_only.min(23)
    );
    let _ = FsName::Ext4Dax;
}

/// The store-backed mode: one resumable as-released sweep through the
/// persistent campaign store, then triage over the merged results. Re-runs
/// (and `--resume`) skip every journaled workload and re-warm the prefix
/// cache, so a killed sweep continues instead of starting over. Store
/// errors exit with their mapped codes (2 corrupt, 3 degraded/out of
/// space, 1 other); the degraded path still prints a read-only triage of
/// what survived before exiting.
fn run_store_campaign(dir: &str, resume: bool, threads: usize) {
    let path = std::path::Path::new(dir);
    let store = if resume {
        CampaignStore::open(path)
    } else {
        CampaignStore::open_or_init(path, &CampaignSpec::default())
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    });
    println!(
        "store campaign at {dir} | fs {} | {} tasks | threads = {threads}",
        store.spec.fs,
        store.spec.total_tasks(),
    );
    let opts = RunOpts { threads, ..RunOpts::default() };
    let (sum, merged) = runner::run_and_merge(&store, &opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        if matches!(e, bench::campaign::hostio::StoreError::Exhausted { .. }) {
            let audit = runner::merge_read_only(&store);
            eprintln!(
                "degraded store triage (read-only): {} tasks committed ({} workloads, \
                 {} reports); {} corrupt, {} missing",
                audit.committed,
                audit.workloads,
                audit.reports,
                audit.corrupt.len(),
                audit.missing.len(),
            );
        }
        std::process::exit(e.exit_code());
    });
    runner::write_summary(&store, &opts, &sum);
    println!(
        "{} workloads ({} resumed from the journal, {} rewarm runs) | {} reports | \
         prefix ops saved {} | fingerprint {:016x}",
        merged.workloads,
        sum.journal_workloads_replayed,
        sum.rewarm_runs,
        merged.reports,
        merged.totals[5],
        merged.fingerprint,
    );

    // Triage the merged results exactly like a live round would — capped at
    // the same 600 reports a round feeds triage (it is quadratic).
    let mut reports: Vec<BugReport> = (0..store.spec.total_tasks())
        .filter_map(|id| store.load_result(id).ok().flatten())
        .flatten()
        .flat_map(|r| r.reports.into_iter().map(|w| w.to_bug_report()).collect::<Vec<_>>())
        .collect();
    if reports.is_empty() {
        println!("clean: no violations in the merged campaign");
        return;
    }
    let total_reports = reports.len();
    reports.truncate(600);
    let clusters = triage(&reports, 0.4);
    println!("{total_reports} reports ({} triaged) in {} clusters:", reports.len(), clusters.len());
    for cluster in &clusters {
        let e = &reports[exemplar(&reports, cluster)];
        println!(
            "    [{} x{}] {} | {} @ op {} | {} in subset",
            e.violation.class(),
            cluster.len(),
            e.workload,
            e.op_desc,
            e.op_seq,
            e.subset_ids.len(),
        );
    }
}
