//! Regenerates the Observation 2 fix-cost measurements (simulated PM time):
//!
//! * a microbenchmark that repeatedly overwrites a file using `rename` runs
//!   ~25% slower once rename-atomicity bugs 4 and 5 are fixed (the fix
//!   journals more data);
//! * a metadata-intensive git-checkout-like benchmark shows negligible
//!   (<1%) overhead from the same fix;
//! * fixing bug 6 makes a repeated-`link` microbenchmark ~7% *faster* (the
//!   in-place path paid a validating read from media).
//!
//! Wall-clock versions live in `cargo bench -p bench --bench fixcost`.
//!
//! ```sh
//! cargo run --release -p bench --bin fixcost [threads]
//! ```
//!
//! `threads` (default 1) only affects the trailing per-phase harness-cost
//! probe; the fix-cost numbers are simulated time and thread-independent.

use chipmunk::{test_workload, TestConfig};
use novafs::{Nova, NovaKind};
use workloads::ace::{seq2, AceMode};
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet,
};

const DEV: u64 = 16 * 1024 * 1024;

fn nova(bugs: BugSet) -> Nova<PmDevice> {
    NovaKind { opts: FsOptions::with_bugs(bugs), fortis: false }
        .mkfs(PmDevice::new(DEV))
        .expect("mkfs")
}

/// Repeatedly overwrite a file via the write-temp-then-rename pattern the
/// paper's intro motivates (emacs/vim-style atomic saves).
fn rename_overwrite_ns(bugs: BugSet, iters: u64) -> u64 {
    let mut fs = nova(bugs);
    fs.creat("/target").expect("creat");
    let start = fs.sim_cost().ns;
    for i in 0..iters {
        let tmp = "/target.tmp";
        let fd = fs.open(tmp, vfs::OpenFlags::CREAT_TRUNC).expect("open");
        fs.pwrite(fd, 0, &vfs::workload::fill_data(i as usize, 0, 128)).expect("pwrite");
        fs.close(fd).expect("close");
        fs.rename(tmp, "/target").expect("rename");
    }
    fs.sim_cost().ns - start
}

/// Repeatedly create (and remove) a hard link to one file.
fn link_ns(bugs: BugSet, iters: u64) -> u64 {
    let mut fs = nova(bugs);
    fs.creat("/f").expect("creat");
    let start = fs.sim_cost().ns;
    for i in 0..iters {
        let name = format!("/l{}", i % 8);
        fs.link("/f", &name).expect("link");
        fs.unlink(&name).expect("unlink");
    }
    fs.sim_cost().ns - start
}

/// A git-checkout-like metadata storm: create a tree of files, then "switch
/// branches" by rewriting most of them in place and renaming a few.
fn checkout_ns(bugs: BugSet, rounds: u64) -> u64 {
    let mut fs = nova(bugs);
    for d in 0..4 {
        fs.mkdir(&format!("/src{d}")).expect("mkdir");
        for f in 0..12 {
            fs.creat(&format!("/src{d}/file{f}")).expect("creat");
        }
    }
    let start = fs.sim_cost().ns;
    for r in 0..rounds {
        for d in 0..4 {
            for f in 0..12 {
                let p = format!("/src{d}/file{f}");
                let fd = fs.open(&p, vfs::OpenFlags::RDWR).expect("open");
                fs.pwrite(fd, 0, &vfs::workload::fill_data((r * 48 + d * 12 + f) as usize, 0, 512))
                    .expect("pwrite");
                fs.close(fd).expect("close");
            }
        }
        // A couple of renames per "checkout" — the realistic ratio that
        // makes the fix cost vanish in the noise.
        fs.rename("/src0/file0", "/src0/renamed").expect("rename");
        fs.rename("/src0/renamed", "/src0/file0").expect("rename back");
    }
    fs.sim_cost().ns - start
}

fn report(label: &str, buggy: u64, fixed: u64, paper: &str) {
    let delta = (fixed as f64 - buggy as f64) / buggy as f64 * 100.0;
    println!(
        "{label:<28} buggy {:>12} ns   fixed {:>12} ns   fixed is {:+.1}%   ({paper})",
        buggy, fixed, delta
    );
}

/// The rename system call alone (ping-pong between two names, no victim
/// replacement, no data writes) — an upper bound on the per-call fix cost.
fn rename_only_ns(bugs: BugSet, iters: u64) -> u64 {
    let mut fs = nova(bugs);
    fs.creat("/a").expect("creat");
    let start = fs.sim_cost().ns;
    for i in 0..iters {
        if i % 2 == 0 {
            fs.rename("/a", "/b").expect("rename");
        } else {
            fs.rename("/b", "/a").expect("rename");
        }
    }
    fs.sim_cost().ns - start
}

fn main() {
    println!("Observation 2 fix-cost benchmarks (simulated Optane time, deterministic)\n");

    let rename_bugs = BugSet::only(&[BugId::B04, BugId::B05]);
    report(
        "rename-overwrite x2000",
        rename_overwrite_ns(rename_bugs, 2000),
        rename_overwrite_ns(BugSet::fixed(), 2000),
        "paper: fixed ~ +25% on its overwrite loop",
    );
    report(
        "rename syscall only x2000",
        rename_only_ns(rename_bugs, 2000),
        rename_only_ns(BugSet::fixed(), 2000),
        "upper bound: the fix cost on rename itself",
    );

    let link_bugs = BugSet::only(&[BugId::B06]);
    report(
        "link/unlink x2000",
        link_ns(link_bugs, 2000),
        link_ns(BugSet::fixed(), 2000),
        "paper: fixed ~ -7% (faster)",
    );

    report(
        "git-checkout-like x40",
        checkout_ns(rename_bugs, 40),
        checkout_ns(BugSet::fixed(), 40),
        "paper: <1%",
    );

    // Where the harness wall-clock actually goes: one representative ACE
    // seq-2 workload, split into oracle / record / check phases. The check
    // phase dominates and is the one `TestConfig::threads` shards.
    let threads: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let cfg = TestConfig::default().with_threads(threads);
    let kind = NovaKind { opts: FsOptions::fixed(), fortis: false };
    let w = seq2(AceMode::Strong).nth(10).expect("seq-2 workload");
    let out = test_workload(&kind, &w, &cfg);
    println!(
        "\nper-phase harness cost ({}, threads={threads}): oracle {:.2?}  record {:.2?}  \
         check {:.2?}  ({} crash states, {} dedup hits)",
        w.name, out.timing.oracle, out.timing.record, out.timing.check, out.crash_states,
        out.dedup_hits
    );
}
