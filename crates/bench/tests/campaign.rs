//! End-to-end witnesses for the `campaignd` subsystem: kill-and-resume
//! determinism (the merged document is byte-identical however often and
//! wherever a campaign dies), warm-resume (a resumed sweep re-earns the
//! serial `prefix_ops_saved`), real SIGKILL'd worker processes with lease
//! reclamation, and strict argument parsing for the grown binaries.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use bench::campaign::{
    runner::{self, RunOpts},
    store::CampaignStore,
    CampaignSpec,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("chipmunk-camp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A campaign small enough to run in seconds but with several ACE tasks
/// (multi-workload subtree groups) and two dependent fuzz batches.
fn small_spec() -> CampaignSpec {
    CampaignSpec {
        seq1_take: 12,
        seq2_step: 0,
        fuzz_budget: 10,
        batch: 6,
        bitmap_bits: 1 << 12,
        ..CampaignSpec::default()
    }
}

fn opts(threads: usize) -> RunOpts {
    RunOpts { threads, ttl: Duration::from_secs(3600), ..RunOpts::default() }
}

/// Runs a fresh campaign to completion and returns the merged document.
fn baseline(dir: &Path, threads: usize) -> (String, [u64; 20]) {
    let store = CampaignStore::open_or_init(dir, &small_spec()).unwrap();
    let sum = runner::run_worker(&store, &opts(threads)).unwrap();
    assert!(!sum.interrupted);
    let merged = runner::merge(&store).unwrap();
    (merged.doc, merged.totals)
}

/// Kill-and-resume determinism: kill at a spread of journal checkpoints
/// (including mid-ACE-group and mid-fuzz-batch), resume, and require the
/// merged document byte-identical to the uninterrupted run — at threads 1
/// and 4. Byte identity subsumes the warm-resume acceptance bar: the
/// resumed campaign re-earns exactly 100% (≥ 90%) of the serial
/// `prefix_ops_saved`, not a cold-cache zero.
#[test]
fn kill_and_resume_merge_is_byte_identical() {
    let base_dir = tmpdir("base");
    let (want_doc, want_totals) = baseline(&base_dir, 1);
    assert!(want_totals[5] > 0, "baseline must exercise the prefix cache");

    for threads in [1usize, 4] {
        // Checkpoint indices chosen to land in distinct places: inside the
        // first ACE batch (1, 4), inside the second (7), and inside each of
        // the two fuzz batches (14, 19) — all off task boundaries, so the
        // resume always has a partial journal to splice. The spec totals 22
        // checkpoints (12 ACE + 10 fuzz).
        for kill_at in [1u64, 4, 7, 14, 19] {
            let dir = tmpdir(&format!("kill-{threads}-{kill_at}"));
            let store = CampaignStore::open_or_init(&dir, &small_spec()).unwrap();
            let mut killed = opts(threads);
            killed.kill_after_checkpoints = Some(kill_at);
            let sum = runner::run_worker(&store, &killed).unwrap();
            assert!(sum.interrupted, "kill hook must fire at checkpoint {kill_at}");

            // Resume in the same process: the abandoned lease is reclaimed
            // via the self-pid staleness rule, exactly like a dead pid.
            let resumed = runner::run_worker(&store, &opts(threads)).unwrap();
            assert!(!resumed.interrupted);
            assert!(
                resumed.journal_workloads_replayed > 0,
                "journaled workloads must be spliced, not re-run (kill at {kill_at})"
            );

            let merged = runner::merge(&store).unwrap();
            assert_eq!(
                merged.totals, want_totals,
                "totals diverged (threads {threads}, kill at {kill_at})"
            );
            assert!(
                merged.doc == want_doc,
                "merged document not byte-identical (threads {threads}, kill at {kill_at})"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// Multi-worker fleets (in-process workers racing over the same store)
/// produce the identical document, and a double kill (kill, resume, kill
/// again, resume) still converges.
#[test]
fn parallel_workers_and_repeated_kills_converge() {
    let base_dir = tmpdir("base2");
    let (want_doc, _) = baseline(&base_dir, 1);

    // Two threads racing over the store as independent "workers".
    let dir = tmpdir("fleet");
    let store = CampaignStore::open_or_init(&dir, &small_spec()).unwrap();
    std::thread::scope(|sc| {
        for w in 0..2 {
            let store = &store;
            sc.spawn(move || {
                let o = RunOpts {
                    worker_id: format!("t{w}"),
                    ttl: Duration::from_secs(3600),
                    ..RunOpts::default()
                };
                runner::run_worker(store, &o).unwrap();
            });
        }
    });
    assert_eq!(runner::merge(&store).unwrap().doc, want_doc);
    let _ = std::fs::remove_dir_all(&dir);

    // Kill twice at different checkpoints, then finish.
    let dir = tmpdir("twice");
    let store = CampaignStore::open_or_init(&dir, &small_spec()).unwrap();
    for kill_at in [2u64, 5] {
        let mut o = opts(1);
        o.kill_after_checkpoints = Some(kill_at);
        assert!(runner::run_worker(&store, &o).unwrap().interrupted);
    }
    let sum = runner::run_worker(&store, &opts(1)).unwrap();
    assert!(sum.tasks_resumed >= 1, "second resume must splice the journal");
    assert_eq!(runner::merge(&store).unwrap().doc, want_doc);
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A real SIGKILL'd worker *process*: spawn `campaignd --worker`, kill it
/// mid-campaign, verify its lease is left behind, then let an in-process
/// worker reclaim it and finish — the merged document must match the
/// serial baseline, and no lease may survive completion.
#[test]
fn sigkilled_worker_process_is_reclaimed() {
    let base_dir = tmpdir("base3");
    let (want_doc, _) = baseline(&base_dir, 1);

    let dir = tmpdir("sigkill");
    let store = CampaignStore::open_or_init(&dir, &small_spec()).unwrap();
    // A long TTL proves reclamation runs on pid-liveness, not timeout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_campaignd"))
        .args(["--worker", "--store"])
        .arg(&dir)
        .args(["--ttl-ms", "3600000", "--worker-id", "doomed"])
        .spawn()
        .expect("spawn campaignd worker");
    // Let it claim a lease and journal some work, then SIGKILL it.
    let lease_dir = dir.join("leases");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let leased = std::fs::read_dir(&lease_dir)
            .map(|d| d.count())
            .unwrap_or(0);
        if leased > 0 && std::fs::read_dir(dir.join("journal")).map(|d| d.count()).unwrap_or(0) > 0
        {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "worker never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL the worker"); // kill() is SIGKILL on unix
    child.wait().unwrap();
    assert!(
        std::fs::read_dir(&lease_dir).unwrap().count() > 0,
        "the killed worker must leave its lease behind"
    );

    let sum = runner::run_worker(&store, &opts(1)).unwrap();
    assert!(!sum.interrupted);
    assert_eq!(
        std::fs::read_dir(&lease_dir).unwrap().count(),
        0,
        "all leases (including the dead worker's) must be reclaimed and released"
    );
    assert_eq!(runner::merge(&store).unwrap().doc, want_doc);
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `--die-after` hook aborts the worker process at a checkpoint
/// boundary (the CI smoke job's deterministic SIGKILL stand-in) and a
/// `--resume` coordinator finishes the campaign with identical output.
#[test]
fn die_after_worker_then_resume_coordinator() {
    let base_dir = tmpdir("base4");
    let (want_doc, _) = baseline(&base_dir, 1);

    let dir = tmpdir("dieafter");
    CampaignStore::open_or_init(&dir, &small_spec()).unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_campaignd"))
        .args(["--worker", "--store"])
        .arg(&dir)
        .args(["--ttl-ms", "3600000", "--worker-id", "doomed", "--die-after", "3"])
        .status()
        .expect("spawn campaignd worker");
    assert!(!status.success(), "--die-after must abort the process");

    let status = Command::new(env!("CARGO_BIN_EXE_campaignd"))
        .args(["--resume"])
        .arg(&dir)
        .args(["--workers", "2", "--ttl-ms", "3600000"])
        .status()
        .expect("spawn campaignd coordinator");
    assert!(status.success(), "resume coordinator must succeed");
    let doc = std::fs::read_to_string(dir.join("campaign.json")).unwrap();
    assert_eq!(doc, want_doc);
    assert!(dir.join("run.json").exists());
    assert!(dir.join("coverage/state.bits").exists());
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Strict argument parsing for the grown binaries: unknown flags, malformed
/// numbers, extra positionals, and contradictory modes all exit 2.
#[test]
fn grown_binaries_reject_bad_args_with_exit_2() {
    let cases: &[(&str, &[&str])] = &[
        (env!("CARGO_BIN_EXE_campaign"), &["--wat"]),
        (env!("CARGO_BIN_EXE_campaign"), &["two"]),
        (env!("CARGO_BIN_EXE_campaign"), &["1", "extra"]),
        (env!("CARGO_BIN_EXE_campaign"), &["--store", "/tmp/x", "--resume", "/tmp/y"]),
        (env!("CARGO_BIN_EXE_campaign"), &["--store"]),
        (env!("CARGO_BIN_EXE_figure3"), &["--wat"]),
        (env!("CARGO_BIN_EXE_figure3"), &["bogus"]),
        (env!("CARGO_BIN_EXE_figure3"), &["100", "notanum"]),
        (env!("CARGO_BIN_EXE_figure3"), &["100", "1", "nodedup", "extra"]),
        (env!("CARGO_BIN_EXE_campaignd"), &["--wat"]),
        (env!("CARGO_BIN_EXE_campaignd"), &[]),
        (env!("CARGO_BIN_EXE_campaignd"), &["--store", "/tmp/x", "--resume", "/tmp/y"]),
        (env!("CARGO_BIN_EXE_campaignd"), &["--resume", "/tmp/x", "--fs", "NOVA"]),
        (env!("CARGO_BIN_EXE_campaignd"), &["--store", "/tmp/x", "--die-after", "3"]),
        (env!("CARGO_BIN_EXE_campaignd"), &["--store", "/tmp/x", "--bitmap-bits", "1000"]),
        (env!("CARGO_BIN_EXE_campaignd"), &["--store", "/tmp/x", "--bug", "999"]),
        (env!("CARGO_BIN_EXE_hunt"), &["14", "--store", "/tmp/x", "--shrink"]),
        (env!("CARGO_BIN_EXE_hunt"), &["--store", "/tmp/x", "--resume", "/tmp/y"]),
        (env!("CARGO_BIN_EXE_hunt"), &["--resume", "/tmp/x", "1", "extra"]),
    ];
    for (bin, args) in cases {
        let out = Command::new(bin).args(*args).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{} {:?} must exit 2 (stderr: {})",
            bin,
            args,
            String::from_utf8_lossy(&out.stderr),
        );
    }
}
