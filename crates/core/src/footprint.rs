//! Read-footprint memoization for representative-state checking.
//!
//! The behavioral-signature layer ([`crate::crashgen::behavior_sig`])
//! collapses crash states whose *overlays* are provably
//! verdict-equivalent. This module collapses states along the complementary
//! axis: overlays that differ arbitrarily in bytes the check **never
//! reads**. During a full check of one state (the *recorder*) a
//! [`pmem::ReadTracker`] records the set of clean device words the mount +
//! walk + compare + probe pipeline consumed from the crash image. The check
//! is a deterministic function of that image, so by induction over its
//! execution trace any image agreeing with the recorder's on exactly those
//! words drives an identical execution — identical reads, identical
//! verdict. A later state at the same crash point whose projection over a
//! recorded footprint matches the recorder's therefore inherits the
//! recorder's (clean) verdict without being mounted.
//!
//! This is what makes the sweep sub-linear on the dominant crash-point
//! shape: metadata operations on log-structured PM file systems stage their
//! log entries *before* publishing a tail pointer, and recovery reads only
//! up to the published tail — so the many subsets that differ solely in
//! unpublished log bytes all project equally over the recorder's footprint.
//!
//! Only clean recorders produce entries (a violated or sandbox-retried
//! check never seeds a footprint), so a footprint match can only ever skip
//! a state *clean* — no bug is reported from an unchecked state, and a
//! violation always surfaces on a fully checked representative.

use std::collections::BTreeSet;

use crate::crashgen::PendingWrite;

/// Word granularity of a footprint (matches the tracker's): the 8-byte PM
/// atomicity unit. Finer than a cache line on purpose — recovery that reads
/// one inode field (e.g. a type tag) must not drag the field's still-pending
/// siblings in the same line into the footprint.
const WORD: u64 = pmem::WORD;

/// At most this many footprints are recorded per crash point: the first
/// [`FP_MAX_ENTRIES`] fully checked states that match no earlier entry.
/// Chosen small so the parallel path's eager recorder checks (which run
/// serially to keep plans thread-count-invariant) stay negligible.
pub(crate) const FP_MAX_ENTRIES: usize = 4;

/// Footprinting only engages at crash points with at least this many crash
/// states: a single-state point has no later state a recorded footprint
/// could ever skip, so tracking its one check is pure overhead.
pub(crate) const FP_MIN_STATES: usize = 2;

/// Footprints larger than this many words (256 KiB of image) are discarded
/// and recording stops for the point — projecting candidates over a huge
/// footprint would cost more than the checks it could save.
pub(crate) const FP_WORD_CAP: usize = 32768;

/// One recorded footprint: the clean words a full check read, with content
/// projections of the point's base image and of the recorder's image over
/// them. Projections are XOR-composable position-aware hashes
/// ([`pmem::word_term`]), so a candidate's projection is the base
/// projection adjusted only on the words its subset actually touches.
struct FpEntry {
    /// Sorted ascending.
    words: Vec<u32>,
    /// Projection of the base image over `words`.
    base_proj: u128,
    /// Projection of the recorder's image over `words`.
    proj: u128,
}

/// The footprints recorded at one crash point. Entry evolution is driven in
/// canonical state order by both the serial and the parallel visit path, so
/// the skip set is identical at any thread count.
#[derive(Default)]
pub(crate) struct FpSet {
    entries: Vec<FpEntry>,
    gave_up: bool,
}

impl FpSet {
    /// Whether the next fully checked eligible state should record.
    pub(crate) fn want_record(&self) -> bool {
        !self.gave_up && self.entries.len() < FP_MAX_ENTRIES
    }

    /// Stops recording for this point (tracker overflow).
    pub(crate) fn give_up(&mut self) {
        self.gave_up = true;
    }

    /// Records a footprint from a clean full check of `subset`'s state.
    pub(crate) fn record(
        &mut self,
        words: Vec<u32>,
        base: &[u8],
        writes: &[PendingWrite],
        subset: &[usize],
    ) {
        if words.len() > FP_WORD_CAP {
            self.gave_up = true;
            return;
        }
        let base_proj = base_projection(base, &words);
        let entry = FpEntry { words, base_proj, proj: 0 };
        let proj = base_proj ^ delta(&entry, base, writes, subset);
        self.entries.push(FpEntry { proj, ..entry });
    }

    /// Whether `subset`'s image matches any recorded footprint — i.e., it
    /// agrees with some recorder's image on every word that recorder's
    /// check read, and so provably shares its clean verdict.
    pub(crate) fn matches(&self, base: &[u8], writes: &[PendingWrite], subset: &[usize]) -> bool {
        self.entries.iter().any(|e| e.base_proj ^ delta(e, base, writes, subset) == e.proj)
    }
}

/// Projection of `base` over `words`: XOR of one [`pmem::word_term`] per
/// recorded word — a single splitmix cascade each, not per-byte hashing
/// (projections run on the hot path of every footprint record and match).
fn base_projection(base: &[u8], words: &[u32]) -> u128 {
    let mut p = 0;
    for &w in words {
        let off = w as u64 * WORD;
        p ^= pmem::word_term(off, word_at(base, off));
    }
    p
}

/// The 8-byte little-endian word at `off`, zero-padded past the image end.
fn word_at(base: &[u8], off: u64) -> u64 {
    let s = off as usize;
    let end = ((off + WORD).min(base.len() as u64)) as usize;
    if s >= end {
        return 0;
    }
    let mut b = [0u8; 8];
    b[..end - s].copy_from_slice(&base[s..end]);
    u64::from_le_bytes(b)
}

/// Projection delta between the base image and `base + subset` over
/// `e.words`: only words both recorded and touched by a subset write are
/// rebuilt and re-hashed. Write application order mirrors
/// [`crate::crashgen::apply_subset`] (ascending log order).
fn delta(e: &FpEntry, base: &[u8], writes: &[PendingWrite], subset: &[usize]) -> u128 {
    let mut order = subset.to_vec();
    order.sort_unstable();
    let mut touched: BTreeSet<u32> = BTreeSet::new();
    for &wi in &order {
        let w = &writes[wi];
        if w.data.is_empty() {
            continue;
        }
        let w0 = (w.off / WORD) as u32;
        let w1 = ((w.off + w.data.len() as u64 - 1) / WORD) as u32;
        let from = e.words.partition_point(|&x| x < w0);
        for &wd in &e.words[from..] {
            if wd > w1 {
                break;
            }
            touched.insert(wd);
        }
    }
    let mut d = 0;
    for wd in touched {
        let off = wd as u64 * WORD;
        let old = word_at(base, off);
        let mut buf = old.to_le_bytes();
        for &wi in &order {
            overlay(&mut buf, off, &writes[wi]);
        }
        let new = u64::from_le_bytes(buf);
        if new != old {
            d ^= pmem::word_term(off, old) ^ pmem::word_term(off, new);
        }
    }
    d
}

/// Copies the part of `w` overlapping the word buffer at `word_off` into it.
fn overlay(buf: &mut [u8], word_off: u64, w: &PendingWrite) {
    let (ws, we) = (w.off, w.off + w.data.len() as u64);
    let (ls, le) = (word_off, word_off + buf.len() as u64);
    let (s, e) = (ws.max(ls), we.min(le));
    if s < e {
        buf[(s - ls) as usize..(e - ls) as usize]
            .copy_from_slice(&w.data[(s - ws) as usize..(e - ws) as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wr(off: u64, data: &[u8]) -> PendingWrite {
        PendingWrite { off, data: data.to_vec(), nt: true }
    }

    /// Reference projection: materialize the full image and hash the words.
    fn proj_naive(base: &[u8], writes: &[PendingWrite], subset: &[usize], words: &[u32]) -> u128 {
        let mut img = base.to_vec();
        let mut order = subset.to_vec();
        order.sort_unstable();
        for &wi in &order {
            let w = &writes[wi];
            img[w.off as usize..w.off as usize + w.data.len()].copy_from_slice(&w.data);
        }
        base_projection(&img, words)
    }

    #[test]
    fn incremental_projection_equals_naive() {
        let base: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let writes = vec![
            wr(10, &[7; 30]),
            wr(100, &[0; 64]),
            wr(20, &[9; 40]), // overlaps the first — order matters
            wr(700, &[3; 200]),
            wr(4000, &[1; 96]),
        ];
        let words: Vec<u32> = vec![0, 1, 2, 13, 14, 89, 90, 503, 504];
        let e = FpEntry { words: words.clone(), base_proj: base_projection(&base, &words), proj: 0 };
        for subset in [vec![], vec![0], vec![0, 2], vec![2, 0], vec![1, 3], vec![0, 1, 2, 3, 4]] {
            assert_eq!(
                e.base_proj ^ delta(&e, &base, &writes, &subset),
                proj_naive(&base, &writes, &subset, &words),
                "subset {subset:?}"
            );
        }
    }

    #[test]
    fn matching_ignores_unrecorded_words_only() {
        let base = vec![0u8; 4096];
        // The "check" read only word 0; writes at word 80 are invisible.
        let writes = vec![wr(640, &[5; 64]), wr(0, &[1; 8])];
        let mut fp = FpSet::default();
        fp.record(vec![0], &base, &writes, &[]);
        assert!(fp.matches(&base, &writes, &[]));
        assert!(fp.matches(&base, &writes, &[0]), "untouched-footprint write must match");
        assert!(!fp.matches(&base, &writes, &[1]), "a write inside the footprint must not");
        assert!(!fp.matches(&base, &writes, &[0, 1]));
    }

    #[test]
    fn cap_and_give_up_stop_recording() {
        let base = vec![0u8; 1 << 20];
        let mut fp = FpSet::default();
        fp.record((0..(FP_WORD_CAP as u32 + 1)).collect(), &base, &[], &[]);
        assert!(!fp.want_record(), "an oversized footprint must stop recording");
        assert!(!fp.matches(&base, &[], &[]), "the oversized footprint is discarded");
        let mut fp2 = FpSet::default();
        for _ in 0..FP_MAX_ENTRIES {
            assert!(fp2.want_record());
            fp2.record(vec![0], &base, &[], &[]);
        }
        assert!(!fp2.want_record(), "the entry cap must close recording");
    }

    #[test]
    fn zero_vs_content_distinguished_inside_footprint() {
        // A written zero word must be distinguished from a nonzero one and
        // vice versa (word terms hash the value, zero included).
        let base = vec![0xAAu8; 256];
        let writes = vec![wr(8, &[0; 8])];
        let mut fp = FpSet::default();
        fp.record(vec![0, 1, 2], &base, &writes, &[]);
        assert!(!fp.matches(&base, &writes, &[0]), "zeroing a recorded word must mismatch");
    }
}
