#![warn(missing_docs)]

//! Gray-box PM write logging — the record half of Chipmunk's
//! record-and-replay design.
//!
//! In the paper, Chipmunk instruments each file system's *centralized
//! persistence functions* with Kprobes/Uprobes and records every
//! non-temporal store, cache-line write-back, and store fence, together with
//! markers delimiting each system call (§3.3). In this reproduction the file
//! systems issue all PM I/O through the [`pmem::PmBackend`] trait, so the
//! logger is simply a backend wrapper: [`LoggingPm`] forwards every operation
//! to the real device and appends [`LogEntry`] records to a shared
//! [`LogHandle`]. The test harness pushes [`Marker`] entries into the same
//! log at system-call boundaries, exactly like the paper's user-space
//! harness.
//!
//! The log captures the same information the paper's logger modules capture:
//!
//! * for a flush: the destination range and the *contents of the written-back
//!   cache lines at flush time* (a line write-back persists the whole line);
//! * for a non-temporal store: destination and data;
//! * fences; and
//! * system-call begin/end markers.
//!
//! Plain cached stores are **not** logged — the paper's function-level
//! interception cannot see them either, and they are irrelevant to crash
//! states (unflushed data is lost).

pub mod entry;
pub mod logger;
pub mod replay;

pub use entry::{LogEntry, Marker, OpRecord};
pub use logger::{Log, LogHandle, LoggingPm};
pub use replay::materialize_full;
