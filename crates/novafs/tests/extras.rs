//! The §4.4 non-crash-consistency extras: KASAN/BUG()-style findings that
//! surface through the harness as runtime-error reports.

use chipmunk::{test_workload, TestConfig, Violation};
use novafs::NovaKind;
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    FsError, Op, OpenFlags, Workload,
};

#[test]
fn huge_write_exhausts_allocator_when_buggy() {
    // Paper §4.4: "NOVA does not properly handle write calls where the
    // number of bytes to write is extremely large; it will allocate all
    // remaining space for the file, causing most subsequent operations to
    // fail."
    let kind = NovaKind {
        opts: FsOptions { extra_bugs: true, ..FsOptions::fixed() },
        fortis: false,
    };
    let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    let huge = vec![0u8; 64 << 20]; // far beyond the device
    let r = fs.pwrite(fd, 0, &huge);
    assert!(matches!(r, Err(FsError::Detected(_))), "{r:?}");
    // The allocator was drained: subsequent creations fail.
    assert_eq!(fs.creat("/g"), Err(FsError::NoSpace));
}

#[test]
fn huge_write_clean_without_extras() {
    let kind = NovaKind { opts: FsOptions::fixed(), fortis: false };
    let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    let huge = vec![0u8; 64 << 20];
    // Clean ENOSPC, no side effects.
    assert_eq!(fs.pwrite(fd, 0, &huge), Err(FsError::NoSpace));
    fs.creat("/g").unwrap();
}

#[test]
fn harness_reports_extras_as_runtime_errors() {
    let kind = NovaKind {
        opts: FsOptions { extra_bugs: true, ..FsOptions::fixed() },
        fortis: false,
    };
    let w = Workload::new(
        "huge",
        vec![
            Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::CREAT_TRUNC },
            Op::Pwrite { slot: 0, off: 0, size: 64 << 20 },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| matches!(r.violation, Violation::RuntimeError(_))),
        "{:#?}",
        out.reports
    );
}
