//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of test-case values. Unlike upstream proptest there is no
/// value tree: strategies produce plain values and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
