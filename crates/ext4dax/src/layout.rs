//! On-device layout: superblock, inode table, bitmap, directory entries.

use vfs::{FsError, FsResult};

/// Block size in bytes.
pub const BLOCK: u64 = 4096;

/// Superblock magic ("EXT4DAXC" as little-endian u64).
pub const MAGIC: u64 = u64::from_le_bytes(*b"EXT4DAXC");

/// Inode size in bytes.
pub const INODE_SIZE: u64 = 256;

/// Number of direct block pointers per inode.
pub const NDIRECT: usize = 12;

/// Pointers per indirect block.
pub const PTRS_PER_BLOCK: u64 = BLOCK / 8;

/// Maximum file size in blocks (direct + one indirect).
pub const MAX_FILE_BLOCKS: u64 = NDIRECT as u64 + PTRS_PER_BLOCK;

/// Size of an on-disk directory entry.
pub const DENTRY_SIZE: u64 = 56;

/// Maximum name length in a directory entry.
pub const DENTRY_NAME_MAX: usize = 47;

/// The root directory's inode number.
pub const ROOT_INO: u64 = 1;

/// File type tags stored in inodes.
pub mod itype {
    /// Free inode slot.
    pub const FREE: u64 = 0;
    /// Regular file.
    pub const FILE: u64 = 1;
    /// Directory.
    pub const DIR: u64 = 2;
}

/// Field offsets within an inode.
pub mod ioff {
    /// File type tag (u64).
    pub const FTYPE: u64 = 0;
    /// Link count (u64).
    pub const NLINK: u64 = 8;
    /// Size in bytes (u64).
    pub const SIZE: u64 = 16;
    /// Xattr block number, 0 if none (u64).
    pub const XATTR: u64 = 24;
    /// First direct pointer (12 × u64).
    pub const DIRECT: u64 = 32;
    /// Indirect block pointer (u64).
    pub const INDIRECT: u64 = 128;
}

/// Computed region geometry for a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Number of inodes.
    pub inode_count: u64,
    /// First journal block.
    pub journal_start: u64,
    /// Journal length in blocks.
    pub journal_blocks: u64,
    /// First bitmap block.
    pub bitmap_start: u64,
    /// Bitmap length in blocks.
    pub bitmap_blocks: u64,
    /// First inode-table block.
    pub itable_start: u64,
    /// Inode table length in blocks.
    pub itable_blocks: u64,
    /// First general-purpose data block.
    pub data_start: u64,
}

impl Geometry {
    /// Computes the layout for a device of `size` bytes.
    pub fn for_device(size: u64) -> FsResult<Geometry> {
        let total_blocks = size / BLOCK;
        if total_blocks < 32 {
            return Err(FsError::NoSpace);
        }
        // Block 1 is the epoch block (see `Ext4Dax::set_epoch`).
        let journal_start = 2;
        let journal_blocks = (total_blocks / 16).clamp(8, 256);
        let bitmap_start = journal_start + journal_blocks;
        let bitmap_blocks = total_blocks.div_ceil(BLOCK * 8).max(1);
        let itable_start = bitmap_start + bitmap_blocks;
        let inode_count = (total_blocks / 4).clamp(64, 4096);
        let itable_blocks = (inode_count * INODE_SIZE).div_ceil(BLOCK);
        let data_start = itable_start + itable_blocks;
        if data_start + 8 > total_blocks {
            return Err(FsError::NoSpace);
        }
        Ok(Geometry {
            total_blocks,
            inode_count,
            journal_start,
            journal_blocks,
            bitmap_start,
            bitmap_blocks,
            itable_start,
            itable_blocks,
            data_start,
        })
    }

    /// Device byte offset of inode `ino`.
    pub fn inode_off(&self, ino: u64) -> u64 {
        debug_assert!(ino >= 1 && ino <= self.inode_count);
        self.itable_start * BLOCK + (ino - 1) * INODE_SIZE
    }
}

/// Superblock field offsets (block 0).
pub mod sboff {
    /// Magic (u64).
    pub const MAGIC: u64 = 0;
    /// Total blocks (u64).
    pub const TOTAL_BLOCKS: u64 = 8;
    /// Inode count (u64).
    pub const INODE_COUNT: u64 = 16;
    /// Journal start block (u64).
    pub const JOURNAL_START: u64 = 24;
    /// Journal length in blocks (u64).
    pub const JOURNAL_BLOCKS: u64 = 32;
    /// Bitmap start block (u64).
    pub const BITMAP_START: u64 = 40;
    /// Bitmap length (u64).
    pub const BITMAP_BLOCKS: u64 = 48;
    /// Inode table start block (u64).
    pub const ITABLE_START: u64 = 56;
    /// Inode table length (u64).
    pub const ITABLE_BLOCKS: u64 = 64;
    /// First data block (u64).
    pub const DATA_START: u64 = 72;
    /// Journal head: next transaction id expected at recovery (u64).
    pub const JOURNAL_SEQ: u64 = 80;
}

/// Serialized directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDentry {
    /// Target inode, 0 for a free slot.
    pub ino: u64,
    /// Entry name.
    pub name: String,
}

impl RawDentry {
    /// Encodes into the fixed 56-byte on-disk form.
    pub fn encode(&self) -> [u8; DENTRY_SIZE as usize] {
        let mut buf = [0u8; DENTRY_SIZE as usize];
        buf[0..8].copy_from_slice(&self.ino.to_le_bytes());
        let name = self.name.as_bytes();
        debug_assert!(name.len() <= DENTRY_NAME_MAX);
        buf[8] = name.len() as u8;
        buf[9..9 + name.len()].copy_from_slice(name);
        buf
    }

    /// Decodes from the on-disk form. Returns `None` for a free slot.
    pub fn decode(buf: &[u8]) -> Option<RawDentry> {
        let ino = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        if ino == 0 {
            return None;
        }
        let len = (buf[8] as usize).min(DENTRY_NAME_MAX);
        let name = String::from_utf8_lossy(&buf[9..9 + len]).into_owned();
        Some(RawDentry { ino, name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_partitions_do_not_overlap() {
        let g = Geometry::for_device(8 * 1024 * 1024).unwrap();
        assert!(g.journal_start >= 1);
        assert!(g.bitmap_start >= g.journal_start + g.journal_blocks);
        assert!(g.itable_start >= g.bitmap_start + g.bitmap_blocks);
        assert!(g.data_start >= g.itable_start + g.itable_blocks);
        assert!(g.data_start < g.total_blocks);
        assert!(g.inode_count >= 64);
    }

    #[test]
    fn tiny_device_rejected() {
        assert_eq!(Geometry::for_device(16 * 1024), Err(FsError::NoSpace));
    }

    #[test]
    fn dentry_round_trip() {
        let d = RawDentry { ino: 42, name: "hello.txt".into() };
        let enc = d.encode();
        assert_eq!(RawDentry::decode(&enc), Some(d));
        let free = [0u8; DENTRY_SIZE as usize];
        assert_eq!(RawDentry::decode(&free), None);
    }

    #[test]
    fn inode_offsets_are_disjoint() {
        let g = Geometry::for_device(8 * 1024 * 1024).unwrap();
        assert_eq!(g.inode_off(2) - g.inode_off(1), INODE_SIZE);
        assert!(g.inode_off(g.inode_count) + INODE_SIZE <= g.data_start * BLOCK);
    }
}
