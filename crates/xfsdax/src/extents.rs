//! Extent maps: the XFS way of describing file blocks.

/// One extent: `len` device blocks starting at `start`, mapped at file
/// block index `file_blk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First file block index covered.
    pub file_blk: u64,
    /// First device block.
    pub start: u64,
    /// Length in blocks.
    pub len: u64,
}

impl Extent {
    /// Whether the extent covers file block `idx`.
    pub fn covers(&self, idx: u64) -> bool {
        idx >= self.file_blk && idx < self.file_blk + self.len
    }

    /// The device block backing file block `idx` (must be covered).
    pub fn device_block(&self, idx: u64) -> u64 {
        debug_assert!(self.covers(idx));
        self.start + (idx - self.file_blk)
    }

    /// Whether appending file block `idx` backed by device block `blk`
    /// extends this extent contiguously.
    pub fn extends_with(&self, idx: u64, blk: u64) -> bool {
        idx == self.file_blk + self.len && blk == self.start + self.len
    }
}

/// An in-memory extent list (decoded from an inode).
///
/// Invariants: sorted by `file_blk`, non-overlapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentMap {
    /// The extents, sorted by file block.
    pub extents: Vec<Extent>,
}

impl ExtentMap {
    /// Looks up the device block for file block `idx`.
    pub fn lookup(&self, idx: u64) -> Option<u64> {
        self.extents.iter().find(|e| e.covers(idx)).map(|e| e.device_block(idx))
    }

    /// Maps file block `idx` to device block `blk`, merging into the
    /// preceding extent when contiguous.
    pub fn insert(&mut self, idx: u64, blk: u64) {
        debug_assert!(self.lookup(idx).is_none(), "file block {idx} already mapped");
        if let Some(e) = self.extents.iter_mut().find(|e| e.extends_with(idx, blk)) {
            e.len += 1;
            return;
        }
        let pos = self.extents.partition_point(|e| e.file_blk < idx);
        self.extents.insert(pos, Extent { file_blk: idx, start: blk, len: 1 });
    }

    /// Unmaps file block `idx`, returning its device block. Splits the
    /// containing extent if necessary.
    pub fn remove(&mut self, idx: u64) -> Option<u64> {
        let pos = self.extents.iter().position(|e| e.covers(idx))?;
        let e = self.extents[pos];
        let blk = e.device_block(idx);
        self.extents.remove(pos);
        // Left remainder.
        if idx > e.file_blk {
            self.extents.insert(
                pos,
                Extent { file_blk: e.file_blk, start: e.start, len: idx - e.file_blk },
            );
        }
        // Right remainder.
        if idx + 1 < e.file_blk + e.len {
            let off = idx + 1 - e.file_blk;
            let at = self.extents.partition_point(|x| x.file_blk < idx + 1);
            self.extents.insert(
                at,
                Extent { file_blk: idx + 1, start: e.start + off, len: e.len - off },
            );
        }
        Some(blk)
    }

    /// All device blocks in the map (for accounting and deallocation).
    pub fn device_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.extents.iter().flat_map(|e| e.start..e.start + e.len)
    }

    /// Number of mapped file blocks.
    pub fn mapped_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Drops every mapping at or beyond file block `keep`, returning the
    /// freed device blocks.
    pub fn truncate_from(&mut self, keep: u64) -> Vec<u64> {
        let mut freed = Vec::new();
        let mut kept = Vec::new();
        for e in self.extents.drain(..) {
            if e.file_blk + e.len <= keep {
                kept.push(e);
            } else if e.file_blk >= keep {
                freed.extend(e.start..e.start + e.len);
            } else {
                let keep_len = keep - e.file_blk;
                kept.push(Extent { file_blk: e.file_blk, start: e.start, len: keep_len });
                freed.extend(e.start + keep_len..e.start + e.len);
            }
        }
        self.extents = kept;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_contiguous_runs() {
        let mut m = ExtentMap::default();
        m.insert(0, 100);
        m.insert(1, 101);
        m.insert(2, 102);
        assert_eq!(m.extents.len(), 1);
        assert_eq!(m.extents[0], Extent { file_blk: 0, start: 100, len: 3 });
        m.insert(5, 200);
        assert_eq!(m.extents.len(), 2);
        assert_eq!(m.lookup(1), Some(101));
        assert_eq!(m.lookup(5), Some(200));
        assert_eq!(m.lookup(3), None);
    }

    #[test]
    fn remove_splits_extents() {
        let mut m = ExtentMap::default();
        for i in 0..5 {
            m.insert(i, 100 + i);
        }
        assert_eq!(m.remove(2), Some(102));
        assert_eq!(m.extents.len(), 2);
        assert_eq!(m.lookup(1), Some(101));
        assert_eq!(m.lookup(2), None);
        assert_eq!(m.lookup(3), Some(103));
        assert_eq!(m.remove(0), Some(100));
        assert_eq!(m.remove(9), None);
    }

    #[test]
    fn truncate_from_partial_extent() {
        let mut m = ExtentMap::default();
        for i in 0..6 {
            m.insert(i, 50 + i);
        }
        let freed = m.truncate_from(2);
        assert_eq!(freed, vec![52, 53, 54, 55]);
        assert_eq!(m.mapped_blocks(), 2);
        assert_eq!(m.lookup(1), Some(51));
        assert_eq!(m.lookup(2), None);
    }

    #[test]
    fn device_blocks_enumerates_everything() {
        let mut m = ExtentMap::default();
        m.insert(0, 10);
        m.insert(1, 11);
        m.insert(7, 30);
        let blocks: Vec<u64> = m.device_blocks().collect();
        assert_eq!(blocks, vec![10, 11, 30]);
    }

    #[test]
    fn noncontiguous_inserts_stay_sorted() {
        let mut m = ExtentMap::default();
        m.insert(5, 500);
        m.insert(1, 100);
        m.insert(3, 300);
        let file_blks: Vec<u64> = m.extents.iter().map(|e| e.file_blk).collect();
        assert_eq!(file_blks, vec![1, 3, 5]);
    }
}
