//! Regenerates the Observation 7 / §3.2 in-flight-write measurements: "the
//! average number of in-flight writes for metadata operations is three and
//! the maximum is 10 in the tested systems"; "the highest in-flight write
//! count we observed, 20 writes in some PMFS write calls".
//!
//! ```sh
//! cargo run --release -p bench --bin inflight
//! ```

use bench::{mode_for, run_suite, STRONG_SYSTEMS};
use chipmunk::TestConfig;
use vfs::{BugSet, Op, Workload};
use workloads::ace::{seq1, seq2};

fn percentile(sorted: &[usize], p: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let cfg = TestConfig::default();

    println!("in-flight writes per crash point, ACE seq-1 + sampled seq-2 (fixed bugs)");
    println!("('busy' columns exclude the post-syscall points whose epochs already drained)\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "FS", "mean", "busy mean", "busy p95", "max", "points"
    );
    println!("{}", "-".repeat(62));
    for fs in STRONG_SYSTEMS {
        let mut workloads = seq1(mode_for(fs));
        workloads.extend(seq2(mode_for(fs)).step_by(41));
        let stats = run_suite(fs, BugSet::fixed(), workloads, &cfg);
        let mut v = stats.inflight.clone();
        v.sort_unstable();
        let mean = v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        let busy: Vec<usize> = v.iter().copied().filter(|&n| n > 0).collect();
        let busy_mean = busy.iter().sum::<usize>() as f64 / busy.len().max(1) as f64;
        println!(
            "{:<12} {:>8.2} {:>10.2} {:>10} {:>8} {:>8}",
            fs.to_string(),
            mean,
            busy_mean,
            percentile(&busy, 0.95),
            v.last().copied().unwrap_or(0),
            v.len(),
        );
    }
    println!("\npaper: metadata ops average 3 in-flight writes, max 10");

    // The paper's outlier: large PMFS writes. A 64 KiB write spans 16
    // blocks, each its own non-temporal burst.
    let big = Workload::new(
        "pmfs-big-write",
        vec![Op::WritePath { path: "/big".into(), off: 0, size: 64 * 1024 }],
    );
    let stats = run_suite(vfs::FsName::Pmfs, BugSet::fixed(), vec![big], &cfg);
    println!(
        "\nPMFS 64 KiB write: max in-flight = {} (paper: up to 20 for some PMFS writes)",
        stats.inflight.iter().max().copied().unwrap_or(0)
    );
}
