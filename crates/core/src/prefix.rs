//! Prefix-shared workload execution (the incremental engine's outer layer).
//!
//! ACE-style suites re-execute enormous shared op prefixes: the seq-2 sweep
//! runs each first op once per pair, and every workload of a sweep repeats
//! the same `mkfs` and dependency-setup ops. [`PrefixCache`] exploits this by
//! keeping, for the most recently tested workload, a checkpoint at **every
//! syscall boundary** of all three pipeline stages:
//!
//! * a live, forked oracle file system (plus executor and per-op tree
//!   snapshots) on a [`ForkDevice`];
//! * a live, forked recording file system (plus the write log and per-op
//!   results);
//! * the crash-replay state — persisted base image (kept as one mutable
//!   image plus an undo tape between boundaries), pending writes, the
//!   cross-point artifact memo, and the check counters/reports accumulated
//!   through that boundary.
//!
//! Testing the next workload resumes every stage from the deepest checkpoint
//! whose op prefix matches, re-running only the suffix. Checked results for
//! the shared prefix are *spliced* (re-labelled with the new workload's
//! name), never re-computed — and because all three stages are deterministic
//! functions of the op prefix, the spliced outcome is bit-identical to an
//! uncached run (`tests` below and `tests/determinism.rs` enforce this).
//!
//! Anything the cache cannot handle exactly — a file system whose
//! [`FsKind::fork_fs`] returns `None` (SplitFS's window device aliases its
//! sibling), `mkfs`/oracle failures — falls back to the plain
//! [`test_workload`] path.
//!
//! Multi-threaded configs compose: a cache (and all its live checkpoints) is
//! `Send`, so the bench scheduler moves per-worker caches across its worker
//! threads, and `cfg.threads > 1` inside a cached run parallelizes the
//! crash-subset checks — which are bit-identical to the serial walk by
//! construction, so the checkpointed replay state is thread-count-invariant.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use std::time::Instant;

use pmem::{ForkDevice, ImageKey};
use pmlog::{LogEntry, LogHandle, LoggingPm, Marker, OpRecord};
use vfs::{BugId, FsKind, Op, Workload};

use crate::{
    config::TestConfig,
    crashgen::PendingWrite,
    exec::{Executor, OpResult},
    harness::{push_report, test_workload, CrossMemo, RepTable, ReplayEngine, TestOutcome},
    oracle::{advance_snapshot, snapshot_tree, Oracle, Tree},
    report::{BugReport, CrashPhase, Violation},
};

/// A checkpoint of one crash-free stage (oracle or record) at a syscall
/// boundary: the live file system (forked again on each resume), the
/// executor's slot table, and the stage's cumulative instrumentation.
struct PhaseCkpt<F> {
    fs: F,
    ex: Executor,
    cov: HashSet<u64>,
    trace: BTreeSet<BugId>,
}

/// Undo data to step the persisted base image back across one boundary.
struct TapeSeg {
    undo: Vec<(u64, Vec<u8>)>,
    key_before: ImageKey,
}

/// The crash-replay stage's state at a syscall boundary, plus the check
/// results accumulated through it (spliced on resume instead of re-checked).
#[derive(Clone)]
struct ReplayCkpt {
    pending: Vec<PendingWrite>,
    /// Writes absorbed since the current op began (behavioral-signature
    /// anchoring; see `ReplayEngine::op_absorbed`).
    op_absorbed: Vec<PendingWrite>,
    pending_seqs: BTreeSet<usize>,
    pending_unknown: bool,
    last_done: Option<usize>,
    started: bool,
    memo: CrossMemo,
    /// Behavioral class table — checkpointed so prefix splices preserve the
    /// classes the shared prefix established.
    rep: RepTable,
    crash_points: u64,
    crash_states: u64,
    dedup_hits: u64,
    memo_hits: u64,
    rep_classes: u64,
    rep_skipped: u64,
    rep_expansions: u64,
    recovery_panics: u64,
    recovery_hangs: u64,
    sandbox_retries: u64,
    fuel_exhausted: u64,
    oracle_subtrees_pruned: u64,
    inflight: Vec<usize>,
    state_keys: Vec<u64>,
    /// Reports carry the *cached* workload's name; splicing re-labels them.
    reports: Vec<BugReport>,
    cov: HashSet<u64>,
    trace: BTreeSet<BugId>,
    /// Stop-on-first fired at or before this boundary; resumes from here
    /// splice and skip the suffix entirely.
    stopped: bool,
}

/// Everything cached about the most recently tested workload. Index
/// convention: boundary `k` is the state after `ops[0..k]` have executed
/// (`k = 0` is right after `mkfs`), so every `*_ckpts` vector has
/// `ops.len() + 1` entries.
struct CacheState<K: FsKind> {
    ops: Vec<Op>,
    /// `snaps[j]` is the oracle tree after `j` ops (`ops.len() + 1` trees).
    /// With [`TestConfig::shared_oracle`] adjacent trees structurally share
    /// unchanged nodes, so keeping every boundary costs O(changes), not
    /// O(tree) per op.
    snaps: Vec<Arc<Tree>>,
    /// Cumulative [`Oracle::snap_bytes_shared`] through boundary `j`
    /// (`ops.len() + 1` entries), so a spliced resume reports the same
    /// counter as an uncached run.
    snap_shared: Vec<u64>,
    results: Vec<OpResult>,
    rec_results: Vec<OpResult>,
    /// The full recorded write log, and for each boundary the index of the
    /// first log entry past it.
    log: Vec<LogEntry>,
    boundary_pos: Vec<usize>,
    log_handle: LogHandle,
    oracle_ckpts: Vec<PhaseCkpt<K::Fs<ForkDevice>>>,
    record_ckpts: Vec<PhaseCkpt<K::Fs<LoggingPm<ForkDevice>>>>,
    replay: Vec<ReplayCkpt>,
    /// The persisted base image, positioned at boundary `tape.len()`;
    /// popping a segment rewinds it one boundary.
    base: Vec<u8>,
    base_key: ImageKey,
    tape: Vec<TapeSeg>,
}

/// Cross-workload execution cache: resumes each pipeline stage from the
/// deepest checkpoint shared with the previously tested workload. One cache
/// serves one `(FsKind, TestConfig)` stream — create it next to the batch
/// loop and feed every workload through [`PrefixCache::run`].
pub struct PrefixCache<K: FsKind> {
    origin: K,
    oracle_kind: K,
    record_kind: K,
    check_kind: K,
    state: Option<CacheState<K>>,
    disabled: bool,
}

impl<K: FsKind> PrefixCache<K> {
    /// Creates an empty cache for workloads tested under `kind`. The first
    /// [`run`](PrefixCache::run) formats the cached devices.
    pub fn new(kind: &K, cfg: &TestConfig) -> Self {
        let fresh = || kind.with_options(kind.options().with_fresh_sinks());
        PrefixCache {
            origin: kind.clone(),
            oracle_kind: fresh(),
            record_kind: fresh(),
            check_kind: fresh(),
            state: None,
            disabled: !cfg.prefix_cache,
        }
    }

    /// Whether the cache is live (false once a fallback condition — no fork
    /// support, mkfs failure — was hit; every run then takes the plain path).
    pub fn is_active(&self) -> bool {
        !self.disabled
    }

    /// Drops all cached state (the next run re-formats from genesis) while
    /// keeping the disabled flag. The scheduler resets its per-worker caches
    /// at the start of every scheduled batch so counters are a pure function
    /// of the batch, not of what ran before it on the same worker.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Tests `w`, resuming from the deepest cached prefix when possible.
    /// Returns the outcome plus the workload's private coverage and trace
    /// sets — the same triple a fresh-sink [`test_workload`] run yields.
    pub fn run(
        &mut self,
        w: &Workload,
        cfg: &TestConfig,
    ) -> (TestOutcome, HashSet<u64>, BTreeSet<BugId>) {
        if self.disabled || !cfg.prefix_cache {
            return self.fallback(w, cfg);
        }
        if self.state.is_none() && !self.init_genesis(cfg) {
            self.disabled = true;
            return self.fallback(w, cfg);
        }
        match self.run_cached(w, cfg) {
            Some(r) => r,
            None => {
                // Mid-run anomaly (fork refused, oracle suffix failed): the
                // partially updated state is discarded and the workload
                // re-runs uncached, which reproduces the exact failure
                // reports of the plain path.
                self.state = None;
                self.fallback(w, cfg)
            }
        }
    }

    fn fallback(
        &self,
        w: &Workload,
        cfg: &TestConfig,
    ) -> (TestOutcome, HashSet<u64>, BTreeSet<BugId>) {
        let fresh = self.origin.with_options(self.origin.options().with_fresh_sinks());
        let out = test_workload(&fresh, w, cfg);
        let cov = fresh.options().cov.snapshot();
        let trace = fresh.options().trace.snapshot();
        (out, cov, trace)
    }

    fn clear_sinks(&self) {
        for k in [&self.oracle_kind, &self.record_kind, &self.check_kind] {
            k.options().cov.clear();
            k.options().trace.clear();
        }
    }

    /// Builds the depth-0 state: mkfs on both lineages, the mkfs portion of
    /// the write log, and the base image fast-forwarded through it.
    fn init_genesis(&mut self, cfg: &TestConfig) -> bool {
        self.clear_sinks();

        // Oracle lineage.
        let Ok(ofs) = self.oracle_kind.mkfs(ForkDevice::new(cfg.device_size)) else {
            return false;
        };
        if self.oracle_kind.fork_fs(&ofs).is_none() {
            return false; // No fork support (SplitFS): cache permanently off.
        }
        let Ok(root_snap) = snapshot_tree(&ofs) else { return false };
        let o_cov = self.oracle_kind.options().cov.snapshot();
        let o_trace = self.oracle_kind.options().trace.snapshot();

        // Record lineage.
        let log_handle = LogHandle::new();
        let ldev = ForkDevice::new(cfg.device_size);
        let lp = if cfg.eadr {
            LoggingPm::new_eadr(ldev, log_handle.clone())
        } else {
            LoggingPm::new(ldev, log_handle.clone())
        };
        let Ok(rfs) = self.record_kind.mkfs(lp) else { return false };
        let log: Vec<LogEntry> = log_handle.take().entries().to_vec();
        let r_cov = self.record_kind.options().cov.snapshot();
        let r_trace = self.record_kind.options().trace.snapshot();

        // Replay stage: fast-forward the base image through the mkfs writes
        // (no markers yet, so no crash points exist in this span).
        let dummy_w = Workload::new("", vec![]);
        let dummy_oracle = Oracle { snaps: vec![], results: vec![], snap_bytes_shared: 0 };
        let guarantees = self.check_kind.guarantees();
        let mut engine =
            ReplayEngine::new(&self.check_kind, &dummy_w, cfg, &dummy_oracle, &[], guarantees);
        for e in &log {
            engine.step(e, None);
        }

        self.state = Some(CacheState {
            ops: Vec::new(),
            snaps: vec![Arc::new(root_snap)],
            snap_shared: vec![0],
            results: Vec::new(),
            rec_results: Vec::new(),
            boundary_pos: vec![log.len()],
            log,
            log_handle,
            oracle_ckpts: vec![PhaseCkpt { fs: ofs, ex: Executor::new(), cov: o_cov, trace: o_trace }],
            record_ckpts: vec![PhaseCkpt { fs: rfs, ex: Executor::new(), cov: r_cov, trace: r_trace }],
            replay: vec![ReplayCkpt {
                pending: engine.pending.clone(),
                op_absorbed: engine.op_absorbed.clone(),
                pending_seqs: engine.pending_seqs.clone(),
                pending_unknown: engine.pending_unknown,
                last_done: engine.last_done,
                started: engine.started,
                memo: CrossMemo::default(),
                rep: RepTable::default(),
                crash_points: 0,
                crash_states: 0,
                dedup_hits: 0,
                memo_hits: 0,
                rep_classes: 0,
                rep_skipped: 0,
                rep_expansions: 0,
                recovery_panics: 0,
                recovery_hangs: 0,
                sandbox_retries: 0,
                fuel_exhausted: 0,
                oracle_subtrees_pruned: 0,
                inflight: Vec::new(),
                state_keys: Vec::new(),
                reports: Vec::new(),
                cov: HashSet::new(),
                trace: BTreeSet::new(),
                stopped: false,
            }],
            base: std::mem::take(&mut engine.base),
            base_key: engine.base_key,
            tape: Vec::new(),
        });
        true
    }

    /// The cached pipeline. `None` = anomaly, caller falls back.
    #[allow(clippy::too_many_lines)]
    fn run_cached(
        &mut self,
        w: &Workload,
        cfg: &TestConfig,
    ) -> Option<(TestOutcome, HashSet<u64>, BTreeSet<BugId>)> {
        let mut st = self.state.take()?;
        debug_assert_eq!(st.base.len() as u64, cfg.device_size, "one cache per TestConfig");

        // Deepest shared boundary.
        let max = st.ops.len().min(w.ops.len());
        let mut k = 0;
        while k < max && st.ops[k] == w.ops[k] {
            k += 1;
        }
        let n = w.ops.len();

        let mut out = TestOutcome { workload: w.name.clone(), ..Default::default() };
        out.prefix_hits = 1;
        out.prefix_ops_saved = 2 * k as u64;
        self.clear_sinks();

        // ---- 1. Oracle: resume from boundary k ----
        let t_oracle = Instant::now();
        self.oracle_kind.options().cov.absorb(&st.oracle_ckpts[k].cov);
        self.oracle_kind.options().trace.absorb(&st.oracle_ckpts[k].trace);
        let mut snaps: Vec<Arc<Tree>> = st.snaps[..=k].to_vec();
        let mut snap_shared: Vec<u64> = st.snap_shared[..=k].to_vec();
        let mut results: Vec<OpResult> = st.results[..k].to_vec();
        let mut ofs = self.oracle_kind.fork_fs(&st.oracle_ckpts[k].fs)?;
        let mut oex = st.oracle_ckpts[k].ex.clone();
        st.oracle_ckpts.truncate(k + 1);
        for (seq, op) in w.ops.iter().enumerate().skip(k) {
            let r = oex.exec(&mut ofs, op, seq);
            // An oracle snapshot failure is reported by the plain path with
            // its own early-return shape; fall back rather than imitate it.
            let (next, shared) = if cfg.shared_oracle {
                let prev = snaps.last().expect("root snapshot present");
                advance_snapshot(&ofs, prev, op, r.target.as_deref()).ok()?
            } else {
                (Arc::new(snapshot_tree(&ofs).ok()?), 0)
            };
            snaps.push(next);
            snap_shared.push(snap_shared.last().expect("root entry present") + shared);
            results.push(r);
            let fork = self.oracle_kind.fork_fs(&ofs)?;
            st.oracle_ckpts.push(PhaseCkpt {
                fs: std::mem::replace(&mut ofs, fork),
                ex: oex.clone(),
                cov: self.oracle_kind.options().cov.snapshot(),
                trace: self.oracle_kind.options().trace.snapshot(),
            });
        }
        out.timing.oracle = t_oracle.elapsed();
        let snap_bytes_shared = *snap_shared.last().expect("root entry present");
        let oracle = Oracle { snaps, results, snap_bytes_shared };
        out.oracle_snap_bytes_shared = oracle.snap_bytes_shared;

        // ---- 2. Record: resume from boundary k ----
        let t_record = Instant::now();
        self.record_kind.options().cov.absorb(&st.record_ckpts[k].cov);
        self.record_kind.options().trace.absorb(&st.record_ckpts[k].trace);
        let mut rec_results: Vec<OpResult> = st.rec_results[..k].to_vec();
        let mut rfs = self.record_kind.fork_fs(&st.record_ckpts[k].fs)?;
        let mut rex = st.record_ckpts[k].ex.clone();
        st.record_ckpts.truncate(k + 1);
        let pos_k = st.boundary_pos[k];
        st.log.truncate(pos_k);
        st.boundary_pos.truncate(k + 1);
        debug_assert!(st.log_handle.with(|l| l.is_empty()), "log not drained between runs");
        for (seq, op) in w.ops.iter().enumerate().skip(k) {
            st.log_handle
                .marker(Marker::SyscallBegin(OpRecord { seq, desc: op.describe() }));
            let r = rex.exec(&mut rfs, op, seq);
            st.log_handle.marker(Marker::SyscallEnd { seq, ok: r.result.is_ok() });
            rec_results.push(r);
            st.boundary_pos.push(pos_k + st.log_handle.with(|l| l.len()));
            let fork = self.record_kind.fork_fs(&rfs)?;
            st.record_ckpts.push(PhaseCkpt {
                fs: std::mem::replace(&mut rfs, fork),
                ex: rex.clone(),
                cov: self.record_kind.options().cov.snapshot(),
                trace: self.record_kind.options().trace.snapshot(),
            });
        }
        let suffix = st.log_handle.take();
        st.log.extend(suffix.entries().iter().cloned());
        out.timing.record = t_record.elapsed();

        // Functional divergence / runtime errors over *all* ops, exactly as
        // the plain path reports them.
        for (seq, (rec, ora)) in rec_results.iter().zip(oracle.results.iter()).enumerate() {
            let desc = w.ops[seq].describe();
            if let Err(e) = &rec.result {
                if !e.is_benign() {
                    push_report(
                        &mut out,
                        BugReport {
                            workload: w.name.clone(),
                            op_seq: seq,
                            op_desc: desc.clone(),
                            phase: CrashPhase::DuringSyscall,
                            subset: "-".into(),
                            point: None,
                            subset_ids: Vec::new(),
                            violation: Violation::RuntimeError(e.to_string()),
                        },
                    );
                }
            }
            if rec.result.is_ok() != ora.result.is_ok() {
                push_report(
                    &mut out,
                    BugReport {
                        workload: w.name.clone(),
                        op_seq: seq,
                        op_desc: desc,
                        phase: CrashPhase::DuringSyscall,
                        subset: "-".into(),
                        point: None,
                        subset_ids: Vec::new(),
                        violation: Violation::OracleDivergence(format!(
                            "recorded run returned {:?}, oracle returned {:?}",
                            rec.result, ora.result
                        )),
                    },
                );
            }
        }

        // ---- 3. Replay and check: splice boundary k, check the suffix ----
        let t_check = Instant::now();
        st.replay.truncate(k + 1);
        // Rewind the base image to boundary k.
        while st.tape.len() > k {
            let seg = st.tape.pop().expect("len checked");
            for (off, old) in seg.undo.iter().rev() {
                let o = *off as usize;
                st.base[o..o + old.len()].copy_from_slice(old);
            }
            st.base_key = seg.key_before;
        }

        let ck = &st.replay[k];
        let ck_stopped = ck.stopped;
        self.check_kind.options().cov.absorb(&ck.cov);
        self.check_kind.options().trace.absorb(&ck.trace);
        // The check stage's own outcome: seeded with the spliced prefix,
        // merged into `out` below (after the record-phase reports, matching
        // the plain path's report order).
        let mut chk = TestOutcome {
            crash_points: ck.crash_points,
            crash_states: ck.crash_states,
            dedup_hits: ck.dedup_hits,
            memo_hits: ck.memo_hits,
            rep_classes: ck.rep_classes,
            rep_skipped: ck.rep_skipped,
            rep_expansions: ck.rep_expansions,
            recovery_panics: ck.recovery_panics,
            recovery_hangs: ck.recovery_hangs,
            sandbox_retries: ck.sandbox_retries,
            fuel_exhausted: ck.fuel_exhausted,
            oracle_subtrees_pruned: ck.oracle_subtrees_pruned,
            inflight_sizes: ck.inflight.clone(),
            state_keys: ck.state_keys.clone(),
            reports: ck
                .reports
                .iter()
                .cloned()
                .map(|mut r| {
                    r.workload = w.name.clone();
                    r
                })
                .collect(),
            ..Default::default()
        };

        if !ck_stopped {
            let guarantees = self.check_kind.guarantees();
            let mut engine =
                ReplayEngine::new(&self.check_kind, w, cfg, &oracle, &rec_results, guarantees);
            engine.base = std::mem::take(&mut st.base);
            engine.base_key = st.base_key;
            engine.memo = ck.memo.clone();
            engine.rep = ck.rep.clone();
            engine.pending = ck.pending.clone();
            engine.op_absorbed = ck.op_absorbed.clone();
            engine.pending_seqs = ck.pending_seqs.clone();
            engine.pending_unknown = ck.pending_unknown;
            engine.last_done = ck.last_done;
            engine.started = ck.started;
            engine.undo = Some(Vec::new());
            let mut seg_key = engine.base_key;

            for pos in pos_k..st.log.len() {
                if engine.stop {
                    break;
                }
                let entry = &st.log[pos];
                engine.step(entry, Some(&mut chk));
                if let LogEntry::Marker(Marker::SyscallEnd { .. }) = entry {
                    // A stop *at* this boundary keeps its full segment; only
                    // mid-op partial segments are rolled back below.
                    st.tape.push(TapeSeg {
                        undo: engine.undo.replace(Vec::new()).expect("undo enabled"),
                        key_before: seg_key,
                    });
                    seg_key = engine.base_key;
                    st.replay.push(Self::snap_replay(&engine, &chk, &self.check_kind));
                    if engine.stop {
                        break;
                    }
                }
            }
            if engine.stop {
                // Roll back any partial segment so the tape rests exactly at
                // a boundary, then pad the remaining boundaries with the
                // frozen stop state (any workload sharing a deeper prefix
                // stops at the same earlier point).
                if let Some(undo) = engine.undo.take() {
                    for (off, old) in undo.iter().rev() {
                        let o = *off as usize;
                        engine.base[o..o + old.len()].copy_from_slice(old);
                    }
                    engine.base_key = seg_key;
                }
                while st.replay.len() < n + 1 {
                    st.replay.push(Self::snap_replay(&engine, &chk, &self.check_kind));
                }
            } else {
                engine.undo = None;
            }
            st.base = std::mem::take(&mut engine.base);
            st.base_key = engine.base_key;
        } else {
            // A workload sharing this prefix stops at the same earlier
            // point: every later boundary freezes the spliced stop state.
            let frozen = st.replay[k].clone();
            while st.replay.len() < n + 1 {
                st.replay.push(frozen.clone());
            }
        }
        debug_assert_eq!(st.replay.len(), n + 1);
        out.timing.check = t_check.elapsed();

        out.crash_points = chk.crash_points;
        out.crash_states = chk.crash_states;
        out.dedup_hits = chk.dedup_hits;
        out.memo_hits = chk.memo_hits;
        out.rep_classes = chk.rep_classes;
        out.rep_skipped = chk.rep_skipped;
        out.rep_expansions = chk.rep_expansions;
        out.recovery_panics = chk.recovery_panics;
        out.recovery_hangs = chk.recovery_hangs;
        out.sandbox_retries = chk.sandbox_retries;
        out.fuel_exhausted = chk.fuel_exhausted;
        out.oracle_subtrees_pruned = chk.oracle_subtrees_pruned;
        out.inflight_sizes = chk.inflight_sizes;
        out.state_keys = chk.state_keys;
        for r in chk.reports {
            push_report(&mut out, r);
        }

        // ---- Commit the new cache state ----
        st.ops = w.ops.clone();
        st.snaps.truncate(k + 1);
        st.snaps.extend(oracle.snaps[k + 1..].iter().cloned());
        st.snap_shared.truncate(k + 1);
        st.snap_shared.extend(snap_shared[k + 1..].iter().copied());
        st.results.truncate(k);
        st.results.extend(oracle.results[k..].iter().cloned());
        st.rec_results = rec_results;
        self.state = Some(st);

        let cov = self.phase_cov();
        let trace = self.phase_trace();
        out.traced_bugs = trace.clone();
        Some((out, cov, trace))
    }

    /// Snapshots the replay stage at a boundary (stop-state padding reuses
    /// the same shape with `stopped = true`).
    fn snap_replay(engine: &ReplayEngine<'_, K>, chk: &TestOutcome, check_kind: &K) -> ReplayCkpt {
        ReplayCkpt {
            pending: engine.pending.clone(),
            op_absorbed: engine.op_absorbed.clone(),
            pending_seqs: engine.pending_seqs.clone(),
            pending_unknown: engine.pending_unknown,
            last_done: engine.last_done,
            started: engine.started,
            memo: engine.memo.clone(),
            rep: engine.rep.clone(),
            crash_points: chk.crash_points,
            crash_states: chk.crash_states,
            dedup_hits: chk.dedup_hits,
            memo_hits: chk.memo_hits,
            rep_classes: chk.rep_classes,
            rep_skipped: chk.rep_skipped,
            rep_expansions: chk.rep_expansions,
            recovery_panics: chk.recovery_panics,
            recovery_hangs: chk.recovery_hangs,
            sandbox_retries: chk.sandbox_retries,
            fuel_exhausted: chk.fuel_exhausted,
            oracle_subtrees_pruned: chk.oracle_subtrees_pruned,
            inflight: chk.inflight_sizes.clone(),
            state_keys: chk.state_keys.clone(),
            reports: chk.reports.clone(),
            cov: check_kind.options().cov.snapshot(),
            trace: check_kind.options().trace.snapshot(),
            stopped: engine.stop,
        }
    }

    fn phase_cov(&self) -> HashSet<u64> {
        let mut cov = self.oracle_kind.options().cov.snapshot();
        cov.extend(self.record_kind.options().cov.snapshot());
        cov.extend(self.check_kind.options().cov.snapshot());
        cov
    }

    fn phase_trace(&self) -> BTreeSet<BugId> {
        let mut t = self.oracle_kind.options().trace.snapshot();
        t.extend(self.record_kind.options().trace.snapshot());
        t.extend(self.check_kind.options().trace.snapshot());
        t
    }
}

/// Convenience wrapper: tests one workload through `cache`, returning the
/// same `(outcome, coverage, trace)` triple as a fresh-sink
/// [`test_workload`] run.
pub fn test_workload_cached<K: FsKind>(
    cache: &mut PrefixCache<K>,
    w: &Workload,
    cfg: &TestConfig,
) -> (TestOutcome, HashSet<u64>, BTreeSet<BugId>) {
    cache.run(w, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ext4dax::Ext4DaxKind;
    use novafs::NovaKind;
    use vfs::fs::FsOptions;

    /// The whole cache — live forked file systems, log handles, replay
    /// checkpoints — must be movable to a scheduler worker thread.
    #[test]
    fn prefix_cache_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PrefixCache<NovaKind>>();
        assert_send::<PrefixCache<Ext4DaxKind>>();
    }

    fn fingerprint(o: &TestOutcome) -> (Vec<String>, Vec<u64>, Vec<usize>) {
        (
            o.reports.iter().map(|r| format!("{:?}", r)).collect(),
            vec![
                o.crash_points,
                o.crash_states,
                o.dedup_hits,
                o.memo_hits,
                o.rep_classes,
                o.rep_skipped,
                o.rep_expansions,
                o.recovery_panics,
                o.recovery_hangs,
                o.sandbox_retries,
                o.fuel_exhausted,
            ],
            o.inflight_sizes.clone(),
        )
    }

    fn uncached<K: FsKind>(kind: &K, w: &Workload, cfg: &TestConfig) -> TestOutcome {
        let fresh = kind.with_options(kind.options().with_fresh_sinks());
        test_workload(&fresh, w, cfg)
    }

    #[test]
    fn resumed_runs_match_uncached_bit_for_bit() {
        let kind = NovaKind { opts: FsOptions::default(), fortis: false };
        let cfg = TestConfig::default();
        let mut cache = PrefixCache::new(&kind, &cfg);
        let shared = vec![
            Op::Mkdir { path: "/A".into() },
            Op::Creat { path: "/A/foo".into() },
        ];
        let mk = |name: &str, tail: Op| {
            let mut ops = shared.clone();
            ops.push(tail);
            Workload::new(name, ops)
        };
        let ws = [
            mk("w0", Op::WritePath { path: "/A/foo".into(), off: 0, size: 600 }),
            mk("w1", Op::Link { old: "/A/foo".into(), new: "/A/bar".into() }),
            mk("w2", Op::Unlink { path: "/A/foo".into() }),
        ];
        for w in &ws {
            let (got, _, _) = cache.run(w, &cfg);
            let want = uncached(&kind, w, &cfg);
            assert_eq!(fingerprint(&got), fingerprint(&want), "{}", w.name);
            assert_eq!(got.traced_bugs, want.traced_bugs, "{}", w.name);
        }
        // The cache now holds w2, which shares the 2-op setup prefix.
        let (o1, _, _) = cache.run(&ws[1], &cfg);
        assert_eq!(o1.prefix_hits, 1);
        assert_eq!(o1.prefix_ops_saved, 2 * 2, "resumes past the shared setup ops");
        // An identical rerun resumes past every op.
        let (o1b, _, _) = cache.run(&ws[1], &cfg);
        assert_eq!(o1b.prefix_ops_saved, 2 * 3);
        assert_eq!(fingerprint(&o1), fingerprint(&o1b));
    }

    #[test]
    fn weak_fs_and_repeat_workloads_resume() {
        let kind = Ext4DaxKind::default();
        let cfg = TestConfig::default();
        let mut cache = PrefixCache::new(&kind, &cfg);
        let w = Workload::new(
            "ext4",
            vec![
                Op::Creat { path: "/f".into() },
                Op::WritePath { path: "/f".into(), off: 0, size: 1000 },
                Op::FsyncPath { path: "/f".into() },
            ],
        );
        let (a, cov_a, _) = cache.run(&w, &cfg);
        let (b, cov_b, _) = cache.run(&w, &cfg);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(cov_a, cov_b);
        let want = uncached(&kind, &w, &cfg);
        assert_eq!(fingerprint(&a), fingerprint(&want));
    }

    #[test]
    fn fallback_when_fork_unsupported() {
        let kind = splitfs::SplitFsKind { opts: FsOptions::default() };
        let cfg = TestConfig::default();
        let mut cache = PrefixCache::new(&kind, &cfg);
        let w = Workload::new(
            "split",
            vec![Op::Creat { path: "/f".into() }, Op::WritePath { path: "/f".into(), off: 0, size: 64 }],
        );
        let (got, _, _) = cache.run(&w, &cfg);
        assert!(!cache.is_active(), "SplitFS cannot fork; cache must disable itself");
        let want = uncached(&kind, &w, &cfg);
        assert_eq!(fingerprint(&got), fingerprint(&want));
    }

    #[test]
    fn stop_on_first_prefix_splices_the_find() {
        // The injected NOVA rename-atomicity bug fires inside the shared
        // prefix; the resumed workload must splice the identical
        // (re-labelled) violation and frozen counters.
        let kind = NovaKind {
            opts: FsOptions::with_bugs(vfs::BugSet::only(&[BugId::B04])),
            fortis: false,
        };
        let cfg = TestConfig { stop_on_first: true, ..TestConfig::default() };
        let mut cache = PrefixCache::new(&kind, &cfg);
        let base_ops = vec![
            Op::Creat { path: "/a".into() },
            Op::Rename { old: "/a".into(), new: "/b".into() },
        ];
        let mut ops2 = base_ops.clone();
        ops2.push(Op::Creat { path: "/c".into() });
        let w1 = Workload::new("first", base_ops);
        let w2 = Workload::new("second", ops2);
        let (o1, _, _) = cache.run(&w1, &cfg);
        let (o2, _, _) = cache.run(&w2, &cfg);
        let want1 = uncached(&kind, &w1, &cfg);
        let want2 = uncached(&kind, &w2, &cfg);
        assert_eq!(fingerprint(&o1), fingerprint(&want1));
        assert_eq!(fingerprint(&o2), fingerprint(&want2));
        // And a *differing* prefix after a stop still resumes correctly.
        let w3 = Workload::new(
            "third",
            vec![Op::Creat { path: "/a".into() }, Op::Mkdir { path: "/d".into() }],
        );
        let (o3, _, _) = cache.run(&w3, &cfg);
        let want3 = uncached(&kind, &w3, &cfg);
        assert_eq!(fingerprint(&o3), fingerprint(&want3));
    }
}
