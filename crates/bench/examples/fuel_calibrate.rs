//! Calibrates the `pmem::cost` simulated-time model against host wall-clock.
//!
//! Two sections:
//!
//! 1. **Primitives** — tight loops over one [`PmDevice`], measuring host
//!    nanoseconds per simulated persistence primitive next to the model's
//!    charge (read back exactly from `sim_cost()`), and the resulting
//!    sim-ns : wall-ns ratio. The model constants describe Optane, not the
//!    host, so the ratios are expected to differ per primitive — the table
//!    exists so the constants' doc comments in `pmem/src/cost.rs` can carry
//!    a dated host-side baseline.
//! 2. **Fuel** — arms a [`FuelGuard`] over a mixed persist loop on a
//!    [`CowDevice`] (the checker's device, whose metered ops burn fuel),
//!    prices one fuel unit in host wall time via [`fuel_remaining`], and
//!    reports what the default recovery budget
//!    (`chipmunk::config::DEFAULT_RECOVERY_FUEL`) implies as a worst-case
//!    wall-clock bound on a hung recovery.
//!
//! Arg 1 (default 2_000_000) sets the per-primitive iteration count.

use pmem::{fuel_remaining, CowDevice, FuelGuard, PmBackend, PmDevice, CACHE_LINE};
use std::time::Instant;

/// Runs `iters` repetitions of `op` against a fresh device, fencing every
/// 256 iterations to keep the in-flight write set bounded, and returns
/// (wall ns/op, sim ns/op) with the fence overhead charged to both sides.
fn measure(iters: u64, mut op: impl FnMut(&mut PmDevice, u64)) -> (f64, f64) {
    let mut dev = PmDevice::new(1 << 20);
    // Warm up page allocation and branch predictors outside the timed region.
    for i in 0..1024 {
        op(&mut dev, i);
    }
    dev.fence();
    let sim0 = dev.sim_cost().ns;
    let t = Instant::now();
    for i in 0..iters {
        op(&mut dev, i);
        if i % 256 == 255 {
            dev.fence();
        }
    }
    dev.fence();
    let wall = t.elapsed().as_nanos() as f64 / iters as f64;
    let sim = (dev.sim_cost().ns - sim0) as f64 / iters as f64;
    (wall, sim)
}

fn main() {
    let iters: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);
    let line = CACHE_LINE;
    // Cycle stores over a 256 KiB window so the working set exceeds L1/L2
    // but all lines stay allocated after warm-up.
    let slots = (1u64 << 18) / line;
    let word = [0xa5u8; 8];
    let buf = vec![0x5au8; line as usize];

    println!("primitive calibration ({iters} iters each; fence amortized every 256 ops)");
    println!("{:<22} {:>12} {:>12} {:>10}", "primitive", "wall ns/op", "sim ns/op", "sim/wall");
    let rows: Vec<(&str, (f64, f64))> = vec![
        (
            "store word (8B)",
            measure(iters, |d, i| d.store((i % slots) * line, &word)),
        ),
        (
            "nt line (64B)",
            measure(iters, |d, i| d.memcpy_nt((i % slots) * line, &buf)),
        ),
        (
            "store+flush line",
            measure(iters, |d, i| {
                let off = (i % slots) * line;
                d.store(off, &buf);
                d.flush(off, line);
            }),
        ),
        ("fence (empty)", measure(iters, |d, _| d.fence())),
        ("media-read line", measure(iters, |d, _| d.note_media_read(line))),
    ];
    for (name, (wall, sim)) in rows {
        println!("{name:<22} {wall:>12.1} {sim:>12.1} {:>10.2}", sim / wall);
    }

    // Fuel section: the checker's CowDevice burns fuel on metered ops. Price
    // one unit of fuel in host wall time with a representative persist mix
    // (store + flush + fence per line, the journaled-update inner loop).
    let base = vec![0u8; 1 << 20];
    let budget: u64 = u64::MAX / 2;
    let _g = FuelGuard::arm(Some(budget));
    let mut cow = CowDevice::new(&base);
    let t = Instant::now();
    let fuel_iters = iters.min(1_000_000);
    for i in 0..fuel_iters {
        let off = (i % slots) * line;
        cow.store(off, &buf);
        cow.flush(off, line);
        cow.fence();
    }
    let wall = t.elapsed().as_nanos() as f64;
    let burned = budget - fuel_remaining().expect("guard armed");
    let ns_per_unit = wall / burned as f64;
    let default_budget = chipmunk::config::DEFAULT_RECOVERY_FUEL as f64;
    println!();
    println!(
        "fuel: {} units over {} persist iters, {:.2} wall ns/unit",
        burned, fuel_iters, ns_per_unit
    );
    println!(
        "      DEFAULT_RECOVERY_FUEL = {} units -> ~{:.2} s wall bound per hung recovery",
        chipmunk::config::DEFAULT_RECOVERY_FUEL,
        default_budget * ns_per_unit / 1e9,
    );
}
