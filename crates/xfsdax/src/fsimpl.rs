//! The XFS-DAX file-system implementation.

use std::collections::HashMap;

use pmem::PmBackend;
use vfs::{
    covpoint,
    cov::fnv1a,
    fs::{FileSystem, FsOptions},
    pagecache::{BlockClass, PageCache},
    path::{components, is_path_prefix, split_parent},
    Cov, DirEntry, FallocMode, Fd, FileType, FsError, FsResult, Metadata, OpenFlags,
};

use crate::{
    extents::ExtentMap,
    layout::{
        ioff, itype, sboff, Geometry, RawDentry, BLOCK, DENTRY_NAME_MAX, DENTRY_SIZE, INODE_SIZE,
        MAGIC, MAX_FILE_BLOCKS, NEXTENTS, ROOT_INO,
    },
};

/// Log record tags.
const LOG_DESC: u64 = u64::from_le_bytes(*b"XLOGDESC");
const LOG_COMMIT: u64 = u64::from_le_bytes(*b"XLOGCMMT");

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: u64,
    offset: u64,
    append: bool,
}

/// The XFS-DAX-style file system (see the crate docs).
#[derive(Clone)]
pub struct XfsDax<D> {
    dev: D,
    geo: Geometry,
    cache: PageCache,
    fds: HashMap<u64, OpenFile>,
    next_fd: u64,
    cov: Cov,
    /// Freed blocks awaiting the commit that unreferences them (the same
    /// ordered-mode reuse rule the ext4-DAX sibling enforces).
    pending_free: Vec<u64>,
}

impl<D: PmBackend> XfsDax<D> {
    /// Formats `dev` and mounts the fresh file system.
    pub fn mkfs(mut dev: D, opts: &FsOptions) -> FsResult<Self> {
        let geo = Geometry::for_device(dev.len())?;
        let mut sb = vec![0u8; 128];
        let mut put = |o: u64, v: u64| sb[o as usize..o as usize + 8]
            .copy_from_slice(&v.to_le_bytes());
        put(sboff::MAGIC, MAGIC);
        put(sboff::TOTAL_BLOCKS, geo.total_blocks);
        put(sboff::INODE_COUNT, geo.inode_count);
        put(sboff::LOG_START, geo.log_start);
        put(sboff::LOG_BLOCKS, geo.log_blocks);
        put(sboff::NAGS, geo.nags);
        put(sboff::AG_SIZE, geo.ag_size);
        put(sboff::AGF_START, geo.agf_start);
        put(sboff::ITABLE, geo.itable);
        put(sboff::DATA_START, geo.data_start);
        put(sboff::LOG_SEQ, 0);
        dev.memcpy_nt(0, &sb);
        // AG bitmaps and the inode table start empty.
        dev.memset_nt(geo.agf_start * BLOCK, 0, (geo.data_start - geo.agf_start) * BLOCK);
        // Root inode.
        let root = geo.inode_off(ROOT_INO);
        let mut ri = [0u8; 16];
        ri[0..8].copy_from_slice(&itype::DIR.to_le_bytes());
        ri[8..16].copy_from_slice(&2u64.to_le_bytes());
        dev.memcpy_nt(root, &ri);
        dev.fence();
        Ok(XfsDax {
            dev,
            geo,
            cache: PageCache::new(),
            fds: HashMap::new(),
            next_fd: 3,
            cov: opts.cov.clone(),
            pending_free: Vec::new(),
        })
    }

    /// Mounts `dev`, replaying the log and reconciling the AG bitmaps.
    pub fn mount(mut dev: D, opts: &FsOptions) -> FsResult<Self> {
        if dev.read_u64(sboff::MAGIC) != MAGIC {
            return Err(FsError::Unmountable("bad superblock magic".into()));
        }
        let geo = Geometry {
            total_blocks: dev.read_u64(sboff::TOTAL_BLOCKS),
            inode_count: dev.read_u64(sboff::INODE_COUNT),
            log_start: dev.read_u64(sboff::LOG_START),
            log_blocks: dev.read_u64(sboff::LOG_BLOCKS),
            nags: dev.read_u64(sboff::NAGS),
            ag_size: dev.read_u64(sboff::AG_SIZE),
            agf_start: dev.read_u64(sboff::AGF_START),
            itable: dev.read_u64(sboff::ITABLE),
            data_start: dev.read_u64(sboff::DATA_START),
        };
        if geo.total_blocks * BLOCK > dev.len()
            || geo.data_start >= geo.total_blocks
            || geo.nags == 0
            || geo.ag_size == 0
        {
            return Err(FsError::Unmountable("superblock geometry out of range".into()));
        }
        let cov = opts.cov.clone();
        let replayed = Self::recover_log(&mut dev, &geo)?;
        covpoint!(cov, u64::from(replayed > 0));
        let mut fs = XfsDax {
            dev,
            geo,
            cache: PageCache::new(),
            fds: HashMap::new(),
            next_fd: 3,
            cov,
            pending_free: Vec::new(),
        };
        if fs.iget(ROOT_INO, ioff::FTYPE) != itype::DIR {
            return Err(FsError::Unmountable("root inode is not a directory".into()));
        }
        fs.reconcile_bitmaps();
        Ok(fs)
    }

    /// Returns the underlying device.
    pub fn into_device(self) -> D {
        self.dev
    }

    // ---- the write-ahead log ----

    fn log_capacity(geo: &Geometry) -> usize {
        ((BLOCK as usize - 24) / 8).min(geo.log_blocks as usize - 2)
    }

    fn log_checksum(blocks: &[(u64, Vec<u8>)]) -> u64 {
        let mut acc: u64 = 0x786c_6f67; // "xlog"
        for (blkno, data) in blocks {
            acc = acc.rotate_left(9) ^ blkno ^ fnv1a(data);
        }
        acc
    }

    /// Commits `blocks` (home block number, contents) through the log and
    /// checkpoints them home.
    fn log_commit(&mut self, blocks: &[(u64, Vec<u8>)]) -> FsResult<()> {
        let cap = Self::log_capacity(&self.geo).max(1);
        for chunk in blocks.chunks(cap) {
            self.log_commit_one(chunk)?;
        }
        Ok(())
    }

    fn log_commit_one(&mut self, blocks: &[(u64, Vec<u8>)]) -> FsResult<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        let seq = self.dev.read_u64(sboff::LOG_SEQ);
        let lbase = self.geo.log_start * BLOCK;
        let mut desc = vec![0u8; BLOCK as usize];
        desc[0..8].copy_from_slice(&LOG_DESC.to_le_bytes());
        desc[8..16].copy_from_slice(&seq.to_le_bytes());
        desc[16..24].copy_from_slice(&(blocks.len() as u64).to_le_bytes());
        for (i, (blkno, _)) in blocks.iter().enumerate() {
            desc[24 + i * 8..32 + i * 8].copy_from_slice(&blkno.to_le_bytes());
        }
        self.dev.memcpy_nt(lbase, &desc);
        for (i, (_, data)) in blocks.iter().enumerate() {
            self.dev.memcpy_nt(lbase + (1 + i as u64) * BLOCK, data);
        }
        self.dev.fence();
        let mut commit = [0u8; 24];
        commit[0..8].copy_from_slice(&LOG_COMMIT.to_le_bytes());
        commit[8..16].copy_from_slice(&seq.to_le_bytes());
        commit[16..24].copy_from_slice(&Self::log_checksum(blocks).to_le_bytes());
        self.dev.memcpy_nt(lbase + (1 + blocks.len() as u64) * BLOCK, &commit);
        self.dev.fence();
        for (blkno, data) in blocks {
            self.dev.memcpy_nt(blkno * BLOCK, data);
        }
        self.dev.fence();
        self.dev.persist_u64(sboff::LOG_SEQ, seq + 1);
        Ok(())
    }

    fn recover_log(dev: &mut D, geo: &Geometry) -> FsResult<u64> {
        let seq = dev.read_u64(sboff::LOG_SEQ);
        let lbase = geo.log_start * BLOCK;
        if dev.read_u64(lbase) != LOG_DESC || dev.read_u64(lbase + 8) != seq {
            return Ok(0);
        }
        let n = dev.read_u64(lbase + 16);
        if n == 0 || n > Self::log_capacity(geo) as u64 {
            return Err(FsError::Unmountable(format!(
                "log descriptor claims {n} blocks, exceeding log capacity"
            )));
        }
        let commit_off = lbase + (1 + n) * BLOCK;
        if dev.read_u64(commit_off) != LOG_COMMIT || dev.read_u64(commit_off + 8) != seq {
            return Ok(0); // uncommitted transaction: discard
        }
        let mut blocks = Vec::with_capacity(n as usize);
        for i in 0..n {
            let blkno = dev.read_u64(lbase + 24 + i * 8);
            if blkno >= geo.total_blocks {
                return Err(FsError::Unmountable(format!(
                    "log record targets out-of-range block {blkno}"
                )));
            }
            blocks.push((blkno, dev.read_vec(lbase + (1 + i) * BLOCK, BLOCK)));
        }
        if dev.read_u64(commit_off + 16) != Self::log_checksum(&blocks) {
            return Ok(0); // torn commit: discard
        }
        for (blkno, data) in &blocks {
            dev.memcpy_nt(blkno * BLOCK, data);
        }
        dev.fence();
        dev.persist_u64(sboff::LOG_SEQ, seq + 1);
        Ok(n)
    }

    // ---- inode access through the cache ----

    fn read_cached(&self, blk: u64, off: u64, buf: &mut [u8]) {
        if let Some(page) = self.cache.peek(blk) {
            buf.copy_from_slice(&page[off as usize..off as usize + buf.len()]);
        } else {
            self.dev.read(blk * BLOCK + off, buf);
        }
    }

    fn read_cached_u64(&self, blk: u64, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_cached(blk, off, &mut b);
        u64::from_le_bytes(b)
    }

    fn inode_loc(&self, ino: u64, field: u64) -> (u64, u64) {
        let off = self.geo.inode_off(ino) + field;
        (off / BLOCK, off % BLOCK)
    }

    fn iget(&self, ino: u64, field: u64) -> u64 {
        let (blk, off) = self.inode_loc(ino, field);
        self.read_cached_u64(blk, off)
    }

    fn iset(&mut self, ino: u64, field: u64, v: u64) {
        let (blk, off) = self.inode_loc(ino, field);
        self.cache.write_u64(&self.dev, blk, off, v, BlockClass::Meta);
    }

    fn ftype_of(&self, ino: u64) -> u64 {
        self.iget(ino, ioff::FTYPE)
    }

    fn valid_blk(&self, b: u64) -> Option<u64> {
        (b >= self.geo.data_start && b < self.geo.total_blocks).then_some(b)
    }

    fn valid_ino(&self, ino: u64) -> FsResult<u64> {
        if ino >= 1 && ino <= self.geo.inode_count {
            Ok(ino)
        } else {
            Err(FsError::Corrupt(format!("directory entry references invalid inode {ino}")))
        }
    }

    // ---- extent maps ----

    /// Decodes the inode's extent records, dropping corrupt ones (crash
    /// states can hold arbitrary bytes; garbage must surface as detectable
    /// inconsistency, not out-of-range access).
    fn ext_load(&self, ino: u64) -> ExtentMap {
        let n = (self.iget(ino, ioff::NEXTENTS) as usize).min(NEXTENTS);
        let mut map = ExtentMap::default();
        for i in 0..n {
            let base = ioff::EXTENTS + i as u64 * 24;
            let file_blk = self.iget(ino, base);
            let start = self.iget(ino, base + 8);
            let len = self.iget(ino, base + 16);
            let end_ok = len > 0
                && len <= MAX_FILE_BLOCKS
                && file_blk < MAX_FILE_BLOCKS
                && self.valid_blk(start).is_some()
                && start + len <= self.geo.total_blocks;
            if end_ok && (file_blk..file_blk + len).all(|fb| map.lookup(fb).is_none()) {
                for k in 0..len {
                    map.insert(file_blk + k, start + k);
                }
            }
        }
        map
    }

    fn ext_store(&mut self, ino: u64, map: &ExtentMap) -> FsResult<()> {
        if map.extents.len() > NEXTENTS {
            return Err(FsError::NoSpace); // EFBIG: inline extent map is full
        }
        self.iset(ino, ioff::NEXTENTS, map.extents.len() as u64);
        for (i, e) in map.extents.iter().enumerate() {
            let base = ioff::EXTENTS + i as u64 * 24;
            self.iset(ino, base, e.file_blk);
            self.iset(ino, base + 8, e.start);
            self.iset(ino, base + 16, e.len);
        }
        Ok(())
    }

    // ---- allocation groups ----

    fn ag_bit(&mut self, blk: u64) -> (u64, u64, u8) {
        let ag = self.geo.ag_of(blk);
        let (start, _) = self.geo.ag_range(ag);
        let idx = blk - start;
        (self.geo.agf_block(ag), idx / 8, 1u8 << (idx % 8))
    }

    fn is_allocated(&mut self, blk: u64) -> bool {
        let (ablk, byte, mask) = self.ag_bit(blk);
        let mut b = [0u8; 1];
        self.cache.read(&self.dev, ablk, byte, &mut b);
        b[0] & mask != 0
    }

    fn set_allocated(&mut self, blk: u64, on: bool) {
        let (ablk, byte, mask) = self.ag_bit(blk);
        let mut b = [0u8; 1];
        self.cache.read(&self.dev, ablk, byte, &mut b);
        if on {
            b[0] |= mask;
        } else {
            b[0] &= !mask;
        }
        self.cache.write(&self.dev, ablk, byte, &b, BlockClass::Meta);
    }

    /// Allocates one block, preferring `after + 1` (extent growth), then the
    /// hint AG, then any AG.
    fn alloc_block(&mut self, hint_ag: u64, after: Option<u64>) -> FsResult<u64> {
        if let Some(prev) = after {
            let next = prev + 1;
            if next < self.geo.total_blocks
                && next >= self.geo.data_start
                && self.geo.ag_of(next) == self.geo.ag_of(prev)
                && !self.is_allocated(next)
            {
                self.set_allocated(next, true);
                return Ok(next);
            }
        }
        for probe in 0..self.geo.nags {
            let ag = (hint_ag + probe) % self.geo.nags;
            let (start, end) = self.geo.ag_range(ag);
            for blk in start..end {
                if !self.is_allocated(blk) {
                    covpoint!(self.cov, probe);
                    self.set_allocated(blk, true);
                    return Ok(blk);
                }
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&mut self, blk: u64) {
        self.pending_free.push(blk);
        self.cache.evict(blk);
    }

    /// Mount-time AG-bitmap reconciliation (crash can strand bits whose
    /// freeing commit never landed).
    fn reconcile_bitmaps(&mut self) {
        let mut referenced = vec![false; self.geo.total_blocks as usize];
        for ino in 1..=self.geo.inode_count {
            if self.ftype_of(ino) == itype::FREE {
                continue;
            }
            for b in self.ext_load(ino).device_blocks() {
                referenced[b as usize] = true;
            }
            if let Some(x) = self.valid_blk(self.iget(ino, ioff::XATTR)) {
                referenced[x as usize] = true;
            }
        }
        for blk in self.geo.data_start..self.geo.total_blocks {
            if self.is_allocated(blk) != referenced[blk as usize] {
                covpoint!(self.cov, 7);
                self.set_allocated(blk, referenced[blk as usize]);
            }
        }
    }

    fn alloc_inode(&mut self, ftype: u64) -> FsResult<u64> {
        for ino in 1..=self.geo.inode_count {
            if self.iget(ino, ioff::FTYPE) == itype::FREE {
                let (blk, off) = self.inode_loc(ino, 0);
                self.cache.write(
                    &self.dev,
                    blk,
                    off,
                    &vec![0u8; INODE_SIZE as usize],
                    BlockClass::Meta,
                );
                self.iset(ino, ioff::FTYPE, ftype);
                self.iset(ino, ioff::NLINK, if ftype == itype::DIR { 2 } else { 1 });
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    // ---- file data ----

    fn ensure_block(&mut self, ino: u64, idx: u64) -> FsResult<u64> {
        let mut map = self.ext_load(ino);
        if let Some(b) = map.lookup(idx) {
            return Ok(b);
        }
        // Grow contiguously after the block backing idx-1 when possible.
        let after = idx.checked_sub(1).and_then(|p| map.lookup(p));
        let blk = self.alloc_block(ino % self.geo.nags, after)?;
        self.cache.zero_block(blk, BlockClass::Data);
        map.insert(idx, blk);
        match self.ext_store(ino, &map) {
            Ok(()) => Ok(blk),
            Err(e) => {
                // Roll the allocation back; the map on disk is unchanged.
                self.set_allocated(blk, false);
                self.cache.evict(blk);
                Err(e)
            }
        }
    }

    fn write_at(&mut self, ino: u64, off: u64, data: &[u8], class: BlockClass) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let end = off + data.len() as u64;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let cur = off + pos as u64;
            let idx = cur / BLOCK;
            let in_blk = cur % BLOCK;
            let n = ((BLOCK - in_blk) as usize).min(data.len() - pos);
            let blk = self.ensure_block(ino, idx)?;
            self.cache.write(&self.dev, blk, in_blk, &data[pos..pos + n], class);
            pos += n;
        }
        if end > self.iget(ino, ioff::SIZE) {
            self.iset(ino, ioff::SIZE, end);
        }
        Ok(data.len())
    }

    fn read_at(&self, ino: u64, off: u64, buf: &mut [u8]) -> usize {
        let size = self.iget(ino, ioff::SIZE).min(MAX_FILE_BLOCKS * BLOCK);
        if off >= size {
            return 0;
        }
        let map = self.ext_load(ino);
        let n = buf.len().min((size - off) as usize);
        let mut pos = 0usize;
        while pos < n {
            let cur = off + pos as u64;
            let idx = cur / BLOCK;
            let in_blk = cur % BLOCK;
            let step = ((BLOCK - in_blk) as usize).min(n - pos);
            match map.lookup(idx) {
                Some(b) => self.read_cached(b, in_blk, &mut buf[pos..pos + step]),
                None => buf[pos..pos + step].fill(0),
            }
            pos += step;
        }
        n
    }

    // ---- directories (shared slot format) ----

    fn dir_slots(&self, dir: u64) -> u64 {
        let max = MAX_FILE_BLOCKS * (BLOCK / DENTRY_SIZE);
        (self.iget(dir, ioff::SIZE) / DENTRY_SIZE).min(max)
    }

    fn dentry_at(&self, dir: u64, slot: u64) -> Option<RawDentry> {
        let (idx, off) = Geometry::slot_loc(slot);
        let blk = self.ext_load(dir).lookup(idx)?;
        let mut buf = [0u8; DENTRY_SIZE as usize];
        self.read_cached(blk, off, &mut buf);
        RawDentry::decode(&buf)
    }

    fn dir_lookup(&self, dir: u64, name: &str) -> Option<(u64, u64)> {
        (0..self.dir_slots(dir))
            .find_map(|s| self.dentry_at(dir, s).filter(|d| d.name == name).map(|d| (s, d.ino)))
    }

    fn dir_live_count(&self, dir: u64) -> u64 {
        (0..self.dir_slots(dir)).filter(|&s| self.dentry_at(dir, s).is_some()).count() as u64
    }

    fn dir_insert(&mut self, dir: u64, name: &str, ino: u64) -> FsResult<()> {
        if name.len() > DENTRY_NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        let enc = RawDentry { ino, name: name.to_string() }.encode();
        for slot in 0..self.dir_slots(dir) {
            if self.dentry_at(dir, slot).is_none() {
                let (idx, off) = Geometry::slot_loc(slot);
                let blk = self.ensure_block(dir, idx)?;
                self.cache.write(&self.dev, blk, off, &enc, BlockClass::Meta);
                return Ok(());
            }
        }
        let slot = self.dir_slots(dir);
        let (idx, off) = Geometry::slot_loc(slot);
        let blk = self.ensure_block(dir, idx)?;
        self.cache.write(&self.dev, blk, off, &enc, BlockClass::Meta);
        self.iset(dir, ioff::SIZE, (slot + 1) * DENTRY_SIZE);
        Ok(())
    }

    fn dir_remove_slot(&mut self, dir: u64, slot: u64) {
        let (idx, off) = Geometry::slot_loc(slot);
        if let Some(blk) = self.ext_load(dir).lookup(idx) {
            self.cache.write(&self.dev, blk, off, &[0u8; DENTRY_SIZE as usize], BlockClass::Meta);
        }
    }

    // ---- path resolution ----

    fn resolve(&self, path: &str) -> FsResult<u64> {
        let mut cur = ROOT_INO;
        for c in components(path)? {
            if self.ftype_of(cur) != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = self.valid_ino(self.dir_lookup(cur, c).ok_or(FsError::NotFound)?.1)?;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(u64, &'p str)> {
        let (parents, name) = split_parent(path)?;
        let mut cur = ROOT_INO;
        for c in parents {
            if self.ftype_of(cur) != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = self.valid_ino(self.dir_lookup(cur, c).ok_or(FsError::NotFound)?.1)?;
        }
        if self.ftype_of(cur) != itype::DIR {
            return Err(FsError::NotDir);
        }
        Ok((cur, name))
    }

    // ---- deletion ----

    fn open_count(&self, ino: u64) -> usize {
        self.fds.values().filter(|f| f.ino == ino).count()
    }

    fn release_inode(&mut self, ino: u64) {
        let map = self.ext_load(ino);
        let blocks: Vec<u64> = map.device_blocks().collect();
        for b in blocks {
            self.free_block(b);
        }
        if let Some(x) = self.valid_blk(self.iget(ino, ioff::XATTR)) {
            self.free_block(x);
        }
        let (blk, off) = self.inode_loc(ino, 0);
        self.cache.write(&self.dev, blk, off, &vec![0u8; INODE_SIZE as usize], BlockClass::Meta);
    }

    fn drop_if_unused(&mut self, ino: u64) {
        if self.iget(ino, ioff::NLINK) == 0 && self.open_count(ino) == 0 {
            self.release_inode(ino);
        }
    }

    // ---- commit machinery ----

    fn writeback_file_data(&mut self, ino: u64) {
        let map = self.ext_load(ino);
        let dirty: Vec<u64> =
            map.device_blocks().filter(|&b| self.cache.is_dirty(b)).collect();
        for b in dirty {
            let data = self.cache.block(&self.dev, b).to_vec();
            self.dev.memcpy_nt(b * BLOCK, &data);
            self.cache.mark_clean(b);
        }
        self.dev.fence();
    }

    fn writeback_all_data(&mut self) {
        for b in self.cache.dirty_of(BlockClass::Data) {
            let data = self.cache.block(&self.dev, b).to_vec();
            self.dev.memcpy_nt(b * BLOCK, &data);
            self.cache.mark_clean(b);
        }
        self.dev.fence();
    }

    fn commit_metadata(&mut self) -> FsResult<()> {
        let pf = std::mem::take(&mut self.pending_free);
        for b in pf {
            self.set_allocated(b, false);
        }
        let dirty = self.cache.dirty_of(BlockClass::Meta);
        if dirty.is_empty() {
            return Ok(());
        }
        let blocks: Vec<(u64, Vec<u8>)> = dirty
            .iter()
            .map(|&b| (b, self.cache.block(&self.dev, b).to_vec()))
            .collect();
        self.log_commit(&blocks)?;
        for b in dirty {
            self.cache.mark_clean(b);
        }
        Ok(())
    }
}

impl<D: PmBackend> FileSystem for XfsDax<D> {
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        covpoint!(self.cov);
        let ino = match self.resolve(path) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(FsError::Exists);
                }
                if self.ftype_of(ino) == itype::DIR {
                    return Err(FsError::IsDir);
                }
                if flags.trunc {
                    let mut map = self.ext_load(ino);
                    for b in map.truncate_from(0) {
                        self.free_block(b);
                    }
                    self.ext_store(ino, &map)?;
                    self.iset(ino, ioff::SIZE, 0);
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                covpoint!(self.cov);
                let (parent, name) = self.resolve_parent(path)?;
                let ino = self.alloc_inode(itype::FILE)?;
                self.dir_insert(parent, name, ino)?;
                ino
            }
            Err(e) => return Err(e),
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, OpenFile { ino, offset: 0, append: flags.append });
        Ok(Fd(fd))
    }

    fn close(&mut self, fd: Fd) -> FsResult<()> {
        let of = self.fds.remove(&fd.0).ok_or(FsError::BadFd)?;
        self.drop_if_unused(of.ino);
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(parent, name).is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_inode(itype::DIR)?;
        self.dir_insert(parent, name, ino)?;
        self.iset(parent, ioff::NLINK, self.iget(parent, ioff::NLINK) + 1);
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let (slot, ino) = self.dir_lookup(parent, name).ok_or(FsError::NotFound)?;
        let ino = self.valid_ino(ino)?;
        if self.ftype_of(ino) != itype::DIR {
            return Err(FsError::NotDir);
        }
        if self.dir_live_count(ino) != 0 {
            return Err(FsError::NotEmpty);
        }
        self.dir_remove_slot(parent, slot);
        self.release_inode(ino);
        self.iset(parent, ioff::NLINK, self.iget(parent, ioff::NLINK) - 1);
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let (slot, ino) = self.dir_lookup(parent, name).ok_or(FsError::NotFound)?;
        let ino = self.valid_ino(ino)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        self.dir_remove_slot(parent, slot);
        self.iset(ino, ioff::NLINK, self.iget(ino, ioff::NLINK) - 1);
        self.drop_if_unused(ino);
        Ok(())
    }

    fn link(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(old)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_lookup(parent, name).is_some() {
            return Err(FsError::Exists);
        }
        self.iset(ino, ioff::NLINK, self.iget(ino, ioff::NLINK) + 1);
        self.dir_insert(parent, name, ino)
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let src_ino = self.resolve(old)?;
        let src_is_dir = self.ftype_of(src_ino) == itype::DIR;
        if src_is_dir && is_path_prefix(old, new) && old != new {
            return Err(FsError::Invalid);
        }
        if old == new {
            return Ok(());
        }
        let (src_parent, src_name) = self.resolve_parent(old)?;
        let (dst_parent, dst_name) = self.resolve_parent(new)?;
        let (src_slot, _) = self.dir_lookup(src_parent, src_name).ok_or(FsError::NotFound)?;

        if let Some((dst_slot, dst_ino)) = self.dir_lookup(dst_parent, dst_name) {
            let dst_ino = self.valid_ino(dst_ino)?;
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = self.ftype_of(dst_ino) == itype::DIR;
            match (src_is_dir, dst_is_dir) {
                (true, true) => {
                    if self.dir_live_count(dst_ino) != 0 {
                        return Err(FsError::NotEmpty);
                    }
                    self.dir_remove_slot(dst_parent, dst_slot);
                    self.release_inode(dst_ino);
                    self.iset(dst_parent, ioff::NLINK, self.iget(dst_parent, ioff::NLINK) - 1);
                }
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                (false, false) => {
                    self.dir_remove_slot(dst_parent, dst_slot);
                    self.iset(dst_ino, ioff::NLINK, self.iget(dst_ino, ioff::NLINK) - 1);
                    self.drop_if_unused(dst_ino);
                }
            }
        }
        self.dir_remove_slot(src_parent, src_slot);
        self.dir_insert(dst_parent, dst_name, src_ino)?;
        if src_is_dir && src_parent != dst_parent {
            self.iset(src_parent, ioff::NLINK, self.iget(src_parent, ioff::NLINK) - 1);
            self.iset(dst_parent, ioff::NLINK, self.iget(dst_parent, ioff::NLINK) + 1);
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(path)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        if size.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let old = self.iget(ino, ioff::SIZE);
        if size < old {
            let keep = size.div_ceil(BLOCK);
            let mut map = self.ext_load(ino);
            for b in map.truncate_from(keep) {
                self.free_block(b);
            }
            // Zero the kept boundary tail so later extension reads zeros.
            if !size.is_multiple_of(BLOCK) {
                if let Some(b) = map.lookup(size / BLOCK) {
                    let in_blk = size % BLOCK;
                    let zeros = vec![0u8; (BLOCK - in_blk) as usize];
                    self.cache.write(&self.dev, b, in_blk, &zeros, BlockClass::Data);
                }
            }
            self.ext_store(ino, &map)?;
        }
        self.iset(ino, ioff::SIZE, size);
        Ok(())
    }

    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off: u64, len: u64) -> FsResult<()> {
        covpoint!(self.cov);
        if len == 0 {
            return Err(FsError::Invalid);
        }
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        let end = off.checked_add(len).ok_or(FsError::Invalid)?;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        match mode {
            FallocMode::Allocate | FallocMode::KeepSize => {
                for idx in off / BLOCK..end.div_ceil(BLOCK) {
                    self.ensure_block(ino, idx)?;
                }
                if mode == FallocMode::Allocate && end > self.iget(ino, ioff::SIZE) {
                    self.iset(ino, ioff::SIZE, end);
                }
            }
            FallocMode::ZeroRange | FallocMode::PunchHole => {
                let size = self.iget(ino, ioff::SIZE);
                let z_end = end.min(size);
                let mut cur = off;
                while cur < z_end {
                    let idx = cur / BLOCK;
                    let in_blk = cur % BLOCK;
                    let n = (BLOCK - in_blk).min(z_end - cur);
                    let mut map = self.ext_load(ino);
                    if mode == FallocMode::PunchHole && in_blk == 0 && n == BLOCK {
                        if let Some(b) = map.remove(idx) {
                            // A split may overflow the inline map; fall back
                            // to zeroing in place.
                            if self.ext_store(ino, &map).is_ok() {
                                self.free_block(b);
                            } else {
                                let zeros = vec![0u8; BLOCK as usize];
                                self.cache.write(&self.dev, b, 0, &zeros, BlockClass::Data);
                            }
                        }
                    } else if let Some(b) = map.lookup(idx) {
                        self.cache.write(
                            &self.dev,
                            b,
                            in_blk,
                            &vec![0u8; n as usize],
                            BlockClass::Data,
                        );
                    }
                    cur += n;
                }
            }
        }
        Ok(())
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let of = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        let off = if of.append { self.iget(of.ino, ioff::SIZE) } else { of.offset };
        let n = self.write_at(of.ino, off, data, BlockClass::Data)?;
        if let Some(f) = self.fds.get_mut(&fd.0) {
            f.offset = off + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        self.write_at(ino, off, data, BlockClass::Data)
    }

    fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        Ok(self.read_at(ino, off, buf))
    }

    fn fsync(&mut self, fd: Fd) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        self.writeback_file_data(ino);
        self.commit_metadata()
    }

    fn sync(&mut self) -> FsResult<()> {
        covpoint!(self.cov);
        self.writeback_all_data();
        self.commit_metadata()
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve(path)?;
        let ftype = self.ftype_of(ino);
        Ok(Metadata {
            ino,
            ftype: if ftype == itype::DIR { FileType::Directory } else { FileType::Regular },
            nlink: self.iget(ino, ioff::NLINK),
            size: if ftype == itype::DIR {
                self.dir_live_count(ino)
            } else {
                self.iget(ino, ioff::SIZE)
            },
            blocks: if ftype == itype::DIR { 1 } else { self.ext_load(ino).mapped_blocks() },
        })
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        if self.ftype_of(ino) != itype::DIR {
            return Err(FsError::NotDir);
        }
        let mut out = Vec::new();
        for slot in 0..self.dir_slots(ino) {
            if let Some(d) = self.dentry_at(ino, slot) {
                let child = self.valid_ino(d.ino)?;
                let ftype = if self.ftype_of(child) == itype::DIR {
                    FileType::Directory
                } else {
                    FileType::Regular
                };
                out.push(DirEntry { name: d.name, ino: child, ftype });
            }
        }
        out.sort();
        Ok(out)
    }

    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        let size = self.iget(ino, ioff::SIZE);
        if size > MAX_FILE_BLOCKS * BLOCK {
            return Err(FsError::Corrupt(format!(
                "inode {ino} size {size} exceeds the maximum file size"
            )));
        }
        let mut buf = vec![0u8; size as usize];
        self.read_at(ino, 0, &mut buf);
        Ok(buf)
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        covpoint!(self.cov);
        if name.len() > 30 || value.len() > 88 {
            return Err(FsError::Invalid);
        }
        let ino = self.resolve(path)?;
        let mut xblk = self.iget(ino, ioff::XATTR);
        if self.valid_blk(xblk).is_none() {
            xblk = self.alloc_block(ino % self.geo.nags, None)?;
            self.cache.zero_block(xblk, BlockClass::Meta);
            self.iset(ino, ioff::XATTR, xblk);
        }
        let mut free_slot = None;
        for slot in 0..(BLOCK / 120) {
            let off = slot * 120;
            let mut hdr = [0u8; 32];
            self.cache.read(&self.dev, xblk, off, &mut hdr);
            let nlen = hdr[0] as usize;
            if nlen == 0 {
                free_slot.get_or_insert(slot);
                continue;
            }
            if &hdr[2..2 + nlen.min(30)] == name.as_bytes() {
                free_slot = Some(slot);
                break;
            }
        }
        let slot = free_slot.ok_or(FsError::NoSpace)?;
        let mut entry = [0u8; 120];
        entry[0] = name.len() as u8;
        entry[1] = value.len() as u8;
        entry[2..2 + name.len()].copy_from_slice(name.as_bytes());
        entry[32..32 + value.len()].copy_from_slice(value);
        self.cache.write(&self.dev, xblk, slot * 120, &entry, BlockClass::Meta);
        Ok(())
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(path)?;
        let Some(xblk) = self.valid_blk(self.iget(ino, ioff::XATTR)) else {
            return Err(FsError::NotFound);
        };
        for slot in 0..(BLOCK / 120) {
            let off = slot * 120;
            let mut hdr = [0u8; 32];
            self.cache.read(&self.dev, xblk, off, &mut hdr);
            let nlen = hdr[0] as usize;
            if nlen != 0 && &hdr[2..2 + nlen.min(30)] == name.as_bytes() {
                self.cache.write(&self.dev, xblk, off, &[0u8; 120], BlockClass::Meta);
                return Ok(());
            }
        }
        Err(FsError::NotFound)
    }
}
