//! Property-based tests of the epoch persistence model — the foundation
//! every crash state in the framework is built on.

use proptest::prelude::*;

use pmem::{PmBackend, PmDevice};

const DEV: u64 = 64 * 1024;

/// One operation against the device.
#[derive(Debug, Clone)]
enum DevOp {
    Store { off: u64, len: usize, val: u8 },
    Nt { off: u64, len: usize, val: u8 },
    Flush { off: u64, len: u64 },
    Fence,
}

fn dev_op() -> impl Strategy<Value = DevOp> {
    prop_oneof![
        (0u64..DEV - 512, 1usize..256, any::<u8>())
            .prop_map(|(off, len, val)| DevOp::Store { off, len, val }),
        (0u64..DEV - 512, 1usize..256, any::<u8>())
            .prop_map(|(off, len, val)| DevOp::Nt { off, len, val }),
        (0u64..DEV - 512, 1u64..512).prop_map(|(off, len)| DevOp::Flush { off, len }),
        Just(DevOp::Fence),
    ]
}

fn apply(dev: &mut PmDevice, op: &DevOp) {
    match op {
        DevOp::Store { off, len, val } => dev.store(*off, &vec![*val; *len]),
        DevOp::Nt { off, len, val } => dev.memcpy_nt(*off, &vec![*val; *len]),
        DevOp::Flush { off, len } => dev.flush(*off, *len),
        DevOp::Fence => dev.fence(),
    }
}

proptest! {
    /// After a final flush-everything + fence, the persistent image equals
    /// the logical view: nothing is ever lost once properly persisted.
    #[test]
    fn full_persistence_converges(ops in proptest::collection::vec(dev_op(), 0..60)) {
        let mut dev = PmDevice::new(DEV);
        for op in &ops {
            apply(&mut dev, op);
        }
        dev.flush(0, DEV);
        dev.fence();
        prop_assert_eq!(dev.persistent_image(), dev.view());
    }

    /// A crash image persisting the full in-flight set equals a fence; a
    /// crash persisting nothing equals the current persistent image. Any
    /// other subset only differs from the base at in-flight destinations.
    #[test]
    fn crash_subsets_bounded_by_inflight(
        ops in proptest::collection::vec(dev_op(), 0..60),
        subset_mask in any::<u64>(),
    ) {
        let mut dev = PmDevice::new(DEV);
        for op in &ops {
            apply(&mut dev, op);
        }
        let none = dev.crash_image_with(&[]);
        prop_assert_eq!(&none[..], dev.persistent_image());

        let n = dev.inflight().len();
        let subset: Vec<usize> = (0..n).filter(|i| subset_mask >> (i % 64) & 1 == 1).collect();
        let img = dev.crash_image_with(&subset);
        // Bytes outside every in-flight range are untouched.
        let mut touched = vec![false; DEV as usize];
        for w in dev.inflight() {
            for b in w.off..w.off + w.data.len() as u64 {
                touched[b as usize] = true;
            }
        }
        for i in 0..DEV as usize {
            if !touched[i] {
                prop_assert_eq!(img[i], dev.persistent_image()[i], "byte {} changed", i);
            }
        }

        // The full set then a fence agree.
        let full: Vec<usize> = (0..n).collect();
        let all_img = dev.crash_image_with(&full);
        let mut fenced = dev.clone();
        fenced.fence();
        prop_assert_eq!(&all_img[..], fenced.persistent_image());
    }

    /// Monotonicity: once a byte is persistent and no further write covers
    /// it, every later crash image preserves it.
    #[test]
    fn persistence_is_monotonic(
        pre in proptest::collection::vec(dev_op(), 0..30),
        post in proptest::collection::vec(dev_op(), 0..30),
    ) {
        let mut dev = PmDevice::new(DEV);
        for op in &pre {
            apply(&mut dev, op);
        }
        dev.flush(0, DEV);
        dev.fence();
        let settled = dev.persistent_image().to_vec();

        // Track which bytes the post ops may write.
        let mut may_write = vec![false; DEV as usize];
        for op in &post {
            if let DevOp::Store { off, len, .. } | DevOp::Nt { off, len, .. } = op {
                for b in *off..*off + *len as u64 {
                    may_write[b as usize] = true;
                }
            }
            apply(&mut dev, op);
        }
        let img = dev.crash_image_where(|i| i % 2 == 0);
        for i in 0..DEV as usize {
            if !may_write[i] {
                prop_assert_eq!(img[i], settled[i], "untouched byte {} corrupted", i);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The gray-box log is faithful: replaying every logged write onto a
    /// zeroed image reproduces the device's persistent image exactly, for
    /// arbitrary operation sequences ending in a global flush + fence.
    #[test]
    fn log_replay_matches_device(ops in proptest::collection::vec(dev_op(), 0..60)) {
        use pmlog::{LogHandle, LoggingPm};
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(DEV), log.clone());
        for op in &ops {
            match op {
                DevOp::Store { off, len, val } => lp.store(*off, &vec![*val; *len]),
                DevOp::Nt { off, len, val } => lp.memcpy_nt(*off, &vec![*val; *len]),
                DevOp::Flush { off, len } => lp.flush(*off, *len),
                DevOp::Fence => lp.fence(),
            }
        }
        lp.flush(0, DEV);
        lp.fence();
        let img = pmlog::materialize_full(&log.snapshot(), DEV);
        prop_assert_eq!(&img[..], lp.inner().persistent_image());
    }
}
