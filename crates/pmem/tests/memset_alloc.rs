//! Regression test: `CowDevice::memset_nt` must not allocate a buffer
//! proportional to the memset length (it used to build `vec![val; len]` per
//! call, which dominated large fallocate replays).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pmem::{CowDevice, PmBackend, PmDevice};

/// System allocator wrapper recording the largest single allocation and the
/// total bytes requested.
struct MaxTracking;

static MAX_ALLOC: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOC: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for MaxTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        MAX_ALLOC.fetch_max(layout.size(), Ordering::Relaxed);
        TOTAL_ALLOC.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        MAX_ALLOC.fetch_max(new_size, Ordering::Relaxed);
        TOTAL_ALLOC.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: MaxTracking = MaxTracking;

const LEN: u64 = 4 * 1024 * 1024;

#[test]
fn cow_memset_allocates_pages_not_the_whole_range() {
    let base = vec![0u8; LEN as usize];
    let mut cow = CowDevice::new(&base);
    MAX_ALLOC.store(0, Ordering::Relaxed);
    cow.memset_nt(0, 0xab, LEN);
    let peak = MAX_ALLOC.load(Ordering::Relaxed);
    // Overlay pages are 4 KiB; allow generous slack for HashMap growth, but
    // nothing near the 4 MiB the old `vec![val; len]` implementation hit.
    assert!(
        peak <= 256 * 1024,
        "memset_nt allocated {peak} bytes in one request (len {LEN})"
    );
    // The write itself must still be correct, including an unaligned tail.
    let mut buf = vec![0u8; 8192];
    cow.read(LEN - 8192, &mut buf);
    assert!(buf.iter().all(|&b| b == 0xab));
    cow.memset_nt(100, 7, 5000);
    let mut buf = vec![0u8; 5000];
    cow.read(100, &mut buf);
    assert!(buf.iter().all(|&b| b == 7));
}

#[test]
#[should_panic(expected = "out of range")]
fn cow_memset_out_of_range_panics_before_writing() {
    let base = vec![0u8; 4096];
    let mut cow = CowDevice::new(&base);
    cow.memset_nt(4000, 1, 200);
}

#[test]
fn cow_page_fault_allocates_one_page_without_zero_prefill() {
    // `page_mut` used to zero-fill a fresh 4 KiB buffer and then overwrite
    // the whole thing with the base copy. The page is now built from the
    // base slice directly, so faulting a page costs exactly one page-sized
    // allocation (plus small HashMap bookkeeping), with no transient second
    // buffer and no reallocation.
    let base = vec![0x5au8; 64 * 4096];
    let mut cow = CowDevice::new(&base);
    cow.store(0, &[1]); // warm up the overlay HashMap
    let pages = 32usize;
    TOTAL_ALLOC.store(0, Ordering::Relaxed);
    MAX_ALLOC.store(0, Ordering::Relaxed);
    for p in 1..=pages {
        cow.store(p as u64 * 4096, &[2]); // one fresh page fault each
    }
    let total = TOTAL_ALLOC.load(Ordering::Relaxed);
    let peak = MAX_ALLOC.load(Ordering::Relaxed);
    // One 4096-byte buffer per faulted page + bounded map growth slack.
    assert!(
        total <= pages * 4096 + 16 * 1024,
        "{pages} page faults allocated {total} bytes in total"
    );
    assert!(peak <= 16 * 1024, "largest single allocation was {peak} bytes");
    // Faulted pages must still carry the base content.
    let mut b = [0u8; 2];
    cow.read(4096, &mut b);
    assert_eq!(b, [2, 0x5a]);
}

#[test]
fn device_memset_still_records_one_inflight_write() {
    // PmDevice::memset_nt legitimately allocates the in-flight record (the
    // log needs the bytes), but only once — and the write must stay a single
    // logical in-flight entry so crash-state enumeration is unchanged.
    let mut dev = PmDevice::new(64 * 1024);
    dev.memset_nt(0, 9, 64 * 1024);
    assert_eq!(dev.inflight().len(), 1);
    let mut buf = vec![0u8; 64 * 1024];
    dev.read(0, &mut buf);
    assert!(buf.iter().all(|&b| b == 9));
}
