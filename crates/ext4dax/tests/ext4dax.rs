//! Functional and crash tests for the ext4-DAX analogue.

use ext4dax::{Ext4Dax, Ext4DaxKind};
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    model::ModelFs,
    FsError, FileType, OpenFlags,
};

const DEV: u64 = 8 * 1024 * 1024;

fn fresh() -> Ext4Dax<PmDevice> {
    Ext4Dax::mkfs(PmDevice::new(DEV), &FsOptions::default()).unwrap()
}

/// Crashes the file system right now (dropping everything not yet fenced)
/// and remounts on the resulting image.
fn crash_and_remount(fs: Ext4Dax<PmDevice>) -> Result<Ext4Dax<PmDevice>, FsError> {
    let dev = fs.into_device();
    let img = dev.persistent_image().to_vec();
    Ext4Dax::mount(PmDevice::from_image(img), &FsOptions::default())
}

#[test]
fn create_write_read() {
    let mut fs = fresh();
    let fd = fs.open("/foo", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, b"hello world").unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.read_file("/foo").unwrap(), b"hello world");
    let st = fs.stat("/foo").unwrap();
    assert_eq!(st.size, 11);
    assert_eq!(st.ftype, FileType::Regular);
    assert_eq!(st.nlink, 1);
}

#[test]
fn directories_and_links() {
    let mut fs = fresh();
    fs.mkdir("/d").unwrap();
    fs.creat("/d/f").unwrap();
    fs.link("/d/f", "/d/g").unwrap();
    assert_eq!(fs.stat("/d/f").unwrap().nlink, 2);
    assert_eq!(fs.stat("/d").unwrap().nlink, 2);
    fs.mkdir("/d/sub").unwrap();
    assert_eq!(fs.stat("/d").unwrap().nlink, 3);
    let names: Vec<String> = fs.readdir("/d").unwrap().into_iter().map(|e| e.name).collect();
    assert_eq!(names, vec!["f", "g", "sub"]);
    assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
    fs.unlink("/d/f").unwrap();
    fs.unlink("/d/g").unwrap();
    fs.rmdir("/d/sub").unwrap();
    fs.rmdir("/d").unwrap();
    assert_eq!(fs.stat("/d"), Err(FsError::NotFound));
}

#[test]
fn rename_replaces_target() {
    let mut fs = fresh();
    let fd = fs.open("/a", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, b"AAA").unwrap();
    fs.close(fd).unwrap();
    fs.creat("/b").unwrap();
    fs.rename("/a", "/b").unwrap();
    assert_eq!(fs.stat("/a"), Err(FsError::NotFound));
    assert_eq!(fs.read_file("/b").unwrap(), b"AAA");
}

#[test]
fn sync_persists_remount_sees_state() {
    let mut fs = fresh();
    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 100, b"persistent").unwrap();
    fs.close(fd).unwrap();
    fs.sync().unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.stat("/d").unwrap().ftype, FileType::Directory);
    let data = fs2.read_file("/d/f").unwrap();
    assert_eq!(data.len(), 110);
    assert_eq!(&data[100..], b"persistent");
}

#[test]
fn unsynced_state_lost_but_fs_mountable() {
    let mut fs = fresh();
    fs.creat("/gone").unwrap();
    // No sync: a crash loses the file, which weak guarantees allow.
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.stat("/gone"), Err(FsError::NotFound));
    assert_eq!(fs2.readdir("/").unwrap().len(), 0);
}

#[test]
fn fsync_persists_one_file() {
    let mut fs = fresh();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, b"synced data").unwrap();
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.read_file("/f").unwrap(), b"synced data");
}

#[test]
fn truncate_then_extend_reads_zeros() {
    let mut fs = fresh();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[7u8; 5000]).unwrap();
    fs.close(fd).unwrap();
    fs.truncate("/f", 100).unwrap();
    fs.truncate("/f", 200).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..100], &[7u8; 100][..]);
    assert_eq!(&data[100..], &[0u8; 100][..]);
}

#[test]
fn multiblock_and_indirect_files() {
    let mut fs = fresh();
    let fd = fs.open("/big", OpenFlags::CREAT_TRUNC).unwrap();
    // Beyond the 12 direct blocks (48 KiB) into the indirect range.
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    fs.pwrite(fd, 0, &data).unwrap();
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.read_file("/big").unwrap(), data);
}

#[test]
fn xattrs_roundtrip() {
    let mut fs = fresh();
    fs.creat("/f").unwrap();
    fs.setxattr("/f", "user.tag", b"value1").unwrap();
    fs.setxattr("/f", "user.other", b"v2").unwrap();
    fs.removexattr("/f", "user.tag").unwrap();
    assert_eq!(fs.removexattr("/f", "user.tag"), Err(FsError::NotFound));
    assert_eq!(fs.removexattr("/f", "user.missing"), Err(FsError::NotFound));
}

#[test]
fn append_mode_and_offsets() {
    let mut fs = fresh();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.write(fd, b"one").unwrap();
    fs.write(fd, b"two").unwrap();
    fs.close(fd).unwrap();
    let fd = fs.open("/f", OpenFlags::APPEND).unwrap();
    fs.write(fd, b"!").unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.read_file("/f").unwrap(), b"onetwo!");
}

#[test]
fn block_reuse_after_delete() {
    let mut fs = fresh();
    for round in 0..5 {
        let path = format!("/f{round}");
        let fd = fs.open(&path, OpenFlags::CREAT_TRUNC).unwrap();
        fs.pwrite(fd, 0, &vec![round as u8; 20_000]).unwrap();
        fs.close(fd).unwrap();
        fs.unlink(&path).unwrap();
    }
    fs.sync().unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    assert!(fs2.readdir("/").unwrap().is_empty());
}

#[test]
fn mount_rejects_garbage() {
    let dev = PmDevice::new(DEV);
    assert!(matches!(
        Ext4Dax::mount(dev, &FsOptions::default()),
        Err(FsError::Unmountable(_))
    ));
}

#[test]
fn kind_factory_roundtrip() {
    let kind = Ext4DaxKind::default();
    assert!(!kind.guarantees().strong);
    let mut fs = kind.mkfs(PmDevice::new(DEV)).unwrap();
    fs.creat("/x").unwrap();
    fs.sync().unwrap();
    let img = fs.into_device().persistent_image().to_vec();
    let fs2 = kind.mount(PmDevice::from_image(img)).unwrap();
    assert!(fs2.stat("/x").is_ok());
}

/// Crash-free behavioural parity with the reference model over a scripted
/// op mix (the full randomized version lives in the property-test suite).
#[test]
fn model_parity_scripted() {
    let mut fs = fresh();
    let mut model = ModelFs::new();
    type Step = Box<dyn Fn(&mut dyn FileSystem) -> Result<(), FsError>>;
    let script: Vec<Step> = vec![
        Box::new(|f| f.mkdir("/A")),
        Box::new(|f| f.creat("/A/x")),
        Box::new(|f| f.link("/A/x", "/y")),
        Box::new(|f| {
            let fd = f.open("/y", OpenFlags::RDWR)?;
            f.pwrite(fd, 10, b"abc")?;
            f.close(fd)
        }),
        Box::new(|f| f.rename("/A/x", "/z")),
        Box::new(|f| f.truncate("/z", 5)),
        Box::new(|f| f.unlink("/y")),
        Box::new(|f| f.mkdir("/A/B")),
        Box::new(|f| f.rename("/A/B", "/B")),
        Box::new(|f| f.rmdir("/A")),
    ];
    for step in &script {
        let r1 = step(&mut fs);
        let r2 = step(&mut model);
        assert_eq!(r1.is_ok(), r2.is_ok());
    }
    for path in ["/z", "/B", "/A", "/y"] {
        match (fs.stat(path), model.stat(path)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.ftype, b.ftype, "{path}");
                assert_eq!(a.size, b.size, "{path}");
                assert_eq!(a.nlink, b.nlink, "{path}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{path}: fs={a:?} model={b:?}"),
        }
    }
    assert_eq!(fs.read_file("/z").unwrap(), model.read_file("/z").unwrap());
}
