//! Strong versus weak crash-consistency guarantees, side by side (§2).
//!
//! ```sh
//! cargo run --release --example compare_guarantees
//! ```
//!
//! The same workload runs on NOVA (strong: every call synchronous, no fsync
//! needed) and ext4-DAX (weak: nothing promised before fsync). The
//! difference shows up directly in where Chipmunk places crash points and
//! what the recovered states contain.

use chipmunk::{test_workload, TestConfig};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    Op, Workload,
};

fn main() {
    // ── A concrete crash, by hand. ───────────────────────────────────────
    println!("create /f and write 4 KiB, then crash WITHOUT fsync:\n");

    // ext4-DAX: the write lives in the volatile page cache.
    let kind = Ext4DaxKind::default();
    let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
    fs.creat("/f").unwrap();
    let fd = fs.open("/f", vfs::OpenFlags::RDWR).unwrap();
    fs.pwrite(fd, 0, &[7u8; 4096]).unwrap();
    let img = fs.into_device().persistent_image().to_vec();
    let recovered = kind.mount(PmDevice::from_image(img)).unwrap();
    println!(
        "  ext4-DAX after crash: /f {} — allowed! weak guarantees promise nothing \
         before fsync",
        if recovered.stat("/f").is_ok() { "exists" } else { "is GONE" }
    );

    // NOVA: the write was durable the moment pwrite returned.
    let kind = NovaKind { opts: FsOptions::fixed(), fortis: false };
    let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
    fs.creat("/f").unwrap();
    let fd = fs.open("/f", vfs::OpenFlags::RDWR).unwrap();
    fs.pwrite(fd, 0, &[7u8; 4096]).unwrap();
    let img = fs.into_device().persistent_image().to_vec();
    let recovered = kind.mount(PmDevice::from_image(img)).unwrap();
    println!(
        "  NOVA     after crash: /f {} with {} bytes — strong guarantees: synchronous, \
         no fsync",
        if recovered.stat("/f").is_ok() { "exists" } else { "is GONE" },
        recovered.stat("/f").map(|m| m.size).unwrap_or(0),
    );

    // ── What that means for Chipmunk's crash-point placement. ───────────
    let strong_w = Workload::new(
        "strong",
        vec![
            Op::Creat { path: "/f".into() },
            Op::WritePath { path: "/f".into(), off: 0, size: 4096 },
        ],
    );
    let weak_w = Workload::new(
        "weak",
        vec![
            Op::Creat { path: "/f".into() },
            Op::WritePath { path: "/f".into(), off: 0, size: 4096 },
            Op::FsyncPath { path: "/f".into() },
        ],
    );
    let cfg = TestConfig::default();
    let strong = test_workload(&NovaKind { opts: FsOptions::fixed(), fortis: false }, &strong_w, &cfg);
    let weak = test_workload(&Ext4DaxKind::default(), &weak_w, &cfg);
    println!("\nchipmunk crash-point placement on an equivalent workload:");
    println!(
        "  NOVA     (strong): {:>3} crash points (every store fence, during and after \
         each call), {} states",
        strong.crash_points, strong.crash_states
    );
    println!(
        "  ext4-DAX (weak)  : {:>3} crash points (after fsync-family calls only), {} states",
        weak.crash_points, weak.crash_states
    );
    assert!(strong.reports.is_empty() && weak.reports.is_empty());
}
