//! Volatile (DRAM) state: the structures NOVA rebuilds at every mount.
//!
//! NOVA keeps its allocator, per-file block maps, directory tables, and
//! sizes in DRAM for speed and write endurance, persisting only logs and
//! inodes (§2, Observation 3). Everything in this module is rebuilt by
//! [`crate::rebuild`] from the persistent logs.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use vfs::{FsError, FsResult};

/// In-DRAM state of one inode.
#[derive(Debug, Clone, Default)]
pub struct InodeState {
    /// File type tag (see [`crate::layout::itype`]).
    pub ftype: u64,
    /// Link count (files: dentry references; dirs: 2 + subdirs, derived).
    pub nlink: u64,
    /// File size in bytes.
    pub size: u64,
    /// Block map: file block index → device block (files).
    pub blocks: BTreeMap<u64, u64>,
    /// Fortis: per-file-block-run data checksums, keyed by first file block
    /// index of the run (validated on reads of runs not written this
    /// mount).
    pub run_csums: BTreeMap<u64, (u64, u32)>,
    /// Fortis: file block runs written (and therefore known-good) this
    /// mount.
    pub fresh_runs: BTreeSet<u64>,
    /// Directory table: name → child ino (directories).
    pub children: BTreeMap<String, u64>,
    /// Device byte offset of the last live dentry log record per name —
    /// the in-place invalidation target (bug 4's vehicle).
    pub dentry_pos: HashMap<String, u64>,
    /// Current log tail (absolute device byte offset; 0 = no log yet).
    pub log_tail: u64,
    /// First log page (device block number; 0 = none).
    pub log_head: u64,
}

/// The volatile block allocator, rebuilt at mount.
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    free: BTreeSet<u64>,
}

impl Allocator {
    /// Builds an allocator over `[data_start, total)` minus `used`.
    pub fn new(data_start: u64, total: u64, used: &BTreeSet<u64>) -> Self {
        let free = (data_start..total).filter(|b| !used.contains(b)).collect();
        Allocator { free }
    }

    /// Allocates the lowest free block (deterministic).
    pub fn alloc(&mut self) -> FsResult<u64> {
        let b = *self.free.iter().next().ok_or(FsError::NoSpace)?;
        self.free.remove(&b);
        Ok(b)
    }

    /// Allocates `n` blocks, contiguous if possible (NOVA prefers
    /// contiguous runs for file data so a write is one extent).
    pub fn alloc_run(&mut self, n: u64) -> FsResult<Vec<u64>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        // Look for a contiguous run.
        let mut run_start = None;
        let mut prev = None;
        let mut len = 0u64;
        for &b in self.free.iter() {
            match prev {
                Some(p) if b == p + 1 => len += 1,
                _ => {
                    run_start = Some(b);
                    len = 1;
                }
            }
            prev = Some(b);
            if len == n {
                let start = run_start.expect("run tracked");
                for blk in start..start + n {
                    self.free.remove(&blk);
                }
                return Ok((start..start + n).collect());
            }
        }
        // Fragmented fallback: any n blocks.
        if (self.free.len() as u64) < n {
            return Err(FsError::NoSpace);
        }
        let picked: Vec<u64> = self.free.iter().take(n as usize).copied().collect();
        for &b in &picked {
            self.free.remove(&b);
        }
        Ok(picked)
    }

    /// Returns a block to the free set. Fails on double free — the
    /// detection behind bug 11's consequence.
    pub fn free(&mut self, b: u64) -> FsResult<()> {
        if !self.free.insert(b) {
            return Err(FsError::Detected(format!(
                "attempt to deallocate already-free block {b}"
            )));
        }
        Ok(())
    }

    /// Number of free blocks.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

/// Whole-FS volatile state.
#[derive(Debug, Clone, Default)]
pub struct Volatile {
    /// Per-inode DRAM state (present only for live inodes).
    pub inodes: HashMap<u64, InodeState>,
    /// The block allocator.
    pub alloc: Allocator,
    /// Open-descriptor table: fd → (ino, offset, append).
    pub fds: HashMap<u64, (u64, u64, bool)>,
    /// Next descriptor number.
    pub next_fd: u64,
    /// Current generation (mirrors the persistent GEN_A/GEN_B pair).
    pub gen: u64,
    /// Current simulated CPU (unused by NOVA; kept for interface parity).
    pub cpu: usize,
}

impl Volatile {
    /// Looks up a live inode's state.
    pub fn inode(&self, ino: u64) -> FsResult<&InodeState> {
        self.inodes.get(&ino).ok_or(FsError::NotFound)
    }

    /// Mutable inode state.
    pub fn inode_mut(&mut self, ino: u64) -> FsResult<&mut InodeState> {
        self.inodes.get_mut(&ino).ok_or(FsError::NotFound)
    }

    /// Number of descriptors open on `ino`.
    pub fn open_count(&self, ino: u64) -> usize {
        self.fds.values().filter(|(i, _, _)| *i == ino).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_deterministic_and_detects_double_free() {
        let used: BTreeSet<u64> = [10u64, 11].into_iter().collect();
        let mut a = Allocator::new(10, 20, &used);
        assert_eq!(a.free_count(), 8);
        assert_eq!(a.alloc().unwrap(), 12);
        assert_eq!(a.alloc().unwrap(), 13);
        a.free(12).unwrap();
        assert_eq!(a.alloc().unwrap(), 12);
        assert!(a.free(13).is_ok());
        assert!(matches!(a.free(13), Err(FsError::Detected(_))));
    }

    #[test]
    fn alloc_run_prefers_contiguous() {
        let used: BTreeSet<u64> = [12u64].into_iter().collect();
        let mut a = Allocator::new(10, 30, &used);
        // 10, 11 free then 12 used: a 3-run must start at 13.
        let run = a.alloc_run(3).unwrap();
        assert_eq!(run, vec![13, 14, 15]);
    }

    #[test]
    fn alloc_run_falls_back_when_fragmented() {
        let used: BTreeSet<u64> = (10..20).filter(|b| b % 2 == 0).collect();
        let mut a = Allocator::new(10, 20, &used);
        let run = a.alloc_run(3).unwrap();
        assert_eq!(run.len(), 3);
        assert!(a.alloc_run(10).is_err());
    }

    #[test]
    fn alloc_exhaustion() {
        let used = BTreeSet::new();
        let mut a = Allocator::new(10, 12, &used);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!(matches!(a.alloc(), Err(FsError::NoSpace)));
    }
}
