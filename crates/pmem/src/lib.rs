#![warn(missing_docs)]

//! Persistent-memory (PM) device simulation for chipmunk-rs.
//!
//! This crate models the storage substrate that the Chipmunk paper tests on:
//! byte-addressable persistent memory accessed through processor stores,
//! cache-line write-back instructions (`clwb`/`clflushopt`), non-temporal
//! stores (`movnt`), and store fences (`sfence`) — the x86 *epoch persistence
//! model*. The key property the model captures is the one the paper's
//! crash-state constructor relies on:
//!
//! * A write becomes *in-flight* when its cache line is written back or when
//!   it is issued as a non-temporal store.
//! * In-flight writes become *persistent* only once a subsequent store fence
//!   executes; until then, a crash may persist any subset of them, in any
//!   order (with 8-byte atomicity on real hardware).
//! * Plain cached stores that were never written back are assumed lost on a
//!   crash. (Real hardware may evict them, but the PM file systems under test
//!   route every durable write through centralized persistence functions, so
//!   — exactly as in the paper — only flushed/non-temporal data participates
//!   in crash-state construction.)
//!
//! The crate provides:
//!
//! * [`PmBackend`] — the trait file systems write against. Its methods mirror
//!   the centralized persistence functions the paper describes (non-temporal
//!   memcpy, non-temporal memset, buffer flush, store fence) plus plain
//!   cached stores and reads.
//! * [`PmDevice`] — a concrete simulated device with cache/in-flight
//!   tracking, a deterministic simulated-time cost model, and direct crash
//!   simulation for property tests.
//! * [`CowDevice`] — a copy-on-write overlay over an immutable base image,
//!   used by the test harness to mount file systems on crash states cheaply
//!   (the analogue of CrashMonkey's copy-on-write device).
//! * [`SharedDev`] / [`Window`] — shared handles and sub-ranges of a device,
//!   used by hybrid file systems (SplitFS) that split one device between a
//!   user-space component and a kernel-component region.

pub mod backend;
pub mod cost;
pub mod cow;
pub mod device;
pub mod fault;
pub mod fork;
pub mod fxmap;
pub mod hash;
pub mod shared;
pub mod track;

pub use backend::{PmBackend, CACHE_LINE, WORD};
pub use cost::{fuel_remaining, FuelExhausted, FuelGuard, PmStats, SimCost};
pub use fault::{FaultDevice, FaultPlan, FaultRole};
pub use cow::{CowDevice, UndoMark};
pub use device::{InflightKind, InflightWrite, PmDevice};
pub use fork::ForkDevice;
pub use fxmap::{FxBuildHasher, FxHashMap};
pub use hash::{byte_term, image_key, run_term, snap_key, span_key, word_term, write_delta, ImageKey};
pub use shared::{SharedDev, Window};
pub use track::ReadTracker;
