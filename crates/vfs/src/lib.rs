#![warn(missing_docs)]

//! Shared file-system abstractions for chipmunk-rs.
//!
//! This crate defines everything the test framework and the five PM file
//! systems have in common:
//!
//! * [`FileSystem`] — the POSIX-subset interface every tested file system
//!   implements (the set of system calls the paper tests, §4.1);
//! * [`FsKind`] — a factory trait tying a file-system implementation to the
//!   device it runs on (`mkfs` for fresh devices, `mount` for recovery on
//!   crash images);
//! * [`FsError`]/[`FsResult`] — errno-style error handling;
//! * [`bugs`] — the registry of the paper's 23 unique crash-consistency bugs
//!   (25 instances, Table 1), each individually switchable;
//! * [`cov`] — lightweight coverage instrumentation (the analogue of KCOV
//!   for the Syzkaller-style fuzzer);
//! * [`workload`] — the operation vocabulary shared by the ACE generator,
//!   the fuzzer, and the test harness;
//! * [`model`] — a plain in-memory reference file system used as the ground
//!   truth for crash-free semantics in property tests.

pub mod bugs;
pub mod chaos;
pub mod cov;
pub mod error;
pub mod fs;
pub mod model;
pub mod pagecache;
pub mod path;
pub mod trace;
pub mod types;
pub mod workload;

pub use bugs::{BugId, BugInfo, BugKind, BugSet, FsName};
pub use chaos::{ChaosFs, ChaosKind};
pub use cov::Cov;
pub use error::{FsError, FsResult};
pub use fs::{FileSystem, FsKind, Guarantees};
pub use trace::BugTrace;
pub use types::{DirEntry, FallocMode, Fd, FileType, Metadata, OpenFlags};
pub use workload::{Op, Workload};
