//! Chaos smoke: runs a small workload suite on NOVA with injected
//! device-level faults (a panic planted in every crash-state mount, then an
//! infinite recovery loop) and asserts the fault-isolated checker survives
//! the whole sweep, converts the faults into `recovery-panic` /
//! `recovery-hang` findings, and exits 0. The CI chaos job runs this at
//! `threads = 4`.
//!
//! ```sh
//! cargo run --release -p bench --bin chaos -- [threads] [--json <path>]
//! ```

use bench::{jsonout::Json, run_batch_cached, take_json_flag, Scheduler};
use chipmunk::{TestConfig, TestOutcome};
use novafs::NovaKind;
use pmem::FaultPlan;
use vfs::{fs::FsOptions, ChaosKind, Op, Workload};

fn workloads() -> Vec<Workload> {
    vec![
        Workload::new("chaos-creat", vec![Op::Creat { path: "/f".into() }]),
        Workload::new(
            "chaos-dir",
            vec![Op::Mkdir { path: "/d".into() }, Op::Creat { path: "/d/a".into() }],
        ),
        Workload::new(
            "chaos-write",
            vec![
                Op::Creat { path: "/w".into() },
                Op::WritePath { path: "/w".into(), off: 0, size: 1024 },
                Op::FsyncPath { path: "/w".into() },
            ],
        ),
    ]
}

fn run(plan: FaultPlan, cfg: &TestConfig) -> Vec<TestOutcome> {
    let kind = ChaosKind::new(NovaKind { opts: FsOptions::fixed(), fortis: false }, plan);
    let ws = workloads();
    let mut sched = Scheduler::new(&kind, cfg);
    run_batch_cached(&kind, &ws, cfg, Some(&mut sched)).into_iter().map(|(o, _)| o).collect()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_flag(&mut raw);
    let threads: usize = raw.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let cfg = TestConfig::default().with_threads(threads);
    // A hang burn spends the whole budget per crash state; a small (but
    // still >10x-margin) budget keeps the smoke fast.
    let hang_cfg = TestConfig { recovery_fuel: Some(2_000_000), ..cfg.clone() };

    let panics = run(FaultPlan { mount_panic_at: Some(3), ..FaultPlan::none() }, &cfg);
    let hangs = run(FaultPlan { mount_hang_at: Some(3), ..FaultPlan::none() }, &hang_cfg);

    let mut totals = [0u64; 6]; // states, panics, hangs, retries, fuel, reports
    for o in panics.iter().chain(&hangs) {
        totals[0] += o.crash_states;
        totals[1] += o.recovery_panics;
        totals[2] += o.recovery_hangs;
        totals[3] += o.sandbox_retries;
        totals[4] += o.fuel_exhausted;
        totals[5] += o.reports.len() as u64;
    }
    println!(
        "chaos smoke (threads = {threads}): {} states | {} recovery panics, {} recovery hangs, \
         {} slow-path retries, {} fuel exhaustions, {} reports",
        totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    for o in panics.iter().chain(&hangs) {
        for r in &o.reports {
            println!("  [{}] {} @ {}", o.workload, r.violation.class(), r.op_desc);
        }
    }

    if let Some(path) = json_path {
        let doc = Json::Obj(vec![
            ("threads", Json::U(threads as u64)),
            ("workloads", Json::U((panics.len() + hangs.len()) as u64)),
            ("states", Json::U(totals[0])),
            ("recovery_panics", Json::U(totals[1])),
            ("recovery_hangs", Json::U(totals[2])),
            ("sandbox_retries", Json::U(totals[3])),
            ("fuel_exhausted", Json::U(totals[4])),
            ("reports", Json::U(totals[5])),
        ]);
        bench::jsonout::write_atomic(&path, &doc.render()).expect("write --json output");
        eprintln!("wrote {path}");
    }

    assert!(totals[1] >= 1, "the injected mount panic must surface as a RecoveryPanic report");
    assert!(totals[2] >= 1, "the injected recovery loop must surface as a RecoveryHang report");
    assert!(
        panics.iter().chain(&hangs).all(|o| o.crash_states > 0),
        "every workload's sweep must run to completion"
    );
}
