//! Errno-style error handling shared by all file systems.

use std::fmt;

/// Result alias used throughout the file-system crates.
pub type FsResult<T> = Result<T, FsError>;

/// File-system errors, modelled on the POSIX errno values the tested
/// system calls can return, plus reproduction-specific variants for
/// corruption detected at mount or during checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: no such file or directory.
    NotFound,
    /// EEXIST: path already exists.
    Exists,
    /// ENOTDIR: a path component is not a directory.
    NotDir,
    /// EISDIR: the operation requires a non-directory.
    IsDir,
    /// ENOTEMPTY: directory not empty.
    NotEmpty,
    /// EINVAL: invalid argument.
    Invalid,
    /// EBADF: bad file descriptor.
    BadFd,
    /// ENOSPC: no space left on device.
    NoSpace,
    /// ENAMETOOLONG: file name too long.
    NameTooLong,
    /// EMLINK: too many links.
    TooManyLinks,
    /// ENOTSUP: operation not supported by this file system.
    NotSupported,
    /// EROFS-like: the file system detected corruption while servicing the
    /// operation (e.g. a failed checksum). Carries a description.
    Corrupt(String),
    /// Mount/recovery failed; the file system is unusable. Carries the
    /// recovery error description.
    Unmountable(String),
    /// An internal invariant was violated at runtime — the analogue of a
    /// kernel BUG()/KASAN report (used for the paper's eight
    /// non-crash-consistency bugs).
    Detected(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "ENOENT"),
            FsError::Exists => write!(f, "EEXIST"),
            FsError::NotDir => write!(f, "ENOTDIR"),
            FsError::IsDir => write!(f, "EISDIR"),
            FsError::NotEmpty => write!(f, "ENOTEMPTY"),
            FsError::Invalid => write!(f, "EINVAL"),
            FsError::BadFd => write!(f, "EBADF"),
            FsError::NoSpace => write!(f, "ENOSPC"),
            FsError::NameTooLong => write!(f, "ENAMETOOLONG"),
            FsError::TooManyLinks => write!(f, "EMLINK"),
            FsError::NotSupported => write!(f, "ENOTSUP"),
            FsError::Corrupt(s) => write!(f, "corruption detected: {s}"),
            FsError::Unmountable(s) => write!(f, "mount failed: {s}"),
            FsError::Detected(s) => write!(f, "internal invariant violated: {s}"),
        }
    }
}

impl std::error::Error for FsError {}

impl FsError {
    /// True for errors a correct file system may legitimately return to a
    /// workload (plain errno results), false for corruption/bug detections.
    pub fn is_benign(&self) -> bool {
        !matches!(
            self,
            FsError::Corrupt(_) | FsError::Unmountable(_) | FsError::Detected(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_classification() {
        assert!(FsError::NotFound.is_benign());
        assert!(FsError::Exists.is_benign());
        assert!(!FsError::Corrupt("x".into()).is_benign());
        assert!(!FsError::Unmountable("x".into()).is_benign());
        assert!(!FsError::Detected("x".into()).is_benign());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(FsError::NotFound.to_string(), "ENOENT");
        assert_eq!(FsError::Corrupt("bad csum".into()).to_string(), "corruption detected: bad csum");
    }
}
