//! Minimal log replay helpers.
//!
//! The full crash-state exploration (subset enumeration, coalescing, caps)
//! lives in the `chipmunk` crate; this module provides the simple
//! "apply everything" replay used for sanity checks: a log replayed in full
//! must reproduce the device's final persistent image.

use crate::entry::LogEntry;

/// Replays every write in `log` (fenced or not) onto a zeroed image of
/// `size` bytes, returning the resulting image.
///
/// This corresponds to a crash where *all* in-flight writes survived, which
/// must equal the crash-free final state for any log whose trailing writes
/// were fenced.
pub fn materialize_full(log: &crate::Log, size: u64) -> Vec<u8> {
    let mut img = vec![0u8; size as usize];
    apply_onto(&mut img, log.entries());
    img
}

/// Applies every write entry of `entries` onto `img` in program order.
pub fn apply_onto(img: &mut [u8], entries: &[LogEntry]) {
    for e in entries {
        if let Some((off, data)) = e.as_write() {
            img[off as usize..off as usize + data.len()].copy_from_slice(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::{LogHandle, LoggingPm};
    use pmem::{PmBackend, PmDevice};

    #[test]
    fn full_replay_matches_persistent_image() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(0, &[1u8; 100]);
        lp.flush(0, 100);
        lp.fence();
        lp.memcpy_nt(2048, &[7u8; 300]);
        lp.fence();
        lp.store(500, &[3u8; 8]);
        lp.flush(500, 8);
        lp.fence();
        let img = materialize_full(&log.snapshot(), 4096);
        assert_eq!(&img[..], lp.inner().persistent_image());
    }

    #[test]
    fn unflushed_data_missing_from_replay() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(0, &[1u8; 8]); // never flushed
        lp.memcpy_nt(64, &[2u8; 8]);
        lp.fence();
        let img = materialize_full(&log.snapshot(), 4096);
        assert_eq!(&img[0..8], &[0u8; 8]);
        assert_eq!(&img[64..72], &[2u8; 8]);
    }
}
