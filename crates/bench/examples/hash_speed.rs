//! Measures the word-scanning rolling-hash fast paths against their
//! per-byte definition: hashes device-sized images of varying density with
//! `image_key` and replays sparse overwrites through `write_delta`, printing
//! both implementations' wall times (the naive loops are inlined here — the
//! library only ships the fast ones, pinned bit-identical by unit tests).
//! The incremental `state_key` path calls `write_delta` once per pending
//! write per crash state, so this is the hot loop of subset enumeration.
//!
//! Sample run (1-CPU CI container, `--release`, defaults):
//!
//! ```text
//! image_key  4 MiB density=1/64 word=1.717949ms byte=2.707054ms (1.6x)
//! image_key  4 MiB density=1/2  word=4.888386ms byte=5.079888ms (1.0x)
//! write_delta 64 B x100000 sparse word=1.909588ms byte=3.509292ms (1.8x)
//! ```

use std::time::Instant;

use pmem::hash::{byte_term, image_key, write_delta, ImageKey};

fn image_key_naive(img: &[u8]) -> ImageKey {
    let mut key = 0;
    for (i, &b) in img.iter().enumerate() {
        if b != 0 {
            key ^= byte_term(i as u64, b);
        }
    }
    key
}

fn write_delta_naive(off: u64, old: &[u8], new: &[u8]) -> ImageKey {
    let mut d = 0;
    for (i, (&o, &n)) in old.iter().zip(new).enumerate() {
        if o != n {
            let at = off + i as u64;
            d ^= byte_term(at, o) ^ byte_term(at, n);
        }
    }
    d
}

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4 * 1024 * 1024);

    for (label, every) in [("density=1/64", 64usize), ("density=1/2 ", 2)] {
        let img: Vec<u8> =
            (0..size).map(|i| if i % every == 0 { (i % 251 + 1) as u8 } else { 0 }).collect();
        let t = Instant::now();
        let fast = image_key(&img);
        let t_word = t.elapsed();
        let t = Instant::now();
        let slow = image_key_naive(&img);
        let t_byte = t.elapsed();
        assert_eq!(fast, slow);
        println!(
            "image_key  {} MiB {label} word={t_word:?} byte={t_byte:?} ({:.1}x)",
            size >> 20,
            t_byte.as_secs_f64() / t_word.as_secs_f64().max(1e-9),
        );
    }

    // The delta path's real shape: short spans, mostly-identical contents
    // (a pending write re-applied over bytes already in place).
    let reps = 100_000u64;
    let old: Vec<u8> = (0..64).map(|i| (i * 7 % 256) as u8).collect();
    let mut new = old.clone();
    new[13] ^= 0x20;
    let t = Instant::now();
    let mut acc: ImageKey = 0;
    for r in 0..reps {
        acc ^= write_delta(r * 64, &old, &new);
    }
    let t_word = t.elapsed();
    let t = Instant::now();
    let mut acc_naive: ImageKey = 0;
    for r in 0..reps {
        acc_naive ^= write_delta_naive(r * 64, &old, &new);
    }
    let t_byte = t.elapsed();
    assert_eq!(acc, acc_naive);
    println!(
        "write_delta 64 B x{reps} sparse word={t_word:?} byte={t_byte:?} ({:.1}x)",
        t_byte.as_secs_f64() / t_word.as_secs_f64().max(1e-9),
    );
}
