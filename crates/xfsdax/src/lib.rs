#![warn(missing_docs)]

//! An XFS-DAX-style file system with *weak* crash-consistency guarantees —
//! the paper's second mature control alongside ext4-DAX (§4.1; like its
//! sibling, the paper found no bugs in it).
//!
//! Where the `ext4dax` crate mirrors ext4's shape, this crate mirrors the
//! structures that make XFS XFS, in miniature:
//!
//! * **Allocation groups** — the device's data area is divided into
//!   independent allocation groups, each with its own free-space bitmap;
//!   files allocate from the group their inode hashes to, falling back
//!   round-robin when a group fills. Extents try to grow contiguously
//!   within a group.
//! * **Extent-based inodes** — files map their blocks with a small inline
//!   array of `(file block, start block, length)` extents instead of
//!   ext4-style per-block pointers.
//! * **A write-ahead log** with commit records and checkpointing, replayed
//!   at mount. Like ext4-DAX's journal in this reproduction the log carries
//!   metadata block images (real XFS logs logical items; the crash-visible
//!   contract — committed or ignored — is the same).
//! * **A volatile page cache**: nothing is durable before
//!   `fsync`/`fdatasync`/`sync`, so Chipmunk places crash points only after
//!   those calls.

pub mod extents;
pub mod fsimpl;
pub mod layout;

pub use fsimpl::XfsDax;

use pmem::PmBackend;
use vfs::{
    fs::{FsKind, FsOptions, Guarantees},
    FsName, FsResult,
};

/// Factory for [`XfsDax`] instances.
#[derive(Debug, Clone, Default)]
pub struct XfsDaxKind {
    /// Construction options (no injected bugs; carries coverage config).
    pub opts: FsOptions,
}

impl FsKind for XfsDaxKind {
    type Fs<D: PmBackend> = XfsDax<D>;

    fn name(&self) -> FsName {
        FsName::XfsDax
    }

    fn options(&self) -> &FsOptions {
        &self.opts
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        Self { opts }
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees { strong: false, atomic_data_writes: false, data_checksums: false }
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        XfsDax::mkfs(dev, &self.opts)
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        XfsDax::mount(dev, &self.opts)
    }

    fn fork_fs<D: PmBackend + Clone>(&self, fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        Some(fs.clone())
    }
}
