//! eADR-port soundness: with every injected bug fixed, Chipmunk under the
//! eADR persistence model (`TestConfig { eadr: true }`) finds **zero**
//! violations across the ACE seq-1 suite on every file system.
//!
//! This is a stronger claim than the ADR suite makes: under eADR every
//! store is durable the moment it lands, so every program-order prefix of
//! the store stream is a crash state. Orderings that are invisible under
//! ADR (stores to the same cache line become durable atomically at the
//! flush) are exposed here — the commit-store of any multi-store update
//! must genuinely be last.

use chipmunk::{test_workload, TestConfig};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmfs::PmfsKind;
use splitfs::SplitFsKind;
use vfs::fs::{FsKind, FsOptions};
use winefs::WineFsKind;
use workloads::ace::{seq1, AceMode};
use xfsdax::XfsDaxKind;

fn assert_eadr_clean<K: FsKind>(kind: &K, mode: AceMode, label: &str) {
    let cfg = TestConfig { eadr: true, ..TestConfig::default() };
    let mut states = 0u64;
    for w in seq1(mode) {
        let out = test_workload(kind, &w, &cfg);
        assert!(
            out.reports.is_empty(),
            "[{label}] fixed file system violated {} under eADR:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        states += out.crash_states;
    }
    assert!(states > 0, "[{label}] no eADR crash states explored");
}

#[test]
fn nova_seq1_eadr_clean() {
    assert_eadr_clean(
        &NovaKind { opts: FsOptions::fixed(), fortis: false },
        AceMode::Strong,
        "NOVA",
    );
}

#[test]
fn nova_fortis_seq1_eadr_clean() {
    assert_eadr_clean(
        &NovaKind { opts: FsOptions::fixed(), fortis: true },
        AceMode::Strong,
        "NOVA-Fortis",
    );
}

#[test]
fn pmfs_seq1_eadr_clean() {
    assert_eadr_clean(&PmfsKind { opts: FsOptions::fixed() }, AceMode::Strong, "PMFS");
}

#[test]
fn winefs_seq1_eadr_clean() {
    assert_eadr_clean(
        &WineFsKind { opts: FsOptions::fixed(), strict: true },
        AceMode::Strong,
        "WineFS",
    );
}

#[test]
fn splitfs_seq1_eadr_clean() {
    assert_eadr_clean(&SplitFsKind { opts: FsOptions::fixed() }, AceMode::Strong, "SplitFS");
}

#[test]
fn ext4dax_seq1_eadr_clean() {
    assert_eadr_clean(&Ext4DaxKind::default(), AceMode::Weak, "ext4-DAX");
}

#[test]
fn xfsdax_seq1_eadr_clean() {
    assert_eadr_clean(&XfsDaxKind::default(), AceMode::Weak, "XFS-DAX");
}

/// Fuzz-workload soundness under eADR: the hostile patterns ACE omits
/// (multiple descriptors, orphaned descriptors, unaligned writes, CPU
/// switching) stay clean on the fixed file systems with store-granular
/// crash points too (mirrors `fuzz_clean_on_fixed.rs`, smaller budget —
/// every store is a mount-and-check here).
#[test]
fn fuzz_sample_eadr_clean_everywhere() {
    use workloads::fuzz::{FuzzConfig, Fuzzer};
    const BUDGET: u64 = 200;
    let cfg = TestConfig { eadr: true, ..TestConfig::default() };

    macro_rules! run {
        ($kind:expr, $label:expr, $seed:expr) => {
            let kind = $kind;
            let mut fuzzer = Fuzzer::new($seed, FuzzConfig::default());
            for _ in 0..BUDGET {
                let w = fuzzer.next_workload();
                let out = test_workload(&kind, &w, &cfg);
                assert!(
                    out.reports.is_empty(),
                    "[{}] fixed file system violated fuzz workload under eADR:\n  {}\n{}",
                    $label,
                    w.describe(),
                    out.reports.iter().map(|r| r.to_text()).collect::<String>()
                );
                fuzzer.feedback(&w, 0);
            }
        };
    }
    run!(NovaKind { opts: FsOptions::fixed(), fortis: false }, "NOVA", 211);
    run!(NovaKind { opts: FsOptions::fixed(), fortis: true }, "NOVA-Fortis", 223);
    run!(PmfsKind { opts: FsOptions::fixed() }, "PMFS", 227);
    run!(WineFsKind { opts: FsOptions::fixed(), strict: true }, "WineFS", 229);
    run!(SplitFsKind { opts: FsOptions::fixed() }, "SplitFS", 233);
}

/// A deterministic seq-2 sample under eADR on the five PM file systems
/// (mirrors `seq2_sample_clean_everywhere` in the ADR suite).
#[test]
fn seq2_sample_eadr_clean_everywhere() {
    use workloads::ace::seq2;
    let cfg = TestConfig { eadr: true, ..TestConfig::default() };
    let sample: Vec<_> = seq2(AceMode::Strong).step_by(97).collect();
    assert!(sample.len() >= 30);

    macro_rules! run {
        ($kind:expr, $label:expr) => {
            for w in &sample {
                let out = test_workload(&$kind, w, &cfg);
                assert!(
                    out.reports.is_empty(),
                    "[{}] violated {} under eADR:\n{}",
                    $label,
                    w.name,
                    out.reports.iter().map(|r| r.to_text()).collect::<String>()
                );
            }
        };
    }
    run!(NovaKind { opts: FsOptions::fixed(), fortis: false }, "NOVA");
    run!(NovaKind { opts: FsOptions::fixed(), fortis: true }, "NOVA-Fortis");
    run!(PmfsKind { opts: FsOptions::fixed() }, "PMFS");
    run!(WineFsKind { opts: FsOptions::fixed(), strict: true }, "WineFS");
    run!(SplitFsKind { opts: FsOptions::fixed() }, "SplitFS");
}
