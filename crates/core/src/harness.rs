//! The top-level test harness: record, replay, check (§3.3, Figure 2).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

use pmem::PmDevice;
use pmlog::{LogEntry, LogHandle, LoggingPm, Marker, OpRecord};
use vfs::{
    fs::SyscallKind,
    BugId, FsKind, Workload,
};

use crate::{
    checker::{check_crash_state, CheckKind, DataRelax},
    config::TestConfig,
    crashgen::{coalesce, describe_subset, enumerate_subsets_ordered, state_key, PendingWrite},
    exec::Executor,
    oracle::{build_oracle, Oracle},
    report::{BugReport, CrashPhase, Violation},
};

/// Wall time spent in each stage of the pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Stage 1: the crash-free oracle run.
    pub oracle: Duration,
    /// Stage 2: the recorded run through the write logger.
    pub record: Duration,
    /// Stage 3: crash-state construction and checking.
    pub check: Duration,
}

/// Everything a test run produced.
#[derive(Debug, Clone, Default)]
pub struct TestOutcome {
    /// Detected violations (deduplicated within the run, capped).
    pub reports: Vec<BugReport>,
    /// Number of crash points visited (fences + syscall boundaries).
    pub crash_points: u64,
    /// Number of crash states constructed and checked.
    pub crash_states: u64,
    /// Of `crash_states`, how many reused an earlier check's result because
    /// their replayed bytes produced an identical image (see
    /// [`TestConfig::dedup`]).
    pub dedup_hits: u64,
    /// In-flight write counts observed at each crash point (before
    /// coalescing) — the data behind Observation 7.
    pub inflight_sizes: Vec<usize>,
    /// Injected-bug code paths that executed during the run (ground truth
    /// for attribution; detection never uses this).
    pub traced_bugs: BTreeSet<BugId>,
    /// Per-phase wall times.
    pub timing: PhaseTimings,
    /// The workload name.
    pub workload: String,
}

impl TestOutcome {
    /// Whether any violation was found.
    pub fn found_bug(&self) -> bool {
        !self.reports.is_empty()
    }
}

const MAX_REPORTS: usize = 200;

fn push_report(out: &mut TestOutcome, report: BugReport) {
    if out.reports.len() >= MAX_REPORTS {
        return;
    }
    // Exact-duplicate suppression (same op + same violation).
    if out
        .reports
        .iter()
        .any(|r| r.op_seq == report.op_seq && r.violation == report.violation)
    {
        return;
    }
    out.reports.push(report);
}

/// Runs the full Chipmunk pipeline on one workload:
///
/// 1. oracle run (crash-free, snapshots around every op);
/// 2. recorded run through the write logger;
/// 3. crash-state construction and checking at every crash point.
pub fn test_workload<K: FsKind>(kind: &K, workload: &Workload, cfg: &TestConfig) -> TestOutcome {
    let mut out = TestOutcome { workload: workload.name.clone(), ..Default::default() };
    let guarantees = kind.guarantees();
    kind.options().trace.clear();

    // ---- 1. Oracle ----
    let t_oracle = Instant::now();
    let oracle = match build_oracle(kind, workload, cfg.device_size) {
        Ok(o) => o,
        Err(e) => {
            push_report(
                &mut out,
                BugReport {
                    workload: workload.name.clone(),
                    op_seq: 0,
                    op_desc: "(oracle run)".into(),
                    phase: CrashPhase::DuringSyscall,
                    subset: "-".into(),
                    violation: Violation::RuntimeError(format!("oracle run failed: {e}")),
                },
            );
            return out;
        }
    };

    out.timing.oracle = t_oracle.elapsed();

    // ---- 2. Recorded run ----
    let t_record = Instant::now();
    let log = LogHandle::new();
    let dev = PmDevice::new(cfg.device_size);
    let lp = if cfg.eadr {
        LoggingPm::new_eadr(dev, log.clone())
    } else {
        LoggingPm::new(dev, log.clone())
    };
    let mut fs = match kind.mkfs(lp) {
        Ok(fs) => fs,
        Err(e) => {
            push_report(
                &mut out,
                BugReport {
                    workload: workload.name.clone(),
                    op_seq: 0,
                    op_desc: "(mkfs)".into(),
                    phase: CrashPhase::DuringSyscall,
                    subset: "-".into(),
                    violation: Violation::RuntimeError(format!("mkfs failed: {e}")),
                },
            );
            return out;
        }
    };
    let mut ex = Executor::new();
    let mut rec_results = Vec::with_capacity(workload.ops.len());
    for (seq, op) in workload.ops.iter().enumerate() {
        log.marker(Marker::SyscallBegin(OpRecord { seq, desc: op.describe() }));
        let r = ex.exec(&mut fs, op, seq);
        log.marker(Marker::SyscallEnd { seq, ok: r.result.is_ok() });
        rec_results.push(r);
    }
    drop(fs);
    let log = log.take();
    out.timing.record = t_record.elapsed();

    // Functional divergence between the recorded run and the oracle, and
    // non-benign runtime errors, are reported even though they are not
    // crash-consistency violations (§4.4, non-crash-consistency bugs).
    for (seq, (rec, ora)) in rec_results.iter().zip(oracle.results.iter()).enumerate() {
        let desc = workload.ops[seq].describe();
        if let Err(e) = &rec.result {
            if !e.is_benign() {
                push_report(
                    &mut out,
                    BugReport {
                        workload: workload.name.clone(),
                        op_seq: seq,
                        op_desc: desc.clone(),
                        phase: CrashPhase::DuringSyscall,
                        subset: "-".into(),
                        violation: Violation::RuntimeError(e.to_string()),
                    },
                );
            }
        }
        if rec.result.is_ok() != ora.result.is_ok() {
            push_report(
                &mut out,
                BugReport {
                    workload: workload.name.clone(),
                    op_seq: seq,
                    op_desc: desc,
                    phase: CrashPhase::DuringSyscall,
                    subset: "-".into(),
                    violation: Violation::OracleDivergence(format!(
                        "recorded run returned {:?}, oracle returned {:?}",
                        rec.result, ora.result
                    )),
                },
            );
        }
    }

    // ---- 3. Replay and check ----
    let t_check = Instant::now();
    replay_and_check(kind, workload, cfg, &oracle, &rec_results, &log, guarantees, &mut out);
    out.timing.check = t_check.elapsed();

    out.traced_bugs = kind.options().trace.snapshot();
    out
}

/// Picks the data-relaxation mode for a mid-syscall atomicity check: data
/// writes may legally be torn (or must be all-or-nothing when the FS claims
/// atomic data writes), and the path-addressed `fallocate` bundles an
/// `O_CREAT` open, so the created-but-empty intermediate state is allowed.
fn atomicity_relax<'a>(
    op: &vfs::Op,
    target: Option<&'a str>,
    guarantees: vfs::Guarantees,
) -> DataRelax<'a> {
    let is_data = matches!(op.kind(), SyscallKind::Write | SyscallKind::Pwrite);
    let is_falloc = matches!(op.kind(), SyscallKind::Falloc);
    match (target, is_data) {
        (Some(t), true) if guarantees.atomic_data_writes => DataRelax::Atomic(t),
        (Some(t), true) => DataRelax::Torn(t),
        (Some(t), false) if is_falloc => DataRelax::Atomic(t),
        _ => DataRelax::None,
    }
}

#[allow(clippy::too_many_arguments)]
fn replay_and_check<K: FsKind>(
    kind: &K,
    workload: &Workload,
    cfg: &TestConfig,
    oracle: &Oracle,
    rec_results: &[crate::exec::OpResult],
    log: &pmlog::Log,
    guarantees: vfs::Guarantees,
    out: &mut TestOutcome,
) {
    let mut base = vec![0u8; cfg.device_size as usize];
    let mut pending: Vec<PendingWrite> = Vec::new();
    let mut cur_op: Option<usize> = None;
    let mut last_done: Option<usize> = None;
    let mut started = false;
    let mut stop = false;

    for entry in log.entries() {
        if stop {
            // Keep replaying to completion is unnecessary once stopping.
            break;
        }
        match entry {
            LogEntry::Marker(Marker::SyscallBegin(OpRecord { seq, .. })) => {
                started = true;
                cur_op = Some(*seq);
            }
            LogEntry::Marker(Marker::SyscallEnd { seq, .. }) => {
                cur_op = None;
                last_done = Some(*seq);
                let op = &workload.ops[*seq];
                if !op.is_mutating() {
                    continue;
                }
                if guarantees.strong {
                    let check = CheckKind::Synchrony { cur: oracle.after(*seq) };
                    visit_crash_point(
                        kind, workload, cfg, &base, &pending, *seq,
                        CrashPhase::AfterSyscall, &check, true, out, &mut stop,
                    );
                } else if matches!(op.kind(), SyscallKind::Fsync | SyscallKind::Sync) {
                    let target = rec_results[*seq].target.as_deref();
                    let target = if op.kind() == SyscallKind::Sync { None } else { target };
                    let check = CheckKind::WeakFsync { cur: oracle.after(*seq), target };
                    visit_crash_point(
                        kind, workload, cfg, &base, &pending, *seq,
                        CrashPhase::AfterFsync, &check, true, out, &mut stop,
                    );
                }
            }
            LogEntry::Fence => {
                if cfg.eadr {
                    // eADR: fences are pure ordering points. Every store has
                    // already been visited as its own crash state, and the
                    // state at the fence equals the state after the last
                    // store, so there is nothing new to check here.
                    continue;
                }
                if started && guarantees.strong && !pending.is_empty() {
                    match cur_op {
                        Some(seq) => {
                            let relax = atomicity_relax(
                                &workload.ops[seq],
                                rec_results[seq].target.as_deref(),
                                guarantees,
                            );
                            let check = CheckKind::Atomicity {
                                prev: oracle.before(seq),
                                cur: oracle.after(seq),
                                relax,
                            };
                            visit_crash_point(
                                kind, workload, cfg, &base, &pending, seq,
                                CrashPhase::DuringSyscall, &check, false, out, &mut stop,
                            );
                        }
                        None => {
                            // Fence between syscalls (e.g. deferred work):
                            // the state must still be the post-state of the
                            // last completed op.
                            if let Some(seq) = last_done {
                                let check = CheckKind::Synchrony { cur: oracle.after(seq) };
                                visit_crash_point(
                                    kind, workload, cfg, &base, &pending, seq,
                                    CrashPhase::AfterSyscall, &check, false, out, &mut stop,
                                );
                            }
                        }
                    }
                }
                for w in pending.drain(..) {
                    base[w.off as usize..w.off as usize + w.data.len()].copy_from_slice(&w.data);
                }
            }
            e => {
                if let Some(w) = PendingWrite::from_entry(e) {
                    if cfg.eadr {
                        // Persistent caches: durable the moment it lands, and
                        // the instant after any store is a real crash state —
                        // not just fence boundaries. (A torn in-place update
                        // is only visible *between* the stores that make it
                        // up; see bug 19.)
                        base[w.off as usize..w.off as usize + w.data.len()]
                            .copy_from_slice(&w.data);
                        if started && guarantees.strong {
                            match cur_op {
                                Some(seq) if workload.ops[seq].is_mutating() => {
                                    let relax = atomicity_relax(
                                        &workload.ops[seq],
                                        rec_results[seq].target.as_deref(),
                                        guarantees,
                                    );
                                    let check = CheckKind::Atomicity {
                                        prev: oracle.before(seq),
                                        cur: oracle.after(seq),
                                        relax,
                                    };
                                    visit_crash_point(
                                        kind, workload, cfg, &base, &[], seq,
                                        CrashPhase::DuringSyscall, &check, true, out,
                                        &mut stop,
                                    );
                                }
                                None => {
                                    // Deferred work between syscalls: the
                                    // durable state must still match the
                                    // post-state of the last completed op.
                                    if let Some(seq) = last_done {
                                        let check =
                                            CheckKind::Synchrony { cur: oracle.after(seq) };
                                        visit_crash_point(
                                            kind, workload, cfg, &base, &[], seq,
                                            CrashPhase::AfterSyscall, &check, true, out,
                                            &mut stop,
                                        );
                                    }
                                }
                                _ => {}
                            }
                        }
                    } else {
                        pending.push(w);
                    }
                }
            }
        }
    }
}

/// The result of checking one crash state on a fresh-sink factory clone:
/// the violation (if any) plus the instrumentation the check produced, so
/// the caller can merge it back in canonical order.
struct CheckRes {
    violation: Option<Violation>,
    cov: HashSet<u64>,
    trace: BTreeSet<BugId>,
}

/// Checks all crash states at one crash point: optionally the bare base
/// state, then every enumerated subset of the in-flight writes.
///
/// With `cfg.threads > 1` the checks run concurrently — every worker mounts
/// its own [`pmem::CowDevice`] overlay of the shared (immutable at this
/// point) base image on a factory clone with private coverage/trace sinks —
/// but results are always *committed* in subset-enumeration order: counters,
/// reports, coverage, traces, and the stop-on-first winner are bit-identical
/// to the serial walk. Speculative checks past the winner are discarded.
///
/// With `cfg.dedup`, subsets whose replayed bytes form an identical image
/// (computed up front, in enumeration order, so the decision never depends
/// on thread count) reuse the first occurrence's result instead of
/// remounting. Because an identical image on an identical base mounts and
/// checks deterministically, replaying the memoized result — violation,
/// coverage and trace alike — is observationally indistinguishable from the
/// redundant remount; only wall time and `dedup_hits` differ.
#[allow(clippy::too_many_arguments)]
fn visit_crash_point<K: FsKind>(
    kind: &K,
    workload: &Workload,
    cfg: &TestConfig,
    base: &[u8],
    pending: &[PendingWrite],
    seq: usize,
    phase: CrashPhase,
    check: &CheckKind<'_>,
    check_base: bool,
    out: &mut TestOutcome,
    stop: &mut bool,
) {
    out.crash_points += 1;
    out.inflight_sizes.push(pending.len());
    let writes = if cfg.coalesce_data { coalesce(pending) } else { pending.to_vec() };
    let op_desc = workload.ops[seq].describe();

    let mut subsets: Vec<Vec<usize>> = Vec::new();
    if check_base {
        subsets.push(Vec::new());
    }
    subsets.extend(enumerate_subsets_ordered(
        writes.len(),
        cfg.cap,
        cfg.max_states_per_point,
        cfg.large_first_subsets,
    ));
    if subsets.is_empty() {
        return;
    }

    // Dedup plan, fixed in enumeration order before any check runs:
    // `None` = check this state, `Some(j)` = reuse the result of state `j`.
    let plan: Vec<Option<usize>> = if cfg.dedup {
        let mut first: HashMap<u128, usize> = HashMap::with_capacity(subsets.len());
        subsets
            .iter()
            .enumerate()
            .map(|(i, s)| match first.entry(state_key(&writes, s)) {
                std::collections::hash_map::Entry::Occupied(e) => Some(*e.get()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                    None
                }
            })
            .collect()
    } else {
        vec![None; subsets.len()]
    };

    let check_one = |subset: &[usize]| -> CheckRes {
        let fresh = kind.with_options(kind.options().with_fresh_sinks());
        let violation = check_crash_state(&fresh, base, &writes, subset, check, cfg);
        CheckRes {
            violation,
            cov: fresh.options().cov.snapshot(),
            trace: fresh.options().trace.snapshot(),
        }
    };

    let threads = cfg.threads.max(1);
    let mut results: Vec<Option<CheckRes>> = Vec::with_capacity(subsets.len());
    results.resize_with(subsets.len(), || None);

    // With stop-on-first, checking everything up front wastes work past the
    // winner; process bounded speculation windows instead. Window size only
    // trades wasted work against parallelism — it never changes the outcome.
    let window = if cfg.stop_on_first { (threads * 4).max(4) } else { subsets.len() };
    let mut pos = 0usize;
    while pos < subsets.len() {
        let hi = (pos + window).min(subsets.len());
        let todo: Vec<usize> = (pos..hi).filter(|&i| plan[i].is_none()).collect();
        if threads <= 1 || todo.len() <= 1 {
            for &i in &todo {
                results[i] = Some(check_one(&subsets[i]));
            }
        } else {
            let per = todo.len().div_ceil(threads);
            let check_one = &check_one;
            let subsets_ref = &subsets;
            std::thread::scope(|sc| {
                let handles: Vec<_> = todo
                    .chunks(per)
                    .map(|shard| {
                        sc.spawn(move || {
                            shard
                                .iter()
                                .map(|&i| (i, check_one(&subsets_ref[i])))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, r) in h.join().expect("crash-state worker panicked") {
                        results[i] = Some(r);
                    }
                }
            });
        }

        // Ordered commit walk over this window.
        for i in pos..hi {
            out.crash_states += 1;
            let res = match plan[i] {
                Some(j) => {
                    out.dedup_hits += 1;
                    results[j].as_ref().expect("dedup source precedes its reuse")
                }
                None => results[i].as_ref().expect("checked in this window"),
            };
            kind.options().cov.absorb(&res.cov);
            kind.options().trace.absorb(&res.trace);
            if let Some(v) = res.violation.clone() {
                push_report(
                    out,
                    BugReport {
                        workload: workload.name.clone(),
                        op_seq: seq,
                        op_desc: op_desc.clone(),
                        phase,
                        subset: describe_subset(&writes, &subsets[i]),
                        violation: v,
                    },
                );
                if cfg.stop_on_first {
                    *stop = true;
                    return;
                }
            }
        }
        pos = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ext4dax::Ext4DaxKind;
    use vfs::Op;

    fn w(name: &str, ops: Vec<Op>) -> Workload {
        Workload::new(name, ops)
    }

    #[test]
    fn ext4dax_clean_workload_passes() {
        let kind = Ext4DaxKind::default();
        let wl = w(
            "basic",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/f".into() },
                Op::WritePath { path: "/d/f".into(), off: 0, size: 1000 },
                Op::FsyncPath { path: "/d/f".into() },
                Op::Rename { old: "/d/f".into(), new: "/g".into() },
                Op::Sync,
            ],
        );
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert!(out.reports.is_empty(), "{:#?}", out.reports);
        // Weak guarantees: crash points only at the fsync and the sync.
        assert_eq!(out.crash_points, 2);
        assert!(out.crash_states >= 2);
    }

    #[test]
    fn weak_mode_ignores_unsynced_loss() {
        // Without any fsync, no crash points exist and nothing is checked —
        // matching the paper's handling of ext4-DAX.
        let kind = Ext4DaxKind::default();
        let wl = w("nosync", vec![Op::Creat { path: "/x".into() }]);
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert_eq!(out.crash_points, 0);
        assert!(out.reports.is_empty());
    }

    #[test]
    fn failing_ops_are_consistent_with_oracle() {
        let kind = Ext4DaxKind::default();
        let wl = w(
            "enoent",
            vec![
                Op::Unlink { path: "/missing".into() },
                Op::Creat { path: "/f".into() },
                Op::FsyncPath { path: "/f".into() },
            ],
        );
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert!(out.reports.is_empty(), "{:#?}", out.reports);
    }

    #[test]
    fn outcome_counters_populate() {
        let kind = Ext4DaxKind::default();
        let wl = w(
            "counts",
            vec![
                Op::Creat { path: "/f".into() },
                Op::WritePath { path: "/f".into(), off: 0, size: 8192 },
                Op::Sync,
            ],
        );
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert!(out.reports.is_empty(), "{:#?}", out.reports);
        assert_eq!(out.inflight_sizes.len() as u64, out.crash_points);
    }
}
