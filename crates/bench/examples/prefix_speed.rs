//! Measures what the incremental engine buys on an ACE sweep: runs strong
//! seq-1 plus the first `n` (arg 1, default 200) seq-2 workloads on NOVA
//! three times — all incremental layers off (the PR-1 baseline), all on,
//! and all but the prefix cache — printing per-phase wall times and cache
//! counters. Crash-state counts are identical across rows by construction
//! (the differential tests enforce it); only the time columns move. The
//! source of the EXPERIMENTS.md "Incremental evaluation" and
//! "Parallel + incremental" tables.
//!
//! Arg 2 (default 1) sets `TestConfig::threads`: with the prefix-tree
//! scheduler the counter columns — including `prefix`/`saved` — must not
//! move either, whatever the thread count.

use bench::run_suite;
use chipmunk::TestConfig;
use vfs::{BugSet, FsName};
use workloads::ace::{seq1, seq2, AceMode};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let ws: Vec<_> = seq1(AceMode::Strong)
        .into_iter()
        .chain(seq2(AceMode::Strong))
        .take(56 + n)
        .collect();
    for (label, cfg) in [
        (
            "all-off ",
            TestConfig {
                dedup: true,
                cross_dedup: false,
                delta_replay: false,
                scoped_check: false,
                prefix_cache: false,
                ..TestConfig::default()
            },
        ),
        ("all-on  ", TestConfig::default()),
        (
            "no-prefix",
            TestConfig { prefix_cache: false, ..TestConfig::default() },
        ),
    ] {
        let cfg = cfg.with_threads(threads);
        let t = std::time::Instant::now();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &cfg);
        println!(
            "{label} total={:?} oracle={:?} record={:?} check={:?} states={} dedup={} memo={} prefix={} saved={} subtrees={} depth={} per-worker={:?}",
            t.elapsed(),
            s.phase.oracle,
            s.phase.record,
            s.phase.check,
            s.crash_states,
            s.dedup_hits,
            s.memo_hits,
            s.prefix_hits,
            s.prefix_ops_saved,
            s.sched_subtrees,
            s.sched_subtree_max_depth,
            s.per_worker_prefix_hits,
        );
    }
}
