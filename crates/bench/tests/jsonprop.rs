//! Property tests for the hand-rolled JSON layer (`bench::jsonout`): the
//! campaign store's journals, results, and merged document all depend on
//! `parse` ∘ `render` being the identity, and on the parser rejecting
//! malformed input *deterministically* (journal recovery truncates at the
//! first unparsable line — a parser that flip-flops would make resume
//! nondeterministic).
//!
//! The vendored proptest shim has no recursive strategies, so value trees
//! are built by a seeded `StdRng` recursive builder driven by a `u64` seed
//! strategy — every case is still fully reproducible from its seed.

use bench::jsonout::{parse, JVal};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A generated string exercising escapes: quotes, backslashes, control
/// characters, newlines/tabs, and multi-byte unicode.
fn gen_string(rng: &mut StdRng) -> String {
    let alphabet: &[&str] = &[
        "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\r", "\u{1}", "\u{1f}", "é", "質", "🦀",
        "/", "{", "}", "[", "]", ":", ",",
    ];
    let len = rng.gen_range(0usize..12);
    (0..len).map(|_| alphabet[rng.gen_range(0usize..alphabet.len())]).collect()
}

/// A finite f64 that is interesting but exactly representable: integers,
/// dyadic fractions, and a few extremes. (`render` emits the shortest exact
/// decimal form, so any finite value round-trips; NaN is excluded because
/// `JVal` equality is derived.)
fn gen_num(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..6) {
        0 => 0.0,
        1 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
        2 => rng.gen_range(0u64..(1 << 53)) as f64,
        3 => rng.gen_range(-4096i64..4096) as f64 / 1024.0,
        4 => -0.0,
        _ => 1.5e12,
    }
}

/// Recursive value builder: depth-bounded, with distinct object keys (the
/// parser rejects duplicates, so a generated tree must not contain any).
fn gen_jval(rng: &mut StdRng, depth: usize) -> JVal {
    let max = if depth == 0 { 3 } else { 5 };
    match rng.gen_range(0u32..=max) {
        0 => JVal::Null,
        1 => JVal::Bool(rng.gen_bool(0.5)),
        2 => JVal::Num(gen_num(rng)),
        3 => JVal::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..4);
            JVal::Arr((0..n).map(|_| gen_jval(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..4);
            let mut fields: Vec<(String, JVal)> = Vec::new();
            for i in 0..n {
                let mut key = gen_string(rng);
                key.push_str(&format!("#{i}")); // force uniqueness
                let val = gen_jval(rng, depth - 1);
                fields.push((key, val));
            }
            JVal::Obj(fields)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse(render(v)) == v` for arbitrary value trees, and `render` is
    /// a pure function (same tree → same bytes).
    #[test]
    fn parse_render_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = gen_jval(&mut rng, 4);
        let text = v.render();
        prop_assert_eq!(&text, &v.render(), "render must be deterministic");
        let back = parse(&text);
        prop_assert!(back.is_ok(), "{:?} failed to parse back: {:?}", text, back);
        prop_assert_eq!(back.unwrap(), v, "round trip through {}", text);
    }

    /// A duplicated object key is rejected wherever it occurs — top level
    /// or nested — and the error is deterministic.
    #[test]
    fn duplicate_keys_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = gen_string(&mut rng);
        let inner = JVal::Obj(vec![
            (key.clone(), JVal::Num(1.0)),
            (key.clone(), JVal::Num(2.0)),
        ]);
        let nested = JVal::Arr(vec![JVal::Null, inner.clone()]);
        for v in [inner, nested] {
            let text = v.render();
            let e1 = parse(&text).expect_err("duplicate key must be rejected");
            let e2 = parse(&text).expect_err("duplicate key must be rejected");
            prop_assert_eq!(&e1, &e2, "rejection must be deterministic");
            prop_assert!(e1.contains("duplicate"), "unexpected error {}", e1);
        }
    }

    /// Garbage never panics the parser, and accept/reject (with the exact
    /// error text) is stable across calls — the property journal recovery
    /// leans on.
    #[test]
    fn garbage_is_rejected_deterministically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Mutate a valid rendering: truncate, splice bytes, or inject junk.
        let v = gen_jval(&mut rng, 3);
        let mut text = v.render();
        let snap = |s: &str, mut i: usize| {
            while !s.is_char_boundary(i) {
                i -= 1;
            }
            i
        };
        match rng.gen_range(0u32..3) {
            0 => {
                let cut = snap(&text, rng.gen_range(0usize..=text.len()));
                text.truncate(cut);
            }
            1 => {
                let junk: &[&str] = &["}", "]", ",,", "tru", "01", "+5", "\"", "{\"a\":}", "nul"];
                text.push_str(junk[rng.gen_range(0usize..junk.len())]);
            }
            _ => {
                let pos = snap(&text, rng.gen_range(0usize..=text.len()));
                text.insert(pos, '\u{0}');
            }
        }
        let r1 = parse(&text);
        let r2 = parse(&text);
        prop_assert_eq!(r1, r2, "parser must be deterministic on {:?}", text);
    }
}

/// Fixed malformed inputs the fuzz loop above may not always hit: these are
/// the exact shapes torn journal tails take.
#[test]
fn known_garbage_rejected() {
    for bad in [
        "",
        "{",
        "{\"i\":1",
        "{\"i\":1,\"res\":{\"name\":\"to",
        "[1,]",
        "{\"a\":1,}",
        "01",
        "1.",
        "-",
        "\"\\x\"",
        "\"unterminated",
        "truefalse",
        "{\"a\":1}{\"b\":2}",
        "{\"a\":1,\"a\":2}",
    ] {
        assert!(parse(bad).is_err(), "must reject {bad:?}");
    }
}
