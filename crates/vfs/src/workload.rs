//! The workload vocabulary shared by ACE, the fuzzer, and the test harness.
//!
//! A [`Workload`] is a sequence of [`Op`]s. Path-addressed variants
//! (`WritePath`, `FallocPath`, …) are self-contained — the executor opens and
//! closes a descriptor around them, like ACE's dependency-satisfied
//! workloads. Slot-addressed variants reference entries of a per-run
//! descriptor table and allow the fuzzer to express patterns ACE cannot,
//! such as two open descriptors on the same file (the trigger for SplitFS
//! bugs 22/23).

use crate::{
    fs::SyscallKind,
    types::{FallocMode, OpenFlags},
};

/// One workload operation.
///
/// Variant fields carry the obvious system-call arguments (paths, slots,
/// offsets, sizes); each variant's doc line is the authoritative
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    /// `creat(path)` (open with `O_CREAT|O_TRUNC`, then close).
    Creat { path: String },
    /// `mkdir(path)`.
    Mkdir { path: String },
    /// `rmdir(path)`.
    Rmdir { path: String },
    /// `unlink(path)`.
    Unlink { path: String },
    /// `remove(path)`: unlink a file or rmdir a directory.
    Remove { path: String },
    /// `link(old, new)`.
    Link { old: String, new: String },
    /// `rename(old, new)`.
    Rename { old: String, new: String },
    /// `truncate(path, size)`.
    Truncate { path: String, size: u64 },
    /// Self-contained positional write: open, `pwrite(off, size)`, close.
    /// Contents are deterministic from the op's index (see [`fill_data`]).
    WritePath { path: String, off: u64, size: u64 },
    /// Self-contained fallocate: open, `fallocate`, close.
    FallocPath { path: String, mode: FallocMode, off: u64, len: u64 },
    /// Self-contained fsync: open existing file, `fsync`, close.
    FsyncPath { path: String },
    /// `open(path, flags)` storing the descriptor in `slot`.
    Open { slot: usize, path: String, flags: OpenFlags },
    /// `close` the descriptor in `slot`.
    Close { slot: usize },
    /// `write(slot, size)` at the descriptor offset.
    Write { slot: usize, size: u64 },
    /// `pwrite(slot, off, size)`.
    Pwrite { slot: usize, off: u64, size: u64 },
    /// `fallocate` on the descriptor in `slot`.
    Falloc { slot: usize, mode: FallocMode, off: u64, len: u64 },
    /// `fsync(slot)`.
    Fsync { slot: usize },
    /// `fdatasync(slot)`.
    Fdatasync { slot: usize },
    /// `sync()`.
    Sync,
    /// `pread(slot, off, len)` (coverage only).
    Read { slot: usize, off: u64, len: u64 },
    /// `setxattr(path, name, value)`.
    SetXattr { path: String, name: String, value: Vec<u8> },
    /// `removexattr(path, name)`.
    RemoveXattr { path: String, name: String },
    /// Switch the simulated CPU for subsequent calls.
    SetCpu { cpu: usize },
}

impl Op {
    /// The syscall classification used for bug metadata matching.
    pub fn kind(&self) -> SyscallKind {
        match self {
            Op::Creat { .. } => SyscallKind::Creat,
            Op::Mkdir { .. } => SyscallKind::Mkdir,
            Op::Rmdir { .. } => SyscallKind::Rmdir,
            Op::Unlink { .. } => SyscallKind::Unlink,
            Op::Remove { .. } => SyscallKind::Remove,
            Op::Link { .. } => SyscallKind::Link,
            Op::Rename { .. } => SyscallKind::Rename,
            Op::Truncate { .. } => SyscallKind::Truncate,
            Op::WritePath { .. } | Op::Pwrite { .. } => SyscallKind::Pwrite,
            Op::FallocPath { .. } | Op::Falloc { .. } => SyscallKind::Falloc,
            Op::Write { .. } => SyscallKind::Write,
            Op::FsyncPath { .. } | Op::Fsync { .. } | Op::Fdatasync { .. } => SyscallKind::Fsync,
            Op::Sync => SyscallKind::Sync,
            Op::Open { .. } => SyscallKind::Open,
            Op::Close { .. } => SyscallKind::Close,
            Op::Read { .. } => SyscallKind::Read,
            Op::SetXattr { .. } => SyscallKind::SetXattr,
            Op::RemoveXattr { .. } => SyscallKind::RemoveXattr,
            Op::SetCpu { .. } => SyscallKind::Sync, // bookkeeping; never a crash point
        }
    }

    /// Whether the operation can modify persistent state (and therefore can
    /// host crash points).
    pub fn is_mutating(&self) -> bool {
        !matches!(self, Op::Read { .. } | Op::SetCpu { .. })
    }

    /// Human-readable description used in logs and bug reports.
    pub fn describe(&self) -> String {
        match self {
            Op::Creat { path } => format!("creat({path})"),
            Op::Mkdir { path } => format!("mkdir({path})"),
            Op::Rmdir { path } => format!("rmdir({path})"),
            Op::Unlink { path } => format!("unlink({path})"),
            Op::Remove { path } => format!("remove({path})"),
            Op::Link { old, new } => format!("link({old}, {new})"),
            Op::Rename { old, new } => format!("rename({old}, {new})"),
            Op::Truncate { path, size } => format!("truncate({path}, {size})"),
            Op::WritePath { path, off, size } => format!("pwrite({path}, off={off}, n={size})"),
            Op::FallocPath { path, mode, off, len } => {
                format!("fallocate({path}, {}, off={off}, len={len})", mode.name())
            }
            Op::FsyncPath { path } => format!("fsync({path})"),
            Op::Open { slot, path, .. } => format!("open({path}) -> slot {slot}"),
            Op::Close { slot } => format!("close(slot {slot})"),
            Op::Write { slot, size } => format!("write(slot {slot}, n={size})"),
            Op::Pwrite { slot, off, size } => format!("pwrite(slot {slot}, off={off}, n={size})"),
            Op::Falloc { slot, mode, off, len } => {
                format!("fallocate(slot {slot}, {}, off={off}, len={len})", mode.name())
            }
            Op::Fsync { slot } => format!("fsync(slot {slot})"),
            Op::Fdatasync { slot } => format!("fdatasync(slot {slot})"),
            Op::Sync => "sync()".to_string(),
            Op::Read { slot, off, len } => format!("pread(slot {slot}, off={off}, n={len})"),
            Op::SetXattr { path, name, .. } => format!("setxattr({path}, {name})"),
            Op::RemoveXattr { path, name } => format!("removexattr({path}, {name})"),
            Op::SetCpu { cpu } => format!("set_cpu({cpu})"),
        }
    }
}

/// A sequence of operations to run against a freshly formatted file system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workload {
    /// The operations, run in order.
    pub ops: Vec<Op>,
    /// Short label for reports (e.g. the ACE sequence id or fuzzer seed id).
    pub name: String,
}

impl Workload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        Workload { ops: ops.into_iter().collect(), name: name.into() }
    }

    /// One-line description of the whole workload.
    pub fn describe(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|o| o.describe()).collect();
        format!("[{}] {}", self.name, ops.join("; "))
    }
}

/// Deterministic file contents for write op number `seq` at offset `off`.
///
/// Both the recorded run and the oracle run materialize identical bytes, so
/// the checker can compare contents without shipping buffers around.
pub fn fill_data(seq: usize, off: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len as u64 {
        let x = (seq as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((off + i).wrapping_mul(0xff51_afd7_ed55_8ccd));
        // Avoid 0 so written data is distinguishable from never-written
        // (zero-filled) blocks.
        out.push((x >> 32) as u8 | 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_data_is_deterministic_and_nonzero() {
        let a = fill_data(3, 100, 64);
        let b = fill_data(3, 100, 64);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x != 0));
        assert_ne!(fill_data(3, 100, 8), fill_data(4, 100, 8));
        assert_ne!(fill_data(3, 100, 8), fill_data(3, 108, 8));
    }

    #[test]
    fn fill_data_is_offset_stable() {
        // Bytes depend on absolute offset, so a split write produces the
        // same contents as one big write.
        let whole = fill_data(7, 0, 128);
        let mut split = fill_data(7, 0, 64);
        split.extend(fill_data(7, 64, 64));
        assert_eq!(whole, split);
    }

    #[test]
    fn op_kinds_and_mutating() {
        assert_eq!(Op::Creat { path: "/a".into() }.kind(), SyscallKind::Creat);
        assert!(Op::Sync.is_mutating());
        assert!(!Op::Read { slot: 0, off: 0, len: 1 }.is_mutating());
        assert!(!Op::SetCpu { cpu: 1 }.is_mutating());
    }

    #[test]
    fn describe_is_readable() {
        let w = Workload::new(
            "t",
            vec![
                Op::Creat { path: "/foo".into() },
                Op::Rename { old: "/foo".into(), new: "/bar".into() },
            ],
        );
        assert_eq!(w.describe(), "[t] creat(/foo); rename(/foo, /bar)");
    }
}
