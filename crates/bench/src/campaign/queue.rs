//! File-based shared work queue: lease + heartbeat files.
//!
//! Claiming task `n` creates `leases/task-<n>.lease` with `create_new`
//! (atomic on every real file system — exactly one claimant wins). The
//! lease records the worker id, pid, and a **monotonic heartbeat sequence
//! number**; the runner heartbeats it (rewrites the file with `seq + 1`)
//! after every journaled workload. A lease is **stale** — reclaimable —
//! when its recorded pid is provably dead (`/proc/<pid>` gone on Linux),
//! when both pid and worker id are this very claimant's (an in-process
//! predecessor that was interrupted; a worker's claims are sequential, so
//! a live self-claim cannot exist — but another worker sharing the process
//! is live), or when its **sequence number has not advanced across a full
//! TTL of local observation**. Judging liveness by observed seq progress
//! instead of file mtime means coarse-mtime filesystems and clock skew
//! between fleet machines can neither double-lease a live task nor
//! prematurely reclaim one: the TTL clock is this process's own monotonic
//! `Instant`, and it only starts once the lease has been *seen* at a given
//! seq. Completed tasks are never claimed: the committed result file is
//! checked first.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::jsonout::{self, JVal};

use super::hostio::HostCtx;
use super::store::CampaignStore;
use super::wire::ju;

/// Outcome of a claim attempt.
pub enum Claim {
    /// This worker owns the task; run it, then `release` (or let a crash
    /// leave the lease for reclamation).
    Claimed(Lease),
    /// Another live worker holds the lease.
    Busy,
    /// The task already has a committed result.
    Done,
}

/// A held lease. Dropping it does **not** release the file — a crashed
/// worker must leave its lease behind for the stale check; release is
/// explicit on success.
pub struct Lease {
    path: PathBuf,
    worker: String,
    seq: Cell<u64>,
    io: HostCtx,
}

impl Lease {
    /// Refreshes the heartbeat: bumps the monotonic sequence number and
    /// rewrites the lease through the host-I/O layer. Failures are
    /// swallowed: a missed heartbeat only risks needless reclamation, and
    /// duplicate execution is harmless (results are deterministic and
    /// journal appends are first-writer-wins).
    pub fn heartbeat(&self) {
        self.seq.set(self.seq.get() + 1);
        self.io.overwrite_quiet(&self.path, lease_body(&self.worker, self.seq.get()).as_bytes());
    }

    /// Releases the lease after the task's result is committed.
    pub fn release(self) {
        let _ = self.io.remove_file(&self.path);
    }
}

fn lease_body(worker: &str, seq: u64) -> String {
    let mut line = JVal::Obj(vec![
        ("worker".into(), JVal::Str(worker.to_string())),
        ("pid".into(), ju(std::process::id() as u64)),
        ("seq".into(), ju(seq)),
    ])
    .render();
    line.push('\n');
    line
}

/// Whether `pid` is a live process. Linux reads `/proc`; elsewhere the
/// answer is "unknown" (`true`), leaving staleness to the TTL.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        PathBuf::from(format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// The claim side of the queue.
pub struct WorkQueue<'a> {
    store: &'a CampaignStore,
    worker: String,
    /// Observation window beyond which a lease whose sequence number has
    /// not advanced (and whose pid cannot be proven dead) is stale.
    ttl: std::time::Duration,
    /// Last seen `(seq, when-first-seen-at-that-seq)` per lease path, on
    /// this process's monotonic clock. A lease is TTL-stale only once its
    /// seq has been observed unchanged for a full TTL — file timestamps
    /// never participate.
    observed: RefCell<HashMap<PathBuf, (u64, Instant)>>,
}

impl<'a> WorkQueue<'a> {
    /// A queue handle for `worker` (a human-readable id for lease files).
    pub fn new(store: &'a CampaignStore, worker: &str, ttl: std::time::Duration) -> Self {
        WorkQueue {
            store,
            worker: worker.to_string(),
            ttl,
            observed: RefCell::new(HashMap::new()),
        }
    }

    /// Attempts to claim task `id`.
    pub fn claim(&self, id: usize) -> Claim {
        if self.store.result_exists(id) {
            return Claim::Done;
        }
        let path = self.store.lease_path(id);
        match self.try_create(&path) {
            Some(lease) => Claim::Claimed(lease),
            None => {
                if self.is_stale(&path) {
                    // Reclaim: remove the dead worker's lease, then race for
                    // the replacement like any other claimant.
                    let _ = self.store.io.remove_file(&path);
                    self.observed.borrow_mut().remove(&path);
                    match self.try_create(&path) {
                        Some(lease) => Claim::Claimed(lease),
                        None => Claim::Busy,
                    }
                } else {
                    Claim::Busy
                }
            }
        }
    }

    fn try_create(&self, path: &Path) -> Option<Lease> {
        match self.store.io.create_new(path, lease_body(&self.worker, 0).as_bytes()) {
            Ok(true) => Some(Lease {
                path: path.to_path_buf(),
                worker: self.worker.clone(),
                seq: Cell::new(0),
                io: self.store.io.clone(),
            }),
            // Exists already, or the host refused the create even after
            // retries: either way this claimant does not own the task. The
            // runner's loop (which watches the host-health flags) decides
            // whether to keep trying.
            Ok(false) | Err(_) => None,
        }
    }

    /// Stale = provably dead pid, our own pid *and* worker id (a previous
    /// interrupted run of this very worker — the pid alone is not enough,
    /// since several workers may share a process), or a heartbeat sequence
    /// number that has not advanced across a full TTL of observation. An
    /// unreadable or unparsable lease (torn write of a dying worker) is
    /// treated as seq 0 and falls to the observation window.
    fn is_stale(&self, path: &PathBuf) -> bool {
        let body = match self.store.io.read_opt(path) {
            Ok(Some(bytes)) => jsonout::parse(String::from_utf8_lossy(&bytes).trim()).ok(),
            Ok(None) => return false, // released under us — claim will retry
            Err(_) => None,
        };
        let pid = body.as_ref().and_then(|v| v.get("pid").and_then(JVal::as_u64));
        let seq = body
            .as_ref()
            .and_then(|v| v.get("seq").and_then(JVal::as_u64))
            .unwrap_or(0);
        let ours = body
            .as_ref()
            .and_then(|v| v.get("worker").and_then(JVal::as_str))
            .is_some_and(|w| w == self.worker);
        if let Some(pid) = pid {
            if pid as u32 == std::process::id() && ours {
                return true;
            }
            if !pid_alive(pid as u32) {
                return true;
            }
        }
        // Liveness by progress: restart the window whenever the seq moves.
        let now = Instant::now();
        let mut obs = self.observed.borrow_mut();
        match obs.get(path) {
            Some(&(last_seq, since)) if last_seq == seq => now.duration_since(since) > self.ttl,
            _ => {
                obs.insert(path.clone(), (seq, now));
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignSpec;
    use std::time::Duration;

    fn store(tag: &str) -> CampaignStore {
        let dir = std::env::temp_dir().join(format!("chipmunk-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CampaignStore::open_or_init(&dir, &CampaignSpec::default()).unwrap()
    }

    #[test]
    fn claim_is_exclusive_and_done_wins() {
        let s = store("claim");
        let q = WorkQueue::new(&s, "w0", Duration::from_secs(3600));
        let lease = match q.claim(0) {
            Claim::Claimed(l) => l,
            _ => panic!("first claim must win"),
        };
        std::fs::write(s.lease_path(1), "{\"worker\":\"other\",\"pid\":1,\"seq\":0}\n").unwrap();
        assert!(matches!(q.claim(1), Claim::Busy), "live foreign lease is busy");
        // Same pid but a different worker id: a sibling worker sharing this
        // process is live, not an interrupted predecessor.
        std::fs::write(
            s.lease_path(2),
            format!("{{\"worker\":\"sibling\",\"pid\":{},\"seq\":0}}\n", std::process::id()),
        )
        .unwrap();
        assert!(matches!(q.claim(2), Claim::Busy), "in-process sibling lease is busy");
        lease.release();
        s.write_result(0, &[]).unwrap();
        assert!(matches!(q.claim(0), Claim::Done));
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn dead_pid_and_self_pid_leases_are_reclaimed() {
        let s = store("stale");
        let q = WorkQueue::new(&s, "w0", Duration::from_secs(3600));
        // A pid that cannot exist (pid_max is < 2^22 by default; u32::MAX
        // is far beyond any real configuration).
        std::fs::write(
            s.lease_path(0),
            format!("{{\"worker\":\"gone\",\"pid\":{},\"seq\":9}}\n", u32::MAX - 1),
        )
        .unwrap();
        assert!(matches!(q.claim(0), Claim::Claimed(_)), "dead pid lease is reclaimed");
        // Our own pid *and* worker id: an interrupted in-process
        // predecessor of this very worker. Old-format leases (no seq — a
        // pre-hardening store) parse with seq 0 and the pid rules intact.
        std::fs::write(
            s.lease_path(1),
            format!("{{\"worker\":\"w0\",\"pid\":{}}}\n", std::process::id()),
        )
        .unwrap();
        assert!(matches!(q.claim(1), Claim::Claimed(_)), "self lease is reclaimed");
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn stalled_heartbeat_is_reclaimed_only_after_observed_ttl() {
        let s = store("ttl");
        // pid 1 is always alive (init), so this exercises the
        // seq-observation arm specifically. TTL of zero: any observed
        // window longer than zero is enough.
        let q = WorkQueue::new(&s, "w0", Duration::from_millis(0));
        std::fs::write(s.lease_path(0), "{\"worker\":\"slow\",\"pid\":1,\"seq\":5}\n").unwrap();
        // First sight only *starts* the observation window — never stale on
        // first contact, however old the file's timestamps look (a coarse-
        // mtime or skewed-clock host must not cause premature reclamation).
        assert!(matches!(q.claim(0), Claim::Busy), "first observation is never stale");
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.claim(0), Claim::Claimed(_)), "no seq progress across TTL: stale");
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn advancing_heartbeat_seq_is_never_reclaimed() {
        let s = store("advance");
        let q = WorkQueue::new(&s, "w0", Duration::from_millis(10));
        std::fs::write(s.lease_path(0), "{\"worker\":\"busy\",\"pid\":1,\"seq\":1}\n").unwrap();
        assert!(matches!(q.claim(0), Claim::Busy));
        for seq in 2..5 {
            // The holder keeps heartbeating: every observation sees a new
            // seq, so the window restarts and the lease is never stale,
            // even though each gap exceeds the TTL.
            std::thread::sleep(Duration::from_millis(20));
            std::fs::write(
                s.lease_path(0),
                format!("{{\"worker\":\"busy\",\"pid\":1,\"seq\":{seq}}}\n"),
            )
            .unwrap();
            assert!(matches!(q.claim(0), Claim::Busy), "advancing seq must stay live");
        }
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn garbage_lease_falls_back_to_observation_window() {
        let s = store("garbage");
        let q = WorkQueue::new(&s, "w0", Duration::from_millis(0));
        // Torn write of a dying worker: not JSON. Treated as seq 0 — one
        // observation window must still pass before reclamation.
        std::fs::write(s.lease_path(1), "not json").unwrap();
        assert!(matches!(q.claim(1), Claim::Busy));
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.claim(1), Claim::Claimed(_)));
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn heartbeat_bumps_seq_monotonically() {
        let s = store("seq");
        let q = WorkQueue::new(&s, "w0", Duration::from_secs(3600));
        let lease = match q.claim(0) {
            Claim::Claimed(l) => l,
            _ => panic!("claim"),
        };
        let read_seq = || {
            let text = std::fs::read_to_string(s.lease_path(0)).unwrap();
            jsonout::parse(text.trim()).unwrap().get("seq").and_then(JVal::as_u64).unwrap()
        };
        assert_eq!(read_seq(), 0);
        lease.heartbeat();
        assert_eq!(read_seq(), 1);
        lease.heartbeat();
        assert_eq!(read_seq(), 2);
        lease.release();
        let _ = std::fs::remove_dir_all(&s.dir);
    }
}
