//! The workload vocabulary shared by ACE, the fuzzer, and the test harness.
//!
//! A [`Workload`] is a sequence of [`Op`]s. Path-addressed variants
//! (`WritePath`, `FallocPath`, …) are self-contained — the executor opens and
//! closes a descriptor around them, like ACE's dependency-satisfied
//! workloads. Slot-addressed variants reference entries of a per-run
//! descriptor table and allow the fuzzer to express patterns ACE cannot,
//! such as two open descriptors on the same file (the trigger for SplitFS
//! bugs 22/23).

use crate::{
    fs::SyscallKind,
    types::{FallocMode, OpenFlags},
};

/// One workload operation.
///
/// Variant fields carry the obvious system-call arguments (paths, slots,
/// offsets, sizes); each variant's doc line is the authoritative
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    /// `creat(path)` (open with `O_CREAT|O_TRUNC`, then close).
    Creat { path: String },
    /// `mkdir(path)`.
    Mkdir { path: String },
    /// `rmdir(path)`.
    Rmdir { path: String },
    /// `unlink(path)`.
    Unlink { path: String },
    /// `remove(path)`: unlink a file or rmdir a directory.
    Remove { path: String },
    /// `link(old, new)`.
    Link { old: String, new: String },
    /// `rename(old, new)`.
    Rename { old: String, new: String },
    /// `truncate(path, size)`.
    Truncate { path: String, size: u64 },
    /// Self-contained positional write: open, `pwrite(off, size)`, close.
    /// Contents are deterministic from the op's index (see [`fill_data`]).
    WritePath { path: String, off: u64, size: u64 },
    /// Self-contained fallocate: open, `fallocate`, close.
    FallocPath { path: String, mode: FallocMode, off: u64, len: u64 },
    /// Self-contained fsync: open existing file, `fsync`, close.
    FsyncPath { path: String },
    /// `open(path, flags)` storing the descriptor in `slot`.
    Open { slot: usize, path: String, flags: OpenFlags },
    /// `close` the descriptor in `slot`.
    Close { slot: usize },
    /// `write(slot, size)` at the descriptor offset.
    Write { slot: usize, size: u64 },
    /// `pwrite(slot, off, size)`.
    Pwrite { slot: usize, off: u64, size: u64 },
    /// `fallocate` on the descriptor in `slot`.
    Falloc { slot: usize, mode: FallocMode, off: u64, len: u64 },
    /// `fsync(slot)`.
    Fsync { slot: usize },
    /// `fdatasync(slot)`.
    Fdatasync { slot: usize },
    /// `sync()`.
    Sync,
    /// `pread(slot, off, len)` (coverage only).
    Read { slot: usize, off: u64, len: u64 },
    /// `setxattr(path, name, value)`.
    SetXattr { path: String, name: String, value: Vec<u8> },
    /// `removexattr(path, name)`.
    RemoveXattr { path: String, name: String },
    /// Switch the simulated CPU for subsequent calls.
    SetCpu { cpu: usize },
}

impl Op {
    /// The syscall classification used for bug metadata matching.
    pub fn kind(&self) -> SyscallKind {
        match self {
            Op::Creat { .. } => SyscallKind::Creat,
            Op::Mkdir { .. } => SyscallKind::Mkdir,
            Op::Rmdir { .. } => SyscallKind::Rmdir,
            Op::Unlink { .. } => SyscallKind::Unlink,
            Op::Remove { .. } => SyscallKind::Remove,
            Op::Link { .. } => SyscallKind::Link,
            Op::Rename { .. } => SyscallKind::Rename,
            Op::Truncate { .. } => SyscallKind::Truncate,
            Op::WritePath { .. } | Op::Pwrite { .. } => SyscallKind::Pwrite,
            Op::FallocPath { .. } | Op::Falloc { .. } => SyscallKind::Falloc,
            Op::Write { .. } => SyscallKind::Write,
            Op::FsyncPath { .. } | Op::Fsync { .. } | Op::Fdatasync { .. } => SyscallKind::Fsync,
            Op::Sync => SyscallKind::Sync,
            Op::Open { .. } => SyscallKind::Open,
            Op::Close { .. } => SyscallKind::Close,
            Op::Read { .. } => SyscallKind::Read,
            Op::SetXattr { .. } => SyscallKind::SetXattr,
            Op::RemoveXattr { .. } => SyscallKind::RemoveXattr,
            Op::SetCpu { .. } => SyscallKind::Sync, // bookkeeping; never a crash point
        }
    }

    /// Whether the operation can modify persistent state (and therefore can
    /// host crash points).
    pub fn is_mutating(&self) -> bool {
        !matches!(self, Op::Read { .. } | Op::SetCpu { .. })
    }

    /// Human-readable description used in logs and bug reports.
    pub fn describe(&self) -> String {
        match self {
            Op::Creat { path } => format!("creat({path})"),
            Op::Mkdir { path } => format!("mkdir({path})"),
            Op::Rmdir { path } => format!("rmdir({path})"),
            Op::Unlink { path } => format!("unlink({path})"),
            Op::Remove { path } => format!("remove({path})"),
            Op::Link { old, new } => format!("link({old}, {new})"),
            Op::Rename { old, new } => format!("rename({old}, {new})"),
            Op::Truncate { path, size } => format!("truncate({path}, {size})"),
            Op::WritePath { path, off, size } => format!("pwrite({path}, off={off}, n={size})"),
            Op::FallocPath { path, mode, off, len } => {
                format!("fallocate({path}, {}, off={off}, len={len})", mode.name())
            }
            Op::FsyncPath { path } => format!("fsync({path})"),
            Op::Open { slot, path, .. } => format!("open({path}) -> slot {slot}"),
            Op::Close { slot } => format!("close(slot {slot})"),
            Op::Write { slot, size } => format!("write(slot {slot}, n={size})"),
            Op::Pwrite { slot, off, size } => format!("pwrite(slot {slot}, off={off}, n={size})"),
            Op::Falloc { slot, mode, off, len } => {
                format!("fallocate(slot {slot}, {}, off={off}, len={len})", mode.name())
            }
            Op::Fsync { slot } => format!("fsync(slot {slot})"),
            Op::Fdatasync { slot } => format!("fdatasync(slot {slot})"),
            Op::Sync => "sync()".to_string(),
            Op::Read { slot, off, len } => format!("pread(slot {slot}, off={off}, n={len})"),
            Op::SetXattr { path, name, .. } => format!("setxattr({path}, {name})"),
            Op::RemoveXattr { path, name } => format!("removexattr({path}, {name})"),
            Op::SetCpu { cpu } => format!("set_cpu({cpu})"),
        }
    }
}

// ---- Wire form (repro bundles) ----
//
// Each op serializes to one line of space-separated tokens with a stable
// leading keyword. String tokens (paths, xattr names) are percent-escaped so
// the grammar survives arbitrary contents; xattr values are hex. The format
// is part of the repro-bundle schema: committed bundles are replayed by CI,
// so parsing must stay backward compatible.

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        // Printable ASCII minus the two meta characters passes through;
        // everything else (spaces, control bytes, UTF-8 continuations) is
        // escaped byte-wise.
        if (0x21..=0x7e).contains(&b) && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    if out.is_empty() {
        "%".to_string() // empty-string sentinel (a bare '%' decodes to "")
    } else {
        out
    }
}

fn unesc(s: &str) -> Result<String, String> {
    if s == "%" {
        return Ok(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|e| format!("bad escape in {s:?}: {e}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|e| e.to_string())
}

fn flags_to_wire(f: &OpenFlags) -> String {
    let mut s = String::new();
    if f.create {
        s.push('c');
    }
    if f.excl {
        s.push('e');
    }
    if f.trunc {
        s.push('t');
    }
    if f.append {
        s.push('a');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn flags_from_wire(s: &str) -> Result<OpenFlags, String> {
    let mut f = OpenFlags::default();
    for c in s.chars() {
        match c {
            'c' => f.create = true,
            'e' => f.excl = true,
            't' => f.trunc = true,
            'a' => f.append = true,
            '-' => {}
            _ => return Err(format!("unknown open flag {c:?} in {s:?}")),
        }
    }
    Ok(f)
}

fn falloc_from_wire(s: &str) -> Result<FallocMode, String> {
    FallocMode::ALL
        .into_iter()
        .find(|m| m.name() == s)
        .ok_or_else(|| format!("unknown fallocate mode {s:?}"))
}

fn hex_encode(v: &[u8]) -> String {
    if v.is_empty() {
        return "-".to_string();
    }
    v.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex {s:?}"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex {s:?}: {e}")))
        .collect()
}

impl Op {
    /// Serializes to the stable one-line wire form used by repro bundles.
    pub fn to_wire(&self) -> String {
        match self {
            Op::Creat { path } => format!("creat {}", esc(path)),
            Op::Mkdir { path } => format!("mkdir {}", esc(path)),
            Op::Rmdir { path } => format!("rmdir {}", esc(path)),
            Op::Unlink { path } => format!("unlink {}", esc(path)),
            Op::Remove { path } => format!("remove {}", esc(path)),
            Op::Link { old, new } => format!("link {} {}", esc(old), esc(new)),
            Op::Rename { old, new } => format!("rename {} {}", esc(old), esc(new)),
            Op::Truncate { path, size } => format!("truncate {} {size}", esc(path)),
            Op::WritePath { path, off, size } => format!("write_path {} {off} {size}", esc(path)),
            Op::FallocPath { path, mode, off, len } => {
                format!("falloc_path {} {} {off} {len}", esc(path), mode.name())
            }
            Op::FsyncPath { path } => format!("fsync_path {}", esc(path)),
            Op::Open { slot, path, flags } => {
                format!("open {slot} {} {}", esc(path), flags_to_wire(flags))
            }
            Op::Close { slot } => format!("close {slot}"),
            Op::Write { slot, size } => format!("write {slot} {size}"),
            Op::Pwrite { slot, off, size } => format!("pwrite {slot} {off} {size}"),
            Op::Falloc { slot, mode, off, len } => {
                format!("falloc {slot} {} {off} {len}", mode.name())
            }
            Op::Fsync { slot } => format!("fsync {slot}"),
            Op::Fdatasync { slot } => format!("fdatasync {slot}"),
            Op::Sync => "sync".to_string(),
            Op::Read { slot, off, len } => format!("read {slot} {off} {len}"),
            Op::SetXattr { path, name, value } => {
                format!("setxattr {} {} {}", esc(path), esc(name), hex_encode(value))
            }
            Op::RemoveXattr { path, name } => {
                format!("removexattr {} {}", esc(path), esc(name))
            }
            Op::SetCpu { cpu } => format!("set_cpu {cpu}"),
        }
    }

    /// Parses the wire form produced by [`Op::to_wire`].
    pub fn from_wire(line: &str) -> Result<Op, String> {
        let toks: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
        let arity = |n: usize| -> Result<(), String> {
            if toks.len() == n + 1 {
                Ok(())
            } else {
                Err(format!("op {:?}: expected {n} arguments, got {}", toks.first().copied().unwrap_or(""), toks.len().saturating_sub(1)))
            }
        };
        let num = |s: &str| -> Result<u64, String> {
            s.parse::<u64>().map_err(|e| format!("bad number {s:?}: {e}"))
        };
        let slot = |s: &str| -> Result<usize, String> {
            s.parse::<usize>().map_err(|e| format!("bad slot {s:?}: {e}"))
        };
        let Some(&kw) = toks.first() else { return Err("empty op line".to_string()) };
        Ok(match kw {
            "creat" => {
                arity(1)?;
                Op::Creat { path: unesc(toks[1])? }
            }
            "mkdir" => {
                arity(1)?;
                Op::Mkdir { path: unesc(toks[1])? }
            }
            "rmdir" => {
                arity(1)?;
                Op::Rmdir { path: unesc(toks[1])? }
            }
            "unlink" => {
                arity(1)?;
                Op::Unlink { path: unesc(toks[1])? }
            }
            "remove" => {
                arity(1)?;
                Op::Remove { path: unesc(toks[1])? }
            }
            "link" => {
                arity(2)?;
                Op::Link { old: unesc(toks[1])?, new: unesc(toks[2])? }
            }
            "rename" => {
                arity(2)?;
                Op::Rename { old: unesc(toks[1])?, new: unesc(toks[2])? }
            }
            "truncate" => {
                arity(2)?;
                Op::Truncate { path: unesc(toks[1])?, size: num(toks[2])? }
            }
            "write_path" => {
                arity(3)?;
                Op::WritePath { path: unesc(toks[1])?, off: num(toks[2])?, size: num(toks[3])? }
            }
            "falloc_path" => {
                arity(4)?;
                Op::FallocPath {
                    path: unesc(toks[1])?,
                    mode: falloc_from_wire(toks[2])?,
                    off: num(toks[3])?,
                    len: num(toks[4])?,
                }
            }
            "fsync_path" => {
                arity(1)?;
                Op::FsyncPath { path: unesc(toks[1])? }
            }
            "open" => {
                arity(3)?;
                Op::Open { slot: slot(toks[1])?, path: unesc(toks[2])?, flags: flags_from_wire(toks[3])? }
            }
            "close" => {
                arity(1)?;
                Op::Close { slot: slot(toks[1])? }
            }
            "write" => {
                arity(2)?;
                Op::Write { slot: slot(toks[1])?, size: num(toks[2])? }
            }
            "pwrite" => {
                arity(3)?;
                Op::Pwrite { slot: slot(toks[1])?, off: num(toks[2])?, size: num(toks[3])? }
            }
            "falloc" => {
                arity(4)?;
                Op::Falloc {
                    slot: slot(toks[1])?,
                    mode: falloc_from_wire(toks[2])?,
                    off: num(toks[3])?,
                    len: num(toks[4])?,
                }
            }
            "fsync" => {
                arity(1)?;
                Op::Fsync { slot: slot(toks[1])? }
            }
            "fdatasync" => {
                arity(1)?;
                Op::Fdatasync { slot: slot(toks[1])? }
            }
            "sync" => {
                arity(0)?;
                Op::Sync
            }
            "read" => {
                arity(3)?;
                Op::Read { slot: slot(toks[1])?, off: num(toks[2])?, len: num(toks[3])? }
            }
            "setxattr" => {
                arity(3)?;
                Op::SetXattr {
                    path: unesc(toks[1])?,
                    name: unesc(toks[2])?,
                    value: hex_decode(toks[3])?,
                }
            }
            "removexattr" => {
                arity(2)?;
                Op::RemoveXattr { path: unesc(toks[1])?, name: unesc(toks[2])? }
            }
            "set_cpu" => {
                arity(1)?;
                Op::SetCpu { cpu: slot(toks[1])? }
            }
            other => return Err(format!("unknown op keyword {other:?}")),
        })
    }
}

/// A sequence of operations to run against a freshly formatted file system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workload {
    /// The operations, run in order.
    pub ops: Vec<Op>,
    /// Short label for reports (e.g. the ACE sequence id or fuzzer seed id).
    pub name: String,
}

impl Workload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        Workload { ops: ops.into_iter().collect(), name: name.into() }
    }

    /// One-line description of the whole workload.
    pub fn describe(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|o| o.describe()).collect();
        format!("[{}] {}", self.name, ops.join("; "))
    }

    /// Serializes every op to its wire line (see [`Op::to_wire`]).
    pub fn to_wire_lines(&self) -> Vec<String> {
        self.ops.iter().map(|o| o.to_wire()).collect()
    }

    /// Rebuilds a workload from wire lines produced by
    /// [`Workload::to_wire_lines`].
    pub fn from_wire_lines<S: AsRef<str>>(name: &str, lines: &[S]) -> Result<Workload, String> {
        let ops = lines
            .iter()
            .map(|l| Op::from_wire(l.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Workload::new(name, ops))
    }
}

/// Deterministic file contents for write op number `seq` at offset `off`.
///
/// Both the recorded run and the oracle run materialize identical bytes, so
/// the checker can compare contents without shipping buffers around.
pub fn fill_data(seq: usize, off: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len as u64 {
        let x = (seq as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((off + i).wrapping_mul(0xff51_afd7_ed55_8ccd));
        // Avoid 0 so written data is distinguishable from never-written
        // (zero-filled) blocks.
        out.push((x >> 32) as u8 | 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_data_is_deterministic_and_nonzero() {
        let a = fill_data(3, 100, 64);
        let b = fill_data(3, 100, 64);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x != 0));
        assert_ne!(fill_data(3, 100, 8), fill_data(4, 100, 8));
        assert_ne!(fill_data(3, 100, 8), fill_data(3, 108, 8));
    }

    #[test]
    fn fill_data_is_offset_stable() {
        // Bytes depend on absolute offset, so a split write produces the
        // same contents as one big write.
        let whole = fill_data(7, 0, 128);
        let mut split = fill_data(7, 0, 64);
        split.extend(fill_data(7, 64, 64));
        assert_eq!(whole, split);
    }

    #[test]
    fn op_kinds_and_mutating() {
        assert_eq!(Op::Creat { path: "/a".into() }.kind(), SyscallKind::Creat);
        assert!(Op::Sync.is_mutating());
        assert!(!Op::Read { slot: 0, off: 0, len: 1 }.is_mutating());
        assert!(!Op::SetCpu { cpu: 1 }.is_mutating());
    }

    #[test]
    fn wire_roundtrips_every_variant() {
        let ops = vec![
            Op::Creat { path: "/a b".into() },
            Op::Mkdir { path: "/d".into() },
            Op::Rmdir { path: "/d".into() },
            Op::Unlink { path: "/a b".into() },
            Op::Remove { path: "/x%y".into() },
            Op::Link { old: "/a".into(), new: "/b".into() },
            Op::Rename { old: "/a".into(), new: "/ü".into() },
            Op::Truncate { path: "/f".into(), size: 4096 },
            Op::WritePath { path: "/f".into(), off: 17, size: 900 },
            Op::FallocPath { path: "/f".into(), mode: FallocMode::PunchHole, off: 0, len: 64 },
            Op::FsyncPath { path: "/f".into() },
            Op::Open { slot: 2, path: "/f".into(), flags: OpenFlags::CREAT_TRUNC },
            Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::RDWR },
            Op::Close { slot: 2 },
            Op::Write { slot: 0, size: 33 },
            Op::Pwrite { slot: 0, off: 8, size: 16 },
            Op::Falloc { slot: 0, mode: FallocMode::KeepSize, off: 1, len: 2 },
            Op::Fsync { slot: 0 },
            Op::Fdatasync { slot: 0 },
            Op::Sync,
            Op::Read { slot: 0, off: 0, len: 10 },
            Op::SetXattr { path: "/f".into(), name: "user.k".into(), value: vec![0, 255, 9] },
            Op::SetXattr { path: "/f".into(), name: "".into(), value: vec![] },
            Op::RemoveXattr { path: "/f".into(), name: "user.k".into() },
            Op::SetCpu { cpu: 3 },
        ];
        for op in &ops {
            let wire = op.to_wire();
            let back = Op::from_wire(&wire).unwrap_or_else(|e| panic!("{wire:?}: {e}"));
            assert_eq!(&back, op, "wire {wire:?}");
        }
        let w = Workload::new("rt", ops);
        let lines = w.to_wire_lines();
        let back = Workload::from_wire_lines("rt", &lines).expect("workload roundtrip");
        assert_eq!(back, w);
    }

    #[test]
    fn wire_rejects_malformed_lines() {
        for bad in [
            "",
            "frobnicate /x",
            "creat",
            "creat /a /b",
            "truncate /f notanumber",
            "open 0 /f q",
            "falloc 0 badmode 0 1",
            "setxattr /f k zz1", // odd-length hex
            "creat /a%g",        // bad escape
            "creat /a%2",        // truncated escape
        ] {
            assert!(Op::from_wire(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn describe_is_readable() {
        let w = Workload::new(
            "t",
            vec![
                Op::Creat { path: "/foo".into() },
                Op::Rename { old: "/foo".into(), new: "/bar".into() },
            ],
        );
        assert_eq!(w.describe(), "[t] creat(/foo); rename(/foo, /bar)");
    }
}
