//! The [`FileSystem`] trait and the [`FsKind`] factory abstraction.

use pmem::PmBackend;

use crate::{
    bugs::{BugSet, FsName},
    cov::Cov,
    trace::BugTrace,
    error::{FsError, FsResult},
    types::{DirEntry, FallocMode, Fd, Metadata, OpenFlags},
};

/// The system calls tested by the paper (§4.1), used in bug metadata and in
/// classifying which crash points exercise which calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// `creat`.
    Creat,
    /// `mkdir`.
    Mkdir,
    /// `fallocate`.
    Falloc,
    /// `write`.
    Write,
    /// `pwrite`.
    Pwrite,
    /// `link`.
    Link,
    /// `unlink`.
    Unlink,
    /// `remove` (unlink or rmdir).
    Remove,
    /// `rename`.
    Rename,
    /// `truncate`.
    Truncate,
    /// `rmdir`.
    Rmdir,
    /// `open`.
    Open,
    /// `close`.
    Close,
    /// `fsync`/`fdatasync`.
    Fsync,
    /// `sync`.
    Sync,
    /// `setxattr`.
    SetXattr,
    /// `removexattr`.
    RemoveXattr,
    /// `read`/`pread` (coverage only; never a crash point).
    Read,
    /// Marker: every system call (used in bug metadata).
    All,
    /// Marker: every metadata system call (used in bug metadata).
    AllMetadata,
}

impl SyscallKind {
    /// Whether a bug tagged with `self` affects an operation of kind `op`.
    pub fn matches(self, op: SyscallKind) -> bool {
        match self {
            SyscallKind::All => true,
            SyscallKind::AllMetadata => !matches!(op, SyscallKind::Write | SyscallKind::Pwrite),
            k => k == op,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::Creat => "creat",
            SyscallKind::Mkdir => "mkdir",
            SyscallKind::Falloc => "fallocate",
            SyscallKind::Write => "write",
            SyscallKind::Pwrite => "pwrite",
            SyscallKind::Link => "link",
            SyscallKind::Unlink => "unlink",
            SyscallKind::Remove => "remove",
            SyscallKind::Rename => "rename",
            SyscallKind::Truncate => "truncate",
            SyscallKind::Rmdir => "rmdir",
            SyscallKind::Open => "open",
            SyscallKind::Close => "close",
            SyscallKind::Fsync => "fsync",
            SyscallKind::Sync => "sync",
            SyscallKind::SetXattr => "setxattr",
            SyscallKind::RemoveXattr => "removexattr",
            SyscallKind::Read => "read",
            SyscallKind::All => "All",
            SyscallKind::AllMetadata => "All metadata",
        }
    }
}

/// Crash-consistency guarantees a file system advertises; they determine
/// where Chipmunk places crash points and which checks apply (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guarantees {
    /// Strong guarantees: every operation is synchronous and (except
    /// possibly data writes) atomic; crash points go after *every* store
    /// fence. Weak guarantees: crash points only after fsync-family calls.
    pub strong: bool,
    /// Whether data writes are guaranteed atomic (WineFS strict mode,
    /// SplitFS strict mode).
    pub atomic_data_writes: bool,
    /// Whether the file system validates file-data checksums on the read
    /// path (NOVA-Fortis). When set, torn data surfaces as read errors
    /// rather than tolerated content, so data bytes are verdict-relevant
    /// even under the checker's torn-data relaxation and representative
    /// clustering must keep them exact.
    pub data_checksums: bool,
}

/// Construction options shared by all file systems.
#[derive(Debug, Clone, Default)]
pub struct FsOptions {
    /// Which injected bugs are present.
    pub bugs: BugSet,
    /// Coverage sink (disabled by default).
    pub cov: Cov,
    /// Number of simulated CPUs (used by WineFS per-CPU journals).
    pub cpus: usize,
    /// Ground-truth trace of executed bug code paths (see [`BugTrace`]).
    pub trace: BugTrace,
    /// Enable the paper's §4.4 *non-crash-consistency* extras (KASAN/BUG()
    /// analogues, surfaced as [`FsError::Detected`]): NOVA's unbounded
    /// `write` allocation and PMFS's `fallocate` range overflow.
    pub extra_bugs: bool,
}

impl FsOptions {
    /// Options with every injected bug fixed.
    pub fn fixed() -> Self {
        FsOptions { bugs: BugSet::fixed(), ..Default::default() }
    }

    /// Options with only the given bugs present.
    pub fn with_bugs(bugs: BugSet) -> Self {
        FsOptions { bugs, ..Default::default() }
    }

    /// A copy with the same behaviour knobs (bugs, cpus, extras) but *fresh*
    /// coverage and trace sinks that share nothing with `self`. Parallel
    /// workers check crash states on clones built from these options, so
    /// their instrumentation can be merged back in canonical order rather
    /// than racing on the shared sinks.
    pub fn with_fresh_sinks(&self) -> Self {
        FsOptions {
            bugs: self.bugs,
            cov: if self.cov.is_enabled() { Cov::enabled() } else { Cov::disabled() },
            cpus: self.cpus,
            trace: BugTrace::new(),
            extra_bugs: self.extra_bugs,
        }
    }
}

/// The POSIX-subset interface every tested file system implements.
///
/// Paths are absolute (`/a/b`). Descriptors are per-mount. All operations
/// are sequential (the paper runs one system call at a time, §3.1).
pub trait FileSystem {
    /// Creates a regular file (`creat` without holding the descriptor open).
    fn creat(&mut self, path: &str) -> FsResult<()> {
        let fd = self.open(path, OpenFlags::CREAT_TRUNC)?;
        self.close(fd)
    }

    /// Opens (optionally creating) a file, returning a descriptor.
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Closes a descriptor.
    fn close(&mut self, fd: Fd) -> FsResult<()>;

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> FsResult<()>;

    /// Removes a file name (and the file, when the link count drops to 0 and
    /// no descriptor holds it open).
    fn unlink(&mut self, path: &str) -> FsResult<()>;

    /// Creates a hard link `new` to the file at `old`.
    fn link(&mut self, old: &str, new: &str) -> FsResult<()>;

    /// Renames `old` to `new` (atomic per POSIX, §2).
    fn rename(&mut self, old: &str, new: &str) -> FsResult<()>;

    /// Truncates (or extends with zeros) the file at `path` to `size`.
    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()>;

    /// `fallocate` on an open descriptor.
    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off: u64, len: u64) -> FsResult<()>;

    /// Writes at the descriptor's current offset, advancing it.
    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize>;

    /// Writes at an explicit offset (does not move the descriptor offset).
    fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> FsResult<usize>;

    /// Reads at an explicit offset; returns bytes read (short at EOF).
    fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Flushes a file's data and metadata to persistent media.
    fn fsync(&mut self, fd: Fd) -> FsResult<()>;

    /// Flushes a file's data (and size) to persistent media.
    fn fdatasync(&mut self, fd: Fd) -> FsResult<()> {
        self.fsync(fd)
    }

    /// Flushes everything to persistent media.
    fn sync(&mut self) -> FsResult<()>;

    /// Returns metadata for the object at `path`.
    fn stat(&self, path: &str) -> FsResult<Metadata>;

    /// Returns the entries of the directory at `path` (excluding `.`/`..`),
    /// in unspecified order.
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Reads the whole file at `path`.
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>>;

    /// Sets an extended attribute (ext4-DAX only; others return `ENOTSUP`).
    fn setxattr(&mut self, _path: &str, _name: &str, _value: &[u8]) -> FsResult<()> {
        Err(FsError::NotSupported)
    }

    /// Removes an extended attribute.
    fn removexattr(&mut self, _path: &str, _name: &str) -> FsResult<()> {
        Err(FsError::NotSupported)
    }

    /// Sets the CPU subsequent operations notionally run on (exercises
    /// per-CPU code paths; default: ignored).
    fn set_cpu(&mut self, _cpu: usize) {}
}

/// Factory for a file-system implementation: formats fresh devices and
/// mounts (running crash recovery on) existing images.
///
/// The test harness is generic over this trait so the same checking code
/// records on a logging device and re-mounts on copy-on-write crash images.
///
/// `Send + Sync` because the harness shares one factory across its
/// crash-state worker threads (every kind is a plain options holder behind
/// `Arc`-based sinks, so this costs implementations nothing).
pub trait FsKind: Clone + Send + Sync {
    /// The file-system type produced for a device type `D`.
    ///
    /// `Send` so that a mounted instance — the live part of a prefix
    /// checkpoint — can be handed to a scheduler worker thread together with
    /// its device.
    type Fs<D: PmBackend>: FileSystem + Send;

    /// Which paper file system this is.
    fn name(&self) -> FsName;

    /// The construction options (bug set, coverage and trace sinks) this
    /// factory passes to instances. Gives the harness access to the shared
    /// sinks.
    fn options(&self) -> &FsOptions;

    /// A copy of this factory using `opts` instead of its current options
    /// (every other knob — NOVA's fortis mode, WineFS strictness — is
    /// preserved). Parallel workers use this with
    /// [`FsOptions::with_fresh_sinks`] to get private instrumentation.
    fn with_options(&self, opts: FsOptions) -> Self;

    /// The crash-consistency guarantees Chipmunk should assume.
    fn guarantees(&self) -> Guarantees;

    /// Formats `dev` and returns a mounted file system.
    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>>;

    /// Mounts `dev`, running crash recovery. This is the operation under
    /// test when checking crash states.
    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>>;

    /// Forks a live instance, producing an independent file system whose
    /// in-memory state (and, when `D` is itself copy-on-write, device
    /// state) no longer aliases the original. Kinds that support cheap
    /// forking override this; the default `None` makes the caller fall
    /// back to re-executing from scratch. Used by the prefix cache to
    /// resume shared workload prefixes.
    fn fork_fs<D: PmBackend + Clone>(&self, _fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_matching() {
        assert!(SyscallKind::All.matches(SyscallKind::Write));
        assert!(SyscallKind::AllMetadata.matches(SyscallKind::Rename));
        assert!(!SyscallKind::AllMetadata.matches(SyscallKind::Pwrite));
        assert!(SyscallKind::Rename.matches(SyscallKind::Rename));
        assert!(!SyscallKind::Rename.matches(SyscallKind::Link));
    }
}
