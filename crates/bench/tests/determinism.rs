//! Differential witnesses for the incremental crash-state engine: every
//! cache/scoping layer (prefix cache, delta replay, cross-point memo, scoped
//! checking) is a pure performance optimization, so toggling them must not
//! change a single result bit — and, since the prefix-tree scheduler, the
//! same holds for the worker thread count.

use bench::{dispatch, plan_subtrees, run_batch, run_batch_cached, run_suite, Scheduler, WithKind};
use chipmunk::{TestConfig, TestOutcome};
use vfs::{
    fs::{FsKind, FsOptions},
    BugSet, FsName, Workload,
};
use workloads::ace::{seq1, seq2, AceMode};

use proptest::prelude::*;

fn fingerprint(o: &TestOutcome) -> String {
    format!(
        "{:?}|{}|{}|{}|{:?}|{:?}",
        o.reports, o.crash_points, o.crash_states, o.dedup_hits, o.inflight_sizes, o.traced_bugs
    )
}

/// Full ACE seq-1 on NOVA (with the fixed injected-bug corpus): per-workload
/// outcomes and coverage with every incremental layer enabled must equal the
/// all-layers-off baseline.
#[test]
fn full_seq1_nova_layers_do_not_change_outcomes() {
    struct Diff {
        ws: Vec<Workload>,
    }
    impl WithKind for Diff {
        type Out = ();
        fn call<K: FsKind>(self, kind: K) {
            // rep_check is pinned off on both sides: its skip set depends on
            // the check-scope context, which this test varies (scoped_check
            // on vs off), so per-state coverage would legitimately differ.
            // The rep layer has its own differentials in tests/repcheck.rs.
            let on = TestConfig { rep_check: false, ..TestConfig::default() };
            let off = TestConfig {
                prefix_cache: false,
                scoped_check: false,
                delta_replay: false,
                cross_dedup: false,
                rep_check: false,
                ..TestConfig::default()
            };
            let mut sched = Scheduler::new(&kind, &on);
            let fast = run_batch_cached(&kind, &self.ws, &on, Some(&mut sched));
            // Fresh shared sinks for the baseline pass so cumulative
            // `traced_bugs` snapshots start from the same point.
            let base_kind = kind.with_options(kind.options().with_fresh_sinks());
            let slow = run_batch(&base_kind, &self.ws, &off);
            assert_eq!(fast.len(), slow.len());
            for (w, ((a, cov_a), (b, cov_b))) in self.ws.iter().zip(fast.iter().zip(&slow)) {
                // The memo layer is off in the baseline; everything else
                // must match bit for bit.
                assert_eq!(fingerprint(a), fingerprint(b), "outcome diverged on {}", w.name);
                assert_eq!(cov_a, cov_b, "coverage diverged on {}", w.name);
            }
            let prefix_hits: u64 = fast.iter().map(|(o, _)| o.prefix_hits).sum();
            assert!(prefix_hits > 0, "the cache must have engaged");
        }
    }
    let ws = seq1(AceMode::Strong);
    dispatch(FsName::Nova, FsOptions::with_bugs(BugSet::fixed()), Diff { ws });
}

/// The suite runner's aggregate counters are identical across every layer
/// combination (dedup stays on so its counter is comparable).
#[test]
fn suite_counters_identical_across_layer_combinations() {
    let ws: Vec<Workload> = seq1(AceMode::Strong).into_iter().take(12).collect();
    let configs = [
        TestConfig::default(),
        TestConfig { prefix_cache: false, ..TestConfig::default() },
        TestConfig { delta_replay: false, scoped_check: false, ..TestConfig::default() },
        TestConfig {
            prefix_cache: false,
            delta_replay: false,
            scoped_check: false,
            cross_dedup: false,
            ..TestConfig::default()
        },
    ];
    // rep_check stays at its default (on) in every combination: the skip
    // set varies with the scope context, but skipped states still commit
    // `crash_states`, and a sound congruence means the *reports* never move
    // — so this doubles as a rep-layer soundness witness across layer mixes.
    let base = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &configs[3]);
    for cfg in &configs[..3] {
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), cfg);
        assert_eq!(s.crash_points, base.crash_points);
        assert_eq!(s.crash_states, base.crash_states);
        assert_eq!(s.dedup_hits, base.dedup_hits);
        assert_eq!(s.reports, base.reports);
        assert_eq!(s.inflight, base.inflight);
        assert_eq!(format!("{:?}", s.bug_reports), format!("{:?}", base.bug_reports));
    }
}

/// The composed-fast-paths matrix: `{threads} × {rep_check on/off} ×
/// {prefix_cache on/off}` on seq-1 must give identical outcomes within each
/// `rep_check` setting, and identical *reports* across the two settings (the
/// rep layer may only skip states its representative proved clean). The
/// thread axis honors `CHIPMUNK_MATRIX_THREADS` (comma-separated; CI runs the
/// matrix again at `threads=4`) and defaults to the issue's `1, 2, 8`.
#[test]
fn matrix_threads_by_rep_check_by_prefix_cache_is_byte_identical() {
    let thread_axis: Vec<usize> = std::env::var("CHIPMUNK_MATRIX_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("CHIPMUNK_MATRIX_THREADS: bad thread count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 8]);
    let ws: Vec<Workload> = seq1(AceMode::Strong).into_iter().take(16).collect();
    // One baseline per rep_check setting: the skip set changes which states
    // are fully checked (memo_hits shrink when a skip wins over a memo), but
    // everything a sweep *reports* must be setting-independent.
    let mk_base = |rep_check: bool| {
        run_suite(
            FsName::Nova,
            BugSet::fixed(),
            ws.clone(),
            &TestConfig { rep_check, ..TestConfig::default().with_threads(thread_axis[0]) },
        )
    };
    let bases = [mk_base(true), mk_base(false)];
    assert!(bases[0].prefix_hits > 0, "the cache must engage in the matrix's first cell");
    assert!(bases[0].sched_subtrees > 0, "the scheduler must have partitioned the suite");
    assert!(bases[0].rep_classes > 0, "rep_check must engage in the matrix's first cell");
    assert!(bases[0].rep_skipped > 0, "rep_check must skip states on seq-1");
    assert_eq!(bases[1].rep_classes, 0, "rep_check off must leave the counters at zero");
    assert_eq!(bases[1].rep_skipped, 0);
    assert_eq!(bases[1].rep_expansions, 0);
    // Cross-setting soundness: same states, same verdicts.
    assert_eq!(bases[0].crash_points, bases[1].crash_points);
    assert_eq!(bases[0].crash_states, bases[1].crash_states);
    assert_eq!(bases[0].dedup_hits, bases[1].dedup_hits);
    assert_eq!(bases[0].reports, bases[1].reports);
    assert_eq!(bases[0].inflight, bases[1].inflight);
    assert_eq!(
        format!("{:?}", bases[0].bug_reports),
        format!("{:?}", bases[1].bug_reports),
        "rep_check must not move a single report"
    );
    for &threads in &thread_axis {
        for (bi, rep_check) in [true, false].into_iter().enumerate() {
            let base = &bases[bi];
            for prefix_cache in [true, false] {
                let cfg = TestConfig {
                    prefix_cache,
                    rep_check,
                    ..TestConfig::default().with_threads(threads)
                };
                let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &cfg);
                let cell =
                    format!("threads={threads} rep_check={rep_check} prefix_cache={prefix_cache}");
                assert_eq!(s.workloads, base.workloads, "{cell}");
                assert_eq!(s.crash_points, base.crash_points, "{cell}");
                assert_eq!(s.crash_states, base.crash_states, "{cell}");
                assert_eq!(s.dedup_hits, base.dedup_hits, "{cell}");
                assert_eq!(s.memo_hits, base.memo_hits, "{cell}");
                assert_eq!(s.rep_classes, base.rep_classes, "{cell}");
                assert_eq!(s.rep_skipped, base.rep_skipped, "{cell}");
                assert_eq!(s.rep_expansions, base.rep_expansions, "{cell}");
                assert_eq!(s.reports, base.reports, "{cell}");
                assert_eq!(s.inflight, base.inflight, "{cell}");
                assert_eq!(
                    format!("{:?}", s.bug_reports),
                    format!("{:?}", base.bug_reports),
                    "bug trajectories diverged at {cell}"
                );
                if prefix_cache {
                    // The prefix counters themselves are thread-count-invariant:
                    // subtree partitioning is a pure function of the batch and
                    // groups move to workers wholesale.
                    assert_eq!(s.prefix_hits, base.prefix_hits, "{cell}");
                    assert_eq!(s.prefix_ops_saved, base.prefix_ops_saved, "{cell}");
                    assert_eq!(s.sched_subtrees, base.sched_subtrees, "{cell}");
                    assert_eq!(s.sched_subtree_max_depth, base.sched_subtree_max_depth, "{cell}");
                } else {
                    assert_eq!(s.prefix_hits, 0, "{cell}");
                    assert_eq!(s.prefix_ops_saved, 0, "{cell}");
                }
            }
        }
    }
}

/// The shared-oracle matrix: `{threads 1, 4} × {rep_check on/off} ×
/// {shared_oracle on/off}` on seq-1 must report identically everywhere, and
/// within each `(rep_check, shared_oracle)` setting every counter —
/// including the two oracle counters themselves — must be thread-count
/// invariant. The oracle counters may differ across `rep_check` settings
/// (skipped states run fewer diffs) but must be zero exactly when
/// `shared_oracle` is off.
#[test]
fn matrix_threads_by_rep_check_by_shared_oracle_is_byte_identical() {
    // Write-led seq-2 pairs, not seq-1: sharing needs a snapshot advance
    // across an op that leaves some earlier file's *data* untouched. One-op
    // workloads never have one (their only advance creates the workload's
    // first file), and the creat-led pairs at the head of seq-2 only ever
    // hold empty files. Pair index 15*56 starts the (write, op_j) block.
    let ws: Vec<Workload> = seq2(AceMode::Strong).skip(15 * 56).take(16).collect();
    for rep_check in [true, false] {
        for shared_oracle in [true, false] {
            let mut cells = Vec::new();
            for threads in [1usize, 4] {
                let cfg = TestConfig {
                    rep_check,
                    shared_oracle,
                    ..TestConfig::default().with_threads(threads)
                };
                let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &cfg);
                if shared_oracle {
                    assert!(
                        s.oracle_snap_bytes_shared > 0,
                        "snapshot sharing must engage at threads={threads}"
                    );
                    assert!(
                        s.oracle_subtrees_pruned > 0,
                        "hash pruning must engage at threads={threads}"
                    );
                } else {
                    assert_eq!(s.oracle_snap_bytes_shared, 0);
                    assert_eq!(s.oracle_subtrees_pruned, 0);
                }
                cells.push((threads, s));
            }
            let (_, base) = &cells[0];
            for (threads, s) in &cells[1..] {
                let cell = format!(
                    "threads={threads} rep_check={rep_check} shared_oracle={shared_oracle}"
                );
                assert_eq!(s.crash_points, base.crash_points, "{cell}");
                assert_eq!(s.crash_states, base.crash_states, "{cell}");
                assert_eq!(s.dedup_hits, base.dedup_hits, "{cell}");
                assert_eq!(s.memo_hits, base.memo_hits, "{cell}");
                assert_eq!(s.rep_skipped, base.rep_skipped, "{cell}");
                assert_eq!(s.reports, base.reports, "{cell}");
                assert_eq!(s.inflight, base.inflight, "{cell}");
                assert_eq!(s.oracle_subtrees_pruned, base.oracle_subtrees_pruned, "{cell}");
                assert_eq!(s.oracle_snap_bytes_shared, base.oracle_snap_bytes_shared, "{cell}");
                assert_eq!(
                    format!("{:?}", s.bug_reports),
                    format!("{:?}", base.bug_reports),
                    "bug trajectories diverged at {cell}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subtree planning is a true partition: every batch index appears in
    /// exactly one group.
    #[test]
    fn subtree_plan_is_a_partition(
        keys in proptest::collection::vec(
            proptest::collection::vec((0u8..6).prop_map(|b| format!("op{b}")), 0..5),
            0..24,
        )
    ) {
        let plan = plan_subtrees(&keys);
        let mut seen = vec![false; keys.len()];
        for g in &plan.groups {
            prop_assert!(!g.is_empty(), "no empty groups");
            for &i in g {
                prop_assert!(i < keys.len());
                prop_assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every workload assigned");
        // Workloads sharing a group share their first op; distinct groups
        // have distinct roots.
        for g in &plan.groups {
            for &i in g {
                prop_assert_eq!(keys[i].first(), keys[g[0]].first());
            }
        }
        let roots: Vec<_> = plan.groups.iter().map(|g| keys[g[0]].first()).collect();
        let mut dedup = roots.clone();
        dedup.dedup();
        prop_assert_eq!(roots, dedup);
    }

    /// Planning is invariant under permutation of the batch input order:
    /// the same key multiset always yields the same groups-of-keys, whatever
    /// order the workloads arrived in.
    #[test]
    fn subtree_plan_is_permutation_invariant(
        keys in proptest::collection::vec(
            proptest::collection::vec((0u8..4).prop_map(|b| format!("op{b}")), 0..4),
            0..16,
        ),
        seed in any::<u64>(),
    ) {
        // Deterministic Fisher–Yates from the seed.
        let mut perm: Vec<usize> = (0..keys.len()).collect();
        let mut state = seed | 1;
        for i in (1..perm.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let shuffled: Vec<Vec<String>> = perm.iter().map(|&i| keys[i].clone()).collect();
        let to_keys = |p: &bench::SubtreePlan, ks: &[Vec<String>]| -> Vec<Vec<Vec<String>>> {
            p.groups.iter().map(|g| g.iter().map(|&i| ks[i].clone()).collect()).collect()
        };
        let a = plan_subtrees(&keys);
        let b = plan_subtrees(&shuffled);
        prop_assert_eq!(to_keys(&a, &keys), to_keys(&b, &shuffled));
        prop_assert_eq!(a.max_depth, b.max_depth);
    }
}
