//! The central soundness property of the reproduction: with every injected
//! bug fixed, Chipmunk finds **zero** violations across the full ACE seq-1
//! suite on every file system — the five Rust file systems really are
//! crash-consistent, and the checker raises no false positives.
//!
//! (Conversely, `bug_detection.rs` shows each injected bug *is* found.)

use chipmunk::{test_workload, TestConfig};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmfs::PmfsKind;
use splitfs::SplitFsKind;
use vfs::fs::{FsKind, FsOptions};
use winefs::WineFsKind;
use xfsdax::XfsDaxKind;
use workloads::ace::{seq1, seq2, AceMode};

fn assert_clean<K: FsKind>(kind: &K, mode: AceMode, label: &str) {
    let cfg = TestConfig::default();
    let mut states = 0u64;
    for w in seq1(mode) {
        let out = test_workload(kind, &w, &cfg);
        assert!(
            out.reports.is_empty(),
            "[{label}] fixed file system violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        states += out.crash_states;
    }
    assert!(states > 0, "[{label}] no crash states explored");
}

#[test]
fn nova_seq1_clean() {
    assert_clean(
        &NovaKind { opts: FsOptions::fixed(), fortis: false },
        AceMode::Strong,
        "NOVA",
    );
}

#[test]
fn nova_fortis_seq1_clean() {
    assert_clean(
        &NovaKind { opts: FsOptions::fixed(), fortis: true },
        AceMode::Strong,
        "NOVA-Fortis",
    );
}

#[test]
fn pmfs_seq1_clean() {
    assert_clean(&PmfsKind { opts: FsOptions::fixed() }, AceMode::Strong, "PMFS");
}

#[test]
fn winefs_seq1_clean() {
    assert_clean(
        &WineFsKind { opts: FsOptions::fixed(), strict: true },
        AceMode::Strong,
        "WineFS",
    );
}

#[test]
fn splitfs_seq1_clean() {
    assert_clean(&SplitFsKind { opts: FsOptions::fixed() }, AceMode::Strong, "SplitFS");
}

#[test]
fn ext4dax_seq1_clean() {
    assert_clean(&Ext4DaxKind::default(), AceMode::Weak, "ext4-DAX");
}

#[test]
fn xfsdax_seq1_clean() {
    assert_clean(&XfsDaxKind::default(), AceMode::Weak, "XFS-DAX");
}

/// A deterministic sample of seq-2 workloads on every file system (the full
/// 3136 per file system runs in the `table1` evaluation harness, not in the
/// unit-test budget).
#[test]
fn seq2_sample_clean_everywhere() {
    let cfg = TestConfig::default();
    let sample: Vec<_> = seq2(AceMode::Strong).step_by(97).collect();
    assert!(sample.len() >= 30);

    macro_rules! run {
        ($kind:expr, $label:expr) => {
            for w in &sample {
                let out = test_workload(&$kind, w, &cfg);
                assert!(
                    out.reports.is_empty(),
                    "[{}] violated {}:\n{}",
                    $label,
                    w.name,
                    out.reports.iter().map(|r| r.to_text()).collect::<String>()
                );
            }
        };
    }
    run!(NovaKind { opts: FsOptions::fixed(), fortis: false }, "NOVA");
    run!(NovaKind { opts: FsOptions::fixed(), fortis: true }, "NOVA-Fortis");
    run!(PmfsKind { opts: FsOptions::fixed() }, "PMFS");
    run!(WineFsKind { opts: FsOptions::fixed(), strict: true }, "WineFS");
    run!(SplitFsKind { opts: FsOptions::fixed() }, "SplitFS");
}
