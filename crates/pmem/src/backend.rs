//! The [`PmBackend`] trait: the interface between a PM file system and the
//! storage media.
//!
//! The methods of this trait correspond one-to-one to the *centralized
//! persistence functions* the Chipmunk paper observes in every tested PM file
//! system (§3.2): non-temporal memcpy, non-temporal memset, flushing the
//! cache lines of a buffer, and issuing store fences. Routing all PM I/O
//! through this trait is this reproduction's substitute for hooking those
//! functions with Kprobes/Uprobes — the interception point and the
//! information it yields (operation kind, destination, contents) are the
//! same.

use crate::cost::SimCost;

/// Size of a cache line in bytes (the flush granularity).
pub const CACHE_LINE: u64 = 64;

/// Unit of write atomicity on Intel PM (8 bytes).
pub const WORD: u64 = 8;

/// Interface to a byte-addressable persistent-memory device.
///
/// File systems are generic over this trait so the same implementation can
/// run on a plain [`crate::PmDevice`], a logging wrapper (recording mode), or
/// a [`crate::CowDevice`] crash image (checking mode).
///
/// `Send` is a supertrait so that a mounted file system — and with it a whole
/// prefix checkpoint — can be handed to a scheduler worker thread. Backends
/// are still owned by one thread at a time; nothing here implies `Sync`.
pub trait PmBackend: Send {
    /// Total size of the device in bytes.
    fn len(&self) -> u64;

    /// Returns `true` if the device has zero length.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes starting at `off`.
    ///
    /// Reads observe the most recent store, whether or not it has been
    /// flushed (stores are visible through the cache hierarchy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds; the simulated device is the
    /// bottom of the stack and an out-of-range access is always a harness or
    /// file-system bug.
    fn read(&self, off: u64, buf: &mut [u8]);

    /// Plain cached store of `data` at `off`. Not durable until the affected
    /// cache lines are flushed and a fence executes.
    fn store(&mut self, off: u64, data: &[u8]);

    /// Non-temporal copy of `data` to `off`: bypasses the cache, entering the
    /// in-flight set directly. Durable after the next fence.
    fn memcpy_nt(&mut self, off: u64, data: &[u8]);

    /// Non-temporal fill of `len` bytes of `val` at `off`.
    fn memset_nt(&mut self, off: u64, val: u8, len: u64);

    /// Writes back (`clwb`) every cache line overlapping `[off, off + len)`.
    /// Dirty data in those lines enters the in-flight set.
    fn flush(&mut self, off: u64, len: u64);

    /// Store fence (`sfence`): all in-flight writes become persistent.
    fn fence(&mut self);

    /// Accounts for a validation read that must come from media rather than
    /// a DRAM copy (used by file systems that read back persistent state to
    /// decide whether an in-place update is safe). Default: no cost model.
    fn note_media_read(&mut self, _len: u64) {}

    /// Deterministic simulated-time cost accumulated so far, if this backend
    /// models cost. Default: zero.
    fn sim_cost(&self) -> SimCost {
        SimCost::default()
    }

    // ---- Convenience helpers shared by all file-system implementations ----

    /// Reads a little-endian `u64` at `off`.
    fn read_u64(&self, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u32` at `off`.
    fn read_u32(&self, off: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(off, &mut b);
        u32::from_le_bytes(b)
    }

    /// Cached store of a little-endian `u64` at `off`.
    fn store_u64(&mut self, off: u64, v: u64) {
        self.store(off, &v.to_le_bytes());
    }

    /// Cached store of a little-endian `u32` at `off`.
    fn store_u32(&mut self, off: u64, v: u32) {
        self.store(off, &v.to_le_bytes());
    }

    /// Stores a `u64` and flushes its cache line (not yet fenced).
    fn store_u64_flush(&mut self, off: u64, v: u64) {
        self.store_u64(off, v);
        self.flush(off, 8);
    }

    /// Stores, flushes, and fences a `u64`: the classic 8-byte atomic
    /// persistent pointer update.
    fn persist_u64(&mut self, off: u64, v: u64) {
        self.store_u64(off, v);
        self.flush(off, 8);
        self.fence();
    }

    /// Stores `data`, flushes the covered lines, and fences.
    fn persist(&mut self, off: u64, data: &[u8]) {
        self.store(off, data);
        self.flush(off, data.len() as u64);
        self.fence();
    }

    /// Reads `len` bytes at `off` into a fresh vector.
    fn read_vec(&self, off: u64, len: u64) -> Vec<u8> {
        let mut v = vec![0u8; len as usize];
        self.read(off, &mut v);
        v
    }
}

/// A mutable reference to a backend is itself a backend. This lets the
/// harness mount a file system on `&mut CowDevice` without giving up
/// ownership, so the same overlay (and its undo log) survives across the
/// mount/check/unmount cycle of many crash states.
impl<T: PmBackend + ?Sized> PmBackend for &mut T {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        (**self).read(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        (**self).store(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        (**self).memcpy_nt(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        (**self).memset_nt(off, val, len);
    }

    fn flush(&mut self, off: u64, len: u64) {
        (**self).flush(off, len);
    }

    fn fence(&mut self) {
        (**self).fence();
    }

    fn note_media_read(&mut self, len: u64) {
        (**self).note_media_read(len);
    }

    fn sim_cost(&self) -> SimCost {
        (**self).sim_cost()
    }
}

/// Rounds `off` down to its cache-line base.
pub fn line_base(off: u64) -> u64 {
    off & !(CACHE_LINE - 1)
}

/// Enumerates the cache-line bases overlapping `[off, off + len)`.
pub fn lines_overlapping(off: u64, len: u64) -> impl Iterator<Item = u64> {
    let start = line_base(off);
    let end = if len == 0 { start } else { line_base(off + len - 1) + CACHE_LINE };
    (start..end).step_by(CACHE_LINE as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_rounds_down() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(63), 0);
        assert_eq!(line_base(64), 64);
        assert_eq!(line_base(65), 64);
        assert_eq!(line_base(1000), 960);
    }

    #[test]
    fn lines_overlapping_counts() {
        assert_eq!(lines_overlapping(0, 64).count(), 1);
        assert_eq!(lines_overlapping(0, 65).count(), 2);
        assert_eq!(lines_overlapping(63, 2).count(), 2);
        assert_eq!(lines_overlapping(10, 0).count(), 0);
        assert_eq!(lines_overlapping(128, 128).count(), 2);
    }
}
