//! The logging backend wrapper and the shared log.

use std::{
    collections::BTreeSet,
    sync::{Arc, Mutex},
};

use pmem::{
    backend::{line_base, lines_overlapping, PmBackend, CACHE_LINE},
    cost::SimCost,
};

use crate::entry::{LogEntry, Marker};

/// The recorded write log for one workload run.
#[derive(Debug, Default, Clone)]
pub struct Log {
    entries: Vec<LogEntry>,
}

impl Log {
    /// Appends an entry.
    pub fn push(&mut self, e: LogEntry) {
        self.entries.push(e);
    }

    /// All entries in record order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of fence entries.
    pub fn fence_count(&self) -> usize {
        self.entries.iter().filter(|e| matches!(e, LogEntry::Fence)).count()
    }

    /// Number of write entries (flushes + non-temporal stores).
    pub fn write_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_write()).count()
    }
}

/// A cloneable shared handle to a [`Log`].
///
/// The harness holds one handle (to insert system-call markers and read the
/// log back) while the [`LoggingPm`] wrapper holds another. The handle is an
/// `Arc<Mutex<_>>` so a recording file system inside a prefix checkpoint can
/// move between scheduler worker threads; both holders always live on the
/// same thread, so every lock is uncontended.
#[derive(Debug, Clone, Default)]
pub struct LogHandle(Arc<Mutex<Log>>);

impl LogHandle {
    /// Creates a handle to a fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Log> {
        self.0.lock().expect("log poisoned")
    }

    /// Appends an entry to the log.
    pub fn push(&self, e: LogEntry) {
        self.lock().push(e);
    }

    /// Appends a harness marker.
    pub fn marker(&self, m: Marker) {
        self.push(LogEntry::Marker(m));
    }

    /// Runs `f` with shared access to the log.
    pub fn with<R>(&self, f: impl FnOnce(&Log) -> R) -> R {
        f(&self.lock())
    }

    /// Takes the accumulated log, leaving an empty one behind.
    pub fn take(&self) -> Log {
        std::mem::take(&mut self.lock())
    }

    /// Clones the current log contents.
    pub fn snapshot(&self) -> Log {
        self.lock().clone()
    }
}

/// A [`PmBackend`] wrapper that records the persistence-function stream.
///
/// This is the reproduction's analogue of the paper's Kprobes/Uprobes logger
/// modules: it sees exactly the operations a function-level probe on the
/// centralized persistence functions would see, and captures flush contents
/// by reading the device at flush time.
pub struct LoggingPm<D> {
    dev: D,
    log: LogHandle,
    /// Dirty (stored but not yet written back) cache-line bases — tracked so
    /// a flush only logs lines that actually contain unwritten data, matching
    /// the device's in-flight accounting.
    dirty_lines: BTreeSet<u64>,
    /// eADR mode: plain stores are recorded too (persistent caches make
    /// every store durable the moment it lands).
    log_plain_stores: bool,
}

impl<D: Clone> Clone for LoggingPm<D> {
    /// Clones the wrapper *sharing* the log handle: both sides append to the
    /// same log. The prefix cache relies on this — a forked file system keeps
    /// recording into the cache's one log stream, and the harness `take`s the
    /// log between runs so each resume appends to an empty log.
    fn clone(&self) -> Self {
        LoggingPm {
            dev: self.dev.clone(),
            log: self.log.clone(),
            dirty_lines: self.dirty_lines.clone(),
            log_plain_stores: self.log_plain_stores,
        }
    }
}

impl<D: PmBackend> LoggingPm<D> {
    /// Wraps `dev`, recording into the log behind `log`.
    pub fn new(dev: D, log: LogHandle) -> Self {
        LoggingPm { dev, log, dirty_lines: BTreeSet::new(), log_plain_stores: false }
    }

    /// An eADR-model logger: plain cached stores are recorded as durable
    /// writes (see the paper's §3.6 — supporting a new persistence model
    /// means teaching the logger and replayer its semantics).
    pub fn new_eadr(dev: D, log: LogHandle) -> Self {
        LoggingPm { dev, log, dirty_lines: BTreeSet::new(), log_plain_stores: true }
    }

    /// A handle to the log this wrapper records into.
    pub fn log(&self) -> LogHandle {
        self.log.clone()
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.dev
    }

    /// Unwraps, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.dev
    }
}

impl<D: PmBackend> PmBackend for LoggingPm<D> {
    fn len(&self) -> u64 {
        self.dev.len()
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.dev.read(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if self.log_plain_stores {
            self.log.push(LogEntry::Store { off, data: data.to_vec() });
        } else {
            // Plain stores are forwarded but not logged (invisible to
            // function-level interception); we only note the dirtied lines
            // so a later flush knows what to capture.
            for line in lines_overlapping(off, data.len() as u64) {
                self.dirty_lines.insert(line);
            }
        }
        self.dev.store(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.log.push(LogEntry::Nt { off, data: data.to_vec() });
        self.dev.memcpy_nt(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        if len == 0 {
            return;
        }
        self.log.push(LogEntry::Nt { off, data: vec![val; len as usize] });
        self.dev.memset_nt(off, val, len);
    }

    fn flush(&mut self, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        // Capture the contents of each dirty line in the range *before*
        // forwarding: the device's own write-back logic will consume its
        // dirty state, and the line contents cannot change in between.
        let dev_len = self.dev.len();
        let mut run: Option<(u64, u64)> = None;
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for line in lines_overlapping(off, len) {
            if self.dirty_lines.remove(&line) {
                run = Some(match run {
                    None => (line, line + CACHE_LINE),
                    Some((s, e)) if line == e => (s, line + CACHE_LINE),
                    Some(prev) => {
                        runs.push(prev);
                        (line, line + CACHE_LINE)
                    }
                });
            }
        }
        if let Some(r) = run {
            runs.push(r);
        }
        for (s, e) in runs {
            let e = e.min(dev_len);
            let base = line_base(s);
            let mut data = vec![0u8; (e - base) as usize];
            self.dev.read(base, &mut data);
            self.log.push(LogEntry::Flush { off: base, data });
        }
        self.dev.flush(off, len);
    }

    fn fence(&mut self) {
        self.log.push(LogEntry::Fence);
        self.dev.fence();
    }

    fn note_media_read(&mut self, len: u64) {
        self.dev.note_media_read(len);
    }

    fn sim_cost(&self) -> SimCost {
        self.dev.sim_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::OpRecord;
    use pmem::PmDevice;

    #[test]
    fn logs_mirror_device_inflight_accounting() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(0, &[1u8; 16]);
        lp.flush(0, 16);
        lp.memcpy_nt(128, &[2u8; 64]);
        lp.fence();
        let snap = log.snapshot();
        assert_eq!(snap.write_count(), 2);
        assert_eq!(snap.fence_count(), 1);
        // The device saw the same two in-flight writes before the fence.
        assert_eq!(lp.inner().stats().fences, 1);
        assert_eq!(lp.inner().stats().max_inflight, 2);
    }

    #[test]
    fn plain_stores_are_not_logged() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(0, &[1u8; 8]);
        assert_eq!(log.snapshot().len(), 0);
    }

    #[test]
    fn flush_captures_whole_dirty_lines() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(10, &[9u8; 4]); // dirties line 0
        lp.flush(10, 4);
        let snap = log.snapshot();
        match &snap.entries()[0] {
            LogEntry::Flush { off, data } => {
                assert_eq!(*off, 0);
                assert_eq!(data.len(), 64);
                assert_eq!(&data[10..14], &[9u8; 4]);
            }
            other => panic!("expected flush, got {other:?}"),
        }
    }

    #[test]
    fn double_flush_logs_once() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(0, &[1u8; 8]);
        lp.flush(0, 8);
        lp.flush(0, 8);
        assert_eq!(log.snapshot().write_count(), 1);
    }

    #[test]
    fn markers_interleave_with_writes() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        log.marker(Marker::SyscallBegin(OpRecord { seq: 0, desc: "creat(/foo)".into() }));
        lp.memcpy_nt(0, &[1u8; 8]);
        lp.fence();
        log.marker(Marker::SyscallEnd { seq: 0, ok: true });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(matches!(snap.entries()[0], LogEntry::Marker(Marker::SyscallBegin(_))));
        assert!(matches!(snap.entries()[3], LogEntry::Marker(Marker::SyscallEnd { .. })));
    }

    #[test]
    fn noncontiguous_flush_splits_entries() {
        let log = LogHandle::new();
        let mut lp = LoggingPm::new(PmDevice::new(4096), log.clone());
        lp.store(0, &[1u8; 8]);
        lp.store(256, &[2u8; 8]);
        lp.flush(0, 512);
        assert_eq!(log.snapshot().write_count(), 2);
    }
}
