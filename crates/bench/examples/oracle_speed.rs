//! Measures what the structurally-shared oracle buys: runs strong seq-1
//! plus the first `n` (arg 1, default 3136) seq-2 workloads on NOVA twice —
//! `shared_oracle` on (the default) and off — printing per-phase wall times
//! and the oracle counters; then rebuilds each workload's oracle directly
//! and reports the snapshot bytes actually resident (each `Arc`'d file
//! payload counted once) versus what the deep-copy representation stores.
//! The source of the EXPERIMENTS.md "Incremental oracle" table.
//!
//! Arg 2 (default 1) sets `TestConfig::threads`.

use std::collections::HashSet;
use std::sync::Arc;

use bench::{dispatch, run_suite, WithKind};
use chipmunk::{
    oracle::{build_oracle, NodeSnap, Oracle},
    TestConfig,
};
use vfs::{fs::FsKind, fs::FsOptions, BugSet, FsName, Workload};
use workloads::ace::{seq1, seq2, AceMode};

/// File-data bytes resident in the oracle, counting each shared node once.
fn resident_bytes(o: &Oracle) -> u64 {
    let mut seen: HashSet<*const NodeSnap> = HashSet::new();
    let mut sum = 0u64;
    for snap in &o.snaps {
        for e in snap.values() {
            if seen.insert(Arc::as_ptr(&e.node)) {
                if let NodeSnap::File { data, .. } = e.node.as_ref() {
                    sum += data.len() as u64;
                }
            }
        }
    }
    sum
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3136);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let ws: Vec<_> = seq1(AceMode::Strong)
        .into_iter()
        .chain(seq2(AceMode::Strong))
        .take(56 + n)
        .collect();

    for (label, shared_oracle) in [("deep-copy ", false), ("shared    ", true)] {
        let cfg = TestConfig { shared_oracle, ..TestConfig::default().with_threads(threads) };
        let t = std::time::Instant::now();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &cfg);
        println!(
            "{label} total={:?} oracle={:?} record={:?} check={:?} states={} reports={} \
             pruned={} shared_bytes={}",
            t.elapsed(),
            s.phase.oracle,
            s.phase.record,
            s.phase.check,
            s.crash_states,
            s.reports,
            s.oracle_subtrees_pruned,
            s.oracle_snap_bytes_shared,
        );
    }

    struct Bytes {
        ws: Vec<Workload>,
    }
    impl WithKind for Bytes {
        type Out = ();
        fn call<K: FsKind>(self, kind: K) {
            for (label, shared_oracle) in [("deep-copy ", false), ("shared    ", true)] {
                let cfg = TestConfig { shared_oracle, ..TestConfig::default() };
                let (mut peak, mut total) = (0u64, 0u64);
                for w in &self.ws {
                    let o = build_oracle(&kind, w, &cfg).expect("oracle build");
                    let b = resident_bytes(&o);
                    peak = peak.max(b);
                    total += b;
                }
                println!(
                    "{label} oracle bytes: peak={peak} total={total} over {} workloads",
                    self.ws.len()
                );
            }
        }
    }
    dispatch(FsName::Nova, FsOptions::with_bugs(BugSet::fixed()), Bytes { ws });
}
