//! The Table 1 property, as a test: every injected bug instance is detected
//! by Chipmunk through the frontend the paper attributes it to — 21 of the
//! 25 instances (19 of 23 unique bugs) fall to ACE workloads; the four
//! fuzzer-only instances (19, 20, 22, 23) are found by the Syzkaller-style
//! fuzzer and are *not* found by ACE.
//!
//! Detection here is behavioural (mount/compare/probe violations); the
//! ground-truth trace only confirms the injected code path actually ran.

use bench::{hunt_with_ace, hunt_with_fuzzer};
use chipmunk::TestConfig;
use vfs::{bugs::bug_table, BugId};

fn ace_cfg() -> TestConfig {
    TestConfig { stop_on_first: true, ..TestConfig::default() }
}

fn fuzz_cfg() -> TestConfig {
    TestConfig::fuzzing()
}

fn assert_ace_finds(bug: BugId) {
    let (hit, workloads, states) = hunt_with_ace(bug, &ace_cfg(), 200);
    let hit = hit.unwrap_or_else(|| panic!("{bug} not found by ACE"));
    assert!(
        hit.traced,
        "{bug}: violation found but the injected path never ran ({}: {})",
        hit.class, hit.detail
    );
    assert!(workloads > 0 && states > 0);
}

fn assert_fuzzer_finds(bug: BugId) {
    let (hit, _, _) = hunt_with_fuzzer(bug, &fuzz_cfg(), 0xc0ffee + bug.number() as u64, 6000);
    let hit = hit.unwrap_or_else(|| panic!("{bug} not found by the fuzzer"));
    assert!(
        hit.traced,
        "{bug}: violation found but the injected path never ran ({}: {})",
        hit.class, hit.detail
    );
}

macro_rules! ace_bug_test {
    ($name:ident, $bug:expr) => {
        #[test]
        fn $name() {
            assert_ace_finds($bug);
        }
    };
}

ace_bug_test!(ace_finds_bug_01, BugId::B01);
ace_bug_test!(ace_finds_bug_02, BugId::B02);
ace_bug_test!(ace_finds_bug_03, BugId::B03);
ace_bug_test!(ace_finds_bug_04, BugId::B04);
ace_bug_test!(ace_finds_bug_05, BugId::B05);
ace_bug_test!(ace_finds_bug_06, BugId::B06);
ace_bug_test!(ace_finds_bug_07, BugId::B07);
ace_bug_test!(ace_finds_bug_08, BugId::B08);
ace_bug_test!(ace_finds_bug_09, BugId::B09);
ace_bug_test!(ace_finds_bug_10, BugId::B10);
ace_bug_test!(ace_finds_bug_11, BugId::B11);
ace_bug_test!(ace_finds_bug_12, BugId::B12);
ace_bug_test!(ace_finds_bug_13, BugId::B13);
ace_bug_test!(ace_finds_bug_14, BugId::B14);
ace_bug_test!(ace_finds_bug_15, BugId::B15);
ace_bug_test!(ace_finds_bug_16, BugId::B16);
ace_bug_test!(ace_finds_bug_17, BugId::B17);
ace_bug_test!(ace_finds_bug_18, BugId::B18);
ace_bug_test!(ace_finds_bug_21, BugId::B21);
ace_bug_test!(ace_finds_bug_24, BugId::B24);
ace_bug_test!(ace_finds_bug_25, BugId::B25);

#[test]
fn fuzzer_finds_bug_19() {
    assert_fuzzer_finds(BugId::B19);
}

#[test]
fn fuzzer_finds_bug_20() {
    assert_fuzzer_finds(BugId::B20);
}

#[test]
fn fuzzer_finds_bug_22() {
    assert_fuzzer_finds(BugId::B22);
}

#[test]
fn fuzzer_finds_bug_23() {
    assert_fuzzer_finds(BugId::B23);
}

/// The four fuzzer-only bugs must *not* fall to ACE's seq-1/seq-2 space —
/// "ACE misses these bugs because they do not conform to the patterns that
/// it uses to generate workloads" (§4.3).
#[test]
fn ace_misses_exactly_the_four_fuzzer_only_bugs() {
    for info in bug_table() {
        if info.ace_findable {
            continue;
        }
        let (hit, _, _) = hunt_with_ace(info.id, &ace_cfg(), 50);
        assert!(
            hit.is_none(),
            "{} was supposed to be ACE-unfindable but ACE found it: {:?}",
            info.id,
            hit
        );
    }
}
