//! The on-disk campaign store and the per-task journal.
//!
//! Layout of a store directory:
//!
//! ```text
//! store.json               # version + CampaignSpec (write_atomic)
//! journal/task-<n>.log     # append-only: plan line + one line per workload
//! leases/task-<n>.lease    # claim files (see queue.rs)
//! results/task-<n>.json    # committed task result (presence = complete)
//! corpus/<name>.json       # corpus-worthy fuzz workloads, wire form
//! coverage/state.bits      # persistent crash-state bitmap
//! coverage/cov.bits        # persistent coverage bitmap
//! campaign.json            # deterministic merged document + fingerprint
//! run.json                 # nondeterministic run info (wall time, resumes)
//! ```
//!
//! Everything JSON goes through [`crate::jsonout::write_atomic`]; the
//! bitmaps through [`crate::jsonout::write_atomic_bytes`]. Journals are the
//! one append-in-place structure: a torn tail line (the half-written
//! checkpoint of a SIGKILL'd worker) is detected by the parser and
//! truncated away before the successor appends.

use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

use crate::jsonout::{self, JVal};

use super::wire::{ju, WRes};
use super::CampaignSpec;

/// Store format version (`store.json`'s `chipmunk_campaign` field).
pub const STORE_VERSION: u64 = 1;

/// An open campaign store.
#[derive(Debug)]
pub struct CampaignStore {
    /// Root directory.
    pub dir: PathBuf,
    /// The campaign spec (immutable once the store is initialised).
    pub spec: CampaignSpec,
}

fn p2s(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}

impl CampaignStore {
    /// Initialises a fresh store at `dir` (creating directories) or opens
    /// the existing one. When the store exists, `spec` must match the
    /// persisted spec exactly — a campaign's population is immutable.
    pub fn open_or_init(dir: &Path, spec: &CampaignSpec) -> Result<Self, String> {
        if dir.join("store.json").exists() {
            let store = Self::open(dir)?;
            if store.spec != *spec {
                return Err(format!(
                    "store {} holds a different campaign spec; use --resume to continue it \
                     or point --store at a fresh directory",
                    dir.display()
                ));
            }
            return Ok(store);
        }
        for sub in ["journal", "leases", "results", "corpus", "coverage"] {
            std::fs::create_dir_all(dir.join(sub)).map_err(|e| e.to_string())?;
        }
        let doc = JVal::Obj(vec![
            ("chipmunk_campaign".into(), ju(STORE_VERSION)),
            ("spec".into(), spec.to_jval()),
        ]);
        jsonout::write_atomic(&p2s(&dir.join("store.json")), &(doc.render() + "\n"))
            .map_err(|e| e.to_string())?;
        Ok(CampaignStore { dir: dir.to_path_buf(), spec: spec.clone() })
    }

    /// Opens an existing store, parsing and validating `store.json`.
    pub fn open(dir: &Path) -> Result<Self, String> {
        let path = dir.join("store.json");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = jsonout::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let version = doc
            .get("chipmunk_campaign")
            .and_then(JVal::as_u64)
            .ok_or_else(|| format!("{}: not a campaign store", path.display()))?;
        if version != STORE_VERSION {
            return Err(format!(
                "{}: store version {version} (this build reads {STORE_VERSION})",
                path.display()
            ));
        }
        let spec = CampaignSpec::from_jval(
            doc.get("spec").ok_or_else(|| format!("{}: missing spec", path.display()))?,
        )?;
        Ok(CampaignStore { dir: dir.to_path_buf(), spec })
    }

    /// Path of task `id`'s journal.
    pub fn journal_path(&self, id: usize) -> PathBuf {
        self.dir.join("journal").join(format!("task-{id}.log"))
    }

    /// Path of task `id`'s lease file.
    pub fn lease_path(&self, id: usize) -> PathBuf {
        self.dir.join("leases").join(format!("task-{id}.lease"))
    }

    /// Path of task `id`'s committed result.
    pub fn result_path(&self, id: usize) -> PathBuf {
        self.dir.join("results").join(format!("task-{id}.json"))
    }

    /// Whether task `id` has a committed result.
    pub fn result_exists(&self, id: usize) -> bool {
        self.result_path(id).exists()
    }

    /// Commits task `id`'s results atomically (the completion marker).
    pub fn write_result(&self, id: usize, results: &[WRes]) -> Result<(), String> {
        let doc = JVal::Arr(results.iter().map(WRes::to_jval).collect());
        jsonout::write_atomic(&p2s(&self.result_path(id)), &(doc.render() + "\n"))
            .map_err(|e| e.to_string())
    }

    /// Loads task `id`'s committed results, or `None` if not yet complete.
    pub fn load_result(&self, id: usize) -> Result<Option<Vec<WRes>>, String> {
        let path = self.result_path(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let doc = jsonout::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        doc.as_arr()
            .ok_or_else(|| format!("{}: not an array", path.display()))?
            .iter()
            .map(WRes::from_jval)
            .collect::<Result<Vec<_>, _>>()
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// What a journal recovery found: the plan signature line (if any) and the
/// completed workloads, keyed by their batch index within the task.
#[derive(Debug, Default)]
pub struct JournalState {
    /// The recorded plan signature, when a valid plan line exists.
    pub plan_sig: Option<u64>,
    /// Completed workloads by batch index (first writer wins; duplicate
    /// appends from a raced lease are byte-identical by determinism).
    pub done: std::collections::BTreeMap<usize, WRes>,
    /// Byte length of the valid prefix (a torn tail is truncated to this
    /// before appending).
    pub valid_len: u64,
}

/// An open per-task journal: recover once, then append checkpoints.
pub struct TaskJournal {
    file: std::fs::File,
    /// Checkpoints appended through this handle (test observability).
    pub appended: u64,
}

impl TaskJournal {
    /// Reads a journal, tolerating a torn tail: lines are consumed while
    /// they parse; the first unparsable or unterminated line ends recovery
    /// (everything before it is intact — each append is one `write` of one
    /// `\n`-terminated line). A plan-signature mismatch (the spec changed
    /// the batch under the journal — should be impossible; defense in
    /// depth) discards the journal entirely.
    pub fn recover(path: &Path, expect_sig: u64) -> JournalState {
        let mut st = JournalState::default();
        let Ok(text) = std::fs::read_to_string(path) else {
            return st;
        };
        let mut consumed = 0usize;
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn tail
            }
            let Ok(v) = jsonout::parse(line.trim_end()) else {
                break;
            };
            if st.plan_sig.is_none() {
                // First line must be the plan signature.
                let Some(sig) = v
                    .get("plan")
                    .and_then(JVal::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                else {
                    break;
                };
                if sig != expect_sig {
                    return JournalState::default();
                }
                st.plan_sig = Some(sig);
            } else {
                let Some(i) = v.get("i").and_then(JVal::as_u64) else {
                    break;
                };
                let Some(res) = v.get("res").and_then(|r| WRes::from_jval(r).ok()) else {
                    break;
                };
                st.done.entry(i as usize).or_insert(res);
            }
            consumed += line.len();
        }
        st.valid_len = consumed as u64;
        st
    }

    /// Opens the journal for appending, truncating a torn tail to
    /// `valid_len` first. When the journal is empty/new, writes the plan
    /// line.
    pub fn open(path: &Path, state: &JournalState, plan_sig: u64) -> Result<Self, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.set_len(state.valid_len).map_err(|e| e.to_string())?;
        let mut j = TaskJournal { file, appended: 0 };
        j.file.seek(std::io::SeekFrom::End(0)).map_err(|e| e.to_string())?;
        if state.plan_sig.is_none() {
            j.append_line(&JVal::Obj(vec![(
                "plan".into(),
                JVal::Str(format!("{plan_sig:016x}")),
            )]))?;
        }
        Ok(j)
    }

    /// Appends one completed workload checkpoint and fsyncs, so a kill
    /// after this call can lose at most work that postdates the checkpoint.
    pub fn checkpoint(&mut self, batch_index: usize, res: &WRes) -> Result<(), String> {
        self.append_line(&JVal::Obj(vec![
            ("i".into(), ju(batch_index as u64)),
            ("res".into(), res.to_jval()),
        ]))?;
        self.appended += 1;
        Ok(())
    }

    fn append_line(&mut self, v: &JVal) -> Result<(), String> {
        let mut line = v.render();
        line.push('\n');
        // One write per line: a torn line can only be the very tail.
        self.file.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        self.file.sync_data().map_err(|e| e.to_string())
    }
}

/// Reads a whole file as bytes, returning an empty vec when absent.
pub fn read_bytes_or_empty(path: &Path) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Ok(mut f) = std::fs::File::open(path) {
        let _ = f.read_to_end(&mut buf);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chipmunk-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn wres(name: &str) -> WRes {
        WRes {
            name: name.into(),
            counters: [1; 17],
            state_bits: vec![2],
            cov_bits: vec![],
            cov_new: vec![],
            reports: vec![],
            ops: None,
        }
    }

    #[test]
    fn store_init_open_and_spec_mismatch() {
        let dir = tmpdir("init");
        let spec = CampaignSpec { seq1_take: 4, batch: 2, ..CampaignSpec::default() };
        let s = CampaignStore::open_or_init(&dir, &spec).unwrap();
        assert_eq!(CampaignStore::open(&dir).unwrap().spec, spec);
        // Reopening with the same spec is fine; a different one is refused.
        CampaignStore::open_or_init(&dir, &spec).unwrap();
        let other = CampaignSpec { seq1_take: 5, ..spec.clone() };
        assert!(CampaignStore::open_or_init(&dir, &other).unwrap_err().contains("different"));
        // Results round-trip, and absence is None not an error.
        assert!(s.load_result(0).unwrap().is_none());
        s.write_result(0, &[wres("a"), wres("b")]).unwrap();
        let back = s.load_result(0).unwrap().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].name, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_recovers_and_truncates_torn_tail() {
        let dir = tmpdir("journal");
        let path = dir.join("task-0.log");
        let sig = 0xabcdu64;

        let st = TaskJournal::recover(&path, sig);
        assert!(st.plan_sig.is_none() && st.done.is_empty());
        let mut j = TaskJournal::open(&path, &st, sig).unwrap();
        j.checkpoint(0, &wres("w0")).unwrap();
        j.checkpoint(1, &wres("w1")).unwrap();
        drop(j);

        // Simulate a SIGKILL mid-append: a torn half line at the tail.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"i\":2,\"res\":{\"name\":\"to").unwrap();
        drop(f);

        let st = TaskJournal::recover(&path, sig);
        assert_eq!(st.plan_sig, Some(sig));
        assert_eq!(st.done.len(), 2);
        assert_eq!(st.done[&1].name, "w1");
        // Appending truncates the torn tail; the next recovery sees 3 clean
        // checkpoints.
        let mut j = TaskJournal::open(&path, &st, sig).unwrap();
        j.checkpoint(2, &wres("w2")).unwrap();
        drop(j);
        let st = TaskJournal::recover(&path, sig);
        assert_eq!(st.done.len(), 3);

        // A different plan signature discards everything.
        let st = TaskJournal::recover(&path, sig + 1);
        assert!(st.plan_sig.is_none() && st.done.is_empty() && st.valid_len == 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
