//! Copy-on-write device overlay for mounting crash states.
//!
//! The Chipmunk test harness checks thousands of crash states per workload.
//! Each crash state is "base persistent image at the last fence" plus a small
//! subset of in-flight writes, and the consistency checks themselves mutate
//! the state (mount-time recovery, the usability probe). CrashMonkey used a
//! copy-on-write block device for the same reason; [`CowDevice`] is the PM
//! equivalent: a page-granular overlay over a borrowed base image, so
//! constructing a crash state never copies the whole device and rolling back
//! checker mutations is just dropping the overlay.

use crate::{
    backend::PmBackend,
    cost::{self, SimCost},
    fxmap::FxHashMap,
};

/// Overlay page size.
const PAGE: u64 = 4096;

/// One reversible step in the overlay's undo log.
enum UndoRecord {
    /// The page was absent before the write; undoing removes it (the page
    /// content is still available in the base image).
    FreshPage(u64),
    /// Pre-image of a byte range within a single already-present page.
    Bytes { off: u64, old: Box<[u8]> },
}

/// A position in the undo log, returned by [`CowDevice::mark`].
pub type UndoMark = usize;

/// A copy-on-write view over an immutable base image.
///
/// All writes (including non-temporal stores and flushes) are applied
/// directly to overlay pages: a crash state is by definition already "on
/// media", and the file system mounted on it runs recovery and checker
/// probes whose persistence behaviour is not itself under test.
///
/// With [`CowDevice::new_with_undo`], every write additionally records its
/// pre-image so the overlay can be rewound to any earlier [`UndoMark`]. The
/// delta replayer uses this to step between adjacent crash states (and to
/// roll back the mount/probe mutations of each check) instead of rebuilding
/// the overlay from scratch per state.
pub struct CowDevice<'a> {
    base: &'a [u8],
    pages: FxHashMap<u64, Box<[u8]>>,
    undo: Option<Vec<UndoRecord>>,
}

impl<'a> CowDevice<'a> {
    /// Creates an overlay over `base`.
    pub fn new(base: &'a [u8]) -> Self {
        CowDevice { base, pages: FxHashMap::default(), undo: None }
    }

    /// Creates an overlay over `base` that records pre-images, enabling
    /// [`CowDevice::mark`] / [`CowDevice::undo_to`].
    pub fn new_with_undo(base: &'a [u8]) -> Self {
        CowDevice { base, pages: FxHashMap::default(), undo: Some(Vec::new()) }
    }

    /// Applies `data` at `off` (used by the replayer to lay a subset of
    /// in-flight writes over the base snapshot).
    pub fn apply(&mut self, off: u64, data: &[u8]) {
        self.write_bytes(off, data);
    }

    /// Number of dirtied overlay pages.
    pub fn dirty_pages(&self) -> usize {
        self.pages.len()
    }

    /// Discards all overlay modifications, reverting to the base image.
    pub fn rollback(&mut self) {
        self.pages.clear();
        if let Some(log) = &mut self.undo {
            log.clear();
        }
    }

    /// Current undo-log position. Writes made after a mark can be reverted
    /// with [`CowDevice::undo_to`]. Returns 0 when undo is disabled.
    pub fn mark(&self) -> UndoMark {
        self.undo.as_ref().map_or(0, Vec::len)
    }

    /// Rewinds the overlay to the state it had at `mark`, undoing every
    /// write made since (most recent first). No-op when undo is disabled.
    pub fn undo_to(&mut self, mark: UndoMark) {
        let Some(log) = &mut self.undo else { return };
        while log.len() > mark {
            match log.pop().expect("log.len() > mark >= 0") {
                UndoRecord::FreshPage(pno) => {
                    self.pages.remove(&pno);
                }
                UndoRecord::Bytes { off, old } => {
                    let pno = off / PAGE;
                    let in_page = (off % PAGE) as usize;
                    let page = self.pages.get_mut(&pno).expect("undone page present");
                    page[in_page..in_page + old.len()].copy_from_slice(&old);
                }
            }
        }
    }

    fn page_mut(&mut self, pno: u64) -> &mut [u8] {
        let base = self.base;
        self.pages.entry(pno).or_insert_with(|| {
            let start = (pno * PAGE) as usize;
            let end = (start + PAGE as usize).min(base.len());
            // Build the page from the base slice directly; only an unaligned
            // tail page needs zero padding past the end of the base.
            let mut p = Vec::with_capacity(PAGE as usize);
            p.extend_from_slice(&base[start..end]);
            p.resize(PAGE as usize, 0);
            p.into_boxed_slice()
        })
    }

    fn write_bytes(&mut self, off: u64, data: &[u8]) {
        // Crash-state checks run on CowDevice stacks, so this is where the
        // recovery fuel watchdog meters the file system's device traffic.
        // Ticking before the undo record keeps the log consistent if the
        // watchdog fires mid-sequence.
        cost::tick(cost::op_units(data.len()));
        assert!(
            (off as usize).checked_add(data.len()).is_some_and(|e| e <= self.base.len()),
            "CowDevice write out of range: off={off} len={}",
            data.len()
        );
        let mut pos = 0usize;
        while pos < data.len() {
            let cur = off + pos as u64;
            let pno = cur / PAGE;
            let in_page = (cur % PAGE) as usize;
            let n = (PAGE as usize - in_page).min(data.len() - pos);
            if let Some(undo) = &mut self.undo {
                let rec = match self.pages.get(&pno) {
                    None => UndoRecord::FreshPage(pno),
                    Some(p) => UndoRecord::Bytes {
                        off: cur,
                        old: p[in_page..in_page + n].to_vec().into_boxed_slice(),
                    },
                };
                undo.push(rec);
            }
            self.page_mut(pno)[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    fn read_bytes(&self, off: u64, buf: &mut [u8]) {
        cost::tick(cost::op_units(buf.len()));
        assert!(
            (off as usize).checked_add(buf.len()).is_some_and(|e| e <= self.base.len()),
            "CowDevice read out of range: off={off} len={}",
            buf.len()
        );
        let mut pos = 0usize;
        while pos < buf.len() {
            let cur = off + pos as u64;
            let pno = cur / PAGE;
            let in_page = (cur % PAGE) as usize;
            let n = (PAGE as usize - in_page).min(buf.len() - pos);
            match self.pages.get(&pno) {
                Some(p) => buf[pos..pos + n].copy_from_slice(&p[in_page..in_page + n]),
                None => {
                    let start = cur as usize;
                    buf[pos..pos + n].copy_from_slice(&self.base[start..start + n]);
                }
            }
            pos += n;
        }
    }
}

impl PmBackend for CowDevice<'_> {
    fn len(&self) -> u64 {
        self.base.len() as u64
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.read_bytes(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        self.write_bytes(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        self.write_bytes(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        // Page-sized chunks from one stack buffer: a memset of the whole
        // device must not allocate O(len) (it used to build a `vec![val;
        // len]` per call, which dominated large fallocate replays).
        assert!(
            (off as usize).checked_add(len as usize).is_some_and(|e| e <= self.base.len()),
            "CowDevice memset out of range: off={off} len={len}"
        );
        let buf = [val; PAGE as usize];
        let mut pos = 0u64;
        while pos < len {
            let n = (len - pos).min(PAGE) as usize;
            self.write_bytes(off + pos, &buf[..n]);
            pos += n as u64;
        }
    }

    fn flush(&mut self, _off: u64, _len: u64) {
        cost::tick(1);
    }

    fn fence(&mut self) {
        cost::tick(1);
    }

    fn sim_cost(&self) -> SimCost {
        SimCost::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fall_through_to_base() {
        let mut base = vec![0u8; 8192];
        base[5000] = 77;
        let cow = CowDevice::new(&base);
        let mut b = [0u8; 1];
        cow.read(5000, &mut b);
        assert_eq!(b[0], 77);
    }

    #[test]
    fn writes_shadow_base_and_rollback_restores() {
        let base = vec![1u8; 8192];
        let mut cow = CowDevice::new(&base);
        cow.store(100, &[9u8; 10]);
        let mut b = [0u8; 10];
        cow.read(100, &mut b);
        assert_eq!(b, [9u8; 10]);
        assert_eq!(cow.dirty_pages(), 1);
        cow.rollback();
        cow.read(100, &mut b);
        assert_eq!(b, [1u8; 10]);
        assert_eq!(cow.dirty_pages(), 0);
    }

    #[test]
    fn cross_page_write_and_read() {
        let base = vec![0u8; 3 * 4096];
        let mut cow = CowDevice::new(&base);
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        cow.apply(3000, &data);
        let mut got = vec![0u8; 5000];
        cow.read(3000, &mut got);
        assert_eq!(got, data);
        assert_eq!(cow.dirty_pages(), 2);
    }

    #[test]
    fn base_unmodified_by_writes() {
        let base = vec![0u8; 4096];
        let mut cow = CowDevice::new(&base);
        cow.store(0, &[255u8; 64]);
        drop(cow);
        assert_eq!(base[0], 0);
    }

    #[test]
    fn unaligned_base_length_tail_page() {
        let base = vec![4u8; 5000];
        let mut cow = CowDevice::new(&base);
        cow.store(4990, &[8u8; 10]);
        let mut b = [0u8; 10];
        cow.read(4990, &mut b);
        assert_eq!(b, [8u8; 10]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let base = vec![0u8; 100];
        let cow = CowDevice::new(&base);
        let mut b = [0u8; 8];
        cow.read(96, &mut b);
    }

    #[test]
    fn undo_restores_exact_prior_state() {
        let base: Vec<u8> = (0..8192).map(|i| (i % 256) as u8).collect();
        let mut cow = CowDevice::new_with_undo(&base);
        cow.apply(10, &[1u8; 20]);
        let m1 = cow.mark();
        let mut before = vec![0u8; 8192];
        cow.read(0, &mut before);

        cow.apply(5, &[2u8; 100]); // overlaps the earlier write
        cow.apply(4090, &[3u8; 12]); // crosses a page boundary
        cow.memset_nt(6000, 9, 500); // fresh page via memset
        cow.undo_to(m1);

        let mut after = vec![0u8; 8192];
        cow.read(0, &mut after);
        assert_eq!(before, after);
        assert_eq!(cow.dirty_pages(), 1, "fresh pages removed by undo");

        cow.undo_to(0);
        cow.read(0, &mut after);
        assert_eq!(after, base);
        assert_eq!(cow.dirty_pages(), 0);
    }

    #[test]
    fn undo_marks_nest() {
        let base = vec![0u8; 4096];
        let mut cow = CowDevice::new_with_undo(&base);
        cow.apply(0, &[1]);
        let m1 = cow.mark();
        cow.apply(0, &[2]);
        let m2 = cow.mark();
        cow.apply(0, &[3]);
        let mut b = [0u8; 1];
        cow.undo_to(m2);
        cow.read(0, &mut b);
        assert_eq!(b[0], 2);
        cow.undo_to(m1);
        cow.read(0, &mut b);
        assert_eq!(b[0], 1);
    }

    #[test]
    fn undo_disabled_is_a_noop() {
        let base = vec![0u8; 4096];
        let mut cow = CowDevice::new(&base);
        cow.apply(0, &[1]);
        assert_eq!(cow.mark(), 0);
        cow.undo_to(0);
        let mut b = [0u8; 1];
        cow.read(0, &mut b);
        assert_eq!(b[0], 1, "undo_to without undo log leaves writes intact");
    }

    #[test]
    fn unaligned_tail_page_zero_padded_with_undo() {
        let base = vec![4u8; 5000];
        let mut cow = CowDevice::new_with_undo(&base);
        let m = cow.mark();
        cow.store(4990, &[8u8; 10]);
        cow.undo_to(m);
        let mut b = [0u8; 10];
        cow.read(4990, &mut b);
        assert_eq!(b, [4u8; 10]);
    }
}
