//! Regenerates **Figure 3**: cumulative CPU time taken to find
//! crash-consistency bugs by ACE and by the Syzkaller-style fuzzer.
//!
//! ```sh
//! cargo run --release -p bench --bin figure3 [fuzz_budget] [threads] [nodedup] [norep] [--json <path>]
//! ```
//!
//! With `--json <path>`, the two series and the aggregate counters
//! (per-phase wall times, dedup/memo/prefix hits, states/sec) are also
//! written to `path`, along with a `campaign_resume` section benchmarking
//! the persistent campaign store's kill-and-resume path (see
//! `bench::campaign`): cold vs resumed `prefix_ops_saved`, journal splice
//! and rewarm counts, and a byte-identity check of the merged documents.
//!
//! `threads` (default 1) shards crash-state checking and workload batches
//! across that many workers; the table is identical for any value — only
//! wall time changes (see EXPERIMENTS.md "Parallel scaling").
//!
//! Each unique bug is hunted in isolation with each frontend; the series
//! accumulate per-bug first-find CPU times (the paper accumulates across a
//! shared campaign — per-bug isolation makes the comparison deterministic;
//! EXPERIMENTS.md discusses the substitution). The paper's shape to match:
//! ACE finds its 19 bugs in minutes of CPU time and plateaus; the fuzzer is
//! one to two orders of magnitude slower to the shared bugs but keeps going
//! and finds four more (23 total).
//!
//! Unknown flags, malformed numbers, and extra arguments are fatal (exit 2)
//! rather than silently ignored.

use std::time::Duration;

use bench::campaign::{
    hostio::{FaultSpec, HostCtx},
    runner::{self, RunOpts},
    store::CampaignStore,
    CampaignSpec,
};
use bench::{hunt_with_ace, hunt_with_fuzzer, jsonout::Json, PhaseTotals};
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

fn usage() -> ! {
    eprintln!("usage: figure3 [fuzz_budget] [threads] [nodedup] [norep] [--json <path>]");
    std::process::exit(2);
}

fn parse_pos<T: std::str::FromStr>(v: Option<&String>, what: &str, default: T) -> T {
    match v {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad {what}: {s:?}");
            usage()
        }),
    }
}

/// Benchmarks the persistent-campaign resume path for the `--json` doc: a
/// small store-backed campaign run cold, then the same campaign killed
/// mid-flight at a journal checkpoint and resumed. The counters show what
/// resume costs and saves — how many workloads were spliced from the
/// journal instead of re-run, how many rewarm runs the prefix cache
/// needed, and that the resumed run re-earns the cold `prefix_ops_saved`
/// with a byte-identical merged document.
fn campaign_resume_bench() -> Json {
    let spec = CampaignSpec {
        seq1_take: 12,
        seq2_step: 0,
        fuzz_budget: 10,
        batch: 6,
        bitmap_bits: 1 << 12,
        ..CampaignSpec::default()
    };
    let base = std::env::temp_dir().join(format!("chipmunk-fig3-camp-{}", std::process::id()));
    let run = |dir: &std::path::Path, kill_at: Option<u64>| {
        let _ = std::fs::remove_dir_all(dir);
        let store = CampaignStore::open_or_init(dir, &spec).expect("init campaign store");
        if let Some(k) = kill_at {
            let killed = RunOpts { kill_after_checkpoints: Some(k), ..RunOpts::default() };
            let sum = runner::run_worker(&store, &killed).expect("interrupted campaign run");
            assert!(sum.interrupted, "kill budget must fire mid-campaign");
        }
        let sum = runner::run_worker(&store, &RunOpts::default()).expect("campaign run");
        let merged = runner::merge(&store).expect("merge campaign");
        (sum, merged)
    };
    let (_, cold) = run(&base.join("cold"), None);
    // Kill inside the second ACE task: the resume must splice the first
    // task's committed result *and* the second's partial journal.
    let (sum, warm) = run(&base.join("resumed"), Some(9));

    // Torture lane: the same campaign under the deterministic host-I/O
    // fault injector (short writes, EIO, torn appends, lying writes). The
    // retry/abandon/quarantine machinery must still converge to the
    // byte-identical fault-free document — the store's own
    // crash-consistency discipline, eaten as dogfood.
    let torture_dir = base.join("torture");
    let _ = std::fs::remove_dir_all(&torture_dir);
    let io = HostCtx::faulty(FaultSpec::standard(0xf16));
    let tstore = CampaignStore::open_or_init_with(&torture_dir, &spec, io)
        .expect("init torture store (store.json writes retry through faults)");
    let (survived, identical, tsum) = match runner::run_and_merge(&tstore, &RunOpts::default()) {
        Ok((s, m)) => (true, m.doc == cold.doc, s),
        Err(_) => (false, false, runner::WorkerSummary::default()),
    };

    let doc = Json::Obj(vec![
        ("cold_prefix_ops_saved", Json::U(cold.totals[5])),
        ("resumed_prefix_ops_saved", Json::U(warm.totals[5])),
        ("tasks_resumed", Json::U(sum.tasks_resumed)),
        ("journal_workloads_replayed", Json::U(sum.journal_workloads_replayed)),
        ("rewarm_runs", Json::U(sum.rewarm_runs)),
        ("byte_identical", Json::B(cold.doc == warm.doc)),
        (
            "torture",
            Json::Obj(vec![
                ("survived", Json::B(survived)),
                ("byte_identical", Json::B(identical)),
                ("faults_injected", Json::U(tsum.faults_injected)),
                ("io_retries", Json::U(tsum.io_retries)),
                ("backoff_ticks", Json::U(tsum.backoff_ticks)),
                ("tasks_abandoned", Json::U(tsum.tasks_abandoned)),
                ("tasks_quarantined", Json::U(tsum.tasks_quarantined)),
            ]),
        ),
    ]);
    let _ = std::fs::remove_dir_all(&base);
    doc
}

fn main() {
    let mut pos: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut nodedup = false;
    let mut norep = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a value");
                    usage()
                }));
            }
            "nodedup" => nodedup = true,
            "norep" => norep = true,
            s if s.starts_with('-') => {
                eprintln!("unknown flag {s:?}");
                usage();
            }
            _ => pos.push(a),
        }
    }
    if pos.len() > 2 {
        eprintln!("unexpected argument {:?}", pos[2]);
        usage();
    }
    let fuzz_budget: u64 = parse_pos(pos.first(), "fuzz budget", 8000);
    let threads: usize = parse_pos(pos.get(1), "thread count", 1);
    let dedup = !nodedup;
    let rep_check = !norep;
    let ace_cfg = TestConfig { stop_on_first: true, dedup, rep_check, ..TestConfig::default() }
        .with_threads(threads);
    let fuzz_cfg = TestConfig { dedup, rep_check, ..TestConfig::fuzzing() }.with_threads(threads);
    eprintln!("threads = {threads}, dedup = {dedup}, rep_check = {rep_check}");

    // One representative instance per unique bug (fix group).
    let mut seen_groups = std::collections::BTreeSet::new();
    let uniques: Vec<_> = bug_table()
        .iter()
        .filter(|b| seen_groups.insert(b.fix_group))
        .collect();

    // Resource metric: the paper compares CPU time on fixed hardware. Wall
    // time here reflects this substrate's op costs, so the harness reports
    // both wall time and the machine-independent work unit — *workloads
    // executed* (the fuzzer also pays oracle+record for every random
    // program it tries, which is where its real cost lives).
    let mut ace_series: Vec<(u32, Duration, u64)> = Vec::new();
    let mut fuzz_series: Vec<(u32, Duration, u64)> = Vec::new();
    let (mut states_total, mut dedup_total) = (0u64, 0u64);
    let (mut memo_total, mut prefix_total, mut saved_total) = (0u64, 0u64, 0u64);
    let mut rep_totals = [0u64; 3];
    let (mut subtree_total, mut depth_max) = (0u64, 0u64);
    let mut worker_hits: Vec<u64> = Vec::new();
    let mut sandbox_totals = [0u64; 4];
    let mut oracle_totals = [0u64; 2];
    let mut host_totals = [0u64; 3];
    let mut phase_total = PhaseTotals::default();
    for info in &uniques {
        if info.ace_findable {
            if let (Some(h), w, _) = hunt_with_ace(info.id, &ace_cfg, 400) {
                states_total += h.states;
                dedup_total += h.dedup_hits;
                memo_total += h.memo_hits;
                rep_totals[0] += h.rep_classes;
                rep_totals[1] += h.rep_skipped;
                rep_totals[2] += h.rep_expansions;
                prefix_total += h.prefix_hits;
                saved_total += h.prefix_ops_saved;
                subtree_total += h.sched_subtrees;
                depth_max = depth_max.max(h.sched_subtree_max_depth);
                if worker_hits.len() < h.per_worker_prefix_hits.len() {
                    worker_hits.resize(h.per_worker_prefix_hits.len(), 0);
                }
                for (slot, &v) in worker_hits.iter_mut().zip(&h.per_worker_prefix_hits) {
                    *slot += v;
                }
                sandbox_totals[0] += h.recovery_panics;
                sandbox_totals[1] += h.recovery_hangs;
                sandbox_totals[2] += h.sandbox_retries;
                sandbox_totals[3] += h.fuel_exhausted;
                oracle_totals[0] += h.oracle_subtrees_pruned;
                oracle_totals[1] += h.oracle_snap_bytes_shared;
                host_totals[0] += h.io_retries;
                host_totals[1] += h.tasks_quarantined;
                host_totals[2] += h.degraded_mode;
                phase_total.oracle += h.phase.oracle;
                phase_total.record += h.phase.record;
                phase_total.check += h.phase.check;
                ace_series.push((info.id.number(), h.elapsed, w));
            }
        }
        let (fh, w, _) =
            hunt_with_fuzzer(info.id, &fuzz_cfg, 0xf16 + info.id.number() as u64, fuzz_budget);
        if let Some(h) = fh {
            states_total += h.states;
            dedup_total += h.dedup_hits;
            memo_total += h.memo_hits;
            rep_totals[0] += h.rep_classes;
            rep_totals[1] += h.rep_skipped;
            rep_totals[2] += h.rep_expansions;
            sandbox_totals[0] += h.recovery_panics;
            sandbox_totals[1] += h.recovery_hangs;
            sandbox_totals[2] += h.sandbox_retries;
            sandbox_totals[3] += h.fuel_exhausted;
            oracle_totals[0] += h.oracle_subtrees_pruned;
            oracle_totals[1] += h.oracle_snap_bytes_shared;
            host_totals[0] += h.io_retries;
            host_totals[1] += h.tasks_quarantined;
            host_totals[2] += h.degraded_mode;
            phase_total.oracle += h.phase.oracle;
            phase_total.record += h.phase.record;
            phase_total.check += h.phase.check;
            fuzz_series.push((info.id.number(), h.elapsed, w));
        }
        eprintln!("hunted bug {} ({})", info.id.number(), info.fs);
    }

    ace_series.sort_by_key(|&(_, _, w)| w);
    fuzz_series.sort_by_key(|&(_, _, w)| w);

    println!("\nFigure 3: cumulative cost to find the k-th bug");
    println!(
        "{:>3} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5}",
        "k", "ACE wklds", "time(s)", "bug", "fuzz wklds", "time(s)", "bug"
    );
    println!("{}", "-".repeat(64));
    let (mut at, mut aw) = (Duration::ZERO, 0u64);
    let (mut ft, mut fw) = (Duration::ZERO, 0u64);
    let n = ace_series.len().max(fuzz_series.len());
    for k in 0..n {
        let ace_col = match ace_series.get(k) {
            Some(&(bug, d, w)) => {
                at += d;
                aw += w;
                format!("{:>10} {:>9.3} {:>5}", aw, at.as_secs_f64(), bug)
            }
            None => format!("{:>10} {:>9} {:>5}", "-", "-", "-"),
        };
        let fuzz_col = match fuzz_series.get(k) {
            Some(&(bug, d, w)) => {
                ft += d;
                fw += w;
                format!("{:>10} {:>9.3} {:>5}", fw, ft.as_secs_f64(), bug)
            }
            None => format!("{:>10} {:>9} {:>5}", "-", "-", "-"),
        };
        println!("{:>3} | {} | {}", k + 1, ace_col, fuzz_col);
    }
    println!("{}", "-".repeat(64));
    println!(
        "ACE: {} bugs, {} workloads, {:.1}s | fuzzer: {} bugs, {} workloads, {:.1}s",
        ace_series.len(),
        aw,
        at.as_secs_f64(),
        fuzz_series.len(),
        fw,
        ft.as_secs_f64()
    );
    println!(
        "crash states to the finds: {} total, {} served from the dedup cache ({:.1}% hit rate)",
        states_total,
        dedup_total,
        100.0 * dedup_total as f64 / states_total.max(1) as f64
    );
    let checked_total = states_total - dedup_total - rep_totals[1];
    println!(
        "representative-state checking: {} classes, {} states skipped, {} expansions \
         ({} states actually checked, {:.1}% of non-dup)",
        rep_totals[0],
        rep_totals[1],
        rep_totals[2],
        checked_total,
        100.0 * checked_total as f64 / (states_total - dedup_total).max(1) as f64
    );
    let k = ace_series.len().min(fuzz_series.len());
    if k > 0 {
        let ace_k: u64 = ace_series[..k].iter().map(|&(_, _, w)| w).sum();
        let fuzz_k: u64 = fuzz_series[..k].iter().map(|&(_, _, w)| w).sum();
        println!(
            "to the first {k} bugs the fuzzer executed {:.1}x the workloads of ACE \
             (paper: ~6-20x the CPU time to the shared bugs)",
            fuzz_k as f64 / ace_k.max(1) as f64
        );
    }

    if let Some(path) = json_path {
        let series = |s: &[(u32, Duration, u64)]| {
            Json::Arr(
                s.iter()
                    .map(|&(bug, d, w)| {
                        Json::Obj(vec![
                            ("bug", Json::U(bug as u64)),
                            ("seconds", Json::F(d.as_secs_f64())),
                            ("workloads", Json::U(w)),
                        ])
                    })
                    .collect(),
            )
        };
        let total_secs = (at + ft).as_secs_f64();
        let doc = Json::Obj(vec![
            ("fuzz_budget", Json::U(fuzz_budget)),
            ("threads", Json::U(threads as u64)),
            ("dedup", Json::B(dedup)),
            ("ace", series(&ace_series)),
            ("fuzz", series(&fuzz_series)),
            (
                "totals",
                Json::Obj(vec![
                    ("states", Json::U(states_total)),
                    ("dedup_hits", Json::U(dedup_total)),
                    ("memo_hits", Json::U(memo_total)),
                    ("prefix_hits", Json::U(prefix_total)),
                    ("prefix_ops_saved", Json::U(saved_total)),
                    ("subtrees", Json::U(subtree_total)),
                    ("subtree_max_depth", Json::U(depth_max)),
                    ("recovery_panics", Json::U(sandbox_totals[0])),
                    ("recovery_hangs", Json::U(sandbox_totals[1])),
                    ("sandbox_retries", Json::U(sandbox_totals[2])),
                    ("fuel_exhausted", Json::U(sandbox_totals[3])),
                    ("oracle_subtrees_pruned", Json::U(oracle_totals[0])),
                    ("oracle_snap_bytes_shared", Json::U(oracle_totals[1])),
                    ("io_retries", Json::U(host_totals[0])),
                    ("tasks_quarantined", Json::U(host_totals[1])),
                    ("degraded_mode", Json::U(host_totals[2])),
                    (
                        "per_worker_prefix_hits",
                        Json::Arr(worker_hits.iter().map(|&v| Json::U(v)).collect()),
                    ),
                    ("oracle_seconds", Json::F(phase_total.oracle.as_secs_f64())),
                    ("record_seconds", Json::F(phase_total.record.as_secs_f64())),
                    ("check_seconds", Json::F(phase_total.check.as_secs_f64())),
                    (
                        "states_per_sec",
                        Json::F(states_total as f64 / total_secs.max(1e-9)),
                    ),
                ]),
            ),
            (
                "rep_check",
                Json::Obj(vec![
                    ("states", Json::U(states_total)),
                    ("checked", Json::U(checked_total)),
                    ("classes", Json::U(rep_totals[0])),
                    ("skipped", Json::U(rep_totals[1])),
                    ("expansions", Json::U(rep_totals[2])),
                ]),
            ),
            ("campaign_resume", campaign_resume_bench()),
        ]);
        bench::jsonout::write_atomic(&path, &doc.render()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
