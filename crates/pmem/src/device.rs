//! The simulated persistent-memory device.

use std::collections::BTreeSet;

use crate::{
    backend::{line_base, lines_overlapping, PmBackend, CACHE_LINE},
    cost::{
        PmStats, SimCost, FENCE_NS, FLUSH_LINE_NS, MEDIA_READ_LINE_NS, NT_LINE_NS, STORE_WORD_NS,
    },
};

/// How a write entered the in-flight set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InflightKind {
    /// A cache-line write-back of dirty cached data.
    Flush,
    /// A non-temporal store.
    NonTemporal,
}

/// A write that has left the cache (or bypassed it) but has not yet been
/// ordered by a store fence. On a crash, any subset of the in-flight writes
/// may have reached media.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InflightWrite {
    /// Destination offset on the device.
    pub off: u64,
    /// The bytes in flight.
    pub data: Vec<u8>,
    /// How the write entered the in-flight set.
    pub kind: InflightKind,
}

/// A simulated byte-addressable PM device with an x86-style epoch
/// persistence model.
///
/// The device tracks three layers of state:
///
/// * `view` — the logical contents: what loads observe (most recent stores,
///   flushed or not).
/// * `persistent` — the contents guaranteed to be on media (everything
///   ordered by a past fence).
/// * the *in-flight set* — flushed or non-temporal writes not yet fenced;
///   a crash persists an arbitrary subset of these on top of `persistent`.
///
/// Dirty cached data that was never flushed is treated as lost on a crash
/// (see the crate docs for why this matches the paper's model).
#[derive(Debug, Clone)]
pub struct PmDevice {
    view: Vec<u8>,
    persistent: Vec<u8>,
    /// Cache-line bases with dirty (stored but not written back) bytes.
    dirty_lines: BTreeSet<u64>,
    inflight: Vec<InflightWrite>,
    stats: PmStats,
    cost: SimCost,
}

impl PmDevice {
    /// Creates a zero-filled device of `len` bytes.
    pub fn new(len: u64) -> Self {
        PmDevice {
            view: vec![0u8; len as usize],
            persistent: vec![0u8; len as usize],
            dirty_lines: BTreeSet::new(),
            inflight: Vec::new(),
            stats: PmStats::default(),
            cost: SimCost::default(),
        }
    }

    /// Creates a device whose persistent contents are `image` (e.g. a crash
    /// state produced by a replayer). The cache starts clean.
    pub fn from_image(image: Vec<u8>) -> Self {
        PmDevice {
            view: image.clone(),
            persistent: image,
            dirty_lines: BTreeSet::new(),
            inflight: Vec::new(),
            stats: PmStats::default(),
            cost: SimCost::default(),
        }
    }

    /// The current logical contents (what a running program reads).
    pub fn view(&self) -> &[u8] {
        &self.view
    }

    /// The contents guaranteed to be on media right now.
    pub fn persistent_image(&self) -> &[u8] {
        &self.persistent
    }

    /// The writes currently in flight (flushed or non-temporal, unfenced).
    pub fn inflight(&self) -> &[InflightWrite] {
        &self.inflight
    }

    /// Operation counters.
    pub fn stats(&self) -> &PmStats {
        &self.stats
    }

    /// Resets operation counters and simulated time (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = PmStats::default();
        self.cost = SimCost::default();
    }

    /// Simulates a crash that persists exactly the in-flight writes whose
    /// indices appear in `subset` (applied in program order), returning the
    /// resulting media image. Dirty unflushed cache lines are lost.
    pub fn crash_image_with(&self, subset: &[usize]) -> Vec<u8> {
        let mut img = self.persistent.clone();
        let mut order: Vec<usize> = subset.to_vec();
        order.sort_unstable();
        order.dedup();
        for &i in &order {
            let w = &self.inflight[i];
            img[w.off as usize..w.off as usize + w.data.len()].copy_from_slice(&w.data);
        }
        img
    }

    /// Simulates a crash with a random subset of in-flight writes persisted,
    /// driven by `pick(i)` returning whether in-flight write `i` survives.
    pub fn crash_image_where(&self, mut pick: impl FnMut(usize) -> bool) -> Vec<u8> {
        let subset: Vec<usize> = (0..self.inflight.len()).filter(|&i| pick(i)).collect();
        self.crash_image_with(&subset)
    }

    fn check_range(&self, off: u64, len: usize) {
        assert!(
            (off as usize).checked_add(len).is_some_and(|end| end <= self.view.len()),
            "PM access out of range: off={off} len={len} device={}",
            self.view.len()
        );
    }
}

impl PmBackend for PmDevice {
    fn len(&self) -> u64 {
        self.view.len() as u64
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.check_range(off, buf.len());
        buf.copy_from_slice(&self.view[off as usize..off as usize + buf.len()]);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.check_range(off, data.len());
        self.view[off as usize..off as usize + data.len()].copy_from_slice(data);
        for line in lines_overlapping(off, data.len() as u64) {
            self.dirty_lines.insert(line);
        }
        self.stats.store_bytes += data.len() as u64;
        self.cost.charge(STORE_WORD_NS * (data.len() as u64).div_ceil(8));
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.check_range(off, data.len());
        self.view[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.inflight.push(InflightWrite {
            off,
            data: data.to_vec(),
            kind: InflightKind::NonTemporal,
        });
        self.stats.nt_bytes += data.len() as u64;
        self.cost.charge(NT_LINE_NS * (data.len() as u64).div_ceil(CACHE_LINE));
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        if len == 0 {
            return;
        }
        // One allocation for the in-flight record; going through memcpy_nt
        // would build a temporary fill buffer and then copy it again.
        self.check_range(off, len as usize);
        let data = vec![val; len as usize];
        self.view[off as usize..off as usize + len as usize].copy_from_slice(&data);
        self.inflight.push(InflightWrite { off, data, kind: InflightKind::NonTemporal });
        self.stats.nt_bytes += len;
        self.cost.charge(NT_LINE_NS * len.div_ceil(CACHE_LINE));
    }

    fn flush(&mut self, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.check_range(off, len as usize);
        self.stats.flush_calls += 1;
        // Write back each dirty line overlapping the range. The flushed data
        // is the line's *current* contents — the same thing the paper's
        // logger records when it intercepts a flush call.
        let mut flushed: Option<(u64, u64)> = None;
        for line in lines_overlapping(off, len) {
            if self.dirty_lines.remove(&line) {
                self.stats.flush_lines += 1;
                self.cost.charge(FLUSH_LINE_NS);
                flushed = Some(match flushed {
                    None => (line, line + CACHE_LINE),
                    Some((s, e)) if line == e => (s, line + CACHE_LINE),
                    Some(prev) => {
                        self.push_flush_range(prev.0, prev.1);
                        (line, line + CACHE_LINE)
                    }
                });
            }
        }
        if let Some((s, e)) = flushed {
            self.push_flush_range(s, e);
        }
    }

    fn fence(&mut self) {
        self.stats.fences += 1;
        self.stats.max_inflight = self.stats.max_inflight.max(self.inflight.len() as u64);
        self.cost.charge(FENCE_NS);
        for w in self.inflight.drain(..) {
            self.persistent[w.off as usize..w.off as usize + w.data.len()]
                .copy_from_slice(&w.data);
        }
    }

    fn note_media_read(&mut self, len: u64) {
        self.stats.media_read_bytes += len;
        self.cost.charge(MEDIA_READ_LINE_NS * len.div_ceil(CACHE_LINE));
    }

    fn sim_cost(&self) -> SimCost {
        self.cost
    }
}

impl PmDevice {
    fn push_flush_range(&mut self, start: u64, end: u64) {
        // Clamp to device bounds: the last line of the device may extend past
        // the end if the device length is not line-aligned.
        let end = end.min(self.view.len() as u64);
        let base = line_base(start);
        let data = self.view[base as usize..end as usize].to_vec();
        self.inflight.push(InflightWrite {
            off: base,
            data,
            kind: InflightKind::Flush,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_is_visible_but_not_persistent() {
        let mut d = PmDevice::new(4096);
        d.store(100, b"hello");
        let mut buf = [0u8; 5];
        d.read(100, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(&d.persistent_image()[100..105], &[0; 5]);
    }

    #[test]
    fn flush_without_fence_is_in_flight() {
        let mut d = PmDevice::new(4096);
        d.store(0, b"abc");
        d.flush(0, 3);
        assert_eq!(d.inflight().len(), 1);
        assert_eq!(&d.persistent_image()[0..3], &[0; 3]);
        d.fence();
        assert!(d.inflight().is_empty());
        assert_eq!(&d.persistent_image()[0..3], b"abc");
    }

    #[test]
    fn unflushed_store_lost_on_crash() {
        let mut d = PmDevice::new(4096);
        d.store(0, b"abc");
        let img = d.crash_image_with(&[]);
        assert_eq!(&img[0..3], &[0; 3]);
    }

    #[test]
    fn nt_store_is_in_flight_immediately() {
        let mut d = PmDevice::new(4096);
        d.memcpy_nt(64, b"xyz");
        assert_eq!(d.inflight().len(), 1);
        assert_eq!(d.inflight()[0].kind, InflightKind::NonTemporal);
        // Crash persisting the NT store.
        let img = d.crash_image_with(&[0]);
        assert_eq!(&img[64..67], b"xyz");
        // Crash losing it.
        let img = d.crash_image_with(&[]);
        assert_eq!(&img[64..67], &[0; 3]);
    }

    #[test]
    fn crash_subsets_respect_program_order() {
        let mut d = PmDevice::new(4096);
        d.memcpy_nt(0, &[1u8; 8]);
        d.memcpy_nt(0, &[2u8; 8]);
        // Both applied in program order: later write wins.
        let img = d.crash_image_with(&[0, 1]);
        assert_eq!(&img[0..8], &[2u8; 8]);
        let img = d.crash_image_with(&[1, 0]);
        assert_eq!(&img[0..8], &[2u8; 8]);
        let img = d.crash_image_with(&[0]);
        assert_eq!(&img[0..8], &[1u8; 8]);
    }

    #[test]
    fn flush_captures_line_contents_at_flush_time() {
        let mut d = PmDevice::new(4096);
        d.store(0, &[7u8; 8]);
        d.flush(0, 8);
        // Overwrite the same line after the flush, without flushing again.
        d.store(0, &[9u8; 8]);
        // The in-flight entry holds the value at flush time.
        let img = d.crash_image_with(&[0]);
        assert_eq!(&img[0..8], &[7u8; 8]);
    }

    #[test]
    fn flush_of_clean_lines_is_a_noop() {
        let mut d = PmDevice::new(4096);
        d.flush(0, 128);
        assert!(d.inflight().is_empty());
        d.store(0, &[1u8]);
        d.flush(0, 1);
        d.flush(0, 1); // second flush: line already written back
        assert_eq!(d.inflight().len(), 1);
    }

    #[test]
    fn contiguous_dirty_lines_coalesce_into_one_inflight_entry() {
        let mut d = PmDevice::new(4096);
        d.store(0, &vec![5u8; 256]);
        d.flush(0, 256);
        assert_eq!(d.inflight().len(), 1);
        assert_eq!(d.inflight()[0].data.len(), 256);
    }

    #[test]
    fn non_contiguous_dirty_lines_split() {
        let mut d = PmDevice::new(4096);
        d.store(0, &[1u8; 8]);
        d.store(256, &[2u8; 8]);
        d.flush(0, 512);
        assert_eq!(d.inflight().len(), 2);
    }

    #[test]
    fn fence_applies_in_program_order() {
        let mut d = PmDevice::new(4096);
        d.memcpy_nt(0, &[1u8; 8]);
        d.memcpy_nt(0, &[2u8; 8]);
        d.fence();
        assert_eq!(&d.persistent_image()[0..8], &[2u8; 8]);
    }

    #[test]
    fn stats_and_cost_accumulate() {
        let mut d = PmDevice::new(4096);
        d.store(0, &[0u8; 64]);
        d.flush(0, 64);
        d.fence();
        d.memcpy_nt(64, &[0u8; 128]);
        d.fence();
        let s = d.stats();
        assert_eq!(s.store_bytes, 64);
        assert_eq!(s.nt_bytes, 128);
        assert_eq!(s.flush_lines, 1);
        assert_eq!(s.fences, 2);
        assert!(d.sim_cost().ns > 0);
    }

    #[test]
    fn from_image_round_trips() {
        let mut img = vec![0u8; 1024];
        img[10] = 42;
        let d = PmDevice::from_image(img);
        let mut b = [0u8; 1];
        d.read(10, &mut b);
        assert_eq!(b[0], 42);
        assert_eq!(d.persistent_image()[10], 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_store_panics() {
        let mut d = PmDevice::new(64);
        d.store(60, &[0u8; 8]);
    }

    #[test]
    fn persist_u64_is_durable() {
        let mut d = PmDevice::new(4096);
        d.persist_u64(8, 0xdead_beef);
        assert_eq!(
            u64::from_le_bytes(d.persistent_image()[8..16].try_into().unwrap()),
            0xdead_beef
        );
        assert_eq!(d.read_u64(8), 0xdead_beef);
    }

    #[test]
    fn unaligned_device_tail_flush_ok() {
        // Device length not line-aligned: flushing the final partial line
        // must not run past the end.
        let mut d = PmDevice::new(100);
        d.store(96, &[3u8; 4]);
        d.flush(96, 4);
        d.fence();
        assert_eq!(&d.persistent_image()[96..100], &[3u8; 4]);
    }
}
