//! The U-Split operation log: entry format and window layout.

use vfs::{FallocMode, FsError, FsResult};

/// U-Split window magic ("USPLITFS").
pub const MAGIC: u64 = u64::from_le_bytes(*b"USPLITFS");

/// Fixed entry size.
pub const ENTRY_SIZE: u64 = 128;

/// Maximum path length storable in an entry.
pub const PATH_MAX: usize = 40;

/// Number of entry slots in the log.
pub const LOG_ENTRIES: u64 = 256;

/// U-Split window layout (offsets relative to the window start).
pub mod off {
    /// Magic (u64).
    pub const MAGIC: u64 = 0;
    /// Published log tail: byte offset past the last valid entry (u64).
    pub const TAIL: u64 = 8;
    /// The kernel-component epoch the current log accumulated under (u64).
    /// The checkpoint bumps the kernel epoch inside the forced journal
    /// commit; a committed epoch greater than this proves the log contents
    /// were already relinked, making replay-after-checkpoint races safe.
    pub const LOG_EPOCH: u64 = 16;
    /// First log entry.
    pub const ENTRIES: u64 = 64;
    /// First staging byte (after the entry region).
    pub const STAGING: u64 = ENTRIES + super::LOG_ENTRIES * super::ENTRY_SIZE;
}

/// A decoded operation-log entry.
///
/// Metadata variants carry the obvious system-call arguments; the `Data`
/// variant's fields are documented individually.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum OpEntry {
    /// A staged data write.
    Data {
        /// Descriptor generation that wrote it (bug 22's replay key).
        fd_tag: u64,
        /// Whether another descriptor had the same file open at write time
        /// (the per-descriptor staging-table state bug 22's replay trips
        /// over).
        concurrent: bool,
        /// Destination file path (at write time).
        path: String,
        /// Destination file offset.
        file_off: u64,
        /// Length in bytes.
        len: u64,
        /// Source offset in the staging area (window-relative).
        staging_off: u64,
    },
    /// `creat(path)`.
    Creat { path: String },
    /// `mkdir(path)`.
    Mkdir { path: String },
    /// `unlink(path)`.
    Unlink { path: String },
    /// `rmdir(path)`.
    Rmdir { path: String },
    /// `link(old, new)`.
    Link { old: String, new: String },
    /// `rename(old, new)`.
    Rename { old: String, new: String },
    /// `truncate(path, size)`.
    Truncate { path: String, size: u64 },
    /// `fallocate(path, mode, off, len)`.
    Falloc { path: String, mode: FallocMode, off: u64, len: u64 },
}

mod tag {
    pub const DATA: u8 = 1;
    pub const CREAT: u8 = 2;
    pub const MKDIR: u8 = 3;
    pub const UNLINK: u8 = 4;
    pub const RMDIR: u8 = 5;
    pub const LINK: u8 = 6;
    pub const RENAME: u8 = 7;
    pub const TRUNCATE: u8 = 8;
    pub const FALLOC: u8 = 9;
}

fn mode_code(m: FallocMode) -> u8 {
    match m {
        FallocMode::Allocate => 0,
        FallocMode::KeepSize => 1,
        FallocMode::ZeroRange => 2,
        FallocMode::PunchHole => 3,
    }
}

fn mode_from(c: u8) -> FallocMode {
    match c {
        1 => FallocMode::KeepSize,
        2 => FallocMode::ZeroRange,
        3 => FallocMode::PunchHole,
        _ => FallocMode::Allocate,
    }
}

fn put_path(buf: &mut [u8], at: usize, path: &str) -> FsResult<u8> {
    let b = path.as_bytes();
    if b.len() > PATH_MAX {
        return Err(FsError::NameTooLong);
    }
    buf[at..at + b.len()].copy_from_slice(b);
    Ok(b.len() as u8)
}

fn get_path(buf: &[u8], at: usize, len: u8) -> String {
    String::from_utf8_lossy(&buf[at..at + (len as usize).min(PATH_MAX)]).into_owned()
}

impl OpEntry {
    /// Whether this is a staged-data entry.
    pub fn is_data(&self) -> bool {
        matches!(self, OpEntry::Data { .. })
    }

    /// Encodes into the fixed 128-byte form.
    ///
    /// Layout: `[0]` tag, `[1]` path1 length, `[2]` path2 length, `[3]`
    /// fallocate mode, `[8..16]` fd tag, `[16..24]` offset/size, `[24..32]`
    /// length, `[32..40]` staging offset, `[40..80]` path1, `[80..120]`
    /// path2.
    pub fn encode(&self) -> FsResult<[u8; ENTRY_SIZE as usize]> {
        let mut b = [0u8; ENTRY_SIZE as usize];
        match self {
            OpEntry::Data { fd_tag, concurrent, path, file_off, len, staging_off } => {
                b[0] = tag::DATA;
                b[1] = put_path(&mut b, 40, path)?;
                b[4] = u8::from(*concurrent);
                b[8..16].copy_from_slice(&fd_tag.to_le_bytes());
                b[16..24].copy_from_slice(&file_off.to_le_bytes());
                b[24..32].copy_from_slice(&len.to_le_bytes());
                b[32..40].copy_from_slice(&staging_off.to_le_bytes());
            }
            OpEntry::Creat { path } => {
                b[0] = tag::CREAT;
                b[1] = put_path(&mut b, 40, path)?;
            }
            OpEntry::Mkdir { path } => {
                b[0] = tag::MKDIR;
                b[1] = put_path(&mut b, 40, path)?;
            }
            OpEntry::Unlink { path } => {
                b[0] = tag::UNLINK;
                b[1] = put_path(&mut b, 40, path)?;
            }
            OpEntry::Rmdir { path } => {
                b[0] = tag::RMDIR;
                b[1] = put_path(&mut b, 40, path)?;
            }
            OpEntry::Link { old, new } => {
                b[0] = tag::LINK;
                b[1] = put_path(&mut b, 40, old)?;
                b[2] = put_path(&mut b, 80, new)?;
            }
            OpEntry::Rename { old, new } => {
                b[0] = tag::RENAME;
                b[1] = put_path(&mut b, 40, old)?;
                b[2] = put_path(&mut b, 80, new)?;
            }
            OpEntry::Truncate { path, size } => {
                b[0] = tag::TRUNCATE;
                b[1] = put_path(&mut b, 40, path)?;
                b[16..24].copy_from_slice(&size.to_le_bytes());
            }
            OpEntry::Falloc { path, mode, off, len } => {
                b[0] = tag::FALLOC;
                b[1] = put_path(&mut b, 40, path)?;
                b[3] = mode_code(*mode);
                b[16..24].copy_from_slice(&off.to_le_bytes());
                b[24..32].copy_from_slice(&len.to_le_bytes());
            }
        }
        Ok(b)
    }

    /// Decodes an entry; `None` for an unknown tag.
    pub fn decode(b: &[u8]) -> Option<OpEntry> {
        let u = |r: std::ops::Range<usize>| u64::from_le_bytes(b[r].try_into().expect("8 bytes"));
        let p1 = |b: &[u8]| get_path(b, 40, b[1]);
        let p2 = |b: &[u8]| get_path(b, 80, b[2]);
        Some(match b[0] {
            tag::DATA => OpEntry::Data {
                fd_tag: u(8..16),
                concurrent: b[4] != 0,
                path: p1(b),
                file_off: u(16..24),
                len: u(24..32),
                staging_off: u(32..40),
            },
            tag::CREAT => OpEntry::Creat { path: p1(b) },
            tag::MKDIR => OpEntry::Mkdir { path: p1(b) },
            tag::UNLINK => OpEntry::Unlink { path: p1(b) },
            tag::RMDIR => OpEntry::Rmdir { path: p1(b) },
            tag::LINK => OpEntry::Link { old: p1(b), new: p2(b) },
            tag::RENAME => OpEntry::Rename { old: p1(b), new: p2(b) },
            tag::TRUNCATE => OpEntry::Truncate { path: p1(b), size: u(16..24) },
            tag::FALLOC => OpEntry::Falloc {
                path: p1(b),
                mode: mode_from(b[3]),
                off: u(16..24),
                len: u(24..32),
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entry_types_roundtrip() {
        let entries = vec![
            OpEntry::Data {
                fd_tag: 7,
                concurrent: true,
                path: "/a/b".into(),
                file_off: 4096,
                len: 512,
                staging_off: 1024,
            },
            OpEntry::Creat { path: "/f".into() },
            OpEntry::Mkdir { path: "/d".into() },
            OpEntry::Unlink { path: "/f".into() },
            OpEntry::Rmdir { path: "/d".into() },
            OpEntry::Link { old: "/f".into(), new: "/g".into() },
            OpEntry::Rename { old: "/x".into(), new: "/y".into() },
            OpEntry::Truncate { path: "/f".into(), size: 1234 },
            OpEntry::Falloc {
                path: "/f".into(),
                mode: FallocMode::PunchHole,
                off: 8,
                len: 16,
            },
        ];
        for e in entries {
            let enc = e.encode().unwrap();
            assert_eq!(OpEntry::decode(&enc), Some(e));
        }
        assert_eq!(OpEntry::decode(&[0u8; 128]), None);
    }

    #[test]
    fn overlong_paths_rejected() {
        let long = format!("/{}", "x".repeat(PATH_MAX));
        assert!(OpEntry::Creat { path: long }.encode().is_err());
    }
}
