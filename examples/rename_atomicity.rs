//! The paper's Figure 2 walkthrough: how Chipmunk catches NOVA's rename
//! atomicity bug (bug 4).
//!
//! ```sh
//! cargo run --release --example rename_atomicity
//! ```
//!
//! NOVA's buggy rename invalidates the old directory entry *in place*
//! before the journaled transaction creating the new entry commits. A crash
//! between the two leaves the file under neither name. This example shows
//! each stage of the pipeline: the logged PM operations, the crash-state
//! search, and the resulting bug report.

use chipmunk::{test_workload, TestConfig};
use novafs::NovaKind;
use pmem::PmDevice;
use pmlog::{LogEntry, LogHandle, LoggingPm, Marker};
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet, Op, Workload,
};

fn main() {
    let bugs = BugSet::only(&[BugId::B04]);
    let kind = NovaKind { opts: FsOptions::with_bugs(bugs), fortis: false };

    // ── Step 1: run the workload and log the writes the file system makes.
    println!("── 1. record: rename(old, new) on NOVA ──────────────────────");
    let log = LogHandle::new();
    let mut fs = kind
        .mkfs(LoggingPm::new(PmDevice::new(4 << 20), log.clone()))
        .expect("mkfs");
    fs.creat("/old").expect("creat");
    log.marker(Marker::SyscallBegin(pmlog::OpRecord { seq: 0, desc: "rename".into() }));
    fs.rename("/old", "/new").expect("rename");
    log.marker(Marker::SyscallEnd { seq: 0, ok: true });
    drop(fs);

    let snapshot = log.snapshot();
    let mut in_rename = false;
    let mut shown = 0;
    for e in snapshot.entries() {
        match e {
            LogEntry::Marker(Marker::SyscallBegin(_)) => {
                in_rename = true;
                println!("   [rename begins]");
            }
            LogEntry::Marker(Marker::SyscallEnd { .. }) => {
                println!("   [rename returns]");
                in_rename = false;
            }
            LogEntry::Fence if in_rename => println!("   fence ── crash point"),
            LogEntry::Flush { off, data } if in_rename => {
                shown += 1;
                println!("   write: flush  {:>6} bytes @ {off:#08x}", data.len());
            }
            LogEntry::Nt { off, data } if in_rename => {
                shown += 1;
                println!("   write: ntstor {:>6} bytes @ {off:#08x}", data.len());
            }
            _ => {}
        }
    }
    println!("   ({shown} logged writes inside the rename)");

    // ── Steps 2-4: construct crash states, check them, report.
    println!("\n── 2-3. replay subsets of in-flight writes and check ────────");
    let w = Workload::new(
        "fig2",
        vec![
            Op::Creat { path: "/old".into() },
            Op::Rename { old: "/old".into(), new: "/new".into() },
        ],
    );
    let outcome = test_workload(&kind, &w, &TestConfig::default());
    println!("   crash states checked: {}", outcome.crash_states);

    println!("\n── 4. bug report ─────────────────────────────────────────────");
    match outcome.reports.iter().find(|r| r.violation.class() == "atomicity") {
        Some(r) => println!("{}", r.to_text()),
        None => println!("unexpected: no atomicity violation found"),
    }

    // And the counter-experiment: the fixed rename survives the same search.
    let fixed = NovaKind { opts: FsOptions::fixed(), fortis: false };
    let clean = test_workload(&fixed, &w, &TestConfig::default());
    println!(
        "fixed NOVA on the same workload: {} crash states, {} violations",
        clean.crash_states,
        clean.reports.len()
    );
}
