//! Soundness and monotonicity of the delta-debugging shrinker
//! (`chipmunk::shrink`), across random fuzzer workloads on the injected-bug
//! corpus:
//!
//! * **sound** — the shrunk pair still triggers a violation of the same
//!   class (and stage), and shrinking is deterministic: thread counts 1 and
//!   4 produce bit-identical shrunk workloads, reports, and work counters;
//! * **monotone** — the shrunk ops are a subsequence of the original ops,
//!   and the shrunk crash subset is a subset of the one the minimized
//!   workload's first matching report carries.

use bench::{dispatch, WithKind};
use chipmunk::{shrink, shrink::matches_class, test_workload, TestConfig};
use proptest::prelude::*;
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet,
};
use workloads::fuzz::{FuzzConfig, Fuzzer};

/// Is `small` a subsequence of `big`?
fn subsequence<T: PartialEq>(small: &[T], big: &[T]) -> bool {
    let mut it = big.iter();
    small.iter().all(|x| it.any(|y| y == x))
}

struct ShrinkCase {
    seed: u64,
    budget: usize,
}

impl WithKind for ShrinkCase {
    /// `Some(original op count)` when a find was shrunk, `None` otherwise.
    type Out = Option<usize>;

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        // Large-first subsets so the find carries a non-minimal crash
        // subset whenever the bug admits one — real work for pass 2.
        let cfg = TestConfig { large_first_subsets: true, ..TestConfig::fuzzing() };
        let mut fuzzer = Fuzzer::new(self.seed, FuzzConfig::default());
        for _ in 0..self.budget {
            let w = fuzzer.next_workload();
            let out = test_workload(&kind, &w, &cfg);
            let Some(r) = out.reports.first() else { continue };

            let s = shrink(&kind, &w, r, &cfg).expect("finding must shrink");
            // Sound: same violation class and stage.
            assert_eq!(s.report.violation.class(), r.violation.class(), "{}", w.name);
            assert_eq!(s.report.violation.stage(), r.violation.stage(), "{}", w.name);
            // Monotone in the ops: a subsequence, never longer.
            assert!(subsequence(&s.workload.ops, &w.ops), "{}", w.name);
            assert_eq!(s.stats.ops_before, w.ops.len());
            assert_eq!(s.stats.ops_after, s.workload.ops.len());
            assert!(s.stats.ops_after <= s.stats.ops_before);
            assert!(s.stats.subset_after <= s.stats.subset_before);

            // Monotone in the subset: re-check the minimized workload; its
            // first report of the preserved class is the state pass 2
            // started from, so the shrunk subset must be contained in it.
            let confirm = test_workload(&kind, &s.workload, &cfg);
            let base = confirm
                .reports
                .iter()
                .find(|b| matches_class(r.violation.class(), r.violation.stage(), &b.violation))
                .expect("minimized workload still reproduces");
            assert_eq!(base.point, s.report.point, "{}", w.name);
            assert!(
                s.report.subset_ids.iter().all(|i| base.subset_ids.contains(i)),
                "{}: shrunk subset {:?} not within base {:?}",
                w.name,
                s.report.subset_ids,
                base.subset_ids
            );

            // Deterministic: shrinking under 4 worker threads is
            // bit-identical to the serial shrink.
            let s4 = shrink(&kind, &w, r, &cfg.clone().with_threads(4))
                .expect("parallel shrink succeeds");
            assert_eq!(s4.workload.ops, s.workload.ops, "{}", w.name);
            assert_eq!(s4.report, s.report, "{}", w.name);
            assert_eq!(s4.stats, s.stats, "{}", w.name);

            return Some(w.ops.len());
        }
        None
    }
}

fn run_case(bug: BugId, seed: u64, budget: usize) -> Option<usize> {
    let opts = FsOptions::with_bugs(BugSet::only(&[bug]));
    dispatch(bug.info().fs, opts, ShrinkCase { seed, budget })
}

/// Deterministic corpus sweep: every injected bug gets a short fuzzing
/// budget; every find must shrink soundly and monotonically, and enough of
/// the corpus must actually fall for the sweep to mean something.
#[test]
fn corpus_sweep_shrinks_soundly() {
    let mut found = 0;
    for (i, &bug) in BugId::ALL.iter().enumerate() {
        if run_case(bug, 0xdd + i as u64, 24).is_some() {
            found += 1;
        }
    }
    assert!(found >= 5, "only {found} of 25 bugs fell within budget");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (bug, seed) pairs: whatever the fuzzer finds, shrinking is
    /// sound, monotone, and thread-count-invariant (all asserted inside
    /// the case).
    #[test]
    fn random_finds_shrink_soundly(bug_idx in 0usize..25, seed in 1u64..1 << 48) {
        run_case(BugId::ALL[bug_idx], seed, 12);
    }
}

/// A guaranteed non-vacuous case: bug 4 falls to a handful of fuzz
/// workloads, so this pins at least one real shrink into every test run
/// independent of the sweep's budgets.
#[test]
fn bug4_always_yields_a_shrink() {
    let ops_before = run_case(BugId::B04, 0xf16 + 4, 48).expect("bug 4 must fall");
    assert!(ops_before >= 1);
}
