//! A fast non-cryptographic hash map for the simulator's hot page tables.
//!
//! Every device access in a crash-state check — each `read_u64` of an inode
//! field, each dentry load, each journal scan word — pays one page lookup in
//! a `HashMap<u64, Box<[u8]>>` ([`crate::CowDevice`]) or up to one per
//! overlay layer ([`crate::ForkDevice`]). With the standard library's
//! SipHash those lookups dominate mount/probe time across a sweep's tens of
//! thousands of crash states. Page numbers are small, attacker-free
//! integers, so a multiply-xor hash (the Firefox/rustc "FxHash" recipe) is
//! sufficient and several times faster.
//!
//! Determinism: the harness never iterates these maps in an order-sensitive
//! way (lookups, inserts, and wholesale clears only), so the hasher change
//! is observationally invisible — verdicts and reports are byte-identical.

use std::{
    collections::HashMap,
    hash::{BuildHasherDefault, Hasher},
};

/// The 64-bit FxHash multiplier (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A multiply-xor [`Hasher`] for small integer keys.
///
/// Not DoS-resistant — use only for internal maps keyed by trusted values
/// (page numbers, image keys), never for externally controlled input.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for internal integer-keyed maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_and_distinguishes_keys() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, (k * 3) as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&((k * 3) as u32)));
        }
        assert_eq!(m.get(&1000), None);
    }

    #[test]
    fn hasher_differs_on_adjacent_keys() {
        let h = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        // High bits move too (HashMap uses the top 7 for control bytes).
        assert_ne!(h(0) >> 57, h(1) >> 57);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let h = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_ne!(h(b"abcdefgh1"), h(b"abcdefgh2"));
        assert_ne!(h(b"a"), h(b"b"));
    }
}
