//! Mount-time recovery: scanning the persistent logs to rebuild all
//! volatile state.
//!
//! This is the code path Observation 3 of the paper is about: "rebuilding
//! volatile state during crash recovery is error-prone". The scan must
//! tolerate every partial state an (otherwise correct) crash can leave:
//! typed inodes whose log never became visible, orphaned inodes whose last
//! dentry was removed, logs whose tail points mid-page, and (in Fortis
//! mode) inodes whose primary and replica copies disagree.
//!
//! Injected bugs hosted here:
//! * **Bug 1** — a too-strict assertion: if the entry generation counter
//!   says a system call was in flight but neither an active journal
//!   transaction nor a log entry of that generation exists, recovery
//!   declares the image corrupt instead of recognizing a benign
//!   nothing-persisted-yet crash.
//! * **Bug 2 (manifestation)** — a live dentry referencing an uninitialized
//!   inode produces a *poisoned* inode: visible in the namespace, but
//!   unreadable and undeletable.
//! * **Bug 10 (manifestation)** — with the bug present, the scan skips the
//!   tick-tock repair that would resynchronize a stale replica inode.
//! * **Bug 11** — the Fortis deallocation-record replay re-frees blocks the
//!   crashed truncate already freed.

use std::collections::{BTreeMap, BTreeSet};

use pmem::PmBackend;
use vfs::{covpoint, BugId, BugSet, BugTrace, Cov, FsError, FsResult};

use crate::{
    layout::{
        inode_csum, ioff, itype, sboff, Geometry, LogRecord, BLOCK, ENTRY_SIZE, INODE_SIZE,
        PAGE_HDR,
    },
    state::{Allocator, InodeState, Volatile},
};

/// Poisoned-inode marker type (dentry references an uninitialized inode, or
/// both Fortis copies failed their checksums).
pub const POISONED: u64 = 99;

/// Context shared by the rebuild passes.
pub struct RebuildCtx<'a> {
    /// Device geometry.
    pub geo: &'a Geometry,
    /// Enabled bugs.
    pub bugs: BugSet,
    /// Fortis mode.
    pub fortis: bool,
    /// Coverage sink.
    pub cov: &'a Cov,
    /// Ground-truth bug trace.
    pub trace: &'a BugTrace,
    /// Whether journal recovery rolled back an active transaction.
    pub had_active_txn: bool,
}

/// Scans the device and rebuilds the volatile state.
pub fn rebuild<D: PmBackend>(dev: &mut D, ctx: &RebuildCtx<'_>) -> FsResult<Volatile> {
    let geo = ctx.geo;
    let mut vol = Volatile { next_fd: 3, ..Default::default() };
    let mut used: BTreeSet<u64> = BTreeSet::new();
    let gen_a = dev.read_u64(sboff::GEN_A);
    let gen_b = dev.read_u64(sboff::GEN_B);
    vol.gen = gen_a.max(gen_b);
    let mut found_gen_a = false;

    // Fortis: validate inode checksums first (tick-tock), possibly
    // restoring from the replica or repairing it.
    if ctx.fortis {
        fortis_validate_inodes(dev, ctx)?;
    }

    // Pass 1: scan every inode and its log.
    for ino in 1..=geo.inode_count {
        let base = geo.inode_off(ino);
        let ftype = dev.read_u64(base + ioff::FTYPE);
        if ftype == itype::FREE {
            continue;
        }
        if ftype == POISONED {
            vol.inodes.insert(ino, InodeState { ftype: POISONED, ..Default::default() });
            continue;
        }
        if ftype != itype::FILE && ftype != itype::DIR {
            covpoint!(ctx.cov, 1);
            return Err(FsError::Unmountable(format!(
                "inode {ino} has invalid type tag {ftype}"
            )));
        }
        let log_head = dev.read_u64(base + ioff::LOG_HEAD);
        let log_tail = dev.read_u64(base + ioff::LOG_TAIL);
        if log_head == 0 {
            // The inode was typed but its log never became visible: the
            // creating call's dentry cannot have committed either (the tail
            // advance is ordered after the inode init), so the allocation
            // simply never happened. Treat the slot as free.
            covpoint!(ctx.cov, 2);
            continue;
        }
        let mut st = InodeState {
            ftype,
            nlink: dev.read_u64(base + ioff::NLINK),
            log_head,
            log_tail,
            ..Default::default()
        };
        scan_log(dev, ctx, ino, &mut st, &mut used, &mut found_gen_a, gen_a)?;
        vol.inodes.insert(ino, st);
    }

    // Bug 1: the strict recovery assertion. A crash between the entry and
    // exit generation bumps is normal (the op simply did not complete), but
    // the buggy check insists that such a crash must have left either an
    // active journal transaction or a visible log entry of that generation.
    if ctx.bugs.has(BugId::B01) && gen_a != gen_b && !ctx.had_active_txn && !found_gen_a {
        ctx.trace.hit(BugId::B01);
        covpoint!(ctx.cov, 3);
        return Err(FsError::Unmountable(format!(
            "generation counters disagree (entry {gen_a}, exit {gen_b}) with no trace of the \
             in-flight operation"
        )));
    }

    // Pass 2: resolve the namespace — ghost children (bug 2) and link
    // counts; collect orphans.
    let mut referenced: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ghost: Vec<u64> = Vec::new();
    for st in vol.inodes.values() {
        if st.ftype != itype::DIR {
            continue;
        }
        for &child in st.children.values() {
            *referenced.entry(child).or_insert(0) += 1;
            let missing = match vol.inodes.get(&child) {
                None => true,
                Some(c) => c.ftype == POISONED,
            };
            if missing {
                covpoint!(ctx.cov, 4);
                ghost.push(child);
            }
        }
    }
    for g in ghost {
        vol.inodes.insert(g, InodeState { ftype: POISONED, ..Default::default() });
    }

    // Orphans: files with no referencing dentry and link count zero were
    // mid-deletion; reclaim them.
    let orphans: Vec<u64> = vol
        .inodes
        .iter()
        .filter(|(ino, st)| {
            st.ftype == itype::FILE && st.nlink == 0 && !referenced.contains_key(ino)
        })
        .map(|(&ino, _)| ino)
        .collect();
    for ino in orphans {
        covpoint!(ctx.cov, 5);
        let st = vol.inodes.remove(&ino).expect("orphan exists");
        release_scanned(dev, geo, ino, &st, &mut used);
    }

    // Directory link counts are derived (2 + subdirectories).
    let subdir_counts: BTreeMap<u64, u64> = vol
        .inodes
        .iter()
        .filter(|(_, st)| st.ftype == itype::DIR)
        .map(|(&ino, st)| {
            let n = st
                .children
                .values()
                .filter(|c| vol.inodes.get(c).is_some_and(|cs| cs.ftype == itype::DIR))
                .count() as u64;
            (ino, n)
        })
        .collect();
    for (ino, n) in subdir_counts {
        if let Some(st) = vol.inodes.get_mut(&ino) {
            st.nlink = 2 + n;
        }
    }

    // Block accounting from the final maps (the scan only tracked log
    // pages).
    for (ino, st) in vol.inodes.iter() {
        for &b in st.blocks.values() {
            if !used.insert(b) {
                covpoint!(ctx.cov, 14);
                return Err(FsError::Unmountable(format!(
                    "block {b} mapped by inode {ino} is already claimed"
                )));
            }
        }
    }

    // Fortis: replay the deallocation record (bug 11).
    if ctx.fortis {
        replay_dealloc_record(dev, ctx, &mut vol, &mut used)?;
    }

    vol.alloc = Allocator::new(geo.data_start, geo.total_blocks, &used);
    Ok(vol)
}

/// Walks one inode's log, applying records to its volatile state.
fn scan_log<D: PmBackend>(
    dev: &D,
    ctx: &RebuildCtx<'_>,
    ino: u64,
    st: &mut InodeState,
    used: &mut BTreeSet<u64>,
    found_gen_a: &mut bool,
    gen_a: u64,
) -> FsResult<()> {
    let geo = ctx.geo;
    let mut page = st.log_head;
    let mut pos = page * BLOCK + PAGE_HDR;
    loop {
        used.insert(page);
        if pos == st.log_tail {
            break;
        }
        // Page exhausted: follow the next-page pointer.
        if pos + ENTRY_SIZE > (page + 1) * BLOCK {
            let next = dev.read_u64(page * BLOCK);
            if next == 0 || next >= geo.total_blocks {
                covpoint!(ctx.cov, 6);
                return Err(FsError::Unmountable(format!(
                    "inode {ino}: log tail {:#x} unreachable (broken page chain at block \
                     {page})",
                    st.log_tail
                )));
            }
            page = next;
            pos = page * BLOCK + PAGE_HDR;
            continue;
        }
        let raw = dev.read_vec(pos, ENTRY_SIZE);
        let Some(rec) = LogRecord::decode(&raw) else {
            covpoint!(ctx.cov, 7);
            return Err(FsError::Unmountable(format!(
                "inode {ino}: unparseable log entry at {pos:#x} before tail"
            )));
        };
        if rec.gen() == gen_a {
            *found_gen_a = true;
        }
        apply_record(ino, st, &rec, pos);
        pos += ENTRY_SIZE;
    }
    Ok(())
}

/// Applies one log record to the inode's volatile state.
///
/// Block-usage accounting deliberately happens *after* the whole scan, from
/// the final block maps: a block can be freed by one inode and recycled by
/// another within the same history, so incremental used-set updates would
/// depend on inode scan order.
pub fn apply_record(_ino: u64, st: &mut InodeState, rec: &LogRecord, pos: u64) {
    match rec {
        LogRecord::Dentry { valid, ino: child, name, .. } => {
            if *valid {
                st.children.insert(name.clone(), *child);
                st.dentry_pos.insert(name.clone(), pos);
            } else {
                st.children.remove(name);
                st.dentry_pos.remove(name);
            }
        }
        LogRecord::FileWrite { off, nblocks, block, size_after, csum, .. } => {
            let start_idx = off / BLOCK;
            for i in 0..*nblocks {
                if *block == 0 {
                    st.blocks.remove(&(start_idx + i));
                } else {
                    st.blocks.insert(start_idx + i, block + i);
                }
            }
            if *block != 0 && *nblocks == 1 {
                st.run_csums.insert(start_idx, (1, *csum));
            }
            st.size = *size_after;
        }
        LogRecord::SetAttr { size, .. } => {
            if *size < st.size {
                let keep = size.div_ceil(BLOCK);
                let drop: Vec<u64> = st.blocks.range(keep..).map(|(&k, _)| k).collect();
                for k in drop {
                    st.blocks.remove(&k);
                    st.run_csums.remove(&k);
                }
            }
            st.size = *size;
        }
    }
}

/// Returns an orphan's blocks and log pages to the free pool (marks them
/// unused so the allocator reclaims them) and frees the inode slot.
fn release_scanned<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    ino: u64,
    st: &InodeState,
    used: &mut BTreeSet<u64>,
) {
    let mut page = st.log_head;
    while page != 0 && page < geo.total_blocks {
        used.remove(&page);
        page = dev.read_u64(page * BLOCK);
    }
    dev.store_u64(geo.inode_off(ino) + ioff::FTYPE, itype::FREE);
    dev.flush(geo.inode_off(ino), 8);
    dev.fence();
}

/// Fortis tick-tock validation: check every live inode's primary checksum;
/// fall back to the replica when the primary is damaged; poison the inode
/// when both copies are bad. Without bug 10, a stale replica is repaired
/// from a healthy primary.
fn fortis_validate_inodes<D: PmBackend>(dev: &mut D, ctx: &RebuildCtx<'_>) -> FsResult<()> {
    let geo = ctx.geo;
    for ino in 1..=geo.inode_count {
        let p = geo.inode_off(ino);
        let r = geo.replica_off(ino);
        let pbytes = dev.read_vec(p, 32);
        let rbytes = dev.read_vec(r, 32);
        let pty = u64::from_le_bytes(pbytes[0..8].try_into().expect("fixed slice"));
        let rty = u64::from_le_bytes(rbytes[0..8].try_into().expect("fixed slice"));
        if pty == itype::FREE && rty == itype::FREE {
            continue;
        }
        let p_ok = dev.read_u64(p + ioff::CSUM) == inode_csum(&pbytes);
        let r_ok = dev.read_u64(r + ioff::CSUM) == inode_csum(&rbytes);
        match (p_ok, r_ok) {
            (true, true) => {
                if pbytes != rbytes {
                    covpoint!(ctx.cov, 8);
                    if ctx.bugs.has(BugId::B10) {
                        // BUG 10 (logic): the scan omits the tick-tock
                        // repair; the divergence persists and the strict
                        // delete-path comparison will later fail.
                        ctx.trace.hit(BugId::B10);
                    } else {
                        // Repair: the primary (updated transactionally) is
                        // authoritative.
                        dev.store(r, &pbytes);
                        dev.store_u64(r + ioff::CSUM, inode_csum(&pbytes));
                        dev.flush(r, INODE_SIZE);
                        dev.fence();
                    }
                }
            }
            (true, false) => {
                covpoint!(ctx.cov, 9);
                dev.store(r, &pbytes);
                dev.store_u64(r + ioff::CSUM, inode_csum(&pbytes));
                dev.flush(r, INODE_SIZE);
                dev.fence();
            }
            (false, true) => {
                // Restore the primary from the replica (the pre-crash
                // state).
                covpoint!(ctx.cov, 10);
                dev.store(p, &rbytes);
                dev.store_u64(p + ioff::CSUM, inode_csum(&rbytes));
                dev.flush(p, INODE_SIZE);
                dev.fence();
            }
            (false, false) => {
                // Both copies damaged: media loss. Poison the inode — the
                // manifestation of bug 9's missing checksum flushes.
                covpoint!(ctx.cov, 11);
                dev.store_u64(p + ioff::FTYPE, POISONED);
                dev.flush(p, 8);
                dev.fence();
            }
        }
    }
    Ok(())
}

/// Fortis deallocation-record replay (bug 11): re-frees the blocks a
/// crashed truncate recorded. With the bug, blocks the truncate already
/// freed (the set-attribute entry became durable, so the scan never marked
/// them used) are freed again; the double-free detection aborts the mount.
fn replay_dealloc_record<D: PmBackend>(
    dev: &mut D,
    ctx: &RebuildCtx<'_>,
    _vol: &mut Volatile,
    used: &mut BTreeSet<u64>,
) -> FsResult<()> {
    let rec = ctx.geo.journal * BLOCK + crate::layout::dealloc::OFF;
    let ino = dev.read_u64(rec);
    if ino == 0 {
        return Ok(());
    }
    covpoint!(ctx.cov, 12);
    let count = dev.read_u64(rec + 8).min(crate::layout::dealloc::CAP as u64);
    for i in 0..count {
        let blk = dev.read_u64(rec + 16 + i * 8);
        if ctx.bugs.has(BugId::B11) {
            // BUG 11 (logic): replay unconditionally frees every recorded
            // block. If the truncate's set-attribute entry became durable,
            // the scan above never marked these blocks used — this "free"
            // is a double free.
            ctx.trace.hit(BugId::B11);
            if blk < ctx.geo.data_start || blk >= ctx.geo.total_blocks || !used.remove(&blk) {
                return Err(FsError::Unmountable(format!(
                    "deallocation replay attempts to free block {blk}, which is already free"
                )));
            }
        } else {
            // Fixed: replay is idempotent — a block still referenced by a
            // scanned mapping stays allocated; anything else is already
            // free. Either way there is nothing to do but clear the record.
            covpoint!(ctx.cov, 13);
        }
    }
    dev.persist_u64(rec, 0);
    Ok(())
}
