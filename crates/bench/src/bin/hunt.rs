//! Hunts one injected bug (by Table 1 number) with both frontends, printing
//! time-to-find, work counters, and dedup hit counts. The measurement tool
//! behind the "Parallel scaling" section of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p bench --bin hunt -- <bug#> [threads] [fuzz_budget] [seed] [nodedup] [--json <path>]
//! ```
//!
//! With `--json <path>`, a machine-readable summary — per-phase wall times,
//! dedup/memo/prefix hit counters, and states/sec — is also written to
//! `path` (see `BENCH_hunt.json` for a committed baseline).

use bench::{fmt_dur, hunt_json, hunt_with_ace, hunt_with_fuzzer, jsonout::Json, take_json_flag};
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_flag(&mut raw);
    let mut args = raw.into_iter();
    let number: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xf16 + number as u64);
    let dedup = args.next().as_deref() != Some("nodedup");

    let info = bug_table()
        .iter()
        .find(|b| b.id.number() == number)
        .unwrap_or_else(|| panic!("no bug #{number} in the Table 1 corpus"));
    let ace_cfg = TestConfig { stop_on_first: true, dedup, ..TestConfig::default() }
        .with_threads(threads);
    let fuzz_cfg = TestConfig { dedup, ..TestConfig::fuzzing() }.with_threads(threads);

    println!("bug {number} on {} (threads = {threads}, dedup = {dedup})", info.fs);
    let ace = if info.ace_findable {
        let (hit, w, s) = hunt_with_ace(info.id, &ace_cfg, 400);
        match &hit {
            Some(h) => println!(
                "  ACE : found in {:>8} | {w} workloads, {s} states, {} dedup, {} memo, {} prefix hits, {} subtrees (depth {}), per-worker {:?} | {}",
                fmt_dur(h.elapsed),
                h.dedup_hits,
                h.memo_hits,
                h.prefix_hits,
                h.sched_subtrees,
                h.sched_subtree_max_depth,
                h.per_worker_prefix_hits,
                h.class
            ),
            None => println!("  ACE : not found | {w} workloads, {s} states"),
        }
        Some((hit, w, s))
    } else {
        println!("  ACE : not findable (fuzzer-only bug)");
        None
    };
    let (fuzz_hit, fuzz_w, fuzz_s) = hunt_with_fuzzer(info.id, &fuzz_cfg, seed, budget);
    match &fuzz_hit {
        Some(h) => println!(
            "  fuzz: found in {:>8} | {fuzz_w} workloads, {fuzz_s} states, {} dedup hits | {}",
            fmt_dur(h.elapsed),
            h.dedup_hits,
            h.class
        ),
        None => {
            println!("  fuzz: not found within {budget} | {fuzz_w} workloads, {fuzz_s} states");
        }
    }

    if let Some(path) = json_path {
        let doc = Json::Obj(vec![
            ("bug", Json::U(number as u64)),
            ("fs", Json::S(info.fs.to_string())),
            ("threads", Json::U(threads as u64)),
            ("dedup", Json::B(dedup)),
            ("fuzz_budget", Json::U(budget)),
            (
                "ace",
                match &ace {
                    Some((hit, w, s)) => hunt_json(hit.as_ref(), *w, *s),
                    None => Json::Null,
                },
            ),
            ("fuzz", hunt_json(fuzz_hit.as_ref(), fuzz_w, fuzz_s)),
        ]);
        bench::jsonout::write_atomic(&path, &doc.render()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
