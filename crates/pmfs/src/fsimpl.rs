//! The PMFS file-system implementation: in-place updates under an undo
//! journal, with a truncate list and a scan-rebuilt volatile free list.

use std::collections::{BTreeSet, HashMap};

use pmem::{backend::CACHE_LINE, PmBackend};
use vfs::{
    covpoint,
    fs::{FileSystem, FsOptions},
    path::{components, is_path_prefix, split_parent},
    BugId, BugSet, BugTrace, Cov, DirEntry, FallocMode, Fd, FileType, FsError, FsResult,
    Metadata, OpenFlags,
};

use crate::{
    journal,
    layout::{
        ioff, itype, sboff, tlist, Geometry, RawDentry, BLOCK, DENTRY_NAME_MAX, DENTRY_SIZE,
        MAGIC, MAX_FILE_BLOCKS, NDIRECT, PTRS_PER_BLOCK, ROOT_INO,
    },
};

/// A planned set of journaled word updates: collected *before* the
/// transaction begins (the undo journal must record old values first),
/// applied in place after.
#[derive(Default)]
struct UpdatePlan {
    /// Byte ranges to journal.
    ranges: Vec<(u64, u64)>,
    /// Word stores to apply inside the transaction.
    sets: Vec<(u64, u64)>,
}

impl UpdatePlan {
    fn word(&mut self, addr: u64, val: u64) {
        self.ranges.push((addr, 8));
        self.sets.push((addr, val));
    }

    /// A store into a freshly allocated (unreachable) block: applied in the
    /// transaction but not journaled.
    fn word_fresh(&mut self, addr: u64, val: u64) {
        self.sets.push((addr, val));
    }
}

/// The PMFS file system.
#[derive(Clone)]
pub struct Pmfs<D> {
    dev: D,
    geo: Geometry,
    free: BTreeSet<u64>,
    fds: HashMap<u64, (u64, u64, bool)>,
    next_fd: u64,
    bugs: BugSet,
    cov: Cov,
    trace: BugTrace,
    extra_bugs: bool,
}

impl<D: PmBackend> Pmfs<D> {
    /// Formats `dev` and mounts the fresh file system.
    pub fn mkfs(mut dev: D, opts: &FsOptions) -> FsResult<Self> {
        let geo = Geometry::for_device(dev.len())?;
        let mut sb = vec![0u8; 64];
        let mut put = |o: u64, v: u64| sb[o as usize..o as usize + 8]
            .copy_from_slice(&v.to_le_bytes());
        put(sboff::MAGIC, MAGIC);
        put(sboff::TOTAL_BLOCKS, geo.total_blocks);
        put(sboff::INODE_COUNT, geo.inode_count);
        put(sboff::JOURNAL, geo.journal);
        put(sboff::TLIST, geo.tlist);
        put(sboff::ITABLE, geo.itable);
        put(sboff::DATA_START, geo.data_start);
        dev.memcpy_nt(0, &sb);
        dev.memset_nt(geo.journal * BLOCK, 0, BLOCK);
        dev.memset_nt(geo.tlist * BLOCK, 0, BLOCK);
        dev.memset_nt(geo.itable * BLOCK, 0, (geo.data_start - geo.itable) * BLOCK);
        let root = geo.inode_off(ROOT_INO);
        let mut ri = [0u8; 16];
        ri[0..8].copy_from_slice(&itype::DIR.to_le_bytes());
        ri[8..16].copy_from_slice(&2u64.to_le_bytes());
        dev.memcpy_nt(root, &ri);
        dev.fence();
        let free = (geo.data_start..geo.total_blocks).collect();
        Ok(Pmfs {
            dev,
            geo,
            free,
            fds: HashMap::new(),
            next_fd: 3,
            bugs: opts.bugs,
            cov: opts.cov.clone(),
            trace: opts.trace.clone(),
            extra_bugs: opts.extra_bugs,
        })
    }

    /// Mounts `dev`: journal recovery, truncate-list replay, orphan
    /// reclamation, free-list rebuild.
    pub fn mount(mut dev: D, opts: &FsOptions) -> FsResult<Self> {
        if dev.read_u64(sboff::MAGIC) != MAGIC {
            return Err(FsError::Unmountable("bad superblock magic".into()));
        }
        let geo = Geometry {
            total_blocks: dev.read_u64(sboff::TOTAL_BLOCKS),
            inode_count: dev.read_u64(sboff::INODE_COUNT),
            journal: dev.read_u64(sboff::JOURNAL),
            tlist: dev.read_u64(sboff::TLIST),
            itable: dev.read_u64(sboff::ITABLE),
            data_start: dev.read_u64(sboff::DATA_START),
        };
        if geo.total_blocks * BLOCK > dev.len() || geo.data_start >= geo.total_blocks {
            return Err(FsError::Unmountable("superblock geometry out of range".into()));
        }
        let cov = opts.cov.clone();
        let trace = opts.trace.clone();
        journal::recover(&mut dev, &geo, opts.bugs, &cov, &trace)?;

        let mut fs = Pmfs {
            dev,
            geo,
            free: BTreeSet::new(),
            fds: HashMap::new(),
            next_fd: 3,
            bugs: opts.bugs,
            cov,
            trace: trace.clone(),
            extra_bugs: opts.extra_bugs,
        };

        // Truncate-list replay. Bug 13: the original code replayed the list
        // before the volatile free list was rebuilt and dereferenced it.
        let trec = fs.geo.tlist * BLOCK;
        let tino = fs.dev.read_u64(trec + tlist::INO);
        if tino != 0 {
            covpoint!(fs.cov, 1);
            if fs.bugs.has(BugId::B13) {
                fs.trace.hit(BugId::B13);
                return Err(FsError::Unmountable(
                    "truncate-list replay dereferenced the volatile free list before the \
                     rebuild scan created it"
                    .into(),
                ));
            }
            let tsize = fs.dev.read_u64(trec + tlist::SIZE);
            let tflags = fs.dev.read_u64(trec + tlist::FLAGS);
            if tino <= fs.geo.inode_count
                && fs.dev.read_u64(fs.geo.inode_off(tino) + ioff::FTYPE) != itype::FREE
            {
                fs.replay_truncate(tino, tsize, tflags & tlist::F_FREE_INODE != 0)?;
            }
            fs.dev.persist_u64(trec + tlist::INO, 0);
        }

        // Namespace scan: referenced inodes + dangling-dentry check.
        let mut referenced: BTreeSet<u64> = BTreeSet::new();
        for ino in 1..=fs.geo.inode_count {
            if fs.dev.read_u64(fs.geo.inode_off(ino) + ioff::FTYPE) != itype::DIR {
                continue;
            }
            for slot in 0..fs.dir_slots(ino) {
                if let Some(d) = fs.dentry_at(ino, slot) {
                    let t = if d.ino >= 1 && d.ino <= fs.geo.inode_count {
                        fs.dev.read_u64(fs.geo.inode_off(d.ino) + ioff::FTYPE)
                    } else {
                        itype::FREE
                    };
                    if t != itype::FILE && t != itype::DIR {
                        covpoint!(fs.cov, 4);
                        return Err(FsError::Unmountable(format!(
                            "directory {ino} entry '{}' references dead inode {}",
                            d.name, d.ino
                        )));
                    }
                    referenced.insert(d.ino);
                }
            }
        }

        // Inode scan: reclaim orphans, account used blocks.
        let mut used: BTreeSet<u64> = BTreeSet::new();
        for ino in 1..=fs.geo.inode_count {
            let base = fs.geo.inode_off(ino);
            let ftype = fs.dev.read_u64(base + ioff::FTYPE);
            if ftype == itype::FREE {
                continue;
            }
            if ftype != itype::FILE && ftype != itype::DIR {
                covpoint!(fs.cov, 2);
                return Err(FsError::Unmountable(format!(
                    "inode {ino} has invalid type tag {ftype}"
                )));
            }
            let orphan = (ftype == itype::FILE && fs.dev.read_u64(base + ioff::NLINK) == 0)
                || (ino != ROOT_INO && !referenced.contains(&ino));
            if orphan {
                covpoint!(fs.cov, 3);
                fs.clear_inode_raw(ino);
                continue;
            }
            for (_, b) in fs.mapped_from(ino, 0) {
                if b >= fs.geo.total_blocks {
                    return Err(FsError::Unmountable(format!(
                        "inode {ino} maps out-of-range block {b}"
                    )));
                }
                used.insert(b);
            }
            let ind = fs.dev.read_u64(base + ioff::INDIRECT);
            if ind != 0 {
                used.insert(ind);
            }
        }
        fs.free = (fs.geo.data_start..fs.geo.total_blocks).filter(|b| !used.contains(b)).collect();
        Ok(fs)
    }

    /// Returns the underlying device.
    pub fn into_device(self) -> D {
        self.dev
    }

    // ---- raw helpers ----

    fn iget(&self, ino: u64, field: u64) -> u64 {
        self.dev.read_u64(self.geo.inode_off(ino) + field)
    }

    fn iaddr(&self, ino: u64, field: u64) -> u64 {
        self.geo.inode_off(ino) + field
    }

    fn iset(&mut self, ino: u64, field: u64, v: u64) {
        let off = self.iaddr(ino, field);
        self.dev.store_u64(off, v);
        self.dev.flush(off, 8);
    }

    fn alloc_block(&mut self) -> FsResult<u64> {
        let b = *self.free.iter().next().ok_or(FsError::NoSpace)?;
        self.free.remove(&b);
        Ok(b)
    }

    fn free_block(&mut self, b: u64) -> FsResult<()> {
        if !self.free.insert(b) {
            return Err(FsError::Detected(format!(
                "attempt to deallocate already-free block {b}"
            )));
        }
        Ok(())
    }

    fn alloc_ino(&self) -> FsResult<u64> {
        (1..=self.geo.inode_count)
            .find(|&i| self.iget(i, ioff::FTYPE) == itype::FREE)
            .ok_or(FsError::NoSpace)
    }

    /// Collects the allocated `(file index, block)` pairs of `ino` from
    /// index `start` up, in index order. Equivalent to probing
    /// [`Pmfs::get_block`] per index, but reads the indirect pointer once
    /// and the indirect block with one bulk read — the per-slot re-reads
    /// dominated mount, stat, and release scans (512 redundant word reads
    /// per inode).
    fn mapped_from(&self, ino: u64, start: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for idx in start.min(NDIRECT as u64)..NDIRECT as u64 {
            let b = self.iget(ino, ioff::DIRECT + idx * 8);
            if b != 0 {
                out.push((idx, b));
            }
        }
        let ind = self.iget(ino, ioff::INDIRECT);
        if ind == 0 {
            return out;
        }
        let first = start.saturating_sub(NDIRECT as u64);
        if ind >= self.geo.total_blocks {
            // Corrupt indirect pointer: issue the exact per-slot reads the
            // unbatched path would have, so out-of-range faults (and their
            // payloads) are unchanged.
            for e in first..PTRS_PER_BLOCK {
                let b = self.dev.read_u64(ind * BLOCK + e * 8);
                if b != 0 {
                    out.push((NDIRECT as u64 + e, b));
                }
            }
            return out;
        }
        let raw = self.dev.read_vec(ind * BLOCK, BLOCK);
        for e in first..PTRS_PER_BLOCK {
            let b = u64::from_le_bytes(
                raw[(e * 8) as usize..(e * 8 + 8) as usize].try_into().expect("8-byte slot"),
            );
            if b != 0 {
                out.push((NDIRECT as u64 + e, b));
            }
        }
        out
    }

    fn get_block(&self, ino: u64, idx: u64) -> Option<u64> {
        if idx < NDIRECT as u64 {
            let b = self.iget(ino, ioff::DIRECT + idx * 8);
            (b != 0).then_some(b)
        } else if idx < MAX_FILE_BLOCKS {
            let ind = self.iget(ino, ioff::INDIRECT);
            if ind == 0 {
                return None;
            }
            let b = self.dev.read_u64(ind * BLOCK + (idx - NDIRECT as u64) * 8);
            (b != 0).then_some(b)
        } else {
            None
        }
    }

    /// Plans the pointer update mapping file block `idx` of `ino` to
    /// `blkno`, allocating a fresh (zeroed, fenced) indirect block when
    /// needed. `fresh_ind` threads an indirect block allocated earlier in
    /// the same plan.
    fn plan_map(
        &mut self,
        ino: u64,
        idx: u64,
        blkno: u64,
        plan: &mut UpdatePlan,
        fresh_ind: &mut Option<u64>,
    ) -> FsResult<()> {
        if idx < NDIRECT as u64 {
            plan.word(self.iaddr(ino, ioff::DIRECT + idx * 8), blkno);
            return Ok(());
        }
        if idx >= MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let slot = idx - NDIRECT as u64;
        let existing = self.iget(ino, ioff::INDIRECT);
        match (*fresh_ind, existing) {
            (Some(f), _) => plan.word_fresh(f * BLOCK + slot * 8, blkno),
            (None, 0) => {
                let f = self.alloc_block()?;
                self.dev.memset_nt(f * BLOCK, 0, BLOCK);
                self.dev.fence();
                *fresh_ind = Some(f);
                plan.word(self.iaddr(ino, ioff::INDIRECT), f);
                plan.word_fresh(f * BLOCK + slot * 8, blkno);
            }
            (None, ind) => plan.word(ind * BLOCK + slot * 8, blkno),
        }
        Ok(())
    }

    /// Runs a planned transaction: journal the old bytes, apply the word
    /// stores plus `extra` (dentry writes etc.), fence, commit.
    fn run_txn(
        &mut self,
        plan: UpdatePlan,
        extra: impl FnOnce(&mut Self),
    ) -> FsResult<()> {
        let txn = journal::txn_begin(&mut self.dev, &self.geo, &plan.ranges)?;
        for (addr, val) in &plan.sets {
            self.dev.store_u64(*addr, *val);
            self.dev.flush(*addr, 8);
        }
        extra(self);
        self.dev.fence();
        journal::txn_commit(&mut self.dev, &self.geo, txn);
        Ok(())
    }

    // ---- the PM data-copy helper (bug 17 lives here) ----

    /// Copies `data` to `addr`: non-temporal stores for the line-aligned
    /// body; the partial tail line goes through cached stores. With bug 17
    /// the tail's write-back is missing, so those bytes never become
    /// durable.
    fn pm_copy_data(&mut self, addr: u64, data: &[u8]) {
        let head = (data.len() as u64 / CACHE_LINE) * CACHE_LINE;
        if head > 0 {
            self.dev.memcpy_nt(addr, &data[..head as usize]);
        }
        if head < data.len() as u64 {
            self.dev.store(addr + head, &data[head as usize..]);
            if self.bugs.has(BugId::B17) {
                // BUG 17 (PM): missing clwb of the partial tail line.
                self.trace.hit(BugId::B17);
            } else {
                self.dev.flush(addr + head, data.len() as u64 - head);
            }
        }
    }

    // ---- directories ----

    fn dir_slots(&self, dir: u64) -> u64 {
        self.iget(dir, ioff::SIZE) / DENTRY_SIZE
    }

    fn dentry_at(&self, dir: u64, slot: u64) -> Option<RawDentry> {
        let (idx, off) = Geometry::slot_loc(slot);
        let blk = self.get_block(dir, idx)?;
        let raw = self.dev.read_vec(blk * BLOCK + off, DENTRY_SIZE);
        RawDentry::decode(&raw)
    }

    fn dentry_addr(&self, dir: u64, slot: u64) -> Option<u64> {
        let (idx, off) = Geometry::slot_loc(slot);
        self.get_block(dir, idx).map(|b| b * BLOCK + off)
    }

    fn dir_lookup(&self, dir: u64, name: &str) -> Option<(u64, u64)> {
        (0..self.dir_slots(dir))
            .find_map(|s| self.dentry_at(dir, s).filter(|d| d.name == name).map(|d| (s, d.ino)))
    }

    fn dir_live_count(&self, dir: u64) -> u64 {
        (0..self.dir_slots(dir)).filter(|&s| self.dentry_at(dir, s).is_some()).count() as u64
    }

    /// Plans insertion of a new dentry: returns its address (the slot is
    /// either a recycled free slot or a newly appended one; any new dir
    /// block or size growth is added to the plan).
    fn plan_dentry_insert(&mut self, dir: u64, plan: &mut UpdatePlan) -> FsResult<u64> {
        for slot in 0..self.dir_slots(dir) {
            if self.dentry_at(dir, slot).is_none() {
                if let Some(addr) = self.dentry_addr(dir, slot) {
                    return Ok(addr);
                }
            }
        }
        let slot = self.dir_slots(dir);
        let (idx, off) = Geometry::slot_loc(slot);
        if idx >= MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        plan.word(self.iaddr(dir, ioff::SIZE), (slot + 1) * DENTRY_SIZE);
        match self.get_block(dir, idx) {
            Some(b) => Ok(b * BLOCK + off),
            None => {
                let nb = self.alloc_block()?;
                self.dev.memset_nt(nb * BLOCK, 0, BLOCK);
                self.dev.fence();
                let mut fresh = None;
                self.plan_map(dir, idx, nb, plan, &mut fresh)?;
                Ok(nb * BLOCK + off)
            }
        }
    }

    fn write_dentry(&mut self, addr: u64, d: &RawDentry) {
        let enc = d.encode();
        self.dev.store(addr, &enc);
        self.dev.flush(addr, DENTRY_SIZE);
    }

    fn clear_dentry(&mut self, addr: u64) {
        self.dev.store(addr, &[0u8; DENTRY_SIZE as usize]);
        self.dev.flush(addr, DENTRY_SIZE);
    }

    // ---- path resolution ----

    fn resolve(&self, path: &str) -> FsResult<u64> {
        let mut cur = ROOT_INO;
        for c in components(path)? {
            if self.iget(cur, ioff::FTYPE) != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = self.dir_lookup(cur, c).ok_or(FsError::NotFound)?.1;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(u64, &'p str)> {
        let (parents, name) = split_parent(path)?;
        if name.len() > DENTRY_NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        let mut cur = ROOT_INO;
        for c in parents {
            if self.iget(cur, ioff::FTYPE) != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = self.dir_lookup(cur, c).ok_or(FsError::NotFound)?.1;
        }
        if self.iget(cur, ioff::FTYPE) != itype::DIR {
            return Err(FsError::NotDir);
        }
        Ok((cur, name))
    }

    // ---- truncation machinery ----

    /// Zeroes the (now invisible) boundary-block bytes beyond `size`.
    fn zero_tail_beyond(&mut self, ino: u64, size: u64) {
        if !size.is_multiple_of(BLOCK) {
            if let Some(b) = self.get_block(ino, size / BLOCK) {
                let in_blk = size % BLOCK;
                self.dev.memset_nt(b * BLOCK + in_blk, 0, BLOCK - in_blk);
                self.dev.fence();
            }
        }
    }

    /// Shrinks `ino` to `size` under one transaction, then zeroes the
    /// now-invisible tail.
    fn do_truncate_shrink(&mut self, ino: u64, size: u64) -> FsResult<()> {
        let keep = size.div_ceil(BLOCK);
        let ind = self.iget(ino, ioff::INDIRECT);
        let freed: Vec<u64> = self.mapped_from(ino, keep).into_iter().map(|(_, b)| b).collect();
        let mut plan = UpdatePlan::default();
        plan.word(self.iaddr(ino, ioff::SIZE), size);
        for idx in keep..NDIRECT as u64 {
            plan.word(self.iaddr(ino, ioff::DIRECT + idx * 8), 0);
        }
        // The indirect block is replaced wholesale by a trimmed copy (or
        // dropped), keeping the journal footprint constant.
        let mut free_old_ind = false;
        if ind != 0 {
            if keep > NDIRECT as u64 {
                let new_ind = self.alloc_block()?;
                let mut content = self.dev.read_vec(ind * BLOCK, BLOCK);
                for e in (keep - NDIRECT as u64)..(BLOCK / 8) {
                    content[(e * 8) as usize..(e * 8 + 8) as usize].fill(0);
                }
                self.dev.memcpy_nt(new_ind * BLOCK, &content);
                self.dev.fence();
                plan.word(self.iaddr(ino, ioff::INDIRECT), new_ind);
            } else {
                plan.word(self.iaddr(ino, ioff::INDIRECT), 0);
            }
            free_old_ind = true;
        }
        self.run_txn(plan, |_| {})?;
        for b in freed {
            self.free_block(b)?;
        }
        if free_old_ind {
            self.free_block(ind)?;
        }
        self.zero_tail_beyond(ino, size);
        Ok(())
    }

    /// Mount-time truncate-list replay (fixed path): completes the
    /// truncation with direct persistent updates — idempotent, so no
    /// journal is needed.
    fn replay_truncate(&mut self, ino: u64, size: u64, free_inode: bool) -> FsResult<()> {
        covpoint!(self.cov, 5);
        if free_inode {
            self.clear_inode_raw(ino);
            return Ok(());
        }
        let cur = self.iget(ino, ioff::SIZE);
        if cur > size {
            let keep = size.div_ceil(BLOCK);
            for idx in keep..NDIRECT as u64 {
                self.iset(ino, ioff::DIRECT + idx * 8, 0);
            }
            let ind = self.iget(ino, ioff::INDIRECT);
            if ind != 0 {
                if keep <= NDIRECT as u64 {
                    self.iset(ino, ioff::INDIRECT, 0);
                } else {
                    for e in (keep - NDIRECT as u64)..(BLOCK / 8) {
                        self.dev.store_u64(ind * BLOCK + e * 8, 0);
                    }
                    self.dev.flush(ind * BLOCK, BLOCK);
                }
            }
            self.iset(ino, ioff::SIZE, size);
            self.dev.fence();
            self.zero_tail_beyond(ino, size);
        }
        Ok(())
    }

    fn clear_inode_raw(&mut self, ino: u64) {
        let base = self.geo.inode_off(ino);
        self.dev.memset_nt(base, 0, crate::layout::INODE_SIZE);
        self.dev.fence();
    }

    /// Arms the truncate list, runs `f`, disarms (bug 13 fires if a crash
    /// happens while armed).
    fn with_trecord(
        &mut self,
        ino: u64,
        size: u64,
        free_inode: bool,
        f: impl FnOnce(&mut Self) -> FsResult<()>,
    ) -> FsResult<()> {
        covpoint!(self.cov);
        let trec = self.geo.tlist * BLOCK;
        self.dev.store_u64(trec + tlist::SIZE, size);
        self.dev
            .store_u64(trec + tlist::FLAGS, if free_inode { tlist::F_FREE_INODE } else { 0 });
        self.dev.flush(trec + 8, 16);
        self.dev.fence();
        self.dev.persist_u64(trec + tlist::INO, ino); // arm
        f(self)?;
        self.dev.persist_u64(trec + tlist::INO, 0); // disarm
        Ok(())
    }

    /// Releases an inode's blocks and slot through the truncate list
    /// (deferred deletion — PMFS routes unlink/rmdir/rename victims here).
    fn deferred_release(&mut self, ino: u64) -> FsResult<()> {
        self.with_trecord(ino, 0, true, |fs| {
            let freed: Vec<u64> =
                fs.mapped_from(ino, 0).into_iter().map(|(_, b)| b).collect();
            let ind = fs.iget(ino, ioff::INDIRECT);
            fs.clear_inode_raw(ino);
            for b in freed {
                fs.free_block(b)?;
            }
            if ind != 0 {
                fs.free_block(ind)?;
            }
            Ok(())
        })
    }

    fn open_count(&self, ino: u64) -> usize {
        self.fds.values().filter(|(i, _, _)| *i == ino).count()
    }

    // ---- data I/O ----

    fn write_inode_data(&mut self, ino: u64, off: u64, data: &[u8]) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let end = off + data.len() as u64;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let size = self.iget(ino, ioff::SIZE);
        let first = off / BLOCK;
        let last = (end - 1) / BLOCK;

        // Phase A: materialize new blocks (invisible until published).
        let mut plan = UpdatePlan::default();
        let mut fresh_ind = None;
        let mut new_idx: BTreeSet<u64> = BTreeSet::new();
        for idx in first..=last {
            if self.get_block(ino, idx).is_none() {
                let nb = self.alloc_block()?;
                self.dev.memset_nt(nb * BLOCK, 0, BLOCK);
                let blk_start = idx * BLOCK;
                let s = off.max(blk_start);
                let e = end.min(blk_start + BLOCK);
                self.pm_copy_data(
                    nb * BLOCK + (s - blk_start),
                    &data[(s - off) as usize..(e - off) as usize],
                );
                self.plan_map(ino, idx, nb, &mut plan, &mut fresh_ind)?;
                new_idx.insert(idx);
            }
        }
        if end > size {
            plan.word(self.iaddr(ino, ioff::SIZE), end);
        }
        if !plan.sets.is_empty() {
            self.dev.fence();
            self.run_txn(plan, |_| {})?;
        }

        // Phase B: in-place overwrites of already-mapped blocks.
        let mut wrote_in_place = false;
        for idx in first..=last {
            if new_idx.contains(&idx) {
                continue;
            }
            if let Some(b) = self.get_block(ino, idx) {
                let blk_start = idx * BLOCK;
                let s = off.max(blk_start);
                let e = end.min(blk_start + BLOCK);
                self.pm_copy_data(
                    b * BLOCK + (s - blk_start),
                    &data[(s - off) as usize..(e - off) as usize],
                );
                wrote_in_place = true;
            }
        }
        if wrote_in_place {
            if self.bugs.has(BugId::B14) {
                // BUG 14 (PM): the in-place data path returns without its
                // final store fence.
                self.trace.hit(BugId::B14);
            } else {
                self.dev.fence();
            }
        }
        Ok(data.len())
    }

    fn read_inode_data(&self, ino: u64, off: u64, buf: &mut [u8]) -> usize {
        let size = self.iget(ino, ioff::SIZE);
        if off >= size {
            return 0;
        }
        let n = buf.len().min((size - off) as usize);
        let mut pos = 0usize;
        while pos < n {
            let cur = off + pos as u64;
            let idx = cur / BLOCK;
            let in_blk = cur % BLOCK;
            let step = ((BLOCK - in_blk) as usize).min(n - pos);
            match self.get_block(ino, idx) {
                Some(b) => self.dev.read(b * BLOCK + in_blk, &mut buf[pos..pos + step]),
                None => buf[pos..pos + step].fill(0),
            }
            pos += step;
        }
        n
    }
}

impl<D: PmBackend> FileSystem for Pmfs<D> {
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        covpoint!(self.cov);
        let ino = match self.resolve(path) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(FsError::Exists);
                }
                if self.iget(ino, ioff::FTYPE) == itype::DIR {
                    return Err(FsError::IsDir);
                }
                if flags.trunc && self.iget(ino, ioff::SIZE) > 0 {
                    self.with_trecord(ino, 0, false, |fs| fs.do_truncate_shrink(ino, 0))?;
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                covpoint!(self.cov);
                let (parent, name) = self.resolve_parent(path)?;
                let name = name.to_string();
                let ino = self.alloc_ino()?;
                let mut plan = UpdatePlan::default();
                let daddr = self.plan_dentry_insert(parent, &mut plan)?;
                plan.ranges.push((daddr, DENTRY_SIZE));
                plan.ranges.push((self.iaddr(ino, 0), 32));
                plan.sets.push((self.iaddr(ino, ioff::FTYPE), itype::FILE));
                plan.sets.push((self.iaddr(ino, ioff::NLINK), 1));
                plan.sets.push((self.iaddr(ino, ioff::SIZE), 0));
                self.run_txn(plan, |fs| {
                    fs.write_dentry(daddr, &RawDentry { ino, name });
                })?;
                ino
            }
            Err(e) => return Err(e),
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, (ino, 0, flags.append));
        Ok(Fd(fd))
    }

    fn close(&mut self, fd: Fd) -> FsResult<()> {
        let (ino, _, _) = self.fds.remove(&fd.0).ok_or(FsError::BadFd)?;
        if self.iget(ino, ioff::FTYPE) == itype::FILE
            && self.iget(ino, ioff::NLINK) == 0
            && self.open_count(ino) == 0
        {
            self.deferred_release(ino)?;
        }
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(parent, name).is_some() {
            return Err(FsError::Exists);
        }
        let name = name.to_string();
        let ino = self.alloc_ino()?;
        let mut plan = UpdatePlan::default();
        let daddr = self.plan_dentry_insert(parent, &mut plan)?;
        plan.ranges.push((daddr, DENTRY_SIZE));
        plan.ranges.push((self.iaddr(ino, 0), 32));
        plan.sets.push((self.iaddr(ino, ioff::FTYPE), itype::DIR));
        plan.sets.push((self.iaddr(ino, ioff::NLINK), 2));
        plan.sets.push((self.iaddr(ino, ioff::SIZE), 0));
        plan.word(self.iaddr(parent, ioff::NLINK), self.iget(parent, ioff::NLINK) + 1);
        self.run_txn(plan, |fs| {
            fs.write_dentry(daddr, &RawDentry { ino, name });
        })
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let (slot, ino) = self.dir_lookup(parent, name).ok_or(FsError::NotFound)?;
        if self.iget(ino, ioff::FTYPE) != itype::DIR {
            return Err(FsError::NotDir);
        }
        if self.dir_live_count(ino) != 0 {
            return Err(FsError::NotEmpty);
        }
        let daddr = self.dentry_addr(parent, slot).ok_or(FsError::NotFound)?;
        let mut plan = UpdatePlan::default();
        plan.ranges.push((daddr, DENTRY_SIZE));
        plan.word(self.iaddr(parent, ioff::NLINK), self.iget(parent, ioff::NLINK) - 1);
        self.run_txn(plan, |fs| fs.clear_dentry(daddr))?;
        self.deferred_release(ino)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let (slot, ino) = self.dir_lookup(parent, name).ok_or(FsError::NotFound)?;
        if self.iget(ino, ioff::FTYPE) != itype::FILE {
            return Err(FsError::IsDir);
        }
        let daddr = self.dentry_addr(parent, slot).ok_or(FsError::NotFound)?;
        let nlink = self.iget(ino, ioff::NLINK);
        let mut plan = UpdatePlan::default();
        plan.ranges.push((daddr, DENTRY_SIZE));
        plan.word(self.iaddr(ino, ioff::NLINK), nlink - 1);
        self.run_txn(plan, |fs| fs.clear_dentry(daddr))?;
        if nlink - 1 == 0 && self.open_count(ino) == 0 {
            self.deferred_release(ino)?;
        }
        Ok(())
    }

    fn link(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(old)?;
        if self.iget(ino, ioff::FTYPE) != itype::FILE {
            return Err(FsError::IsDir);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_lookup(parent, name).is_some() {
            return Err(FsError::Exists);
        }
        let name = name.to_string();
        let mut plan = UpdatePlan::default();
        let daddr = self.plan_dentry_insert(parent, &mut plan)?;
        plan.ranges.push((daddr, DENTRY_SIZE));
        plan.word(self.iaddr(ino, ioff::NLINK), self.iget(ino, ioff::NLINK) + 1);
        self.run_txn(plan, |fs| {
            fs.write_dentry(daddr, &RawDentry { ino, name });
        })
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let src_ino = self.resolve(old)?;
        let src_is_dir = self.iget(src_ino, ioff::FTYPE) == itype::DIR;
        if src_is_dir && is_path_prefix(old, new) && old != new {
            return Err(FsError::Invalid);
        }
        if old == new {
            return Ok(());
        }
        let (src_parent, src_name) = self.resolve_parent(old)?;
        let (dst_parent, dst_name) = self.resolve_parent(new)?;
        let dst_name = dst_name.to_string();
        let (src_slot, _) = self.dir_lookup(src_parent, src_name).ok_or(FsError::NotFound)?;
        let src_daddr = self.dentry_addr(src_parent, src_slot).ok_or(FsError::NotFound)?;

        let victim = self.dir_lookup(dst_parent, &dst_name);
        if let Some((_, v)) = victim {
            if v == src_ino {
                return Ok(());
            }
            let vdir = self.iget(v, ioff::FTYPE) == itype::DIR;
            match (src_is_dir, vdir) {
                (true, true) => {
                    if self.dir_live_count(v) != 0 {
                        return Err(FsError::NotEmpty);
                    }
                }
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                (false, false) => {}
            }
        }

        let mut plan = UpdatePlan::default();
        plan.ranges.push((src_daddr, DENTRY_SIZE));
        // Link-count deltas are accumulated per inode so one journaled word
        // per target carries the net effect.
        let mut nlink_delta: std::collections::BTreeMap<u64, i64> = Default::default();
        let dst_daddr = match victim {
            Some((vslot, v)) => {
                let addr = self.dentry_addr(dst_parent, vslot).ok_or(FsError::NotFound)?;
                plan.ranges.push((addr, DENTRY_SIZE));
                if src_is_dir {
                    // Replacing an empty directory: the destination parent
                    // loses the victim subdirectory.
                    *nlink_delta.entry(dst_parent).or_default() -= 1;
                } else {
                    *nlink_delta.entry(v).or_default() -= 1;
                }
                addr
            }
            None => {
                let addr = self.plan_dentry_insert(dst_parent, &mut plan)?;
                plan.ranges.push((addr, DENTRY_SIZE));
                addr
            }
        };
        if src_is_dir && src_parent != dst_parent {
            *nlink_delta.entry(src_parent).or_default() -= 1;
            *nlink_delta.entry(dst_parent).or_default() += 1;
        }
        for (target, delta) in nlink_delta {
            if delta != 0 {
                let v = (self.iget(target, ioff::NLINK) as i64 + delta) as u64;
                plan.word(self.iaddr(target, ioff::NLINK), v);
            }
        }
        let dst_dentry = RawDentry { ino: src_ino, name: dst_name };
        self.run_txn(plan, |fs| {
            fs.clear_dentry(src_daddr);
            fs.write_dentry(dst_daddr, &dst_dentry);
        })?;

        if let Some((_, v)) = victim {
            if src_is_dir || (self.iget(v, ioff::NLINK) == 0 && self.open_count(v) == 0) {
                self.deferred_release(v)?;
            }
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(path)?;
        if self.iget(ino, ioff::FTYPE) != itype::FILE {
            return Err(FsError::IsDir);
        }
        if size.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let cur = self.iget(ino, ioff::SIZE);
        if size == cur {
            return Ok(());
        }
        if size < cur {
            self.with_trecord(ino, size, false, |fs| fs.do_truncate_shrink(ino, size))
        } else {
            let mut plan = UpdatePlan::default();
            plan.word(self.iaddr(ino, ioff::SIZE), size);
            self.run_txn(plan, |_| {})
        }
    }

    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off: u64, len: u64) -> FsResult<()> {
        covpoint!(self.cov);
        if len == 0 {
            return Err(FsError::Invalid);
        }
        let (ino, _, _) = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        if self.iget(ino, ioff::FTYPE) != itype::FILE {
            return Err(FsError::IsDir);
        }
        // §4.4 extra (non-crash-consistency): the range end computation
        // overflows for absurd offsets — the KASAN-analogue fires instead
        // of silently wrapping.
        if self.extra_bugs {
            if off.checked_add(len).is_none() {
                return Err(FsError::Detected(format!(
                    "fallocate range {off}+{len} overflows (unchecked addition in the \
                     original code)"
                )));
            }
        } else if off.checked_add(len).is_none() {
            return Err(FsError::Invalid);
        }
        let end = off + len;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let size = self.iget(ino, ioff::SIZE);
        match mode {
            FallocMode::Allocate | FallocMode::KeepSize => {
                let mut plan = UpdatePlan::default();
                let mut fresh = None;
                let mut any = false;
                for idx in off / BLOCK..end.div_ceil(BLOCK) {
                    if self.get_block(ino, idx).is_none() {
                        let nb = self.alloc_block()?;
                        self.dev.memset_nt(nb * BLOCK, 0, BLOCK);
                        self.plan_map(ino, idx, nb, &mut plan, &mut fresh)?;
                        any = true;
                    }
                }
                let grow = mode == FallocMode::Allocate && end > size;
                if grow {
                    plan.word(self.iaddr(ino, ioff::SIZE), end);
                }
                if any || grow {
                    self.dev.fence();
                    self.run_txn(plan, |_| {})?;
                }
            }
            FallocMode::ZeroRange | FallocMode::PunchHole => {
                // Atomic across the whole range: all pointer swaps in one
                // transaction.
                let z_end = end.min(size);
                let mut plan = UpdatePlan::default();
                let mut fresh = None;
                let mut old_blocks = Vec::new();
                let mut cur = off;
                while cur < z_end {
                    let idx = cur / BLOCK;
                    let in_blk = cur % BLOCK;
                    let n = (BLOCK - in_blk).min(z_end - cur);
                    if let Some(b) = self.get_block(ino, idx) {
                        if mode == FallocMode::PunchHole && in_blk == 0 && n == BLOCK {
                            self.plan_map(ino, idx, 0, &mut plan, &mut fresh)?;
                        } else {
                            let mut content = self.dev.read_vec(b * BLOCK, BLOCK);
                            content[in_blk as usize..(in_blk + n) as usize].fill(0);
                            let nb = self.alloc_block()?;
                            self.dev.memcpy_nt(nb * BLOCK, &content);
                            self.plan_map(ino, idx, nb, &mut plan, &mut fresh)?;
                        }
                        old_blocks.push(b);
                    }
                    cur += n;
                }
                if !old_blocks.is_empty() {
                    self.dev.fence();
                    self.run_txn(plan, |_| {})?;
                    for b in old_blocks {
                        self.free_block(b)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let (ino, offset, append) = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        let off = if append { self.iget(ino, ioff::SIZE) } else { offset };
        let n = self.write_inode_data(ino, off, data)?;
        if let Some(f) = self.fds.get_mut(&fd.0) {
            f.1 = off + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let (ino, _, _) = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        self.write_inode_data(ino, off, data)
    }

    fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let (ino, _, _) = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        Ok(self.read_inode_data(ino, off, buf))
    }

    fn fsync(&mut self, _fd: Fd) -> FsResult<()> {
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve(path)?;
        let ftype = self.iget(ino, ioff::FTYPE);
        let blocks = self.mapped_from(ino, 0).len();
        Ok(Metadata {
            ino,
            ftype: if ftype == itype::DIR { FileType::Directory } else { FileType::Regular },
            nlink: self.iget(ino, ioff::NLINK),
            size: if ftype == itype::DIR {
                self.dir_live_count(ino)
            } else {
                self.iget(ino, ioff::SIZE)
            },
            blocks: if ftype == itype::DIR { 1 } else { blocks as u64 },
        })
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        if self.iget(ino, ioff::FTYPE) != itype::DIR {
            return Err(FsError::NotDir);
        }
        let mut out = Vec::new();
        for slot in 0..self.dir_slots(ino) {
            if let Some(d) = self.dentry_at(ino, slot) {
                let t = self.iget(d.ino, ioff::FTYPE);
                out.push(DirEntry {
                    name: d.name,
                    ino: d.ino,
                    ftype: if t == itype::DIR { FileType::Directory } else { FileType::Regular },
                });
            }
        }
        out.sort();
        Ok(out)
    }

    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        if self.iget(ino, ioff::FTYPE) != itype::FILE {
            return Err(FsError::IsDir);
        }
        let size = self.iget(ino, ioff::SIZE);
        let mut buf = vec![0u8; size as usize];
        self.read_inode_data(ino, 0, &mut buf);
        Ok(buf)
    }
}
