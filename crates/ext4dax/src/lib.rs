#![warn(missing_docs)]

//! An ext4-DAX-style file system with *weak* crash-consistency guarantees.
//!
//! The paper tests ext4-DAX and XFS-DAX as mature baselines: disk-era file
//! systems run in DAX mode so reads/writes go straight to PM, but retaining
//! their original crash-consistency contract — **nothing is guaranteed
//! durable until `fsync`/`fdatasync`/`sync`** (§2, "weak guarantees"). The
//! paper found no bugs in them, attributing this to the maturity of the
//! shared non-DAX code; this crate plays the same role here: a correct,
//! journaling control file system, and the kernel-component substrate that
//! `splitfs` builds on.
//!
//! Architecture (deliberately ext4-like):
//!
//! * All reads and writes go through a volatile page cache; PM is only
//!   touched at commit points.
//! * `fsync` writes the file's data blocks in place (ordered mode), then
//!   commits all dirty metadata blocks through a physical redo journal
//!   (descriptor block, payload blocks, commit block with checksum), then
//!   checkpoints them home and retires the journal.
//! * Mount replays any committed-but-uncheckpointed transaction and ignores
//!   a torn tail.

pub mod cache;
pub mod fsimpl;
pub mod journal;
pub mod layout;

pub use fsimpl::Ext4Dax;

use pmem::PmBackend;
use vfs::{
    fs::{FsKind, FsOptions, Guarantees},
    FsName, FsResult,
};

/// Factory for [`Ext4Dax`] instances.
#[derive(Debug, Clone, Default)]
pub struct Ext4DaxKind {
    /// Construction options (ext4-DAX has no injected bugs; options carry
    /// coverage config).
    pub opts: FsOptions,
}

impl FsKind for Ext4DaxKind {
    type Fs<D: PmBackend> = Ext4Dax<D>;

    fn name(&self) -> FsName {
        FsName::Ext4Dax
    }

    fn options(&self) -> &FsOptions {
        &self.opts
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        Self { opts }
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees { strong: false, atomic_data_writes: false, data_checksums: false }
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        Ext4Dax::mkfs(dev, &self.opts)
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        Ext4Dax::mount(dev, &self.opts)
    }

    fn fork_fs<D: PmBackend + Clone>(&self, fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        Some(fs.clone())
    }
}
