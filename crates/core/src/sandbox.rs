//! Fault isolation for the checking pipeline.
//!
//! Chipmunk's targets are file systems whose *recovery paths are the code
//! under test* — the paper's kernel FSes oops and hang while mounting crash
//! states (several of its 23 bugs are exactly that), and Chipmunk survives
//! because each target runs in a VM it can reboot. This reproduction runs
//! the targets in process, so this module is the VM boundary's stand-in:
//!
//! * every checker stage (mount, walk, compare, probe) runs under
//!   [`std::panic::catch_unwind`], converting an escaping file-system panic
//!   into a [`Violation::RecoveryPanic`] *finding* instead of a harness
//!   abort — crash-state mutations roll back through the existing
//!   `CowDevice` overlay/undo log exactly as on the non-panicking path;
//! * mount/walk and probe arm the deterministic **fuel watchdog**
//!   ([`pmem::cost::tick`]): a recovery loop that exceeds its simulated-op
//!   budget unwinds with [`pmem::FuelExhausted`], which this module converts
//!   into [`Violation::RecoveryHang`]. Fuel is counted in device ops, not
//!   wall-clock, so verdicts stay bit-identical at any thread count.
//!
//! Both behaviours are gated by [`TestConfig::sandbox`] /
//! [`TestConfig::recovery_fuel`] (default on). While a guard is active the
//! process panic hook is silenced on this thread, so a sweep over thousands
//! of panicking crash states does not flood stderr; the payload ends up in
//! the bug report instead.

use std::{
    any::Any,
    cell::Cell,
    panic::{self, AssertUnwindSafe},
    sync::Once,
};

use pmem::{FuelExhausted, FuelGuard, PmBackend};
use vfs::{FileSystem, FsKind};

use crate::{
    checker::{compare_checked, mount_state, probe_state, CheckKind},
    config::TestConfig,
    oracle::{snapshot_tree_scoped, Scope, Tree},
    report::{Stage, Violation},
};

thread_local! {
    static QUIET_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that defers to the previous
/// hook unless the current thread is inside a [`QuietPanics`] guard.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET_DEPTH.with(Cell::get) == 0 {
                prev(info);
            }
        }));
    });
}

/// RAII guard silencing panic-hook output on this thread while a caught
/// panic is an expected, reported outcome. Nests.
pub struct QuietPanics {
    _priv: (),
}

impl QuietPanics {
    /// Enters a quiet region on this thread.
    pub fn enter() -> QuietPanics {
        install_quiet_hook();
        QUIET_DEPTH.with(|d| d.set(d.get() + 1));
        QuietPanics { _priv: () }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Renders a panic payload as a human-readable message.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(f) = payload.downcast_ref::<FuelExhausted>() {
        format!("fuel budget of {} simulated device ops exhausted", f.budget)
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classifies a caught panic payload into the sandbox violation for `stage`:
/// a fuel-watchdog unwind becomes [`Violation::RecoveryHang`], anything else
/// [`Violation::RecoveryPanic`].
pub fn violation_for(stage: Stage, payload: &(dyn Any + Send)) -> Violation {
    if let Some(f) = payload.downcast_ref::<FuelExhausted>() {
        Violation::RecoveryHang {
            stage,
            payload: format!(
                "{stage} exceeded the recovery fuel budget of {} simulated device ops",
                f.budget
            ),
        }
    } else {
        Violation::RecoveryPanic {
            stage,
            payload: format!("panic during {stage}: {}", panic_message(payload)),
        }
    }
}

/// Runs `f`, converting an escaping panic into the sandbox violation for
/// `stage`. Hook output is silenced for the duration.
pub fn guarded<T>(stage: Stage, f: impl FnOnce() -> T) -> Result<T, Violation> {
    let _quiet = QuietPanics::enter();
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|p| violation_for(stage, p.as_ref()))
}

/// Mounts `kind` on `dev` and walks the tree — the first two checker stages
/// — under the sandbox and fuel watchdog when `cfg` enables them. Falls back
/// to the raw [`mount_state`] path when `cfg.sandbox` is off.
pub fn mount_walk<K: FsKind, D: PmBackend>(
    kind: &K,
    dev: D,
    walk_scope: &Scope,
    cfg: &TestConfig,
) -> Result<(K::Fs<D>, Tree), Violation> {
    if !cfg.sandbox {
        return mount_state(kind, dev, walk_scope);
    }
    // One fuel budget covers recovery and the walk together: a hanging
    // recovery often only manifests when the walk first touches the broken
    // structure.
    let _fuel = FuelGuard::arm(cfg.recovery_fuel);
    let fs = guarded(Stage::Mount, || kind.mount(dev))?
        .map_err(|e| Violation::Unmountable(e.to_string()))?;
    let tree = guarded(Stage::Walk, || snapshot_tree_scoped(&fs, walk_scope))?
        .map_err(Violation::CorruptState)?;
    Ok((fs, tree))
}

/// Stage-3 oracle comparison under the sandbox. `scoped_validate`'s
/// disagreement panic is an intentional harness assertion, so that debug
/// mode keeps aborting loudly even with the sandbox on. `pruned` counts
/// hash-pruned node comparisons (see [`TestConfig::shared_oracle`]).
pub fn compare<'a>(
    tree: &Tree,
    check: &CheckKind<'a>,
    cfg: &TestConfig,
    scope: &Scope,
    pruned: &mut u64,
) -> Option<Violation> {
    if !cfg.sandbox || cfg.scoped_validate {
        return compare_checked(tree, check, cfg, scope, pruned);
    }
    let mut p = 0;
    let r = match guarded(Stage::Compare, || {
        let mut inner = 0;
        let v = compare_checked(tree, check, cfg, scope, &mut inner);
        (v, inner)
    }) {
        Ok((v, inner)) => {
            p = inner;
            v
        }
        Err(v) => Some(v),
    };
    *pruned += p;
    r
}

/// Stage-4 usability probe under the sandbox and fuel watchdog.
pub fn probe<F: FileSystem>(fs: &mut F, tree: &Tree, cfg: &TestConfig) -> Option<Violation> {
    if !cfg.sandbox {
        return probe_state(fs, tree);
    }
    let _fuel = FuelGuard::arm(cfg.recovery_fuel);
    match guarded(Stage::Probe, || probe_state(fs, tree)) {
        Ok(v) => v,
        Err(v) => Some(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::cost;

    #[test]
    fn guarded_passes_values_through() {
        assert_eq!(guarded(Stage::Compare, || 7), Ok(7));
    }

    #[test]
    fn guarded_converts_panics_with_stage_and_payload() {
        let v = guarded(Stage::Mount, || -> () { panic!("journal replay oops") })
            .expect_err("panic must be caught");
        match &v {
            Violation::RecoveryPanic { stage, payload } => {
                assert_eq!(*stage, Stage::Mount);
                assert!(payload.contains("mount"), "{payload}");
                assert!(payload.contains("journal replay oops"), "{payload}");
            }
            other => panic!("wrong class: {other:?}"),
        }
        assert_eq!(v.class(), "recovery-panic");
    }

    #[test]
    fn guarded_converts_fuel_exhaustion_into_hang() {
        let v = guarded(Stage::Walk, || {
            let _fuel = FuelGuard::arm(Some(100));
            loop {
                cost::tick(1);
            }
        })
        .expect_err("watchdog must fire");
        match &v {
            Violation::RecoveryHang { stage, payload } => {
                assert_eq!(*stage, Stage::Walk);
                assert!(payload.contains("100"), "{payload}");
            }
            other => panic!("wrong class: {other:?}"),
        }
        assert_eq!(v.class(), "recovery-hang");
    }

    #[test]
    fn quiet_guard_nests_and_unwinds() {
        let _outer = QuietPanics::enter();
        assert_eq!(QUIET_DEPTH.with(Cell::get), 1);
        let _ = guarded(Stage::Probe, || -> () { panic!("silenced") });
        // The inner guard's depth increment was released during the unwind.
        assert_eq!(QUIET_DEPTH.with(Cell::get), 1);
    }
}
