//! Self-torture: the campaign store run under its own hostile-host fault
//! injector. The harness that crash-tests file systems must survive the
//! same discipline on its own persistence layer — short writes, EIO, torn
//! appends, lying devices, out-of-space, whole-host death at a rename —
//! and still converge to the byte-identical fault-free `campaign.json`,
//! or halt declaring why with zero corrupt committed artifacts.

use std::path::{Path, PathBuf};
use std::time::Duration;

use bench::campaign::{
    hostio::{CrashSide, FaultSpec, HostCtx, StoreError},
    runner::{self, RunOpts},
    store::CampaignStore,
    CampaignSpec,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("chipmunk-tort-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Small but representative: several multi-workload ACE tasks plus two
/// dependent fuzz batches (22 journal checkpoints total).
fn small_spec() -> CampaignSpec {
    CampaignSpec {
        seq1_take: 12,
        seq2_step: 0,
        fuzz_budget: 10,
        batch: 6,
        bitmap_bits: 1 << 12,
        ..CampaignSpec::default()
    }
}

fn opts(threads: usize) -> RunOpts {
    RunOpts { threads, ttl: Duration::from_secs(3600), ..RunOpts::default() }
}

/// The fault-free merged document every torture run must reproduce.
fn fault_free_doc(dir: &Path) -> String {
    let store = CampaignStore::open_or_init(dir, &small_spec()).unwrap();
    let (_, merged) = runner::run_and_merge(&store, &opts(1)).unwrap();
    merged.doc
}

/// Every committed result file in the store must parse — a halted torture
/// run may be incomplete, but it must never leave a corrupt artifact
/// claiming to be a committed result.
fn assert_no_corrupt_commits(dir: &Path) {
    let store = CampaignStore::open(dir).expect("reopen store read-only");
    for id in 0..store.spec.total_tasks() {
        if store.result_path(id).exists() {
            store
                .load_result(id)
                .unwrap_or_else(|e| panic!("committed result {id} is corrupt: {e}"));
        }
    }
}

/// The tentpole sweep: fault schedules x kill depths x thread counts. Each
/// cell runs the campaign under the standard fault mix (every class
/// enabled), optionally dies at a journal checkpoint mid-flight and
/// resumes, and must converge to the byte-identical fault-free document —
/// the retry, abandon/re-lease, and quarantine machinery doing its job.
#[test]
fn torture_sweep_converges_to_fault_free_document() {
    let want = fault_free_doc(&tmpdir("sweep-base"));
    for seed in [0x1u64, 0x2e, 0xf16] {
        for kill_at in [None, Some(7u64)] {
            for threads in [1usize, 2] {
                let tag = format!("sweep-{seed:x}-{}-{threads}", kill_at.unwrap_or(0));
                let dir = tmpdir(&tag);
                let io = HostCtx::faulty(FaultSpec::standard(seed));
                let store = CampaignStore::open_or_init_with(&dir, &small_spec(), io)
                    .expect("store init retries through transient faults");
                if let Some(k) = kill_at {
                    let killed =
                        RunOpts { kill_after_checkpoints: Some(k), ..opts(threads) };
                    let sum = runner::run_worker(&store, &killed).expect("interrupted run");
                    assert!(sum.interrupted, "kill hook must fire ({tag})");
                }
                match runner::run_and_merge(&store, &opts(threads)) {
                    Ok((sum, merged)) => {
                        assert_eq!(
                            merged.doc, want,
                            "torture run diverged from fault-free baseline ({tag})"
                        );
                        assert!(
                            sum.faults_injected > 0,
                            "the injector must actually fire ({tag})"
                        );
                    }
                    // A declared halt is acceptable only if it is honest:
                    // typed, and with no corrupt artifact left committed.
                    Err(e) => {
                        assert!(
                            matches!(
                                e,
                                StoreError::Transient { .. }
                                    | StoreError::Exhausted { .. }
                                    | StoreError::Fatal { .. }
                            ),
                            "halt must carry a typed cause ({tag}): {e}"
                        );
                        assert_no_corrupt_commits(&dir);
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Out of space mid-campaign: the worker stops with Exhausted (exit code
/// 3), the context flags degraded mode, and the read-only audit still
/// serves triage over everything committed before the disk filled.
#[test]
fn enospc_degrades_to_read_only_triage() {
    let dir = tmpdir("enospc");
    // Budget large enough to initialise the store and commit some early
    // work, small enough to run dry well before the campaign completes.
    let spec = FaultSpec { enospc_after_bytes: Some(6_000), ..FaultSpec::none(7) };
    let store = CampaignStore::open_or_init_with(&dir, &small_spec(), HostCtx::faulty(spec))
        .expect("init fits in the byte budget");
    let err = runner::run_and_merge(&store, &opts(1))
        .expect_err("the campaign cannot finish on a full disk");
    assert!(matches!(err, StoreError::Exhausted { .. }), "{err}");
    assert_eq!(err.exit_code(), 3);
    assert!(store.io.degraded(), "ENOSPC must flip the degraded flag");

    let audit = runner::merge_read_only(&store);
    assert!(
        !audit.missing.is_empty(),
        "the campaign must have been cut short by the byte budget"
    );
    assert_eq!(
        audit.committed + audit.corrupt.len() as u64 + audit.missing.len() as u64,
        store.spec.total_tasks() as u64,
        "the audit must account for every task"
    );
    assert!(audit.corrupt.is_empty(), "ENOSPC must not corrupt committed artifacts");
    // Degraded means read-only, not blind: committed results still load.
    let readable = (0..store.spec.total_tasks())
        .filter(|&id| matches!(store.load_result(id), Ok(Some(_))))
        .count() as u64;
    assert_eq!(readable, audit.committed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt committed result fails only its own task: the merge
/// quarantines it (reporting file and byte offset), `run_and_merge`
/// re-runs the task, and the healed campaign is byte-identical.
#[test]
fn quarantined_result_heals_to_byte_identical_merge() {
    let dir = tmpdir("quarantine");
    let want = {
        let store = CampaignStore::open_or_init(&dir, &small_spec()).unwrap();
        let (_, merged) = runner::run_and_merge(&store, &opts(1)).unwrap();
        merged.doc
    };

    // Garble one committed result in place (a torn overwrite).
    let store = CampaignStore::open(&dir).unwrap();
    let victim = store.result_path(1);
    std::fs::write(&victim, b"[{\"name\": \"tor").unwrap();
    let err = runner::merge(&store).expect_err("merge must reject the torn result");
    match &err {
        StoreError::Corrupt { path, action, .. } => {
            assert!(path.contains("task-1"), "error must name the file: {err}");
            assert_eq!(format!("{action}"), "quarantined");
        }
        other => panic!("expected Corrupt, got {other}"),
    }
    assert!(!victim.exists(), "the corrupt artifact must be moved aside");
    assert!(
        dir.join("quarantine").read_dir().unwrap().next().is_some(),
        "the quarantine directory must hold the moved artifact"
    );

    // The heal: re-claim, re-run, re-merge — byte-identical.
    let (sum, merged) = runner::run_and_merge(&store, &opts(1)).unwrap();
    assert_eq!(merged.doc, want, "healed campaign must match the original");
    assert!(sum.tasks_run >= 1, "the quarantined task must have been re-run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Whole-host death at a rename: the worker halts Fatal (both crash
/// sides), never commits a torn artifact, and a fresh fault-free process
/// over the same store finishes the campaign byte-identically.
#[test]
fn crash_at_rename_halts_then_resumes_byte_identical() {
    let want = fault_free_doc(&tmpdir("crash-base"));
    for side in [CrashSide::Before, CrashSide::After] {
        let dir = tmpdir(&format!("crash-{side:?}"));
        let spec = FaultSpec { crash_at_rename: Some((6, side)), ..FaultSpec::none(11) };
        let store = CampaignStore::open_or_init_with(&dir, &small_spec(), HostCtx::faulty(spec))
            .expect("the crash schedule fires later than store init");
        let err = runner::run_and_merge(&store, &opts(1))
            .expect_err("the host dies before the campaign can finish");
        assert!(matches!(err, StoreError::Fatal { .. }), "{side:?}: {err}");
        assert!(store.io.crashed(), "{side:?}: the crash flag must be set");
        assert_no_corrupt_commits(&dir);

        // Reboot: a passthrough context over the surviving on-disk state.
        let store = CampaignStore::open(&dir).unwrap();
        let (_, merged) = runner::run_and_merge(&store, &opts(1)).unwrap();
        assert_eq!(merged.doc, want, "{side:?}: post-crash resume must converge");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
