//! Per-CPU undo journals (bug 19 lives in the recovery loop).
//!
//! Each journal block follows the PMFS record format (WineFS inherits it):
//! a persistent tail word activates the transaction, variable-length
//! records carry the old bytes, and commit resets the tail.

use pmem::PmBackend;
use vfs::{covpoint, BugId, BugSet, BugTrace, Cov, FsError, FsResult};

use crate::layout::{Geometry, BLOCK};

const JTAIL: u64 = 0;
const JRECS: u64 = 16;

/// Maximum bytes one record may cover.
pub const MAX_RECORD_DATA: u64 = 64;

fn pad8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

/// An active transaction in one CPU's journal.
pub struct Txn {
    jblock: u64,
}

/// Begins a transaction in `cpu`'s journal covering `ranges`.
pub fn txn_begin<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    cpu: usize,
    ranges: &[(u64, u64)],
) -> FsResult<Txn> {
    let jblock = geo.journal_block(cpu);
    let jbase = jblock * BLOCK;
    let mut pos = JRECS;
    for &(addr, len) in ranges {
        debug_assert!(len > 0 && len <= MAX_RECORD_DATA);
        if pos + 16 + pad8(len) > BLOCK {
            return Err(FsError::NoSpace);
        }
        let old = dev.read_vec(addr, len);
        dev.store_u64(jbase + pos, addr);
        dev.store_u64(jbase + pos + 8, len);
        dev.store(jbase + pos + 16, &old);
        pos += 16 + pad8(len);
    }
    dev.flush(jbase + JRECS, pos - JRECS);
    dev.fence();
    dev.persist_u64(jbase + JTAIL, pos - JRECS);
    Ok(Txn { jblock })
}

/// Commits the transaction (fenced).
pub fn txn_commit<D: PmBackend>(dev: &mut D, txn: Txn) {
    dev.persist_u64(txn.jblock * BLOCK + JTAIL, 0);
}

/// Bug-15 variant: the tail reset is stored and written back but **not
/// fenced** — it is still in flight when the call returns, so a crash rolls
/// the committed write back.
pub fn txn_commit_nofence<D: PmBackend>(dev: &mut D, txn: Txn) {
    dev.store_u64(txn.jblock * BLOCK + JTAIL, 0);
    dev.flush(txn.jblock * BLOCK + JTAIL, 8);
}

/// Rolls back one journal if it holds an active transaction.
fn recover_one<D: PmBackend>(dev: &mut D, geo: &Geometry, jblock: u64) -> FsResult<bool> {
    let jbase = jblock * BLOCK;
    let tail = dev.read_u64(jbase + JTAIL);
    if tail == 0 {
        return Ok(false);
    }
    if tail > BLOCK - JRECS {
        return Err(FsError::Unmountable(format!(
            "journal {jblock} tail {tail} exceeds the journal block"
        )));
    }
    let mut recs: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut pos = JRECS;
    while pos < JRECS + tail {
        let addr = dev.read_u64(jbase + pos);
        let len = dev.read_u64(jbase + pos + 8);
        if len == 0 || len > MAX_RECORD_DATA || pos + 16 + len > BLOCK {
            return Err(FsError::Unmountable(format!(
                "journal {jblock} record at offset {pos} has invalid length {len}"
            )));
        }
        if addr + len > geo.total_blocks * BLOCK {
            return Err(FsError::Unmountable(format!(
                "journal {jblock} record targets out-of-range address {addr:#x}"
            )));
        }
        recs.push((addr, dev.read_vec(jbase + pos + 16, len)));
        pos += 16 + pad8(len);
    }
    for (addr, old) in recs.iter().rev() {
        dev.store(*addr, old);
        dev.flush(*addr, old.len() as u64);
    }
    dev.fence();
    dev.persist_u64(jbase + JTAIL, 0);
    Ok(true)
}

/// Recovery across the journal bank. The fixed loop visits every CPU's
/// journal; with bug 19 the array index is a constant zero, so journals of
/// CPUs > 0 are never rolled back and their half-applied transactions
/// survive into the mounted state.
pub fn recover_all<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    bugs: BugSet,
    cov: &Cov,
    trace: &BugTrace,
) -> FsResult<bool> {
    let mut any = false;
    for cpu in 0..geo.njournals {
        let jblock = if bugs.has(BugId::B19) {
            // BUG 19 (logic): `journals[0]` instead of `journals[cpu]`.
            let skipped = geo.journals + cpu;
            if cpu != 0 && dev.read_u64(skipped * BLOCK + JTAIL) != 0 {
                trace.hit(BugId::B19);
                covpoint!(cov, 1);
            }
            geo.journals
        } else {
            geo.journals + cpu
        };
        any |= recover_one(dev, geo, jblock)?;
    }
    Ok(any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmDevice;

    fn setup() -> (PmDevice, Geometry) {
        let size = 4 << 20;
        (PmDevice::new(size), Geometry::for_device(size, 4).unwrap())
    }

    #[test]
    fn per_cpu_rollback() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(1);
        let b = geo.inode_off(2);
        dev.persist_u64(a, 1);
        dev.persist_u64(b, 2);
        let _t0 = txn_begin(&mut dev, &geo, 0, &[(a, 8)]).unwrap();
        dev.persist_u64(a, 10);
        let _t2 = txn_begin(&mut dev, &geo, 2, &[(b, 8)]).unwrap();
        dev.persist_u64(b, 20);
        // Crash: both journals active. Fixed recovery rolls back both.
        let any = recover_all(
            &mut dev,
            &geo,
            BugSet::fixed(),
            &Cov::disabled(),
            &BugTrace::new(),
        )
        .unwrap();
        assert!(any);
        assert_eq!(dev.read_u64(a), 1);
        assert_eq!(dev.read_u64(b), 2);
    }

    #[test]
    fn bug19_skips_nonzero_cpus() {
        let (mut dev, geo) = setup();
        let b = geo.inode_off(2);
        dev.persist_u64(b, 2);
        let _t2 = txn_begin(&mut dev, &geo, 2, &[(b, 8)]).unwrap();
        dev.persist_u64(b, 20);
        let trace = BugTrace::new();
        recover_all(&mut dev, &geo, BugSet::only(&[BugId::B19]), &Cov::disabled(), &trace)
            .unwrap();
        // The half-applied update survives.
        assert_eq!(dev.read_u64(b), 20);
        assert!(trace.contains(BugId::B19));
    }

    #[test]
    fn commit_nofence_leaves_tail_in_flight() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(1);
        dev.persist_u64(a, 1);
        let t = txn_begin(&mut dev, &geo, 0, &[(a, 8)]).unwrap();
        dev.persist_u64(a, 5);
        txn_commit_nofence(&mut dev, t);
        // The tail reset has not been fenced: a crash now still sees the
        // active transaction and rolls the update back.
        let img = dev.crash_image_with(&[]);
        let mut crashed = PmDevice::from_image(img);
        recover_all(
            &mut crashed,
            &geo,
            BugSet::fixed(),
            &Cov::disabled(),
            &BugTrace::new(),
        )
        .unwrap();
        assert_eq!(crashed.read_u64(a), 1, "committed value rolled back after crash");
    }
}
