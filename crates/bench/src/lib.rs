#![warn(missing_docs)]

//! Shared machinery for the evaluation harnesses (one binary per paper
//! table/figure — see DESIGN.md §4 for the index).

use std::{
    collections::HashSet,
    time::{Duration, Instant},
};

use chipmunk::{sandbox, test_workload, BugReport, CrashPhase, Stage, TestConfig, TestOutcome, Violation};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmfs::PmfsKind;
use splitfs::SplitFsKind;
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet, Cov, FsName, Workload,
};
use winefs::WineFsKind;
use xfsdax::XfsDaxKind;
use workloads::{
    ace::{seq1, seq2, seq3_metadata, AceMode},
    fuzz::{FuzzConfig, Fuzzer},
};

pub mod campaign;
pub mod repro;
pub mod sched;

pub use repro::{shrink_to_bundle, ReplayOutcome, ReproBundle};
pub use sched::{plan_subtrees, Scheduler, SubtreePlan, WorkloadResult};

/// Rank-2 helper: run a generic closure against the `FsKind` for a given
/// file system (the kinds are distinct types, so plain closures cannot be
/// generic over them).
pub trait WithKind {
    /// The result type.
    type Out;
    /// Invoked with the concrete kind.
    fn call<K: FsKind>(self, kind: K) -> Self::Out;
}

/// Dispatches `w` to the concrete [`FsKind`] for `fs` built from `opts`.
pub fn dispatch<W: WithKind>(fs: FsName, opts: FsOptions, w: W) -> W::Out {
    match fs {
        FsName::Nova => w.call(NovaKind { opts, fortis: false }),
        FsName::NovaFortis => w.call(NovaKind { opts, fortis: true }),
        FsName::Pmfs => w.call(PmfsKind { opts }),
        FsName::WineFs => w.call(WineFsKind { opts, strict: true }),
        FsName::SplitFs => w.call(SplitFsKind { opts }),
        FsName::Ext4Dax => w.call(Ext4DaxKind { opts }),
        FsName::XfsDax => w.call(XfsDaxKind { opts }),
    }
}

/// The ACE mode appropriate for a file system.
pub fn mode_for(fs: FsName) -> AceMode {
    if matches!(fs, FsName::Ext4Dax | FsName::XfsDax) {
        AceMode::Weak
    } else {
        AceMode::Strong
    }
}

/// Runs a batch of workloads through [`test_workload`] across
/// `cfg.threads` workers, returning `(outcome, per-workload coverage)`
/// pairs **in batch order** — byte-identical to what a serial loop over the
/// same batch would produce.
///
/// Each workload is tested on a factory clone carrying fresh
/// coverage/trace sinks ([`FsOptions::with_fresh_sinks`]), so workers never
/// race on shared instrumentation. Afterwards each workload's sinks are
/// absorbed into `kind`'s shared sinks in batch order and its
/// `traced_bugs` is re-snapshotted from the shared trace — reproducing
/// exactly the cumulative semantics of a serial run on a shared sink.
pub fn run_batch<K: FsKind>(
    kind: &K,
    batch: &[Workload],
    cfg: &TestConfig,
) -> Vec<(TestOutcome, HashSet<u64>)> {
    let threads = cfg.threads.max(1);
    let run_one = |w: &Workload| {
        let fresh = kind.with_options(kind.options().with_fresh_sinks());
        // With the sandbox on, a panic escaping the whole run (e.g. during
        // recording, outside the per-stage checker guards) fails only this
        // workload: it commits a synthesized worker-failure outcome and the
        // rest of the batch proceeds. Sandbox off keeps fail-fast panics.
        let out = if cfg.sandbox {
            sandbox::guarded(Stage::Worker, || test_workload(&fresh, w, cfg))
                .unwrap_or_else(|v| worker_failure_outcome(w, v))
        } else {
            test_workload(&fresh, w, cfg)
        };
        let cov = fresh.options().cov.snapshot();
        let trace = fresh.options().trace.snapshot();
        (out, cov, trace)
    };

    let mut slots: Vec<Option<(TestOutcome, HashSet<u64>, _)>> = Vec::with_capacity(batch.len());
    slots.resize_with(batch.len(), || None);
    if threads <= 1 || batch.len() <= 1 {
        for (i, w) in batch.iter().enumerate() {
            slots[i] = Some(run_one(w));
        }
    } else {
        let per = batch.len().div_ceil(threads);
        let run_one = &run_one;
        std::thread::scope(|sc| {
            let handles: Vec<_> = batch
                .chunks(per)
                .enumerate()
                .map(|(c, shard)| {
                    let h = sc.spawn(move || {
                        shard
                            .iter()
                            .enumerate()
                            .map(|(j, w)| (c * per + j, run_one(w)))
                            .collect::<Vec<_>>()
                    });
                    (c, shard, h)
                })
                .collect();
            for (c, shard, h) in handles {
                match h.join() {
                    Ok(rs) => {
                        for (i, r) in rs {
                            slots[i] = Some(r);
                        }
                    }
                    Err(_) => {
                        // A shard worker died (only possible with the
                        // sandbox off, or on a harness bug). Re-run its
                        // items one at a time so only the panicking
                        // workload fails, with a diagnostic.
                        for (j, w) in shard.iter().enumerate() {
                            let r = sandbox::guarded(Stage::Worker, || run_one(w))
                                .unwrap_or_else(|v| {
                                    (worker_failure_outcome(w, v), HashSet::new(), Default::default())
                                });
                            slots[c * per + j] = Some(r);
                        }
                    }
                }
            }
        });
    }

    slots
        .into_iter()
        .map(|slot| {
            let (mut out, cov, trace) = slot.expect("every batch slot filled");
            kind.options().cov.absorb(&cov);
            kind.options().trace.absorb(&trace);
            out.traced_bugs = kind.options().trace.snapshot();
            (out, cov)
        })
        .collect()
}

/// The outcome committed for a workload whose *worker* died outside the
/// per-stage checker sandbox (e.g. a panic while recording): one
/// worker-stage report carrying the panic diagnostic, so a batch loses only
/// the affected item.
pub(crate) fn worker_failure_outcome(w: &Workload, v: Violation) -> TestOutcome {
    let mut out = TestOutcome { workload: w.name.clone(), ..Default::default() };
    match &v {
        Violation::RecoveryPanic { .. } => out.recovery_panics = 1,
        Violation::RecoveryHang { .. } => out.recovery_hangs = 1,
        _ => {}
    }
    out.reports.push(BugReport {
        workload: w.name.clone(),
        op_seq: 0,
        op_desc: "<worker>".to_string(),
        phase: CrashPhase::DuringSyscall,
        subset: String::new(),
        point: None,
        subset_ids: Vec::new(),
        violation: v,
    });
    out
}

/// [`run_batch`] with an optional prefix-tree scheduler: when the scheduler
/// is live, workloads are *executed* grouped by prefix subtree, each group
/// op-lexicographically sorted (adjacent workloads then share the longest op
/// prefixes, which is what each worker's cache exploits — ACE emits
/// dependency-setup ops first, so sorted neighbours typically share their
/// whole setup) while results are still *committed* in batch order. With
/// `cfg.threads > 1` and [`TestConfig::par_prefix`] on, whole subtrees run
/// on parallel workers (see [`Scheduler`]); with `par_prefix` off the plain
/// sharded [`run_batch`] path is used instead, as before the two composed.
/// Per-workload outputs are pure functions of the workload, so the returned
/// vector is byte-identical to [`run_batch`]'s for every thread count.
pub fn run_batch_cached<K: FsKind>(
    kind: &K,
    batch: &[Workload],
    cfg: &TestConfig,
    sched: Option<&mut Scheduler<K>>,
) -> Vec<(TestOutcome, HashSet<u64>)> {
    let threads = cfg.threads.max(1);
    let sched = match sched {
        Some(s) if s.is_active() && cfg.prefix_cache && (threads <= 1 || cfg.par_prefix) => s,
        _ => return run_batch(kind, batch, cfg),
    };
    sched
        .run(batch, cfg)
        .into_iter()
        .map(|(mut out, cov, trace)| {
            kind.options().cov.absorb(&cov);
            kind.options().trace.absorb(&trace);
            out.traced_bugs = kind.options().trace.snapshot();
            (out, cov)
        })
        .collect()
}

/// The one batch-sizing rule for the scheduled batch runners (the ACE hunt
/// stream loop and the suite runner used to each have their own).
///
/// * `total = Some(n)`: the whole workload set is known up front (suites) —
///   schedule it as a single batch; the scheduler partitions it internally,
///   so pre-chunking would only cut subtrees and cost prefix reuse.
/// * `total = None`, cache active: a fixed 64-workload lookahead window,
///   independent of the thread count so batch boundaries (and with them all
///   prefix counters) are identical for every `threads` value.
/// * `total = None`, cache inactive: `threads * 2`, just enough lookahead to
///   keep the sharded [`run_batch`] workers busy without over-speculating
///   past a stop-on-first winner.
pub fn sched_batch_len(threads: usize, cache_active: bool, total: Option<usize>) -> usize {
    let threads = threads.max(1);
    match total {
        Some(n) => n.max(1),
        None if cache_active => 64,
        None => threads * 2,
    }
}

/// Result of hunting one bug with one frontend.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// CPU time until the first violation.
    pub elapsed: Duration,
    /// Workloads executed until then.
    pub workloads: u64,
    /// Crash states checked until then.
    pub states: u64,
    /// The first report's violation class.
    pub class: String,
    /// The first report's one-line description.
    pub detail: String,
    /// The workload that triggered the find (input to shrinking and repro
    /// bundles).
    pub workload: Workload,
    /// The full first report.
    pub report: chipmunk::BugReport,
    /// Whether the injected bug's code path was traced during the finding
    /// run (ground-truth attribution).
    pub traced: bool,
    /// Crash states served from the dedup cache until the find.
    pub dedup_hits: u64,
    /// Crash states that reused cross-point artifacts until the find.
    pub memo_hits: u64,
    /// Behavioral classes claimed by a representative state until the find
    /// (see `TestConfig::rep_check`).
    pub rep_classes: u64,
    /// Crash states skipped because their class representative already
    /// checked clean, until the find.
    pub rep_skipped: u64,
    /// Crash states checked because their class representative reported a
    /// violation (class expansion), until the find.
    pub rep_expansions: u64,
    /// Workloads resumed from a cached execution prefix until the find.
    pub prefix_hits: u64,
    /// Oracle + record operations skipped by prefix resumes until the find.
    pub prefix_ops_saved: u64,
    /// Prefix subtrees the scheduler partitioned the batches into (summed
    /// over batches; thread-count-invariant).
    pub sched_subtrees: u64,
    /// Deepest within-subtree shared op prefix seen in any batch.
    pub sched_subtree_max_depth: u64,
    /// Cumulative `prefix_hits` per scheduler worker slot — describes the
    /// schedule, so (unlike every other field) it varies with the thread
    /// count. Empty when the scheduler never engaged.
    pub per_worker_prefix_hits: Vec<u64>,
    /// Checker-stage panics converted into `recovery-panic` findings until
    /// the find (see `TestConfig::sandbox`).
    pub recovery_panics: u64,
    /// Fuel-watchdog hangs converted into `recovery-hang` findings until
    /// the find.
    pub recovery_hangs: u64,
    /// Sandbox findings re-checked on the slow fresh-device path before
    /// being reported.
    pub sandbox_retries: u64,
    /// Crash states whose committed verdict involved an exhausted fuel
    /// budget.
    pub fuel_exhausted: u64,
    /// Oracle-diff node comparisons skipped by the shared-oracle hash fast
    /// path until the find (see `TestConfig::shared_oracle`).
    pub oracle_subtrees_pruned: u64,
    /// File-data bytes oracle snapshots shared with their predecessor
    /// instead of re-copying, until the find.
    pub oracle_snap_bytes_shared: u64,
    /// Host-I/O retries performed until the find. Always 0 from the
    /// in-memory harness; populated when a host-backed pipeline (the
    /// campaign store) carries these counters end to end.
    pub io_retries: u64,
    /// Committed artifacts quarantined as corrupt until the find (host
    /// pipeline only; 0 in-memory).
    pub tasks_quarantined: u64,
    /// 1 when the backing store entered read-only degraded mode (host
    /// pipeline only; 0 in-memory).
    pub degraded_mode: u64,
    /// Cumulative per-phase wall time over the committed workloads.
    pub phase: PhaseTotals,
}

/// Summed per-phase wall times across a set of workload runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotals {
    /// Stage 1: crash-free oracle runs.
    pub oracle: Duration,
    /// Stage 2: recorded runs through the write logger.
    pub record: Duration,
    /// Stage 3: crash-state construction and checking.
    pub check: Duration,
}

impl PhaseTotals {
    /// Adds one workload's timings.
    pub fn add(&mut self, t: &chipmunk::PhaseTimings) {
        self.oracle += t.oracle;
        self.record += t.record;
        self.check += t.check;
    }
}

struct AceHunt<'a> {
    bug: BugId,
    cfg: &'a TestConfig,
    max_seq3: usize,
}

impl WithKind for AceHunt<'_> {
    type Out = (Option<HuntResult>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let start = Instant::now();
        let mode = mode_for(kind.name());
        let mut workloads = 0u64;
        let mut states = 0u64;
        let mut dedup = 0u64;
        let mut memo = 0u64;
        let mut rep = [0u64; 3];
        let mut prefix = 0u64;
        let mut saved = 0u64;
        let mut subtrees = 0u64;
        let mut max_depth = 0u64;
        let mut sandbox_counts = [0u64; 4];
        let mut oracle_counts = [0u64; 2];
        let mut host_counts = [0u64; 3];
        let mut phase = PhaseTotals::default();
        let seq3: Box<dyn Iterator<Item = Workload>> = if mode == AceMode::Strong {
            Box::new(seq3_metadata().step_by(37).take(self.max_seq3))
        } else {
            Box::new(std::iter::empty())
        };
        let mut stream = seq1(mode).into_iter().chain(seq2(mode)).chain(seq3);
        // The ACE stream is a pure iterator (no feedback), so the batch size
        // is pure lookahead — it never affects which workload wins: the walk
        // below commits counters in stream order and stops at the first
        // report, discarding speculative results past it.
        let mut sched = Scheduler::new(&kind, self.cfg);
        let batch_len = sched_batch_len(self.cfg.threads, sched.is_active(), None);
        loop {
            let batch: Vec<Workload> = stream.by_ref().take(batch_len).collect();
            if batch.is_empty() {
                return (None, workloads, states);
            }
            let results = run_batch_cached(&kind, &batch, self.cfg, Some(&mut sched));
            for (w, (out, _cov)) in batch.iter().zip(results) {
                workloads += 1;
                states += out.crash_states;
                dedup += out.dedup_hits;
                memo += out.memo_hits;
                rep[0] += out.rep_classes;
                rep[1] += out.rep_skipped;
                rep[2] += out.rep_expansions;
                prefix += out.prefix_hits;
                saved += out.prefix_ops_saved;
                subtrees += out.sched_subtrees;
                max_depth = max_depth.max(out.sched_subtree_max_depth);
                sandbox_counts[0] += out.recovery_panics;
                sandbox_counts[1] += out.recovery_hangs;
                sandbox_counts[2] += out.sandbox_retries;
                sandbox_counts[3] += out.fuel_exhausted;
                oracle_counts[0] += out.oracle_subtrees_pruned;
                oracle_counts[1] += out.oracle_snap_bytes_shared;
                host_counts[0] += out.io_retries;
                host_counts[1] += out.tasks_quarantined;
                host_counts[2] += out.degraded_mode;
                phase.add(&out.timing);
                if let Some(r) = out.reports.first() {
                    return (
                        Some(HuntResult {
                            elapsed: start.elapsed(),
                            workloads,
                            states,
                            class: r.violation.class().to_string(),
                            detail: format!("{} @ {}", r.op_desc, r.violation.detail()),
                            workload: w.clone(),
                            report: r.clone(),
                            traced: out.traced_bugs.contains(&self.bug),
                            dedup_hits: dedup,
                            memo_hits: memo,
                            rep_classes: rep[0],
                            rep_skipped: rep[1],
                            rep_expansions: rep[2],
                            prefix_hits: prefix,
                            prefix_ops_saved: saved,
                            sched_subtrees: subtrees,
                            sched_subtree_max_depth: max_depth,
                            per_worker_prefix_hits: sched.per_worker_hits.clone(),
                            recovery_panics: sandbox_counts[0],
                            recovery_hangs: sandbox_counts[1],
                            sandbox_retries: sandbox_counts[2],
                            fuel_exhausted: sandbox_counts[3],
                            oracle_subtrees_pruned: oracle_counts[0],
                            oracle_snap_bytes_shared: oracle_counts[1],
                            io_retries: host_counts[0],
                            tasks_quarantined: host_counts[1],
                            degraded_mode: host_counts[2],
                            phase,
                        }),
                        workloads,
                        states,
                    );
                }
            }
        }
    }
}

/// Hunts `bug` (enabled in isolation) with the ACE frontend: seq-1, then
/// seq-2, then a deterministic sample of seq-3-metadata. Returns the find
/// (if any) plus total workloads and crash states examined.
pub fn hunt_with_ace(bug: BugId, cfg: &TestConfig, max_seq3: usize) -> (Option<HuntResult>, u64, u64) {
    let opts = FsOptions::with_bugs(BugSet::only(&[bug]));
    dispatch(bug.info().fs, opts, AceHunt { bug, cfg, max_seq3 })
}

struct FuzzHunt<'a> {
    bug: BugId,
    cfg: &'a TestConfig,
    seed: u64,
    budget: u64,
}

/// Fuzzer batch size. The fuzzer is *batch-synchronous*: it generates this
/// many workloads up front, tests them (possibly in parallel), then applies
/// coverage feedback in generation order before generating the next batch.
/// Fixed — never derived from the thread count — so the generation
/// trajectory is identical for every `TestConfig::threads` value.
pub(crate) const FUZZ_BATCH: usize = 8;

impl WithKind for FuzzHunt<'_> {
    type Out = (Option<HuntResult>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let start = Instant::now();
        let mut fuzzer = Fuzzer::new(self.seed, FuzzConfig::default());
        let mut seen = std::collections::HashSet::new();
        let mut states = 0u64;
        let mut dedup = 0u64;
        let mut memo = 0u64;
        let mut rep = [0u64; 3];
        let mut sandbox_counts = [0u64; 4];
        let mut oracle_counts = [0u64; 2];
        let mut host_counts = [0u64; 3];
        let mut phase = PhaseTotals::default();
        let mut done = 0u64;
        while done < self.budget {
            let n = FUZZ_BATCH.min((self.budget - done) as usize);
            let batch: Vec<Workload> = (0..n).map(|_| fuzzer.next_workload()).collect();
            let results = run_batch(&kind, &batch, self.cfg);
            for (w, (out, cov)) in batch.iter().zip(results) {
                done += 1;
                states += out.crash_states;
                dedup += out.dedup_hits;
                memo += out.memo_hits;
                rep[0] += out.rep_classes;
                rep[1] += out.rep_skipped;
                rep[2] += out.rep_expansions;
                sandbox_counts[0] += out.recovery_panics;
                sandbox_counts[1] += out.recovery_hangs;
                sandbox_counts[2] += out.sandbox_retries;
                sandbox_counts[3] += out.fuel_exhausted;
                oracle_counts[0] += out.oracle_subtrees_pruned;
                oracle_counts[1] += out.oracle_snap_bytes_shared;
                host_counts[0] += out.io_retries;
                host_counts[1] += out.tasks_quarantined;
                host_counts[2] += out.degraded_mode;
                phase.add(&out.timing);
                let mut new = 0;
                for &h in &cov {
                    if seen.insert(h) {
                        new += 1;
                    }
                }
                fuzzer.feedback(w, new);
                if let Some(r) = out.reports.first() {
                    return (
                        Some(HuntResult {
                            elapsed: start.elapsed(),
                            workloads: done,
                            states,
                            class: r.violation.class().to_string(),
                            detail: format!("{} @ {}", r.op_desc, r.violation.detail()),
                            workload: w.clone(),
                            report: r.clone(),
                            traced: out.traced_bugs.contains(&self.bug),
                            dedup_hits: dedup,
                            memo_hits: memo,
                            rep_classes: rep[0],
                            rep_skipped: rep[1],
                            rep_expansions: rep[2],
                            prefix_hits: 0,
                            prefix_ops_saved: 0,
                            sched_subtrees: 0,
                            sched_subtree_max_depth: 0,
                            per_worker_prefix_hits: Vec::new(),
                            recovery_panics: sandbox_counts[0],
                            recovery_hangs: sandbox_counts[1],
                            sandbox_retries: sandbox_counts[2],
                            fuel_exhausted: sandbox_counts[3],
                            oracle_subtrees_pruned: oracle_counts[0],
                            oracle_snap_bytes_shared: oracle_counts[1],
                            io_retries: host_counts[0],
                            tasks_quarantined: host_counts[1],
                            degraded_mode: host_counts[2],
                            phase,
                        }),
                        done,
                        states,
                    );
                }
            }
        }
        (None, self.budget, states)
    }
}

/// Hunts `bug` (enabled in isolation) with the fuzzer frontend under the
/// paper's fuzzing configuration (crash-state cap of two, early exit).
pub fn hunt_with_fuzzer(
    bug: BugId,
    cfg: &TestConfig,
    seed: u64,
    budget: u64,
) -> (Option<HuntResult>, u64, u64) {
    let opts = FsOptions {
        bugs: BugSet::only(&[bug]),
        cov: Cov::enabled(),
        ..Default::default()
    };
    dispatch(bug.info().fs, opts, FuzzHunt { bug, cfg, seed, budget })
}

struct SuiteRun<'a> {
    workloads: Vec<Workload>,
    cfg: &'a TestConfig,
}

/// Aggregate counters from running a suite.
#[derive(Debug, Default, Clone)]
pub struct SuiteStats {
    /// Workloads executed.
    pub workloads: u64,
    /// Crash points visited.
    pub crash_points: u64,
    /// Crash states checked.
    pub crash_states: u64,
    /// Violations reported.
    pub reports: u64,
    /// Crash states served from the dedup cache.
    pub dedup_hits: u64,
    /// Crash states that reused cross-point artifacts.
    pub memo_hits: u64,
    /// Behavioral classes claimed by a representative state (see
    /// `TestConfig::rep_check`).
    pub rep_classes: u64,
    /// Crash states skipped because their class representative already
    /// checked clean.
    pub rep_skipped: u64,
    /// Crash states checked because their class representative reported a
    /// violation (class expansion).
    pub rep_expansions: u64,
    /// Workloads resumed from a cached execution prefix.
    pub prefix_hits: u64,
    /// Oracle + record operations skipped by prefix resumes.
    pub prefix_ops_saved: u64,
    /// Prefix subtrees the scheduler partitioned the suite into (summed over
    /// batches; thread-count-invariant).
    pub sched_subtrees: u64,
    /// Deepest within-subtree shared op prefix seen in any batch.
    pub sched_subtree_max_depth: u64,
    /// Cumulative `prefix_hits` per scheduler worker slot. Varies with the
    /// thread count by nature (it describes the schedule, not the results) —
    /// keep it out of determinism fingerprints.
    pub per_worker_prefix_hits: Vec<u64>,
    /// Checker-stage panics converted into `recovery-panic` findings.
    pub recovery_panics: u64,
    /// Fuel-watchdog hangs converted into `recovery-hang` findings.
    pub recovery_hangs: u64,
    /// Sandbox findings re-checked on the slow fresh-device path.
    pub sandbox_retries: u64,
    /// Crash states whose committed verdict involved an exhausted fuel
    /// budget.
    pub fuel_exhausted: u64,
    /// Oracle-diff node comparisons skipped by the shared-oracle hash fast
    /// path (see `TestConfig::shared_oracle`).
    pub oracle_subtrees_pruned: u64,
    /// File-data bytes oracle snapshots shared with their predecessor
    /// instead of re-copying.
    pub oracle_snap_bytes_shared: u64,
    /// Host-I/O retries (0 from the in-memory harness; carried for the
    /// campaign store's host-level counter pipeline).
    pub io_retries: u64,
    /// Committed artifacts quarantined as corrupt (0 in-memory).
    pub tasks_quarantined: u64,
    /// 1 when the backing store entered read-only degraded mode (0
    /// in-memory).
    pub degraded_mode: u64,
    /// Cumulative per-phase wall times.
    pub phase: PhaseTotals,
    /// Every violation report, in workload order (determinism witnesses
    /// compare these across thread counts).
    pub bug_reports: Vec<BugReport>,
    /// In-flight write counts at each crash point.
    pub inflight: Vec<usize>,
    /// Wall time.
    pub elapsed: Duration,
}

impl WithKind for SuiteRun<'_> {
    type Out = SuiteStats;

    fn call<K: FsKind>(self, kind: K) -> SuiteStats {
        let start = Instant::now();
        let mut s = SuiteStats::default();
        let mut sched = Scheduler::new(&kind, self.cfg);
        // The whole suite is one scheduled batch (`total = Some(..)`): the
        // scheduler partitions it into subtrees internally, so pre-chunking
        // would only cut subtrees at arbitrary boundaries and lose reuse.
        let chunk = sched_batch_len(self.cfg.threads, sched.is_active(), Some(self.workloads.len()));
        for batch in self.workloads.chunks(chunk) {
            for (out, _cov) in run_batch_cached(&kind, batch, self.cfg, Some(&mut sched)) {
                s.workloads += 1;
                s.crash_points += out.crash_points;
                s.crash_states += out.crash_states;
                s.dedup_hits += out.dedup_hits;
                s.memo_hits += out.memo_hits;
                s.rep_classes += out.rep_classes;
                s.rep_skipped += out.rep_skipped;
                s.rep_expansions += out.rep_expansions;
                s.prefix_hits += out.prefix_hits;
                s.prefix_ops_saved += out.prefix_ops_saved;
                s.sched_subtrees += out.sched_subtrees;
                s.sched_subtree_max_depth = s.sched_subtree_max_depth.max(out.sched_subtree_max_depth);
                s.recovery_panics += out.recovery_panics;
                s.recovery_hangs += out.recovery_hangs;
                s.sandbox_retries += out.sandbox_retries;
                s.fuel_exhausted += out.fuel_exhausted;
                s.oracle_subtrees_pruned += out.oracle_subtrees_pruned;
                s.oracle_snap_bytes_shared += out.oracle_snap_bytes_shared;
                s.io_retries += out.io_retries;
                s.tasks_quarantined += out.tasks_quarantined;
                s.degraded_mode += out.degraded_mode;
                s.phase.add(&out.timing);
                s.reports += out.reports.len() as u64;
                s.bug_reports.extend(out.reports);
                s.inflight.extend(out.inflight_sizes);
            }
        }
        s.per_worker_prefix_hits = sched.per_worker_hits;
        s.elapsed = start.elapsed();
        s
    }
}

/// Runs a workload suite on `fs` with the given bug set, returning
/// aggregate statistics.
pub fn run_suite(
    fs: FsName,
    bugs: BugSet,
    workloads: Vec<Workload>,
    cfg: &TestConfig,
) -> SuiteStats {
    dispatch(fs, FsOptions::with_bugs(bugs), SuiteRun { workloads, cfg })
}

/// The five strong-guarantee systems of the evaluation, in Table 1 order.
pub const STRONG_SYSTEMS: [FsName; 5] = [
    FsName::Nova,
    FsName::NovaFortis,
    FsName::Pmfs,
    FsName::WineFs,
    FsName::SplitFs,
];

/// Formats a duration compactly for tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

/// Minimal JSON document builder for the binaries' `--json` flags (the
/// workspace is dependency-frozen, so no serde).
pub mod jsonout {
    /// Writes `contents` to `path` atomically: the bytes go to a `.tmp`
    /// sibling first and are renamed over the target only once fully
    /// written, so a failure mid-write leaves any existing file at `path`
    /// untouched (the binaries overwrite baseline artifacts in place).
    ///
    /// The temp file is fsynced before the rename and the parent directory
    /// after it — without the directory fsync the rename itself is not
    /// durable, so a real crash could lose the "atomically" written file
    /// (the very bug class this workspace exists to catch).
    ///
    /// Delegates to the process-wide passthrough
    /// [`crate::campaign::hostio::HostCtx`], so every artifact emitter in
    /// the workspace goes through the same audited write path as the
    /// campaign store (fault injection exercises that path directly in the
    /// `hostio` tests).
    pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
        write_atomic_bytes(path, contents.as_bytes())
    }

    /// [`write_atomic`] for binary contents (the campaign store's coverage
    /// bitmaps are raw bit arrays, not JSON).
    pub fn write_atomic_bytes(path: &str, contents: &[u8]) -> std::io::Result<()> {
        crate::campaign::hostio::default_ctx()
            .write_atomic(std::path::Path::new(path), contents)
            .map_err(std::io::Error::other)
    }

    /// A JSON value. Objects preserve field order.
    pub enum Json {
        /// A float, rendered with millisecond-scale precision.
        F(f64),
        /// An unsigned integer.
        U(u64),
        /// A boolean.
        B(bool),
        /// A string (escaped on render).
        S(String),
        /// `null`.
        Null,
        /// An array.
        Arr(Vec<Json>),
        /// An object.
        Obj(Vec<(&'static str, Json)>),
    }

    /// Escapes `v` into `out` as a JSON string literal (quotes included).
    /// Shared by both emitters so object keys and values escape identically.
    fn escape_str(out: &mut String, v: &str) {
        out.push('"');
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl Json {
        /// Renders the document with two-space indentation and a trailing
        /// newline.
        pub fn render(&self) -> String {
            let mut s = String::new();
            self.write(&mut s, 0);
            s.push('\n');
            s
        }

        fn write(&self, out: &mut String, ind: usize) {
            let pad = |n: usize| "  ".repeat(n);
            match self {
                Json::F(v) => out.push_str(&format!("{v:.6}")),
                Json::U(v) => out.push_str(&v.to_string()),
                Json::B(v) => out.push_str(if *v { "true" } else { "false" }),
                Json::Null => out.push_str("null"),
                Json::S(v) => escape_str(out, v),
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad(ind + 1));
                        item.write(out, ind + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&pad(ind));
                    out.push(']');
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        out.push_str(&pad(ind + 1));
                        escape_str(out, k);
                        out.push_str(": ");
                        v.write(out, ind + 1);
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&pad(ind));
                    out.push('}');
                }
            }
        }
    }

    /// A parsed JSON value, as read back from a document on disk. Distinct
    /// from the writer type [`Json`] (whose object keys are `&'static str`,
    /// which parser output cannot provide).
    #[derive(Debug, Clone, PartialEq)]
    pub enum JVal {
        /// Any number (integers included; JSON does not distinguish).
        Num(f64),
        /// A string.
        Str(String),
        /// A boolean.
        Bool(bool),
        /// `null`.
        Null,
        /// An array.
        Arr(Vec<JVal>),
        /// An object (field order preserved).
        Obj(Vec<(String, JVal)>),
    }

    impl JVal {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&JVal> {
            match self {
                JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JVal::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload as an unsigned integer, if exact.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// The numeric payload.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JVal::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The array payload, if this is an array.
        pub fn as_arr(&self) -> Option<&[JVal]> {
            match self {
                JVal::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The boolean payload, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                JVal::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Renders the value back to compact (single-line) JSON such that
        /// `parse(v.render()) == v` for every parseable value. The campaign
        /// journal depends on this: each checkpoint is one line, so the
        /// emitter must never produce embedded newlines (strings escape
        /// them) and numbers must round-trip exactly — floats use Rust's
        /// shortest-exact `Display` form, not a fixed precision. Non-finite
        /// floats (which [`parse`] can never produce) render as `null`.
        pub fn render(&self) -> String {
            let mut s = String::new();
            self.render_into(&mut s);
            s
        }

        fn render_into(&self, out: &mut String) {
            match self {
                JVal::Num(n) if n.is_finite() => {
                    out.push_str(&format!("{n}"));
                }
                JVal::Num(_) => out.push_str("null"),
                JVal::Str(s) => escape_str(out, s),
                JVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                JVal::Null => out.push_str("null"),
                JVal::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.render_into(out);
                    }
                    out.push(']');
                }
                JVal::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        escape_str(out, k);
                        out.push(':');
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    /// Parses a JSON document (recursive descent; the workspace is
    /// dependency-frozen, so no serde). Trailing garbage is an error.
    pub fn parse(s: &str) -> Result<JVal, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match parse_value(b, pos)? {
                        JVal::Str(s) => s,
                        _ => return Err(format!("object key must be a string at byte {}", *pos)),
                    };
                    skip_ws(b, pos);
                    expect(b, pos, b':')?;
                    // Duplicate keys are ambiguous (which one does `get`
                    // mean?) and a classic smuggling vector; the journal and
                    // corpus readers must never see them resolve silently.
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate object key {key:?} at byte {}", *pos));
                    }
                    fields.push((key, parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(JVal::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => parse_string(b, pos).map(JVal::Str),
            Some(b't') => parse_lit(b, pos, "true").map(|_| JVal::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false").map(|_| JVal::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null").map(|_| JVal::Null),
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number bytes");
        // Reject forms `f64::from_str` accepts but JSON does not (leading
        // zeros, bare '.', 'inf', ...): digits with optional sign, fraction,
        // exponent only.
        let ok = {
            let t = text.strip_prefix('-').unwrap_or(text);
            let (mant, exp) = match t.split_once(['e', 'E']) {
                Some((m, e)) => (m, Some(e)),
                None => (t, None),
            };
            let (int, frac) = match mant.split_once('.') {
                Some((i, f)) => (i, Some(f)),
                None => (mant, None),
            };
            let int_ok = int == "0"
                || (!int.is_empty()
                    && !int.starts_with('0')
                    && int.bytes().all(|c| c.is_ascii_digit()));
            let frac_ok =
                frac.is_none_or(|f| !f.is_empty() && f.bytes().all(|c| c.is_ascii_digit()));
            let exp_ok = exp.is_none_or(|e| {
                let e = e.strip_prefix(['+', '-']).unwrap_or(e);
                !e.is_empty() && e.bytes().all(|c| c.is_ascii_digit())
            });
            int_ok && frac_ok && exp_ok
        };
        if !ok {
            return Err(format!("invalid number {text:?} at byte {start}"));
        }
        text.parse::<f64>()
            .map(JVal::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".into());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // The writer only emits \u for control chars, so
                            // surrogate pairs are out of scope; reject them
                            // rather than decode wrongly.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| format!("unpaired surrogate \\u{cp:04x}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn atomic_write_survives_mid_write_failure() {
            // The mid-write fault matrix (short writes, EIO, torn appends,
            // lying writes) lives in `campaign::hostio`'s tests against the
            // same context this function delegates to; here we only pin the
            // caller-visible contract: overwrite-in-place works and leaves
            // no temp file behind.
            let dir = std::env::temp_dir();
            let path = dir
                .join(format!("chipmunk-atomic-{}.json", std::process::id()))
                .to_string_lossy()
                .into_owned();
            write_atomic(&path, "{\"old\": true}\n").expect("initial write");
            write_atomic(&path, "{\"new\": true}\n").expect("second write");
            assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"new\": true}\n");
            assert!(
                !std::path::Path::new(&format!("{path}.tmp")).exists(),
                "temp file must not outlive the rename"
            );
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn atomic_write_syncs_parent_directory() {
            // The rename is only durable once the parent directory is
            // fsynced; exercise both parent shapes (explicit directory and
            // a bare filename, whose parent resolves to ".").
            let dir = std::env::temp_dir().join(format!("chipmunk-dirsync-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let nested = dir.join("out.json").to_string_lossy().into_owned();
            write_atomic(&nested, "{}\n").expect("write in fresh directory");
            assert_eq!(std::fs::read_to_string(&nested).unwrap(), "{}\n");
            let bare = format!("chipmunk-bare-{}.json", std::process::id());
            write_atomic(&bare, "{}\n").expect("'.' parent fallback must sync");
            let _ = std::fs::remove_file(&bare);
            let _ = std::fs::remove_file(&nested);
            let _ = std::fs::remove_dir(&dir);
        }

        #[test]
        fn parse_round_trips_rendered_documents() {
            let doc = Json::Obj(vec![
                ("num", Json::U(42)),
                ("neg", Json::F(-1.5)),
                ("s", Json::S("a \"quoted\"\nline\ttab \\ unicode \u{1f600}".into())),
                ("b", Json::B(true)),
                ("nothing", Json::Null),
                ("arr", Json::Arr(vec![Json::U(1), Json::U(2), Json::Arr(vec![])])),
                ("obj", Json::Obj(vec![("k", Json::S("v".into()))])),
                ("empty", Json::Obj(vec![])),
            ]);
            let v = parse(&doc.render()).expect("parse rendered doc");
            assert_eq!(v.get("num").and_then(JVal::as_u64), Some(42));
            assert_eq!(v.get("neg").and_then(JVal::as_f64), Some(-1.5));
            assert_eq!(
                v.get("s").and_then(JVal::as_str),
                Some("a \"quoted\"\nline\ttab \\ unicode \u{1f600}")
            );
            assert_eq!(v.get("b"), Some(&JVal::Bool(true)));
            assert_eq!(v.get("nothing"), Some(&JVal::Null));
            let arr = v.get("arr").and_then(JVal::as_arr).unwrap();
            assert_eq!(arr.len(), 3);
            assert_eq!(v.get("obj").and_then(|o| o.get("k")).and_then(JVal::as_str), Some("v"));
            assert!(v.get("missing").is_none());
        }

        #[test]
        fn parse_rejects_malformed_documents() {
            for bad in [
                "", "{", "}", "[1,", "{\"k\": }", "{\"k\" 1}", "tru", "\"unterminated",
                "\"bad \\q escape\"", "01x", "{\"a\":1} trailing",
            ] {
                assert!(parse(bad).is_err(), "{bad:?} must not parse");
            }
        }
    }
}

/// Pulls a `--json <path>` flag out of a raw argument list (any position),
/// leaving the positional arguments in place.
pub fn take_json_flag(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--json")?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        None
    }
}

/// Serializes one frontend's hunt result (or a miss) for the `--json`
/// outputs: per-phase wall times, cache-layer hit counters, and throughput.
pub fn hunt_json(hit: Option<&HuntResult>, workloads: u64, states: u64) -> jsonout::Json {
    use jsonout::Json;
    let mut f = vec![
        ("found", Json::B(hit.is_some())),
        ("workloads", Json::U(workloads)),
        ("states", Json::U(states)),
    ];
    if let Some(h) = hit {
        let secs = h.elapsed.as_secs_f64();
        f.extend([
            ("seconds", Json::F(secs)),
            ("states_per_sec", Json::F(h.states as f64 / secs.max(1e-9))),
            ("class", Json::S(h.class.clone())),
            ("detail", Json::S(h.detail.clone())),
            ("traced", Json::B(h.traced)),
            ("dedup_hits", Json::U(h.dedup_hits)),
            ("memo_hits", Json::U(h.memo_hits)),
            ("rep_classes", Json::U(h.rep_classes)),
            ("rep_skipped", Json::U(h.rep_skipped)),
            ("rep_expansions", Json::U(h.rep_expansions)),
            ("prefix_hits", Json::U(h.prefix_hits)),
            ("prefix_ops_saved", Json::U(h.prefix_ops_saved)),
            ("subtrees", Json::U(h.sched_subtrees)),
            ("subtree_max_depth", Json::U(h.sched_subtree_max_depth)),
            ("recovery_panics", Json::U(h.recovery_panics)),
            ("recovery_hangs", Json::U(h.recovery_hangs)),
            ("sandbox_retries", Json::U(h.sandbox_retries)),
            ("fuel_exhausted", Json::U(h.fuel_exhausted)),
            ("oracle_subtrees_pruned", Json::U(h.oracle_subtrees_pruned)),
            ("oracle_snap_bytes_shared", Json::U(h.oracle_snap_bytes_shared)),
            ("io_retries", Json::U(h.io_retries)),
            ("tasks_quarantined", Json::U(h.tasks_quarantined)),
            ("degraded_mode", Json::U(h.degraded_mode)),
            (
                "per_worker_prefix_hits",
                Json::Arr(h.per_worker_prefix_hits.iter().map(|&v| Json::U(v)).collect()),
            ),
            ("oracle_seconds", Json::F(h.phase.oracle.as_secs_f64())),
            ("record_seconds", Json::F(h.phase.record.as_secs_f64())),
            ("check_seconds", Json::F(h.phase.check.as_secs_f64())),
        ]);
    }
    Json::Obj(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reaches_each_fs() {
        struct NameOf;
        impl WithKind for NameOf {
            type Out = FsName;
            fn call<K: FsKind>(self, kind: K) -> FsName {
                kind.name()
            }
        }
        for fs in STRONG_SYSTEMS.into_iter().chain([FsName::Ext4Dax, FsName::XfsDax]) {
            assert_eq!(dispatch(fs, FsOptions::fixed(), NameOf), fs);
        }
    }

    #[test]
    fn ace_hunt_finds_an_easy_bug_quickly() {
        let cfg = TestConfig { stop_on_first: true, ..TestConfig::default() };
        let (hit, workloads, _) = hunt_with_ace(BugId::B04, &cfg, 0);
        let hit = hit.expect("bug 4 must fall to ACE");
        assert!(hit.traced);
        assert_eq!(hit.class, "atomicity");
        assert!(workloads <= 56 + 3136);
    }

    #[test]
    fn one_batch_sizing_rule() {
        // Known totals (suites): the whole set, whatever the threads.
        assert_eq!(sched_batch_len(1, true, Some(3192)), 3192);
        assert_eq!(sched_batch_len(8, false, Some(10)), 10);
        assert_eq!(sched_batch_len(4, true, Some(0)), 1, "empty suites stay harmless");
        // Streams with a live cache: a fixed lookahead window, independent
        // of the thread count so prefix counters match across thread counts.
        for t in [0, 1, 2, 8, 32] {
            assert_eq!(sched_batch_len(t, true, None), 64);
        }
        // Streams without a cache: just enough lookahead for the shards.
        assert_eq!(sched_batch_len(1, false, None), 2);
        assert_eq!(sched_batch_len(8, false, None), 16);
        assert_eq!(sched_batch_len(0, false, None), 2, "threads are clamped to 1");
    }

    #[test]
    fn suite_identical_with_and_without_prefix_cache() {
        let ws: Vec<Workload> = seq1(AceMode::Strong).into_iter().take(8).collect();
        let bugs = BugSet::only(&[BugId::B02]);
        let on = TestConfig::default();
        let off = TestConfig { prefix_cache: false, ..TestConfig::default() };
        let a = run_suite(FsName::Nova, bugs, ws.clone(), &on);
        let b = run_suite(FsName::Nova, bugs, ws, &off);
        assert!(a.prefix_hits > 0, "cache must engage on the serial path");
        assert_eq!(b.prefix_hits, 0);
        assert_eq!(a.crash_points, b.crash_points);
        assert_eq!(a.crash_states, b.crash_states);
        assert_eq!(a.dedup_hits, b.dedup_hits);
        assert_eq!(a.memo_hits, b.memo_hits);
        assert_eq!(a.inflight, b.inflight);
        assert_eq!(
            format!("{:?}", a.bug_reports),
            format!("{:?}", b.bug_reports),
            "violations must be bit-identical with the cache on"
        );
    }

    #[test]
    fn suite_stats_accumulate() {
        let cfg = TestConfig::default();
        let ws = seq1(AceMode::Strong).into_iter().take(5).collect();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws, &cfg);
        assert_eq!(s.workloads, 5);
        assert!(s.crash_states > 0);
        assert_eq!(s.reports, 0);
        assert_eq!(s.inflight.len() as u64, s.crash_points);
    }
}
