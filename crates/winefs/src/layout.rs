//! On-device layout for the WineFS analogue (PMFS-derived, with a bank of
//! per-CPU journal blocks).

use vfs::{FsError, FsResult};

/// Block size in bytes.
pub const BLOCK: u64 = 4096;

/// Superblock magic ("WINEFS21").
pub const MAGIC: u64 = u64::from_le_bytes(*b"WINEFS21");

/// Inode size in bytes.
pub const INODE_SIZE: u64 = 128;

/// Direct pointers per inode.
pub const NDIRECT: usize = 12;

/// Pointers per indirect block.
pub const PTRS_PER_BLOCK: u64 = BLOCK / 8;

/// Maximum file size in blocks.
pub const MAX_FILE_BLOCKS: u64 = NDIRECT as u64 + PTRS_PER_BLOCK;

/// Directory entry size.
pub const DENTRY_SIZE: u64 = 56;

/// Dentry slots per block.
pub const SLOTS_PER_BLOCK: u64 = BLOCK / DENTRY_SIZE;

/// Maximum dentry name length.
pub const DENTRY_NAME_MAX: usize = 47;

/// The root inode.
pub const ROOT_INO: u64 = 1;

/// Default number of per-CPU journals.
pub const DEFAULT_CPUS: usize = 4;

/// Superblock field offsets.
pub mod sboff {
    /// Magic (u64).
    pub const MAGIC: u64 = 0;
    /// Total blocks (u64).
    pub const TOTAL_BLOCKS: u64 = 8;
    /// Inode count (u64).
    pub const INODE_COUNT: u64 = 16;
    /// First journal block (u64).
    pub const JOURNALS: u64 = 24;
    /// Number of per-CPU journals (u64).
    pub const NJOURNALS: u64 = 32;
    /// Truncate-list block (u64).
    pub const TLIST: u64 = 40;
    /// Inode table start block (u64).
    pub const ITABLE: u64 = 48;
    /// First allocatable block (u64).
    pub const DATA_START: u64 = 56;
    /// Strict-mode flag (u64).
    pub const STRICT: u64 = 64;
}

/// Inode field offsets (same shape as PMFS, its ancestor).
pub mod ioff {
    /// File type tag (u64).
    pub const FTYPE: u64 = 0;
    /// Link count (u64).
    pub const NLINK: u64 = 8;
    /// Size in bytes (u64).
    pub const SIZE: u64 = 16;
    /// Indirect block pointer (u64).
    pub const INDIRECT: u64 = 24;
    /// First direct pointer (12 × u64).
    pub const DIRECT: u64 = 32;
}

/// Inode type tags.
pub mod itype {
    /// Free slot.
    pub const FREE: u64 = 0;
    /// Regular file.
    pub const FILE: u64 = 1;
    /// Directory.
    pub const DIR: u64 = 2;
    /// Poisoned at recovery (referenced but uninitialized metadata).
    pub const POISONED: u64 = 99;
}

/// Truncate-list record fields.
pub mod tlist {
    /// Inode under truncation (0 = disarmed).
    pub const INO: u64 = 0;
    /// Target size.
    pub const SIZE: u64 = 8;
    /// Flags.
    pub const FLAGS: u64 = 16;
    /// Flag: free the inode afterwards.
    pub const F_FREE_INODE: u64 = 1;
}

/// Computed device geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total blocks.
    pub total_blocks: u64,
    /// Inode count.
    pub inode_count: u64,
    /// First journal block.
    pub journals: u64,
    /// Number of per-CPU journals.
    pub njournals: u64,
    /// Truncate-list block.
    pub tlist: u64,
    /// Inode table start.
    pub itable: u64,
    /// First allocatable block.
    pub data_start: u64,
}

impl Geometry {
    /// Computes the layout for `size` bytes and `cpus` journals.
    pub fn for_device(size: u64, cpus: usize) -> FsResult<Geometry> {
        let total_blocks = size / BLOCK;
        if total_blocks < 48 {
            return Err(FsError::NoSpace);
        }
        let njournals = cpus.max(1) as u64;
        let journals = 1;
        let tlist = journals + njournals;
        let itable = tlist + 1;
        let inode_count = (total_blocks / 4).clamp(64, 2048);
        let itable_blocks = (inode_count * INODE_SIZE).div_ceil(BLOCK);
        let data_start = itable + itable_blocks;
        if data_start + 8 > total_blocks {
            return Err(FsError::NoSpace);
        }
        Ok(Geometry { total_blocks, inode_count, journals, njournals, tlist, itable, data_start })
    }

    /// Device byte offset of inode `ino`.
    pub fn inode_off(&self, ino: u64) -> u64 {
        debug_assert!(ino >= 1 && ino <= self.inode_count);
        self.itable * BLOCK + (ino - 1) * INODE_SIZE
    }

    /// The journal block for `cpu`.
    pub fn journal_block(&self, cpu: usize) -> u64 {
        self.journals + (cpu as u64 % self.njournals)
    }

    /// Dentry slot location: (file block index, offset within block).
    pub fn slot_loc(slot: u64) -> (u64, u64) {
        (slot / SLOTS_PER_BLOCK, (slot % SLOTS_PER_BLOCK) * DENTRY_SIZE)
    }
}

/// Serialized directory entry (ino 0 = free slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDentry {
    /// Target inode.
    pub ino: u64,
    /// Entry name.
    pub name: String,
}

impl RawDentry {
    /// Encodes to the 56-byte on-disk form.
    pub fn encode(&self) -> [u8; DENTRY_SIZE as usize] {
        let mut b = [0u8; DENTRY_SIZE as usize];
        b[0..8].copy_from_slice(&self.ino.to_le_bytes());
        b[8] = self.name.len() as u8;
        b[9..9 + self.name.len()].copy_from_slice(self.name.as_bytes());
        b
    }

    /// Decodes; `None` for a free slot.
    pub fn decode(b: &[u8]) -> Option<RawDentry> {
        let ino = u64::from_le_bytes(b[0..8].try_into().ok()?);
        if ino == 0 {
            return None;
        }
        let n = (b[8] as usize).min(DENTRY_NAME_MAX);
        Some(RawDentry { ino, name: String::from_utf8_lossy(&b[9..9 + n]).into_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_with_journal_bank() {
        let g = Geometry::for_device(8 << 20, 4).unwrap();
        assert_eq!(g.njournals, 4);
        assert_eq!(g.journal_block(0), g.journals);
        assert_eq!(g.journal_block(3), g.journals + 3);
        assert_eq!(g.journal_block(5), g.journals + 1); // wraps
        assert!(g.tlist > g.journal_block(3));
        assert!(g.data_start < g.total_blocks);
    }

    #[test]
    fn dentry_roundtrip() {
        let d = RawDentry { ino: 3, name: "w".into() };
        assert_eq!(RawDentry::decode(&d.encode()), Some(d));
    }
}
