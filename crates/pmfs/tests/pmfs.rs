//! Functional, crash, and per-bug tests for the PMFS analogue.

use chipmunk::{test_workload, TestConfig};
use pmem::PmDevice;
use pmfs::{Pmfs, PmfsKind};
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet, FsError, Op, OpenFlags, Workload,
};

const DEV: u64 = 4 * 1024 * 1024;

fn fixed_kind() -> PmfsKind {
    PmfsKind { opts: FsOptions::fixed() }
}

fn kind_with(bugs: &[BugId]) -> PmfsKind {
    PmfsKind { opts: FsOptions::with_bugs(BugSet::only(bugs)) }
}

fn fresh(kind: &PmfsKind) -> Pmfs<PmDevice> {
    kind.mkfs(PmDevice::new(DEV)).unwrap()
}

fn crash_and_remount(kind: &PmfsKind, fs: Pmfs<PmDevice>) -> Result<Pmfs<PmDevice>, FsError> {
    let img = fs.into_device().persistent_image().to_vec();
    kind.mount(PmDevice::from_image(img))
}

#[test]
fn basic_roundtrip_and_synchrony() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[7u8; 5000]).unwrap();
    fs.close(fd).unwrap();
    // Every op synchronous: crash + remount preserves everything.
    let mut fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.read_file("/d/f").unwrap(), vec![7u8; 5000]);
    assert_eq!(fs.stat("/d").unwrap().nlink, 2);
    fs.link("/d/f", "/g").unwrap();
    fs.rename("/g", "/h").unwrap();
    fs.truncate("/d/f", 100).unwrap();
    let fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.stat("/h").unwrap().nlink, 2);
    assert_eq!(fs.read_file("/d/f").unwrap(), vec![7u8; 100]);
}

#[test]
fn in_place_overwrite() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[1u8; 1000]).unwrap();
    fs.pwrite(fd, 500, &[2u8; 1000]).unwrap();
    fs.close(fd).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..500], &[1u8; 500][..]);
    assert_eq!(&data[500..1500], &[2u8; 1000][..]);
}

#[test]
fn truncate_shrink_extend_zeroes() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[9u8; 6000]).unwrap();
    fs.close(fd).unwrap();
    fs.truncate("/f", 123).unwrap();
    fs.truncate("/f", 6000).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..123], &[9u8; 123][..]);
    assert!(data[123..].iter().all(|&b| b == 0));
}

#[test]
fn indirect_blocks_and_large_files() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/big", OpenFlags::CREAT_TRUNC).unwrap();
    let data: Vec<u8> = (0..80_000u32).map(|i| (i % 249 + 1) as u8).collect();
    fs.pwrite(fd, 0, &data).unwrap();
    fs.close(fd).unwrap();
    let fs2 = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs2.read_file("/big").unwrap(), data);
    // Shrink into the indirect range, then below it.
    let mut fs2 = fs2;
    fs2.truncate("/big", 60_000).unwrap();
    fs2.truncate("/big", 2_000).unwrap();
    let fs3 = crash_and_remount(&kind, fs2).unwrap();
    assert_eq!(fs3.read_file("/big").unwrap(), data[..2000]);
}

#[test]
fn deferred_deletion_reclaims_space() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    for round in 0..8 {
        let p = format!("/f{round}");
        let fd = fs.open(&p, OpenFlags::CREAT_TRUNC).unwrap();
        fs.pwrite(fd, 0, &vec![1u8; 100_000]).unwrap();
        fs.close(fd).unwrap();
        fs.unlink(&p).unwrap();
    }
    let fs2 = crash_and_remount(&kind, fs).unwrap();
    assert!(fs2.readdir("/").unwrap().is_empty());
}

#[test]
fn falloc_zero_range_and_punch() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[5u8; 10000]).unwrap();
    fs.fallocate(fd, vfs::FallocMode::ZeroRange, 100, 200).unwrap();
    fs.fallocate(fd, vfs::FallocMode::PunchHole, 4096, 4096).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert!(data[100..300].iter().all(|&b| b == 0));
    assert!(data[4096..8192].iter().all(|&b| b == 0));
    assert_eq!(data[0], 5);
    assert_eq!(data[9000], 5);
    fs.close(fd).unwrap();
}

// ---- chipmunk pipeline ----

fn wl(name: &str, ops: Vec<Op>) -> Workload {
    Workload::new(name, ops)
}

#[test]
fn fixed_pmfs_passes_core_workloads() {
    let kind = fixed_kind();
    let workloads = vec![
        wl("creat", vec![Op::Creat { path: "/A".into() }]),
        wl(
            "write-overwrite",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 1000 },
                Op::WritePath { path: "/f".into(), off: 500, size: 1000 },
            ],
        ),
        wl(
            "link-unlink",
            vec![
                Op::Creat { path: "/f".into() },
                Op::Link { old: "/f".into(), new: "/g".into() },
                Op::Unlink { path: "/f".into() },
                Op::Unlink { path: "/g".into() },
            ],
        ),
        wl(
            "rename-replace",
            vec![
                Op::WritePath { path: "/a".into(), off: 0, size: 256 },
                Op::Creat { path: "/b".into() },
                Op::Rename { old: "/a".into(), new: "/b".into() },
            ],
        ),
        wl(
            "mkdir-rmdir",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::Mkdir { path: "/d/e".into() },
                Op::Rmdir { path: "/d/e".into() },
                Op::Rmdir { path: "/d".into() },
            ],
        ),
        wl(
            "truncate",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
                Op::Truncate { path: "/f".into(), size: 128 },
            ],
        ),
        wl(
            "falloc",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 3000 },
                Op::FallocPath {
                    path: "/f".into(),
                    mode: vfs::FallocMode::ZeroRange,
                    off: 100,
                    len: 500,
                },
            ],
        ),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed PMFS violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        assert!(out.crash_states > 0);
    }
}

#[test]
fn bug13_truncate_list_unmountable() {
    let kind = kind_with(&[BugId::B13]);
    let w = wl(
        "b13",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
            Op::Truncate { path: "/f".into(), size: 0 },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "unmountable"),
        "bug 13 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B13));
    // Also triggered through unlink and rmdir.
    let w2 = wl(
        "b13-unlink",
        vec![Op::Creat { path: "/f".into() }, Op::Unlink { path: "/f".into() }],
    );
    let out2 = test_workload(&kind, &w2, &TestConfig::default());
    assert!(out2.reports.iter().any(|r| r.violation.class() == "unmountable"));
}

#[test]
fn bug14_write_not_synchronous() {
    let kind = kind_with(&[BugId::B14]);
    // An overwrite exercises the in-place path whose final fence is gone.
    let w = wl(
        "b14",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
            Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"),
        "bug 14 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B14));
}

#[test]
fn bug16_journal_replay_oob() {
    let kind = kind_with(&[BugId::B16]);
    // First op leaves a long stale transaction; the second crashes
    // mid-transaction and replay walks into the stale records.
    let w = wl(
        "b16",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::Creat { path: "/d/f".into() },
            Op::Rename { old: "/d/f".into(), new: "/g".into() },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    // The stale-record walk manifests either as an out-of-bounds abort
    // (unmountable) or as stale old values replayed over live metadata
    // (atomicity/corrupt state) — both are bug 16 executing.
    assert!(
        out.reports.iter().any(|r| matches!(
            r.violation.class(),
            "unmountable" | "atomicity" | "corrupt-state" | "unusable"
        )),
        "bug 16 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B16));

    // A workload whose stale records misalign produces the paper's
    // out-of-bounds manifestation.
    let w2 = wl(
        "b16-oob",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::Mkdir { path: "/d/e".into() },
            Op::Rmdir { path: "/d/e".into() },
            Op::Creat { path: "/d/f".into() },
            Op::Link { old: "/d/f".into(), new: "/g".into() },
        ],
    );
    let out2 = test_workload(&kind, &w2, &TestConfig::default());
    assert!(out2.found_bug(), "b16-oob found nothing");
}

#[test]
fn bug17_nt_tail_data_loss() {
    let kind = kind_with(&[BugId::B17]);
    // 1000 % 64 != 0: the tail line of the copy is never written back.
    let w = wl(
        "b17",
        vec![Op::WritePath { path: "/f".into(), off: 0, size: 1000 }],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"),
        "bug 17 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B17));
}

#[test]
fn fixed_pmfs_clean_on_bug_trigger_workloads() {
    let kind = fixed_kind();
    let workloads = vec![
        wl(
            "t13",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
                Op::Truncate { path: "/f".into(), size: 0 },
            ],
        ),
        wl(
            "t14",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
                Op::WritePath { path: "/f".into(), off: 0, size: 1024 },
            ],
        ),
        wl(
            "t16",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/f".into() },
                Op::Rename { old: "/d/f".into(), new: "/g".into() },
            ],
        ),
        wl("t17", vec![Op::WritePath { path: "/f".into(), off: 0, size: 1000 }]),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed PMFS violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
    }
}
