//! Soundness under fuzzing: with every injected bug fixed, the fuzzer's
//! random workloads — including the hostile patterns ACE omits (multiple
//! descriptors, orphaned descriptors, unaligned writes, CPU switching) —
//! must produce **zero** violations on every file system.
//!
//! This is the no-false-positives guarantee for the checker and the
//! crash-consistency guarantee for the five file systems, under much
//! broader inputs than the ACE suites.

use chipmunk::{test_workload, TestConfig};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmfs::PmfsKind;
use splitfs::SplitFsKind;
use vfs::fs::{FsKind, FsOptions};
use winefs::WineFsKind;
use xfsdax::XfsDaxKind;
use workloads::fuzz::{FuzzConfig, Fuzzer};

const BUDGET: u64 = 700;

fn assert_fuzz_clean<K: FsKind>(kind: &K, label: &str, seed: u64) {
    let cfg = TestConfig::fuzzing();
    let mut fuzzer = Fuzzer::new(seed, FuzzConfig::default());
    for _ in 0..BUDGET {
        let w = fuzzer.next_workload();
        let out = test_workload(kind, &w, &cfg);
        assert!(
            out.reports.is_empty(),
            "[{label}] fixed file system violated fuzz workload:\n  {}\n{}",
            w.describe(),
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        fuzzer.feedback(&w, 0);
    }
}

#[test]
fn fuzz_clean_nova() {
    assert_fuzz_clean(&NovaKind { opts: FsOptions::fixed(), fortis: false }, "NOVA", 11);
}

#[test]
fn fuzz_clean_nova_fortis() {
    assert_fuzz_clean(
        &NovaKind { opts: FsOptions::fixed(), fortis: true },
        "NOVA-Fortis",
        12,
    );
}

#[test]
fn fuzz_clean_pmfs() {
    assert_fuzz_clean(&PmfsKind { opts: FsOptions::fixed() }, "PMFS", 13);
}

#[test]
fn fuzz_clean_winefs() {
    assert_fuzz_clean(&WineFsKind { opts: FsOptions::fixed(), strict: true }, "WineFS", 14);
}

#[test]
fn fuzz_clean_splitfs() {
    assert_fuzz_clean(&SplitFsKind { opts: FsOptions::fixed() }, "SplitFS", 15);
}

#[test]
fn fuzz_clean_ext4dax() {
    assert_fuzz_clean(&Ext4DaxKind::default(), "ext4-DAX", 16);
}

#[test]
fn fuzz_clean_xfsdax() {
    assert_fuzz_clean(&XfsDaxKind::default(), "XFS-DAX", 17);
}
