//! Deterministic simulated-time cost model for PM operations.
//!
//! The paper's performance observations (§5.1, Observation 2) compare NOVA
//! before and after bug fixes on real Optane hardware. We cannot measure
//! Optane, so [`PmDevice`](crate::PmDevice) charges each persistence
//! operation a latency drawn from published Optane characterization numbers
//! (Yang et al., FAST '20; Izraelevitz et al. 2019). The absolute values are
//! approximations; what matters for reproducing the paper's *shape* results
//! is the relative cost of journaled versus in-place update sequences, which
//! is dominated by the counts of flushes, fences, and media reads — exactly
//! what this model accounts.

/// Latency charged per cache line written back (`clwb` + eventual write).
pub const FLUSH_LINE_NS: u64 = 62;

/// Latency charged per cache line issued as a non-temporal store.
pub const NT_LINE_NS: u64 = 55;

/// Latency charged per store fence (drain of the write-pending queue).
pub const FENCE_NS: u64 = 160;

/// Latency charged per cached store word (hits the cache; cheap).
pub const STORE_WORD_NS: u64 = 1;

/// Latency charged per cache line of an explicit media read (a read that
/// semantically must come from PM, e.g. read-validate before an in-place
/// update).
pub const MEDIA_READ_LINE_NS: u64 = 170;

/// Accumulated simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimCost {
    /// Total simulated nanoseconds.
    pub ns: u64,
}

impl SimCost {
    /// Adds `ns` nanoseconds of simulated time.
    pub fn charge(&mut self, ns: u64) {
        self.ns = self.ns.saturating_add(ns);
    }
}

/// Operation counters maintained by the simulated device.
///
/// These drive both the cost model and the paper's §4.3/§5.1 measurement
/// harnesses (in-flight write distribution, crash-state counts).
#[derive(Debug, Clone, Copy, Default)]
pub struct PmStats {
    /// Bytes written via plain cached stores.
    pub store_bytes: u64,
    /// Bytes written via non-temporal stores.
    pub nt_bytes: u64,
    /// Cache lines written back by `flush`.
    pub flush_lines: u64,
    /// Number of `flush` calls.
    pub flush_calls: u64,
    /// Number of store fences.
    pub fences: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes of explicit media reads.
    pub media_read_bytes: u64,
    /// Maximum number of in-flight writes observed at any fence.
    pub max_inflight: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_saturates() {
        let mut c = SimCost::default();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.ns, 15);
        c.charge(u64::MAX);
        assert_eq!(c.ns, u64::MAX);
    }
}
