//! Path parsing helpers shared by the file-system implementations.

use crate::error::{FsError, FsResult};

/// Maximum length of a single path component (matching the on-disk dentry
/// formats used by the file-system crates).
pub const NAME_MAX: usize = 47;

/// Splits an absolute path into its components.
///
/// Accepts `/`, `/foo`, `/foo/bar/`; rejects relative paths, empty
/// components (`//`), `.`/`..`, and over-long names.
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    let rest = path.strip_prefix('/').ok_or(FsError::Invalid)?;
    let mut out = Vec::new();
    for c in rest.split('/') {
        if c.is_empty() {
            continue; // tolerate trailing or doubled slashes
        }
        if c == "." || c == ".." {
            return Err(FsError::Invalid);
        }
        if c.len() > NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        out.push(c);
    }
    Ok(out)
}

/// Splits a path into (parent components, final component).
///
/// Fails with `EINVAL` for the root itself.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    let last = comps.pop().ok_or(FsError::Invalid)?;
    Ok((comps, last))
}

/// Returns `true` if `ancestor` is a path prefix of `descendant` (component
/// wise), used for the `rename`-into-own-subtree check.
pub fn is_path_prefix(ancestor: &str, descendant: &str) -> bool {
    let (Ok(a), Ok(d)) = (components(ancestor), components(descendant)) else {
        return false;
    };
    a.len() <= d.len() && a.iter().zip(d.iter()).all(|(x, y)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_absolute_paths() {
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("/foo").unwrap(), vec!["foo"]);
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(components("/a/b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn rejects_bad_paths() {
        assert_eq!(components("foo"), Err(FsError::Invalid));
        assert_eq!(components(""), Err(FsError::Invalid));
        assert_eq!(components("/a/../b"), Err(FsError::Invalid));
        assert_eq!(components("/a/./b"), Err(FsError::Invalid));
        let long = format!("/{}", "x".repeat(NAME_MAX + 1));
        assert_eq!(components(&long), Err(FsError::NameTooLong));
    }

    #[test]
    fn split_parent_works() {
        let (p, n) = split_parent("/a/b/c").unwrap();
        assert_eq!(p, vec!["a", "b"]);
        assert_eq!(n, "c");
        assert_eq!(split_parent("/"), Err(FsError::Invalid));
    }

    #[test]
    fn prefix_detection() {
        assert!(is_path_prefix("/a", "/a/b"));
        assert!(is_path_prefix("/a", "/a"));
        assert!(!is_path_prefix("/a/b", "/a"));
        assert!(!is_path_prefix("/a", "/ab"));
    }
}
