//! Consistency checking of a single crash state (§3.3, "Testing crash
//! states").
//!
//! A crash state is checked in four stages, in order:
//!
//! 1. **Mount** — the target file system runs its crash recovery; failure is
//!    itself a bug ("a useful consistency check").
//! 2. **Tree walk** — every file and directory is read; corruption surfaced
//!    here (failed checksums, unreadable entries) is a bug.
//! 3. **Oracle comparison** — atomicity for mid-syscall crashes (the state
//!    must match the pre- or post-op oracle, consistently across all files),
//!    synchrony for post-syscall crashes (the state must match the current
//!    oracle), or the weak-guarantee fsync check.
//! 4. **Usability probe** — create a file in every directory, then delete
//!    every file. Mutations land in the crash state's copy-on-write overlay,
//!    which the caller discards — the analogue of the paper's undo log for
//!    checker mutations.

use pmem::{CowDevice, PmBackend};
use vfs::{FileSystem, FsKind};

use crate::{
    config::TestConfig,
    crashgen::{apply_subset, PendingWrite},
    oracle::{
        diff_atomic_write_pruned, diff_relaxed_write_pruned, diff_trees_pruned,
        snapshot_tree_scoped, NodeSnap, Scope, Tree,
    },
    report::Violation,
};

/// How the checker relaxes the atomicity comparison for a data write in
/// flight at the crash point.
#[derive(Debug, Clone, Copy)]
pub enum DataRelax<'a> {
    /// No relaxation: the operation is fully atomic.
    None,
    /// The target file's contents may tear byte-wise (file systems without
    /// atomic data writes; the paper exempts `write` from atomicity).
    Torn(&'a str),
    /// The target must be exactly the old version, the new version, or a
    /// freshly created empty file (strict/atomic-write modes).
    Atomic(&'a str),
}

/// Which property a crash state must satisfy, given where the crash was
/// injected.
#[derive(Debug, Clone, Copy)]
pub enum CheckKind<'a> {
    /// Crash during a system call: state must match `prev` or `cur`. If
    /// `relax_target` is set (non-atomic data write), the target file's
    /// contents may be torn.
    Atomicity {
        /// Oracle tree before the op.
        prev: &'a Tree,
        /// Oracle tree after the op.
        cur: &'a Tree,
        /// Data-write relaxation, if the crash is inside a data write.
        relax: DataRelax<'a>,
    },
    /// Crash after a system call on a strong-guarantee file system: state
    /// must match `cur` exactly.
    Synchrony {
        /// Oracle tree after the op.
        cur: &'a Tree,
    },
    /// Crash after an fsync-family call on a weak-guarantee file system:
    /// only the synced file (or, for `sync`, everything) is guaranteed.
    WeakFsync {
        /// Oracle tree after the op.
        cur: &'a Tree,
        /// The synced path; `None` means whole-filesystem `sync`.
        target: Option<&'a str>,
    },
}

/// Builds the crash state (base + replayed subset), mounts the file system
/// on it, and runs all checks. Returns the first violation, if any.
pub fn check_crash_state<K: FsKind>(
    kind: &K,
    base: &[u8],
    writes: &[PendingWrite],
    subset: &[usize],
    check: &CheckKind<'_>,
    cfg: &TestConfig,
) -> Option<Violation> {
    let mut cow = CowDevice::new(base);
    apply_subset(&mut cow, writes, subset);
    check_mounted(kind, cow, check, cfg, &Scope::Full)
}

/// [`check_crash_state`] for a device the caller already built — the delta
/// engine passes `&mut CowDevice` so the same undo-logged overlay is reused
/// across adjacent crash states. `scope` is the crash point's in-flight
/// scope (`Scope::Full` disables scoping regardless of config).
pub fn check_mounted<K: FsKind, D: PmBackend>(
    kind: &K,
    dev: D,
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    scope: &Scope,
) -> Option<Violation> {
    let ws = walk_scope(cfg, scope);
    let (mut fs, tree) = match crate::sandbox::mount_walk(kind, dev, &ws, cfg) {
        Ok(x) => x,
        Err(v) => return Some(v),
    };
    let mut pruned = 0;
    if let Some(v) = crate::sandbox::compare(&tree, check, cfg, scope, &mut pruned) {
        return Some(v);
    }
    if cfg.probe {
        if let Some(v) = crate::sandbox::probe(&mut fs, &tree, cfg) {
            return Some(v);
        }
    }
    None
}

/// Mounts `kind` on `dev` (running crash recovery) and walks the tree,
/// reading file contents only inside `walk_scope`. The two failure modes
/// are the first two check stages: [`Violation::Unmountable`] and
/// [`Violation::CorruptState`].
pub fn mount_state<K: FsKind, D: PmBackend>(
    kind: &K,
    dev: D,
    walk_scope: &Scope,
) -> Result<(K::Fs<D>, Tree), Violation> {
    let fs = kind.mount(dev).map_err(|e| Violation::Unmountable(e.to_string()))?;
    let tree = snapshot_tree_scoped(&fs, walk_scope).map_err(Violation::CorruptState)?;
    Ok((fs, tree))
}

/// The scope the tree walk should use. A full walk is required only when
/// scoped checking is off or the validation mode needs to run the full
/// comparison against the tree. `cross_dedup` no longer forces a full walk:
/// memoized trees record the scope they were walked under, and reuse at a
/// later point checks scope compatibility instead (a successful covering
/// walk substitutes; anything else re-checks fresh).
pub fn walk_scope(cfg: &TestConfig, scope: &Scope) -> Scope {
    if !cfg.scoped_check || cfg.scoped_validate {
        Scope::Full
    } else {
        scope.clone()
    }
}

/// Stage-3 comparison honoring the scoping config: scoped when enabled,
/// full otherwise, and — under `scoped_validate` — both, panicking if their
/// verdicts disagree (the full verdict wins). The tree must have been
/// walked with [`walk_scope`] so every byte the comparison needs is real.
/// `pruned` counts node comparisons the hash fast path skipped (see
/// [`TestConfig::shared_oracle`]).
pub fn compare_checked(
    tree: &Tree,
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    scope: &Scope,
    pruned: &mut u64,
) -> Option<Violation> {
    if !cfg.scoped_check {
        return compare_state(tree, check, cfg, &Scope::Full, pruned);
    }
    if cfg.scoped_validate {
        let full = compare_state(tree, check, cfg, &Scope::Full, pruned);
        let scoped = compare_state(tree, check, cfg, scope, pruned);
        assert_eq!(
            full.is_some(),
            scoped.is_some(),
            "scoped_validate: scoped verdict {scoped:?} disagrees with full verdict {full:?} \
             under scope {scope:?}"
        );
        return full;
    }
    compare_state(tree, check, cfg, scope, pruned)
}

/// Runs the usability probe (stage 4) on a mounted crash state.
pub fn probe_state<F: FileSystem>(fs: &mut F, tree: &Tree) -> Option<Violation> {
    probe(fs, tree)
}

/// Pure oracle comparison of a walked tree; file contents outside `scope`
/// are not compared (structure and metadata always are). With
/// `cfg.shared_oracle` the tree diffs skip hash-equal node pairs, counting
/// each skip into `pruned` — verdicts are identical either way.
pub fn compare_state(
    tree: &Tree,
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    scope: &Scope,
    pruned: &mut u64,
) -> Option<Violation> {
    let prune = cfg.shared_oracle;
    match check {
        CheckKind::Atomicity { prev, cur, relax } => {
            let vs_cur = diff_trees_pruned(tree, cur, cfg.compare_ino, scope, prune, pruned);
            let vs_cur = vs_cur?; // matches post-state: atomic
            let vs_prev = diff_trees_pruned(tree, prev, cfg.compare_ino, scope, prune, pruned);
            let Some(vs_prev) = vs_prev else {
                return None; // matches pre-state: atomic
            };
            match relax {
                DataRelax::Torn(target) => {
                    let relaxed = diff_relaxed_write_pruned(
                        tree,
                        prev,
                        cur,
                        target,
                        cfg.compare_ino,
                        scope,
                        prune,
                        pruned,
                    )?;
                    Some(Violation::AtomicityViolation(format!(
                        "torn data write exceeds allowed states: {relaxed}"
                    )))
                }
                DataRelax::Atomic(target) => {
                    let relaxed = diff_atomic_write_pruned(
                        tree,
                        prev,
                        cur,
                        target,
                        cfg.compare_ino,
                        scope,
                        prune,
                        pruned,
                    )?;
                    Some(Violation::AtomicityViolation(relaxed))
                }
                DataRelax::None => Some(Violation::AtomicityViolation(format!(
                    "state matches neither post-op oracle ({vs_cur}) nor pre-op oracle \
                     ({vs_prev})"
                ))),
            }
        }
        CheckKind::Synchrony { cur } => {
            diff_trees_pruned(tree, cur, cfg.compare_ino, scope, prune, pruned).map(|d| {
                Violation::SynchronyViolation(format!("completed syscall not durable: {d}"))
            })
        }
        CheckKind::WeakFsync { cur, target } => match target {
            None => diff_trees_pruned(tree, cur, cfg.compare_ino, scope, prune, pruned).map(|d| {
                Violation::SynchronyViolation(format!("state after sync() not durable: {d}"))
            }),
            Some(path) => {
                let expect = cur.get(*path);
                let actual = tree.get(*path);
                match (actual, expect) {
                    (None, Some(_)) => Some(Violation::SynchronyViolation(format!(
                        "{path} missing after fsync"
                    ))),
                    (Some(a), Some(e)) => diff_file_weak(path, &a.node, &e.node).map(|d| {
                        Violation::SynchronyViolation(format!("fsynced file not durable: {d}"))
                    }),
                    // The file does not exist in the oracle either (fsync of
                    // a deleted path cannot happen; defensive).
                    (_, None) => None,
                }
            }
        },
    }
}

/// Weak-mode comparison of the fsynced file: data and size must be durable.
/// The link count is a parent-directory property ext4 only guarantees via
/// the journal, which commits at fsync too — so compare it as well.
fn diff_file_weak(path: &str, actual: &NodeSnap, expect: &NodeSnap) -> Option<String> {
    match (actual, expect) {
        (
            NodeSnap::File { nlink: an, size: asz, data: ad, .. },
            NodeSnap::File { nlink: en, size: esz, data: ed, .. },
        ) => {
            if asz != esz {
                return Some(format!("{path}: size {asz} != expected {esz}"));
            }
            if an != en {
                return Some(format!("{path}: nlink {an} != expected {en}"));
            }
            if ad != ed {
                return Some(format!("{path}: contents differ"));
            }
            None
        }
        _ => Some(format!("{path}: type mismatch after fsync")),
    }
}

/// The usability probe: create a file in every directory, then delete every
/// file (§3.3). Exercises allocation, directory insertion, and deletion on
/// the recovered state — catching "unusable but superficially consistent"
/// states such as undeletable files.
fn probe<F: FileSystem>(fs: &mut F, tree: &Tree) -> Option<Violation> {
    let mut n = 0;
    let mut probes = Vec::new();
    for (path, node) in tree {
        if matches!(node.node.as_ref(), NodeSnap::Dir { .. }) {
            let p = if path == "/" {
                format!("/probe_{n}")
            } else {
                format!("{path}/probe_{n}")
            };
            if let Err(e) = fs.creat(&p) {
                return Some(Violation::UnusableState(format!(
                    "probe creat({p}) failed: {e}"
                )));
            }
            probes.push(p);
            n += 1;
        }
    }
    // Delete every pre-existing file, then the probe files.
    for (path, node) in tree {
        if matches!(node.node.as_ref(), NodeSnap::File { .. }) {
            if let Err(e) = fs.unlink(path) {
                return Some(Violation::UnusableState(format!(
                    "probe unlink({path}) failed: {e}"
                )));
            }
        }
    }
    for p in probes {
        if let Err(e) = fs.unlink(&p) {
            return Some(Violation::UnusableState(format!("probe unlink({p}) failed: {e}")));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::snapshot_tree;
    use ext4dax::Ext4DaxKind;
    use pmem::PmDevice;
    use vfs::FileSystem;

    /// End-to-end smoke test: a clean ext4-DAX image passes every check
    /// against a matching oracle tree.
    #[test]
    fn clean_image_passes_checks() {
        let kind = Ext4DaxKind::default();
        let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
        fs.mkdir("/d").unwrap();
        fs.creat("/d/f").unwrap();
        fs.sync().unwrap();
        let expect = snapshot_tree(&fs).unwrap();
        let base = {
            let dev = fs.into_device();
            dev.persistent_image().to_vec()
        };
        let cfg = TestConfig::default();
        let check = CheckKind::Synchrony { cur: &expect };
        assert_eq!(check_crash_state(&kind, &base, &[], &[], &check, &cfg), None);
    }

    #[test]
    fn synchrony_violation_detected() {
        let kind = Ext4DaxKind::default();
        let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
        fs.sync().unwrap();
        // The oracle expects a file that the image does not have.
        let mut expect = snapshot_tree(&fs).unwrap();
        fs.creat("/ghost").unwrap();
        // (Not synced: image lacks it.)
        let with_ghost = {
            let mut t = Tree::new();
            std::mem::swap(&mut t, &mut expect);
            let mut fs2 = vfs::model::ModelFs::new();
            fs2.creat("/ghost").unwrap();
            snapshot_tree(&fs2).unwrap()
        };
        let base = fs.into_device().persistent_image().to_vec();
        let cfg = TestConfig::default();
        let check = CheckKind::Synchrony { cur: &with_ghost };
        let v = check_crash_state(&kind, &base, &[], &[], &check, &cfg).unwrap();
        assert!(matches!(v, Violation::SynchronyViolation(_)), "{v:?}");
    }

    #[test]
    fn garbage_image_is_unmountable() {
        let kind = Ext4DaxKind::default();
        let base = vec![0u8; 4 << 20];
        let cfg = TestConfig::default();
        let empty = Tree::new();
        let check = CheckKind::Synchrony { cur: &empty };
        let v = check_crash_state(&kind, &base, &[], &[], &check, &cfg).unwrap();
        assert!(matches!(v, Violation::Unmountable(_)));
    }

    #[test]
    fn probe_mutations_do_not_leak_into_base() {
        let kind = Ext4DaxKind::default();
        let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
        fs.creat("/keep").unwrap();
        fs.sync().unwrap();
        let expect = snapshot_tree(&fs).unwrap();
        let base = fs.into_device().persistent_image().to_vec();
        let cfg = TestConfig::default();
        let check = CheckKind::Synchrony { cur: &expect };
        // Run twice: if the probe leaked into `base`, the second run's
        // comparison would fail (probe deletes /keep in its overlay).
        assert_eq!(check_crash_state(&kind, &base, &[], &[], &check, &cfg), None);
        assert_eq!(check_crash_state(&kind, &base, &[], &[], &check, &cfg), None);
    }
}
