//! Quickstart: test a file system for crash-consistency bugs in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Chipmunk is generic over any [`vfs::FsKind`]: give it a workload, and it
//! records the PM write stream, simulates crashes at every store fence, and
//! checks that the file system recovers each crash state correctly.

use chipmunk::{test_workload, TestConfig};
use novafs::NovaKind;
use vfs::{fs::FsOptions, BugSet, Op, Workload};

fn main() {
    // The file system under test: NOVA as released (all Table 1 bugs
    // present). Swap in `BugSet::fixed()` to test the patched version.
    let kind = NovaKind { opts: FsOptions::with_bugs(BugSet::as_released()), fortis: false };

    // A workload: plain POSIX calls.
    let workload = Workload::new(
        "quickstart",
        vec![
            Op::Mkdir { path: "/docs".into() },
            Op::WritePath { path: "/docs/draft".into(), off: 0, size: 4096 },
            Op::Rename { old: "/docs/draft".into(), new: "/docs/final".into() },
        ],
    );

    // Run the full record → crash-state → check pipeline.
    let outcome = test_workload(&kind, &workload, &TestConfig::default());

    println!("workload     : {}", workload.describe());
    println!("crash points : {}", outcome.crash_points);
    println!("crash states : {}", outcome.crash_states);
    println!("violations   : {}", outcome.reports.len());
    for report in outcome.reports.iter().take(3) {
        println!("\n{}", report.to_text());
    }
    if outcome.reports.is_empty() {
        println!("\nno crash-consistency violations found");
    } else {
        println!(
            "(injected bug paths that executed: {:?})",
            outcome.traced_bugs.iter().map(|b| b.number()).collect::<Vec<_>>()
        );
    }
}
