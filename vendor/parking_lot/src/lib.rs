//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of the parking_lot API it uses: `Mutex` and `RwLock` whose
//! lock methods return guards directly (no `Result`). Poisoning is ignored,
//! matching parking_lot semantics.

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
