//! `any::<T>()` — whole-type strategies.

use rand::Rng;

use crate::{strategy::Strategy, test_runner::TestRng};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.rng().gen::<$t>() }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.rng().gen::<f64>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}
