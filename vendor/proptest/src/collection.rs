//! Collection strategies (`collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::{strategy::Strategy, test_runner::TestRng};

/// A size specification: an exact length or a range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.rng().gen_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s of `element` values with a length drawn from
/// `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
