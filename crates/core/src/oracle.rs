//! The oracle: legal post-crash states captured from a crash-free run.
//!
//! Chipmunk's checker compares each crash state against oracle versions of
//! the file-system tree (§3.3). The oracle runs the same workload on a
//! fresh instance of the same file system (on its own device, never
//! crashed) and snapshots the whole tree before every system call plus once
//! at the end, so snapshot *k* is the legal state "before op *k*" and
//! snapshot *k+1* the legal state "after op *k*".

use std::collections::{BTreeMap, BTreeSet};

use pmem::PmDevice;
use vfs::{FileSystem, FileType, FsError, FsKind, Workload};

use crate::exec::{Executor, OpResult};

/// The set of paths a crash point's in-flight operations can affect —
/// the targets themselves, their parent directories (entry lists and link
/// counts change there), and every hard-link alias of a target file.
///
/// Scoped checking (§ [`crate::TestConfig::scoped_check`]) compares file
/// *contents* against the oracle only inside the scope; structure and
/// metadata (presence, type, size, link counts, directory entries) are
/// always compared everywhere. `Full` is the escape hatch: everything is
/// in scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// Every path is in scope (full comparison).
    Full,
    /// Only the listed paths are in scope for data comparison.
    Paths(BTreeSet<String>),
}

impl Scope {
    /// Whether `path`'s file contents are compared.
    pub fn contains(&self, path: &str) -> bool {
        match self {
            Scope::Full => true,
            Scope::Paths(set) => set.contains(path),
        }
    }

    /// Whether this is the full (unscoped) comparison.
    pub fn is_full(&self) -> bool {
        matches!(self, Scope::Full)
    }

    /// Whether every path in scope for `other` is also in scope here.
    ///
    /// Used by cross-state artifact reuse: a tree walked under scope `a` can
    /// stand in for a walk under scope `b` only when `a.covers(&b)` — the
    /// wider walk compared file contents everywhere the narrower one would.
    pub fn covers(&self, other: &Scope) -> bool {
        match (self, other) {
            (Scope::Full, _) => true,
            (Scope::Paths(_), Scope::Full) => false,
            (Scope::Paths(a), Scope::Paths(b)) => b.is_subset(a),
        }
    }
}

/// Snapshot of one file or directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSnap {
    /// A regular file: metadata and full contents.
    File {
        /// Inode number (compared only when configured).
        ino: u64,
        /// Link count.
        nlink: u64,
        /// Size in bytes.
        size: u64,
        /// Full contents.
        data: Vec<u8>,
    },
    /// A directory: link count and child names.
    Dir {
        /// Inode number.
        ino: u64,
        /// Link count.
        nlink: u64,
        /// Sorted child names.
        entries: Vec<String>,
    },
}

/// A whole-tree snapshot: path → node.
pub type Tree = BTreeMap<String, NodeSnap>;

/// Walks the file system from the root, producing a [`Tree`].
///
/// Any corruption error surfaced during the walk is returned as `Err` with
/// a description — on a crash state this is itself a consistency violation.
pub fn snapshot_tree<F: FileSystem>(fs: &F) -> Result<Tree, String> {
    snapshot_tree_scoped(fs, &Scope::Full)
}

/// [`snapshot_tree`], but file *contents* are read only for paths inside
/// `scope` — out-of-scope files get their real metadata (ino, nlink, size)
/// and empty placeholder data. Such a tree may only be compared with the
/// same scope (the scoped diffs skip exactly those bytes).
pub fn snapshot_tree_scoped<F: FileSystem>(fs: &F, scope: &Scope) -> Result<Tree, String> {
    let mut tree = Tree::new();
    let mut queue = vec!["/".to_string()];
    while let Some(dir) = queue.pop() {
        let entries = fs
            .readdir(&dir)
            .map_err(|e| format!("readdir({dir}) failed during tree walk: {e}"))?;
        let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
        let meta =
            fs.stat(&dir).map_err(|e| format!("stat({dir}) failed during tree walk: {e}"))?;
        tree.insert(
            dir.clone(),
            NodeSnap::Dir { ino: meta.ino, nlink: meta.nlink, entries: names },
        );
        for e in entries {
            let path = if dir == "/" { format!("/{}", e.name) } else { format!("{dir}/{}", e.name) };
            match e.ftype {
                FileType::Directory => queue.push(path),
                FileType::Regular => {
                    let meta = fs
                        .stat(&path)
                        .map_err(|e| format!("stat({path}) failed during tree walk: {e}"))?;
                    let data = if scope.contains(&path) {
                        fs.read_file(&path)
                            .map_err(|e| format!("read({path}) failed during tree walk: {e}"))?
                    } else {
                        Vec::new()
                    };
                    tree.insert(
                        path,
                        NodeSnap::File {
                            ino: meta.ino,
                            nlink: meta.nlink,
                            size: meta.size,
                            data,
                        },
                    );
                }
            }
        }
    }
    Ok(tree)
}

/// The oracle for one workload: per-op snapshots and results.
#[derive(Debug)]
pub struct Oracle {
    /// `snaps[k]` is the tree before op `k`; `snaps[n]` the final tree.
    pub snaps: Vec<Tree>,
    /// Per-op results from the crash-free run.
    pub results: Vec<OpResult>,
}

impl Oracle {
    /// The legal state before op `k`.
    pub fn before(&self, k: usize) -> &Tree {
        &self.snaps[k]
    }

    /// The legal state after op `k`.
    pub fn after(&self, k: usize) -> &Tree {
        &self.snaps[k + 1]
    }
}

/// Runs `workload` crash-free on a fresh `kind` instance, capturing
/// snapshots.
pub fn build_oracle<K: FsKind>(
    kind: &K,
    workload: &Workload,
    device_size: u64,
) -> Result<Oracle, FsError> {
    let dev = PmDevice::new(device_size);
    let mut fs = kind.mkfs(dev)?;
    let mut ex = Executor::new();
    let mut snaps = Vec::with_capacity(workload.ops.len() + 1);
    let mut results = Vec::with_capacity(workload.ops.len());
    for (seq, op) in workload.ops.iter().enumerate() {
        snaps.push(snapshot_tree(&fs).map_err(FsError::Corrupt)?);
        results.push(ex.exec(&mut fs, op, seq));
    }
    snaps.push(snapshot_tree(&fs).map_err(FsError::Corrupt)?);
    Ok(Oracle { snaps, results })
}

/// Compares a crash-state tree against an oracle tree.
///
/// Returns `None` on a match, or a human-readable first difference.
pub fn diff_trees(actual: &Tree, expect: &Tree, compare_ino: bool) -> Option<String> {
    diff_trees_scoped(actual, expect, compare_ino, &Scope::Full)
}

/// [`diff_trees`], but file *contents* are compared only for paths inside
/// `scope`. Structure — presence, type, ino (when configured), nlink, size,
/// directory entries — is still compared for every path.
pub fn diff_trees_scoped(
    actual: &Tree,
    expect: &Tree,
    compare_ino: bool,
    scope: &Scope,
) -> Option<String> {
    for (path, enode) in expect {
        match actual.get(path) {
            None => return Some(format!("{path} missing (expected to exist)")),
            Some(anode) => {
                if let Some(d) =
                    diff_nodes_scoped(path, anode, enode, compare_ino, scope.contains(path))
                {
                    return Some(d);
                }
            }
        }
    }
    for path in actual.keys() {
        if !expect.contains_key(path) {
            return Some(format!("{path} present (expected not to exist)"));
        }
    }
    None
}

fn diff_nodes_scoped(
    path: &str,
    actual: &NodeSnap,
    expect: &NodeSnap,
    compare_ino: bool,
    compare_data: bool,
) -> Option<String> {
    match (actual, expect) {
        (
            NodeSnap::File { ino: ai, nlink: an, size: asz, data: ad },
            NodeSnap::File { ino: ei, nlink: en, size: esz, data: ed },
        ) => {
            if compare_ino && ai != ei {
                return Some(format!("{path}: ino {ai} != expected {ei}"));
            }
            if an != en {
                return Some(format!("{path}: nlink {an} != expected {en}"));
            }
            if asz != esz {
                return Some(format!("{path}: size {asz} != expected {esz}"));
            }
            if compare_data && ad != ed {
                let first = ad.iter().zip(ed.iter()).position(|(a, b)| a != b);
                return Some(format!(
                    "{path}: contents differ (first difference at offset {})",
                    first.map_or_else(|| ad.len().min(ed.len()).to_string(), |o| o.to_string())
                ));
            }
            None
        }
        (
            NodeSnap::Dir { ino: ai, nlink: an, entries: ae },
            NodeSnap::Dir { ino: ei, nlink: en, entries: ee },
        ) => {
            if compare_ino && ai != ei {
                return Some(format!("{path}: ino {ai} != expected {ei}"));
            }
            if an != en {
                return Some(format!("{path}: dir nlink {an} != expected {en}"));
            }
            let (mut a, mut e) = (ae.clone(), ee.clone());
            a.sort();
            e.sort();
            if a != e {
                return Some(format!("{path}: entries {a:?} != expected {e:?}"));
            }
            None
        }
        _ => Some(format!("{path}: file/directory type mismatch")),
    }
}

/// All paths that name the same inode as `target` in `tree` — the write's
/// alias set. A data write through one name is equally visible through
/// every hard link, so the relaxation must cover them all. Always contains
/// `target` itself; inode 0 is treated as "unknown" and never grouped.
fn write_aliases<'t>(tree: &'t Tree, target: &'t str) -> std::collections::BTreeSet<&'t str> {
    let mut set = std::collections::BTreeSet::new();
    set.insert(target);
    if let Some(NodeSnap::File { ino, .. }) = tree.get(target) {
        if *ino != 0 {
            for (p, n) in tree {
                if matches!(n, NodeSnap::File { ino: i, .. } if i == ino) {
                    set.insert(p.as_str());
                }
            }
        }
    }
    set
}

/// Owned alias set for scope construction: every path in `tree` that names
/// the same inode as `target` (plus `target` itself). Used by the harness
/// to expand a crash point's scope across hard links.
pub fn alias_set(tree: &Tree, target: &str) -> BTreeSet<String> {
    write_aliases(tree, target).into_iter().map(str::to_string).collect()
}

/// Relaxed comparison for crashes in the middle of a non-atomic data write:
/// every file other than the written inode (under any of its hard-linked
/// names) must match `cur`, while the written file's size must be the old
/// or new size and every byte must be explainable as the old byte, the new
/// byte, or zero (an allocated-but-unwritten block).
pub fn diff_relaxed_write(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
) -> Option<String> {
    diff_relaxed_write_scoped(actual, prev, cur, target, compare_ino, &Scope::Full)
}

/// [`diff_relaxed_write`] with scoped data comparison for the untouched
/// files (the written inode's aliases are always fully checked; the caller
/// must have them in scope so the walk read their bytes).
pub fn diff_relaxed_write_scoped(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
    scope: &Scope,
) -> Option<String> {
    let aliases = write_aliases(cur, target);
    // Check all non-target nodes against the current oracle.
    for (path, enode) in cur {
        if aliases.contains(path.as_str()) {
            continue;
        }
        match actual.get(path) {
            None => return Some(format!("{path} missing (untouched by the data write)")),
            Some(anode) => {
                if let Some(d) =
                    diff_nodes_scoped(path, anode, enode, compare_ino, scope.contains(path))
                {
                    return Some(format!("untouched file changed: {d}"));
                }
            }
        }
    }
    for path in actual.keys() {
        if !aliases.contains(path.as_str()) && !cur.contains_key(path) {
            return Some(format!("{path} appeared (untouched by the data write)"));
        }
    }
    // Check the written file byte-wise, under each of its names.
    for &alias in &aliases {
        let (pd, cd) = match (prev.get(alias), cur.get(alias)) {
            (Some(NodeSnap::File { data: pd, .. }), Some(NodeSnap::File { data: cd, .. })) => {
                (pd, cd)
            }
            // Created by this write: treat missing previous as empty.
            (None, Some(NodeSnap::File { data: cd, .. })) => {
                static EMPTY: Vec<u8> = Vec::new();
                (&EMPTY, cd)
            }
            _ => return Some(format!("{alias}: not a regular file in the oracle")),
        };
        match actual.get(alias) {
            None if pd.is_empty() => {} // file not yet created: previous state
            None => return Some(format!("{alias} missing (had data before the write)")),
            Some(NodeSnap::File { size, data, .. }) => {
                if *size != pd.len() as u64 && *size != cd.len() as u64 {
                    return Some(format!(
                        "{alias}: size {size} is neither old ({}) nor new ({})",
                        pd.len(),
                        cd.len()
                    ));
                }
                for (i, &b) in data.iter().enumerate() {
                    let old = pd.get(i).copied().unwrap_or(0);
                    let new = cd.get(i).copied().unwrap_or(0);
                    if b != old && b != new && b != 0 {
                        return Some(format!(
                            "{alias}: byte {i} = {b:#04x} is neither old ({old:#04x}), new \
                             ({new:#04x}), nor zero"
                        ));
                    }
                }
            }
            Some(NodeSnap::Dir { .. }) => return Some(format!("{alias}: became a directory")),
        }
    }
    None
}

/// Atomic-data-write comparison (WineFS/SplitFS strict modes): every file
/// other than `target` must match `cur`, and `target` must be *exactly* the
/// previous version, the new version, or the freshly created empty file (a
/// bundled create-then-write op legitimately crashes between its two
/// underlying system calls) — torn contents are violations.
pub fn diff_atomic_write(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
) -> Option<String> {
    diff_atomic_write_scoped(actual, prev, cur, target, compare_ino, &Scope::Full)
}

/// [`diff_atomic_write`] with scoped data comparison for the untouched
/// files (the written inode's aliases are always fully checked; the caller
/// must have them in scope so the walk read their bytes).
pub fn diff_atomic_write_scoped(
    actual: &Tree,
    prev: &Tree,
    cur: &Tree,
    target: &str,
    compare_ino: bool,
    scope: &Scope,
) -> Option<String> {
    let aliases = write_aliases(cur, target);
    for (path, enode) in cur {
        if aliases.contains(path.as_str()) {
            continue;
        }
        match actual.get(path) {
            None => return Some(format!("{path} missing (untouched by the data write)")),
            Some(anode) => {
                if let Some(d) =
                    diff_nodes_scoped(path, anode, enode, compare_ino, scope.contains(path))
                {
                    return Some(format!("untouched file changed: {d}"));
                }
            }
        }
    }
    for path in actual.keys() {
        if !aliases.contains(path.as_str()) && !cur.contains_key(path) {
            return Some(format!("{path} appeared (untouched by the data write)"));
        }
    }
    for &alias in &aliases {
        let ok = match actual.get(alias) {
            None => !prev.contains_key(alias),
            Some(NodeSnap::File { size, data, .. }) => {
                let is_prev = matches!(
                    prev.get(alias),
                    Some(NodeSnap::File { data: pd, .. }) if pd == data
                );
                let is_cur = matches!(
                    cur.get(alias),
                    Some(NodeSnap::File { data: cd, .. }) if cd == data
                );
                let is_fresh_empty = *size == 0 && !prev.contains_key(alias);
                is_prev || is_cur || is_fresh_empty
            }
            Some(NodeSnap::Dir { .. }) => false,
        };
        if !ok {
            return Some(format!(
                "{alias}: contents are neither the old version, the new version, nor a freshly \
                 created empty file — the atomic write tore"
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmBackend;
    use vfs::model::ModelFs;
    use vfs::Op;

    fn file(nlink: u64, data: &[u8]) -> NodeSnap {
        NodeSnap::File { ino: 0, nlink, size: data.len() as u64, data: data.to_vec() }
    }

    #[test]
    fn snapshot_walks_nested_dirs() {
        let mut m = ModelFs::new();
        m.mkdir("/a").unwrap();
        m.mkdir("/a/b").unwrap();
        m.creat("/a/b/f").unwrap();
        let t = snapshot_tree(&m).unwrap();
        assert_eq!(t.len(), 4);
        assert!(matches!(t.get("/a/b/f"), Some(NodeSnap::File { .. })));
        assert!(matches!(t.get("/a/b"), Some(NodeSnap::Dir { .. })));
    }

    #[test]
    fn diff_detects_everything() {
        let mut a = Tree::new();
        let mut b = Tree::new();
        a.insert("/f".into(), file(1, b"xx"));
        b.insert("/f".into(), file(1, b"xx"));
        assert_eq!(diff_trees(&a, &b, false), None);
        b.insert("/f".into(), file(2, b"xx"));
        assert!(diff_trees(&a, &b, false).unwrap().contains("nlink"));
        b.insert("/f".into(), file(1, b"xy"));
        assert!(diff_trees(&a, &b, false).unwrap().contains("contents"));
        b.insert("/f".into(), file(1, b"xxx"));
        assert!(diff_trees(&a, &b, false).unwrap().contains("size"));
        b.remove("/f");
        assert!(diff_trees(&a, &b, false).unwrap().contains("present"));
        a.remove("/f");
        b.insert("/g".into(), file(1, b""));
        assert!(diff_trees(&a, &b, false).unwrap().contains("missing"));
    }

    #[test]
    fn oracle_snapshots_bracket_ops() {
        let kind = TestModelKind;
        let w = Workload::new(
            "t",
            vec![Op::Creat { path: "/f".into() }, Op::Unlink { path: "/f".into() }],
        );
        let o = build_oracle(&kind, &w, 1024).unwrap();
        assert_eq!(o.snaps.len(), 3);
        assert!(!o.before(0).contains_key("/f"));
        assert!(o.after(0).contains_key("/f"));
        assert!(!o.after(1).contains_key("/f"));
    }

    #[test]
    fn relaxed_write_accepts_torn_data() {
        let mut prev = Tree::new();
        let mut cur = Tree::new();
        prev.insert("/".into(), NodeSnap::Dir { ino: 1, nlink: 2, entries: vec!["f".into()] });
        cur.insert("/".into(), NodeSnap::Dir { ino: 1, nlink: 2, entries: vec!["f".into()] });
        prev.insert("/f".into(), file(1, &[1, 1, 1, 1]));
        cur.insert("/f".into(), file(1, &[2, 2, 2, 2]));
        let mut actual = cur.clone();
        // Torn: half old, half new — allowed.
        actual.insert("/f".into(), file(1, &[1, 1, 2, 2]));
        assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
        // Zeros (unwritten allocated block) — allowed.
        actual.insert("/f".into(), file(1, &[0, 0, 2, 2]));
        assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
        // Garbage — rejected.
        actual.insert("/f".into(), file(1, &[9, 9, 9, 9]));
        assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false).is_some());
        // Wrong size — rejected.
        actual.insert("/f".into(), file(1, &[1, 1]));
        assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false)
            .unwrap()
            .contains("size"));
    }

    fn file_ino(ino: u64, nlink: u64, data: &[u8]) -> NodeSnap {
        NodeSnap::File { ino, nlink, size: data.len() as u64, data: data.to_vec() }
    }

    #[test]
    fn relaxed_write_covers_hard_link_aliases() {
        // /f and /d/g are the same inode; a write through /f tears both
        // names identically. The relaxation must accept the alias too.
        let mut prev = Tree::new();
        let mut cur = Tree::new();
        for t in [&mut prev, &mut cur] {
            t.insert("/".into(), NodeSnap::Dir { ino: 1, nlink: 3, entries: vec!["d".into(), "f".into()] });
            t.insert("/d".into(), NodeSnap::Dir { ino: 2, nlink: 2, entries: vec!["g".into()] });
        }
        prev.insert("/f".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        prev.insert("/d/g".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        cur.insert("/f".into(), file_ino(7, 2, &[2, 2, 2, 2]));
        cur.insert("/d/g".into(), file_ino(7, 2, &[2, 2, 2, 2]));
        let mut actual = cur.clone();
        actual.insert("/f".into(), file_ino(7, 2, &[1, 1, 2, 2]));
        actual.insert("/d/g".into(), file_ino(7, 2, &[1, 1, 2, 2]));
        assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
        // The torn mix is fine for the relaxed check but not the atomic one.
        assert!(diff_atomic_write(&actual, &prev, &cur, "/f", false).is_some());
        // Old version under both names passes the atomic check.
        actual.insert("/f".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        actual.insert("/d/g".into(), file_ino(7, 2, &[1, 1, 1, 1]));
        assert_eq!(diff_atomic_write(&actual, &prev, &cur, "/f", false), None);
        // A garbage alias is still rejected.
        actual.insert("/d/g".into(), file_ino(7, 2, &[9, 9, 9, 9]));
        assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false).is_some());
        // A changed *unrelated* file (different inode) is still rejected.
        let mut actual = cur.clone();
        actual.insert("/f".into(), file_ino(7, 2, &[1, 1, 2, 2]));
        actual.insert("/d/g".into(), file_ino(8, 1, &[5, 5, 5, 5]));
        let mut cur2 = cur.clone();
        cur2.insert("/d/g".into(), file_ino(8, 1, &[2, 2, 2, 2]));
        let mut prev2 = prev.clone();
        prev2.insert("/d/g".into(), file_ino(8, 1, &[2, 2, 2, 2]));
        assert!(diff_relaxed_write(&actual, &prev2, &cur2, "/f", false)
            .unwrap()
            .contains("untouched"));
    }

    /// A trivial FsKind over the in-memory model, for oracle unit tests.
    #[derive(Clone)]
    struct TestModelKind;

    struct ModelWithDev(ModelFs);

    impl FileSystem for ModelWithDev {
        fn open(&mut self, p: &str, f: vfs::OpenFlags) -> Result<vfs::Fd, FsError> {
            self.0.open(p, f)
        }
        fn close(&mut self, fd: vfs::Fd) -> Result<(), FsError> {
            self.0.close(fd)
        }
        fn mkdir(&mut self, p: &str) -> Result<(), FsError> {
            self.0.mkdir(p)
        }
        fn rmdir(&mut self, p: &str) -> Result<(), FsError> {
            self.0.rmdir(p)
        }
        fn unlink(&mut self, p: &str) -> Result<(), FsError> {
            self.0.unlink(p)
        }
        fn link(&mut self, a: &str, b: &str) -> Result<(), FsError> {
            self.0.link(a, b)
        }
        fn rename(&mut self, a: &str, b: &str) -> Result<(), FsError> {
            self.0.rename(a, b)
        }
        fn truncate(&mut self, p: &str, s: u64) -> Result<(), FsError> {
            self.0.truncate(p, s)
        }
        fn fallocate(
            &mut self,
            fd: vfs::Fd,
            m: vfs::FallocMode,
            o: u64,
            l: u64,
        ) -> Result<(), FsError> {
            self.0.fallocate(fd, m, o, l)
        }
        fn write(&mut self, fd: vfs::Fd, d: &[u8]) -> Result<usize, FsError> {
            self.0.write(fd, d)
        }
        fn pwrite(&mut self, fd: vfs::Fd, o: u64, d: &[u8]) -> Result<usize, FsError> {
            self.0.pwrite(fd, o, d)
        }
        fn pread(&self, fd: vfs::Fd, o: u64, b: &mut [u8]) -> Result<usize, FsError> {
            self.0.pread(fd, o, b)
        }
        fn fsync(&mut self, fd: vfs::Fd) -> Result<(), FsError> {
            self.0.fsync(fd)
        }
        fn sync(&mut self) -> Result<(), FsError> {
            self.0.sync()
        }
        fn stat(&self, p: &str) -> Result<vfs::Metadata, FsError> {
            self.0.stat(p)
        }
        fn readdir(&self, p: &str) -> Result<Vec<vfs::DirEntry>, FsError> {
            self.0.readdir(p)
        }
        fn read_file(&self, p: &str) -> Result<Vec<u8>, FsError> {
            self.0.read_file(p)
        }
    }

    impl FsKind for TestModelKind {
        type Fs<D: PmBackend> = ModelWithDev;
        fn name(&self) -> vfs::FsName {
            vfs::FsName::Ext4Dax
        }
        fn options(&self) -> &vfs::fs::FsOptions {
            static OPTS: std::sync::OnceLock<vfs::fs::FsOptions> = std::sync::OnceLock::new();
            OPTS.get_or_init(vfs::fs::FsOptions::default)
        }
        fn with_options(&self, _opts: vfs::fs::FsOptions) -> Self {
            self.clone()
        }
        fn guarantees(&self) -> vfs::Guarantees {
            vfs::Guarantees { strong: false, atomic_data_writes: false, data_checksums: false }
        }
        fn mkfs<D: PmBackend>(&self, _dev: D) -> Result<Self::Fs<D>, FsError> {
            Ok(ModelWithDev(ModelFs::new()))
        }
        fn mount<D: PmBackend>(&self, _dev: D) -> Result<Self::Fs<D>, FsError> {
            Ok(ModelWithDev(ModelFs::new()))
        }
    }
}
