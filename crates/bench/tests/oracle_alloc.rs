//! Allocator regression for the incremental oracle-snapshot path.
//!
//! `chipmunk::oracle::advance_snapshot` advances an oracle snapshot across
//! one op by re-probing only the op's footprint and structurally sharing
//! every untouched node with the previous snapshot. The property this test
//! pins is the one the `oracle_speed` example measures but cannot assert:
//! advancing across an op that touches one small file allocates
//! independently of the *total data* held in the tree. The deep-copy
//! implementation it replaced re-read and re-stored every file's contents
//! on every snapshot — proportional to the 8 MiB parked in the untouched
//! files here — while the incremental path allocates only the cloned node
//! map, the touched file's bytes, and hash scratch.
//!
//! The test runs in its own binary so it can install a counting global
//! allocator without affecting other suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use chipmunk::oracle::{advance_snapshot, snapshot_tree};
use vfs::model::ModelFs;
use vfs::{FileSystem, Op, OpenFlags};

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn advance_snapshot_allocation_is_independent_of_tree_data() {
    // 16 files x 512 KiB of bulk data that no subsequent op touches, plus
    // one small file the loop rewrites.
    const BULK: usize = 16;
    const BULK_SIZE: usize = 512 * 1024;
    let mut fs = ModelFs::new();
    fs.mkdir("/bulk").unwrap();
    for i in 0..BULK {
        let path = format!("/bulk/f{i}");
        let fd = fs.open(&path, OpenFlags::CREATE).unwrap();
        fs.pwrite(fd, 0, &vec![i as u8; BULK_SIZE]).unwrap();
        fs.close(fd).unwrap();
    }
    fs.creat("/small").unwrap();

    // A full walk must materialize every file's data: its allocation floor
    // is the bulk payload itself.
    let before = ALLOCATED.load(Relaxed);
    let full = Arc::new(snapshot_tree(&fs).unwrap());
    let full_alloc = ALLOCATED.load(Relaxed) - before;
    assert!(
        full_alloc >= (BULK * BULK_SIZE) as u64,
        "full snapshot allocated {full_alloc} bytes — expected at least the 8 MiB of file data"
    );

    // Warm up one advance so lazy one-time allocations don't skew the loop.
    let op = Op::WritePath { path: "/small".into(), off: 0, size: 64 };
    let fd = fs.open("/small", OpenFlags::RDWR).unwrap();
    fs.pwrite(fd, 0, &[1u8; 64]).unwrap();
    let (mut prev, _) = advance_snapshot(&fs, &full, &op, Some("/small")).unwrap();

    const ITERS: u64 = 50;
    let before = ALLOCATED.load(Relaxed);
    for i in 0..ITERS {
        fs.pwrite(fd, 0, &[i as u8; 64]).unwrap();
        let (next, _) = advance_snapshot(&fs, &prev, &op, Some("/small")).unwrap();
        prev = next;
    }
    let after = ALLOCATED.load(Relaxed);
    fs.close(fd).unwrap();

    let per_advance = (after - before) / ITERS;
    // One advance clones the ~18-entry node map, re-reads the 64-byte file,
    // and hashes the dirty path — a few KiB. 128 KiB gives generous headroom
    // while staying 60x under what re-reading the bulk data would cost.
    assert!(
        per_advance < 128 * 1024,
        "advance_snapshot allocated {per_advance} bytes/op — is it deep-copying the tree?"
    );
}
