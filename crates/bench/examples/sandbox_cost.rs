//! Measures what the fault-isolation layer costs on a clean sweep: runs
//! strong seq-1 plus the first `n` (arg 1, default 3136) seq-2 workloads on
//! NOVA twice — sandbox + fuel watchdog on (the default) and both off —
//! printing per-phase wall times and the sandbox counters. On a healthy
//! file system no guard ever fires, so the delta is pure bookkeeping:
//! `catch_unwind` entry per checker stage plus one fuel tick per device op.
//! The source of the EXPERIMENTS.md "Fault isolation overhead" table.
//!
//! Arg 2 (default 1) sets `TestConfig::threads`.

use bench::run_suite;
use chipmunk::TestConfig;
use vfs::{BugSet, FsName};
use workloads::ace::{seq1, seq2, AceMode};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3136);
    let threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let ws: Vec<_> = seq1(AceMode::Strong)
        .into_iter()
        .chain(seq2(AceMode::Strong))
        .take(56 + n)
        .collect();
    for (label, cfg) in [
        (
            "sandbox-off",
            TestConfig { sandbox: false, recovery_fuel: None, ..TestConfig::default() },
        ),
        ("sandbox-on ", TestConfig::default()),
    ] {
        let cfg = cfg.with_threads(threads);
        let t = std::time::Instant::now();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &cfg);
        println!(
            "{label} total={:?} oracle={:?} record={:?} check={:?} states={} reports={} \
             panics={} hangs={} retries={} fuel={}",
            t.elapsed(),
            s.phase.oracle,
            s.phase.record,
            s.phase.check,
            s.crash_states,
            s.reports,
            s.recovery_panics,
            s.recovery_hangs,
            s.sandbox_retries,
            s.fuel_exhausted,
        );
    }
}
