//! Property-based crash-free equivalence: every file system, run without
//! crashes on a random workload, must behave observably like the in-memory
//! reference model — same per-call success/failure, same final tree
//! (types, sizes, link counts, contents).
//!
//! This pins down the *functional* half of correctness; the crash half is
//! covered by the ACE/fuzz clean suites and the per-bug detection tests.

use chipmunk::exec::Executor;
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmem::PmDevice;
use pmfs::PmfsKind;
use proptest::prelude::*;
use splitfs::SplitFsKind;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    model::ModelFs,
    FallocMode, FsError, Op, OpenFlags, Workload,
};
use winefs::WineFsKind;
use xfsdax::XfsDaxKind;

const DEV: u64 = 8 * 1024 * 1024;

const FILES: [&str; 4] = ["/fa", "/fb", "/da/fa", "/da/fb"];
const DIRS: [&str; 2] = ["/da", "/db"];

fn a_file() -> impl Strategy<Value = String> {
    prop::sample::select(FILES.to_vec()).prop_map(String::from)
}

fn a_dir() -> impl Strategy<Value = String> {
    prop::sample::select(DIRS.to_vec()).prop_map(String::from)
}

fn a_path() -> impl Strategy<Value = String> {
    prop_oneof![3 => a_file(), 1 => a_dir()]
}

fn an_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        a_file().prop_map(|path| Op::Creat { path }),
        a_dir().prop_map(|path| Op::Mkdir { path }),
        a_dir().prop_map(|path| Op::Rmdir { path }),
        a_file().prop_map(|path| Op::Unlink { path }),
        (a_file(), a_file()).prop_map(|(old, new)| Op::Link { old, new }),
        (a_path(), a_path()).prop_map(|(old, new)| Op::Rename { old, new }),
        (a_file(), 0u64..20_000).prop_map(|(path, size)| Op::Truncate { path, size }),
        (a_file(), 0u64..16_384, 1u64..9_000)
            .prop_map(|(path, off, size)| Op::WritePath { path, off, size }),
        (a_file(), prop::sample::select(FallocMode::ALL.to_vec()), 0u64..8_192, 1u64..8_192)
            .prop_map(|(path, mode, off, len)| Op::FallocPath { path, mode, off, len }),
        (0usize..2, a_file()).prop_map(|(slot, path)| Op::Open {
            slot,
            path,
            flags: OpenFlags::CREATE
        }),
        (0usize..2).prop_map(|slot| Op::Close { slot }),
        (0usize..2, 0u64..8_192, 1u64..4_096)
            .prop_map(|(slot, off, size)| Op::Pwrite { slot, off, size }),
    ]
}

/// Benign errors must agree exactly; corruption-class errors must never
/// appear crash-free.
fn norm(r: &Result<(), FsError>) -> Result<(), String> {
    match r {
        Ok(()) => Ok(()),
        Err(e) if e.is_benign() => Err(e.to_string()),
        Err(e) => panic!("non-benign error on a crash-free run: {e}"),
    }
}

fn run_parity<K: FsKind>(kind: &K, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut fs = kind.mkfs(PmDevice::new(DEV)).expect("mkfs");
    let mut model = ModelFs::new();
    let mut ex_fs = Executor::new();
    let mut ex_m = Executor::new();
    let w = Workload::new("parity", ops.to_vec());
    for (i, op) in w.ops.iter().enumerate() {
        let rf = ex_fs.exec(&mut fs, op, i);
        let rm = ex_m.exec(&mut model, op, i);
        prop_assert_eq!(
            norm(&rf.result),
            norm(&rm.result),
            "op {} {:?} diverged",
            i,
            op
        );
    }
    // Compare the final observable trees.
    for path in FILES.iter().chain(DIRS.iter()).chain(["/"].iter()) {
        match (fs.stat(path), model.stat(path)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.ftype, b.ftype, "{}: type", path);
                prop_assert_eq!(a.nlink, b.nlink, "{}: nlink", path);
                if a.ftype == vfs::FileType::Regular {
                    prop_assert_eq!(a.size, b.size, "{}: size", path);
                    let da = fs.read_file(path).expect("read fs");
                    let db = model.read_file(path).expect("read model");
                    prop_assert_eq!(da, db, "{}: contents", path);
                } else {
                    let ea: Vec<String> =
                        fs.readdir(path).unwrap().into_iter().map(|e| e.name).collect();
                    let eb: Vec<String> =
                        model.readdir(path).unwrap().into_iter().map(|e| e.name).collect();
                    prop_assert_eq!(ea, eb, "{}: entries", path);
                }
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.is_benign(), b.is_benign(), "{}: error class", path);
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!("{path}: fs={a:?} model={b:?}")));
            }
        }
    }
    Ok(())
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(an_op(), 1..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nova_matches_model(ops in ops_strategy()) {
        run_parity(&NovaKind { opts: FsOptions::fixed(), fortis: false }, &ops)?;
    }

    #[test]
    fn nova_fortis_matches_model(ops in ops_strategy()) {
        run_parity(&NovaKind { opts: FsOptions::fixed(), fortis: true }, &ops)?;
    }

    #[test]
    fn pmfs_matches_model(ops in ops_strategy()) {
        run_parity(&PmfsKind { opts: FsOptions::fixed() }, &ops)?;
    }

    #[test]
    fn winefs_matches_model(ops in ops_strategy()) {
        run_parity(&WineFsKind { opts: FsOptions::fixed(), strict: true }, &ops)?;
    }

    #[test]
    fn splitfs_matches_model(ops in ops_strategy()) {
        run_parity(&SplitFsKind { opts: FsOptions::fixed() }, &ops)?;
    }

    #[test]
    fn ext4dax_matches_model(ops in ops_strategy()) {
        run_parity(&Ext4DaxKind::default(), &ops)?;
    }

    #[test]
    fn xfsdax_matches_model(ops in ops_strategy()) {
        run_parity(&XfsDaxKind::default(), &ops)?;
    }

    /// The as-released (buggy) configurations must also be functionally
    /// correct crash-free — every injected bug manifests only across a
    /// crash (Observation 5's precondition).
    #[test]
    fn buggy_configs_match_model_crash_free(ops in ops_strategy()) {
        run_parity(&NovaKind { opts: FsOptions::default(), fortis: true }, &ops)?;
        run_parity(&PmfsKind { opts: FsOptions::default() }, &ops)?;
        run_parity(&SplitFsKind { opts: FsOptions::default() }, &ops)?;
    }
}
