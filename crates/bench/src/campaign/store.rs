//! The on-disk campaign store and the per-task journal.
//!
//! Layout of a store directory:
//!
//! ```text
//! store.json               # version + CampaignSpec (write_atomic)
//! journal/task-<n>.log     # append-only: plan line + one line per workload
//! leases/task-<n>.lease    # claim files (see queue.rs)
//! results/task-<n>.json    # committed task result (presence = complete)
//! quarantine/              # corrupt artifacts moved aside (task re-run)
//! corpus/<name>.json       # corpus-worthy fuzz workloads, wire form
//! coverage/state.bits      # persistent crash-state bitmap
//! coverage/cov.bits        # persistent coverage bitmap
//! campaign.json            # deterministic merged document + fingerprint
//! run.json                 # nondeterministic run info (wall time, resumes)
//! ```
//!
//! Every filesystem touch goes through the store's [`HostCtx`]
//! ([`super::hostio`]): atomic documents via [`HostCtx::write_atomic`],
//! journal lines via the rollback-protected [`HostCtx::append_line`]. A
//! torn tail line (the half-written checkpoint of a SIGKILL'd worker) is
//! detected by the parser and truncated away before the successor appends;
//! a committed result that does not parse is **quarantined** (moved to
//! `quarantine/`), failing only its own task, which is then re-leased and
//! re-run.

use std::io::Read;
use std::path::{Path, PathBuf};

use crate::jsonout::{self, JVal};

use super::hostio::{HostCtx, RecoveryAction, StoreError};
use super::wire::{ju, WRes};
use super::CampaignSpec;

/// Store format version (`store.json`'s `chipmunk_campaign` field).
pub const STORE_VERSION: u64 = 1;

/// An open campaign store.
#[derive(Debug)]
pub struct CampaignStore {
    /// Root directory.
    pub dir: PathBuf,
    /// The campaign spec (immutable once the store is initialised).
    pub spec: CampaignSpec,
    /// The host-I/O context every store touch goes through.
    pub io: HostCtx,
}

impl CampaignStore {
    /// [`Self::open_or_init_with`] over the real filesystem.
    pub fn open_or_init(dir: &Path, spec: &CampaignSpec) -> Result<Self, StoreError> {
        Self::open_or_init_with(dir, spec, HostCtx::passthrough())
    }

    /// Initialises a fresh store at `dir` (creating directories) or opens
    /// the existing one. When the store exists, `spec` must match the
    /// persisted spec exactly — a campaign's population is immutable.
    pub fn open_or_init_with(
        dir: &Path,
        spec: &CampaignSpec,
        io: HostCtx,
    ) -> Result<Self, StoreError> {
        if io.exists(&dir.join("store.json")) {
            let store = Self::open_with(dir, io)?;
            if store.spec != *spec {
                return Err(StoreError::fatal(format!(
                    "store {} holds a different campaign spec; use --resume to continue it \
                     or point --store at a fresh directory",
                    dir.display()
                )));
            }
            return Ok(store);
        }
        for sub in ["journal", "leases", "results", "corpus", "coverage"] {
            io.create_dir_all(&dir.join(sub))?;
        }
        let doc = JVal::Obj(vec![
            ("chipmunk_campaign".into(), ju(STORE_VERSION)),
            ("spec".into(), spec.to_jval()),
        ]);
        io.write_atomic(&dir.join("store.json"), (doc.render() + "\n").as_bytes())?;
        Ok(CampaignStore { dir: dir.to_path_buf(), spec: spec.clone(), io })
    }

    /// [`Self::open_with`] over the real filesystem.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with(dir, HostCtx::passthrough())
    }

    /// Opens an existing store, parsing and validating `store.json`.
    /// `store.json` has no quarantine path — a campaign without its spec
    /// cannot be continued, so corruption here is fatal.
    pub fn open_with(dir: &Path, io: HostCtx) -> Result<Self, StoreError> {
        let path = dir.join("store.json");
        let text = io
            .read_to_string_opt(&path)?
            .ok_or_else(|| StoreError::fatal(format!("{}: no such store", path.display())))?;
        let doc = jsonout::parse(&text)
            .map_err(|e| StoreError::corrupt(&path, e, RecoveryAction::Fatal))?;
        let version = doc.get("chipmunk_campaign").and_then(JVal::as_u64).ok_or_else(|| {
            StoreError::fatal(format!("{}: not a campaign store", path.display()))
        })?;
        if version != STORE_VERSION {
            return Err(StoreError::fatal(format!(
                "{}: store version {version} (this build reads {STORE_VERSION})",
                path.display()
            )));
        }
        let spec_val = doc
            .get("spec")
            .ok_or_else(|| StoreError::fatal(format!("{}: missing spec", path.display())))?;
        let spec = CampaignSpec::from_jval(spec_val)
            .map_err(|e| StoreError::corrupt(&path, e, RecoveryAction::Fatal))?;
        Ok(CampaignStore { dir: dir.to_path_buf(), spec, io })
    }

    /// Path of task `id`'s journal.
    pub fn journal_path(&self, id: usize) -> PathBuf {
        self.dir.join("journal").join(format!("task-{id}.log"))
    }

    /// Path of task `id`'s lease file.
    pub fn lease_path(&self, id: usize) -> PathBuf {
        self.dir.join("leases").join(format!("task-{id}.lease"))
    }

    /// Path of task `id`'s committed result.
    pub fn result_path(&self, id: usize) -> PathBuf {
        self.dir.join("results").join(format!("task-{id}.json"))
    }

    /// Whether task `id` has a committed result.
    pub fn result_exists(&self, id: usize) -> bool {
        self.io.exists(&self.result_path(id))
    }

    /// Commits task `id`'s results atomically (the completion marker).
    pub fn write_result(&self, id: usize, results: &[WRes]) -> Result<(), StoreError> {
        let doc = JVal::Arr(results.iter().map(WRes::to_jval).collect());
        self.io.write_atomic(&self.result_path(id), (doc.render() + "\n").as_bytes())
    }

    /// Loads task `id`'s committed results, or `None` if not yet complete.
    /// A result that does not parse surfaces as [`StoreError::Corrupt`]
    /// with the file and byte offset; the artifact is left in place (see
    /// [`Self::load_result_verified`] for the quarantining loader).
    pub fn load_result(&self, id: usize) -> Result<Option<Vec<WRes>>, StoreError> {
        let path = self.result_path(id);
        let Some(text) = self.io.read_to_string_opt(&path)? else {
            return Ok(None);
        };
        parse_results(&path, &text, RecoveryAction::Fatal).map(Some)
    }

    /// Like [`Self::load_result`], but a corrupt artifact is **moved to
    /// `quarantine/`** before the error returns: the task loses its
    /// completion marker, so the normal claim loop re-leases and re-runs
    /// it — a bad result file fails one task, never the whole campaign.
    pub fn load_result_verified(&self, id: usize) -> Result<Option<Vec<WRes>>, StoreError> {
        let path = self.result_path(id);
        let Some(text) = self.io.read_to_string_opt(&path)? else {
            return Ok(None);
        };
        match parse_results(&path, &text, RecoveryAction::Quarantined) {
            Ok(results) => Ok(Some(results)),
            Err(e) => {
                self.quarantine_result(id)?;
                Err(e)
            }
        }
    }

    /// Moves task `id`'s committed result into `quarantine/` (for corrupt
    /// artifacts; the task will be re-run by the next claim pass).
    pub fn quarantine_result(&self, id: usize) -> Result<(), StoreError> {
        let qdir = self.dir.join("quarantine");
        self.io.create_dir_all(&qdir)?;
        let from = self.result_path(id);
        let to = qdir.join(format!("task-{id}.json.corrupt-{}", self.io.tasks_quarantined()));
        self.io.rename(&from, &to)?;
        self.io.note_quarantine();
        Ok(())
    }
}

/// Parses a committed result document, reporting corruption with its byte
/// offset and the recovery `action` the caller is about to take.
fn parse_results(path: &Path, text: &str, action: RecoveryAction) -> Result<Vec<WRes>, StoreError> {
    let doc =
        jsonout::parse(text).map_err(|e| StoreError::corrupt(path, e, action))?;
    doc.as_arr()
        .ok_or_else(|| StoreError::corrupt(path, "not an array", action))?
        .iter()
        .map(WRes::from_jval)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| StoreError::corrupt(path, e, action))
}

/// What a journal recovery found: the plan signature line (if any) and the
/// completed workloads, keyed by their batch index within the task.
#[derive(Debug, Default)]
pub struct JournalState {
    /// The recorded plan signature, when a valid plan line exists.
    pub plan_sig: Option<u64>,
    /// Completed workloads by batch index (first writer wins; duplicate
    /// appends from a raced lease are byte-identical by determinism).
    pub done: std::collections::BTreeMap<usize, WRes>,
    /// Byte length of the valid prefix (a torn tail is truncated to this
    /// before appending).
    pub valid_len: u64,
}

/// An open per-task journal: recover once, then append checkpoints.
/// Appends are path-based through the store's [`HostCtx`], so a torn
/// append is rolled back before a retry (see [`HostCtx::append_line`]).
pub struct TaskJournal {
    io: HostCtx,
    path: PathBuf,
    /// Checkpoints appended through this handle (test observability).
    pub appended: u64,
}

impl TaskJournal {
    /// Reads a journal, tolerating a torn tail: lines are consumed while
    /// they parse; the first unparsable or unterminated line ends recovery
    /// (everything before it is intact — each append is one `write` of one
    /// `\n`-terminated line). This covers every crash shape the torture
    /// suite sweeps: a zero-length file left by a crashed create recovers
    /// empty; a torn plan-signature line discards the whole journal (no
    /// valid prefix exists); duplicate checkpoint indices keep the first
    /// writer's line; an interleaved line from a stale same-path writer
    /// that does not parse as a checkpoint ends the valid prefix there. A
    /// plan-signature mismatch (the spec changed the batch under the
    /// journal — should be impossible; defense in depth) discards the
    /// journal entirely.
    pub fn recover(io: &HostCtx, path: &Path, expect_sig: u64) -> Result<JournalState, StoreError> {
        let mut st = JournalState::default();
        let Some(bytes) = io.read_opt(path)? else {
            return Ok(st);
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut consumed = 0usize;
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn tail
            }
            let Ok(v) = jsonout::parse(line.trim_end()) else {
                break;
            };
            if st.plan_sig.is_none() {
                // First line must be the plan signature.
                let Some(sig) = v
                    .get("plan")
                    .and_then(JVal::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                else {
                    break;
                };
                if sig != expect_sig {
                    return Ok(JournalState::default());
                }
                st.plan_sig = Some(sig);
            } else {
                let Some(i) = v.get("i").and_then(JVal::as_u64) else {
                    break;
                };
                let Some(res) = v.get("res").and_then(|r| WRes::from_jval(r).ok()) else {
                    break;
                };
                st.done.entry(i as usize).or_insert(res);
            }
            consumed += line.len();
        }
        st.valid_len = consumed as u64;
        Ok(st)
    }

    /// Opens the journal for appending, truncating a torn tail to
    /// `valid_len` first. When the journal is empty/new, writes the plan
    /// line.
    pub fn open(
        io: &HostCtx,
        path: &Path,
        state: &JournalState,
        plan_sig: u64,
    ) -> Result<Self, StoreError> {
        if let Some(len) = io.file_len(path)? {
            if len != state.valid_len {
                io.set_len(path, state.valid_len)?;
            }
        }
        let mut j = TaskJournal { io: io.clone(), path: path.to_path_buf(), appended: 0 };
        if state.plan_sig.is_none() {
            j.append_line(&JVal::Obj(vec![(
                "plan".into(),
                JVal::Str(format!("{plan_sig:016x}")),
            )]))?;
        }
        Ok(j)
    }

    /// Appends one completed workload checkpoint and fsyncs, so a kill
    /// after this call can lose at most work that postdates the checkpoint.
    pub fn checkpoint(&mut self, batch_index: usize, res: &WRes) -> Result<(), StoreError> {
        self.append_line(&JVal::Obj(vec![
            ("i".into(), ju(batch_index as u64)),
            ("res".into(), res.to_jval()),
        ]))?;
        self.appended += 1;
        Ok(())
    }

    fn append_line(&mut self, v: &JVal) -> Result<(), StoreError> {
        let mut line = v.render();
        line.push('\n');
        // One write per line: a torn line can only be the very tail.
        self.io.append_line(&self.path, line.as_bytes())
    }
}

/// Reads a whole file as bytes, returning an empty vec when absent.
pub fn read_bytes_or_empty(path: &Path) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Ok(mut f) = std::fs::File::open(path) {
        let _ = f.read_to_end(&mut buf);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chipmunk-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn wres(name: &str) -> WRes {
        WRes {
            name: name.into(),
            counters: [1; 20],
            state_bits: vec![2],
            cov_bits: vec![],
            cov_new: vec![],
            reports: vec![],
            ops: None,
        }
    }

    fn ctx() -> HostCtx {
        HostCtx::passthrough()
    }

    #[test]
    fn store_init_open_and_spec_mismatch() {
        let dir = tmpdir("init");
        let spec = CampaignSpec { seq1_take: 4, batch: 2, ..CampaignSpec::default() };
        let s = CampaignStore::open_or_init(&dir, &spec).unwrap();
        assert_eq!(CampaignStore::open(&dir).unwrap().spec, spec);
        // Reopening with the same spec is fine; a different one is refused.
        CampaignStore::open_or_init(&dir, &spec).unwrap();
        let other = CampaignSpec { seq1_take: 5, ..spec.clone() };
        let err = CampaignStore::open_or_init(&dir, &other).unwrap_err();
        assert!(err.to_string().contains("different"));
        assert_eq!(err.exit_code(), 1);
        // Results round-trip, and absence is None not an error.
        assert!(s.load_result(0).unwrap().is_none());
        s.write_result(0, &[wres("a"), wres("b")]).unwrap();
        let back = s.load_result(0).unwrap().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].name, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_result_is_quarantined_and_reports_offset() {
        let dir = tmpdir("quar");
        let s = CampaignStore::open_or_init(&dir, &CampaignSpec::default()).unwrap();
        s.write_result(3, &[wres("a")]).unwrap();
        // Garble the committed artifact: truncate it mid-document.
        let text = std::fs::read_to_string(s.result_path(3)).unwrap();
        std::fs::write(s.result_path(3), &text[..text.len() / 2]).unwrap();

        // The plain loader reports file + offset but leaves the artifact.
        let err = s.load_result(3).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("task-3.json") && msg.contains("byte"), "{msg}");
        assert!(s.result_exists(3));

        // The verified loader quarantines: the completion marker is gone,
        // the corrupt bytes are preserved aside, and the action is named.
        let err = s.load_result_verified(3).unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        assert!(!s.result_exists(3), "quarantine must clear the completion marker");
        assert_eq!(s.io.tasks_quarantined(), 1);
        let q = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
        assert_eq!(q, 1, "the corrupt artifact must be preserved for inspection");
        // The task can be re-committed afterwards.
        s.write_result(3, &[wres("a")]).unwrap();
        assert_eq!(s.load_result_verified(3).unwrap().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_recovers_and_truncates_torn_tail() {
        let dir = tmpdir("journal");
        let path = dir.join("task-0.log");
        let sig = 0xabcdu64;
        let io = ctx();

        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert!(st.plan_sig.is_none() && st.done.is_empty());
        let mut j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        j.checkpoint(0, &wres("w0")).unwrap();
        j.checkpoint(1, &wres("w1")).unwrap();
        drop(j);

        // Simulate a SIGKILL mid-append: a torn half line at the tail.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"i\":2,\"res\":{\"name\":\"to").unwrap();
        drop(f);

        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert_eq!(st.plan_sig, Some(sig));
        assert_eq!(st.done.len(), 2);
        assert_eq!(st.done[&1].name, "w1");
        // Appending truncates the torn tail; the next recovery sees 3 clean
        // checkpoints.
        let mut j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        j.checkpoint(2, &wres("w2")).unwrap();
        drop(j);
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert_eq!(st.done.len(), 3);

        // A different plan signature discards everything.
        let st = TaskJournal::recover(&io, &path, sig + 1).unwrap();
        assert!(st.plan_sig.is_none() && st.done.is_empty() && st.valid_len == 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_keeps_first_writer_on_duplicate_checkpoint_indices() {
        let dir = tmpdir("dup");
        let path = dir.join("task-0.log");
        let sig = 0x1111u64;
        let io = ctx();
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        let mut j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        j.checkpoint(0, &wres("first")).unwrap();
        drop(j);
        // A raced second lease-holder appends the same index again (by
        // determinism the payload would be byte-identical in production;
        // here it differs to prove which line wins).
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        let dup = JVal::Obj(vec![("i".into(), ju(0)), ("res".into(), wres("second").to_jval())]);
        writeln!(f, "{}", dup.render()).unwrap();
        drop(f);
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert_eq!(st.done.len(), 1);
        assert_eq!(st.done[&0].name, "first", "first writer must win");
        // Both lines are part of the valid prefix: nothing is truncated.
        assert_eq!(st.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_stops_at_interleaved_stale_writer_line() {
        let dir = tmpdir("stale");
        let path = dir.join("task-0.log");
        let sig = 0x2222u64;
        let io = ctx();
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        let mut j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        j.checkpoint(0, &wres("w0")).unwrap();
        drop(j);
        let good_len = std::fs::metadata(&path).unwrap().len();
        // A stale writer still holding the old fd appends a line that is
        // valid JSON but not a checkpoint (a second plan line), then a
        // checkpoint. The valid prefix must end before the foreign line —
        // everything after it is suspect and gets truncated by reopen.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{{\"plan\":\"{:016x}\"}}", sig).unwrap();
        let tail = JVal::Obj(vec![("i".into(), ju(1)), ("res".into(), wres("w1").to_jval())]);
        writeln!(f, "{}", tail.render()).unwrap();
        drop(f);
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert_eq!(st.done.len(), 1, "only the pre-interleave checkpoint survives");
        assert_eq!(st.valid_len, good_len);
        let j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        drop(j);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len, "reopen truncates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_discards_torn_plan_signature_line() {
        let dir = tmpdir("tornplan");
        let path = dir.join("task-0.log");
        let sig = 0x3333u64;
        let io = ctx();
        // The very first append died mid-line: no terminated plan line
        // exists, so there is no valid prefix at all.
        std::fs::write(&path, format!("{{\"plan\":\"{:08x}", sig)).unwrap();
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert!(st.plan_sig.is_none() && st.done.is_empty() && st.valid_len == 0);
        let mut j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        j.checkpoint(0, &wres("w0")).unwrap();
        drop(j);
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert_eq!(st.plan_sig, Some(sig), "open must rewrite a clean plan line");
        assert_eq!(st.done.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_recovers_zero_length_file_from_crashed_open() {
        let dir = tmpdir("zerolen");
        let path = dir.join("task-0.log");
        let sig = 0x4444u64;
        let io = ctx();
        // A crash between create and the plan append leaves an empty file.
        std::fs::write(&path, b"").unwrap();
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert!(st.plan_sig.is_none() && st.done.is_empty() && st.valid_len == 0);
        let mut j = TaskJournal::open(&io, &path, &st, sig).unwrap();
        j.checkpoint(0, &wres("w0")).unwrap();
        drop(j);
        let st = TaskJournal::recover(&io, &path, sig).unwrap();
        assert_eq!(st.plan_sig, Some(sig));
        assert_eq!(st.done.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
