//! Regenerates the Observation 7 replay-cap sensitivity result: "A cap of
//! two is enough to find all bugs presented in this paper; a cap of five is
//! sufficient to check all crash states for most system calls"; and "of the
//! 11 bugs that involve a crash in the middle of a system call, 10 can be
//! exposed by a crash state that replays only a single write; the final bug
//! requires two writes."
//!
//! ```sh
//! cargo run --release -p bench --bin cap_sweep [fuzz_budget]
//! ```

use bench::{hunt_with_ace, hunt_with_fuzzer};
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

fn main() {
    let fuzz_budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let caps: [Option<usize>; 4] = [Some(1), Some(2), Some(5), None];

    println!("bugs found at each replay cap (each bug hunted in isolation)\n");
    print!("{:>4} {:<12}", "Bug", "FS");
    for cap in caps {
        match cap {
            Some(c) => print!(" {:>7}", format!("cap={c}")),
            None => print!(" {:>7}", "exhst"),
        }
    }
    println!();
    println!("{}", "-".repeat(50));

    let mut found_at: Vec<usize> = vec![0; caps.len()];
    for info in bug_table() {
        print!("{:>4} {:<12}", info.id.number(), info.fs.to_string());
        for (ci, cap) in caps.iter().enumerate() {
            let cfg = TestConfig { cap: *cap, stop_on_first: true, ..TestConfig::default() };
            let hit = if info.ace_findable {
                hunt_with_ace(info.id, &cfg, 100).0
            } else {
                hunt_with_fuzzer(info.id, &cfg, 0xca9 + info.id.number() as u64, fuzz_budget).0
            };
            let mark = if hit.is_some() { "yes" } else { "-" };
            if hit.is_some() {
                found_at[ci] += 1;
            }
            print!(" {mark:>7}");
        }
        println!();
    }
    println!("{}", "-".repeat(50));
    print!("{:>17}", "total found");
    for n in &found_at {
        print!(" {n:>7}");
    }
    println!("\n\npaper: a cap of two finds every bug in the paper");
}
