//! XOR-composable content hashing of device images.
//!
//! Crash-state deduplication needs a key that identifies the *post-crash
//! device content*. The original implementation recomputed a latest-writer-
//! wins interval hash per subset, which is O(total in-flight bytes) per
//! state. This module provides an incrementally maintainable alternative:
//! the key of an image is the XOR over all offsets of a per-`(offset, byte)`
//! term, with the term of a zero byte defined as 0. Properties:
//!
//! * **Content-determined**: the key depends only on the final bytes, not on
//!   the write order or on how the key was maintained. A delta replayer and
//!   a from-scratch construction agree exactly.
//! * **O(changed bytes) updates**: changing a byte `old → new` at `off`
//!   updates the key with `key ^= term(off, old) ^ term(off, new)`.
//! * **Zero images hash to 0** for every device size, so no per-size
//!   baseline needs precomputing.
//!
//! The 128-bit key is two independent 64-bit mixes, making accidental
//! collisions (which would merge distinct crash states) negligible for the
//! non-adversarial images the harness produces.

/// Content key of a device image (see module docs).
pub type ImageKey = u128;

const SEED_LO: u64 = 0x243f_6a88_85a3_08d3;
const SEED_HI: u64 = 0x1319_8a2e_0370_7344;

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The XOR term contributed by `byte` at `off`. Zero bytes contribute 0.
///
/// `off` must be below 2^56 (device offsets are far smaller), so
/// `(off << 8) | byte` is injective over `(off, byte)`.
#[inline]
pub fn byte_term(off: u64, byte: u8) -> ImageKey {
    if byte == 0 {
        return 0;
    }
    debug_assert!(off < 1 << 56);
    let x = (off << 8) | byte as u64;
    let lo = splitmix64(x ^ SEED_LO);
    let hi = splitmix64(x ^ SEED_HI);
    ((hi as ImageKey) << 64) | lo as ImageKey
}

/// Full-image key: XOR of [`byte_term`] over every offset. O(len) — used to
/// seed incremental maintenance and to cross-check it in tests.
///
/// Scans 8-byte words (`u64::from_le_bytes`) and skips zero words without
/// touching individual bytes; device images are overwhelmingly zero, so the
/// inner `byte_term` mix runs only on the sparse nonzero residue. The key is
/// bit-identical to the per-byte definition.
pub fn image_key(img: &[u8]) -> ImageKey {
    span_key(0, img)
}

/// Content key of the contiguous span `data` placed at absolute offset
/// `off`: XOR of [`byte_term`] over the span. This is [`image_key`]
/// re-based to an arbitrary offset, with the same word-wise zero-skipping
/// scan, for hashing one replayed run at a time (`crashgen::state_key`
/// keys each latest-writer-wins run without materializing a full image).
/// Bit-identical to the per-byte definition.
pub fn span_key(off: u64, data: &[u8]) -> ImageKey {
    let mut key = 0;
    let mut chunks = data.chunks_exact(8);
    let mut at = off;
    for w in chunks.by_ref() {
        if u64::from_le_bytes(w.try_into().expect("8-byte chunk")) != 0 {
            for (i, &b) in w.iter().enumerate() {
                if b != 0 {
                    key ^= byte_term(at + i as u64, b);
                }
            }
        }
        at += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b != 0 {
            key ^= byte_term(at + i as u64, b);
        }
    }
    key
}

const SEED_RUN_LO: u64 = 0xa409_3822_299f_31d0;
const SEED_RUN_HI: u64 = 0x082e_fa98_ec4e_6c89;

/// Structural term for "the run `[off, off + len)` holds replayed bytes",
/// independent of the bytes themselves. XORed alongside [`span_key`] when
/// keying crash states so a run of all-zero content (whose byte terms are
/// all 0) is still distinguished from the run never having been written.
#[inline]
pub fn run_term(off: u64, len: u64) -> ImageKey {
    let lo = splitmix64(splitmix64(off ^ SEED_RUN_LO) ^ len);
    let hi = splitmix64(splitmix64(off ^ SEED_RUN_HI) ^ len);
    ((hi as ImageKey) << 64) | lo as ImageKey
}

const SEED_WORD_LO: u64 = 0x4528_21e6_38d0_1377;
const SEED_WORD_HI: u64 = 0xbe54_66cf_34e9_0c6c;

/// Content term for the 8-byte word holding `val` at absolute offset `off`:
/// the word-granular analogue of [`byte_term`], one splitmix cascade per
/// word instead of one per nonzero byte. Unlike [`byte_term`], a zero word
/// contributes a nonzero term, so a XOR of word terms also certifies *which*
/// words it covers. Seeded independently of every other term family and
/// never mixed with them — word-term keys are only ever compared to other
/// word-term keys (`chipmunk`'s footprint projections).
#[inline]
pub fn word_term(off: u64, val: u64) -> ImageKey {
    let lo = splitmix64(splitmix64(off ^ SEED_WORD_LO) ^ val);
    let hi = splitmix64(splitmix64(off ^ SEED_WORD_HI) ^ val);
    ((hi as ImageKey) << 64) | lo as ImageKey
}

const SEED_SNAP_LO: u64 = 0xc0ac_29b7_c97c_50dd;
const SEED_SNAP_HI: u64 = 0x3f84_d5b5_b547_0917;

/// [`byte_term`] in the snapshot-node namespace: same injective `(off,
/// byte)` layout, independent seeds. Zero bytes contribute 0, so the
/// word-skipping scan below applies unchanged.
#[inline]
fn snap_byte_term(off: u64, byte: u8) -> ImageKey {
    if byte == 0 {
        return 0;
    }
    debug_assert!(off < 1 << 56);
    let x = (off << 8) | byte as u64;
    let lo = splitmix64(x ^ SEED_SNAP_LO);
    let hi = splitmix64(x ^ SEED_SNAP_HI);
    ((hi as ImageKey) << 64) | lo as ImageKey
}

/// Content key of a framed record — `head` followed by `body` at
/// consecutive offsets — for the oracle's snapshot-node hashes
/// (`chipmunk::oracle`). The caller frames the record (fixed-width header,
/// length-prefixed variable parts), so key equality certifies the full
/// serialized form including trailing zero bytes (a closing length term
/// covers what the zero-skipping byte terms cannot).
///
/// Seeded independently of every other term family and never mixed with
/// them: a snapshot-node key can never collide into `image_key` dedup keys
/// or `word_term` footprint projections.
pub fn snap_key(head: &[u8], body: &[u8]) -> ImageKey {
    let mut key = snap_span(0, head) ^ snap_span(head.len() as u64, body);
    let total = (head.len() + body.len()) as u64;
    let lo = splitmix64(splitmix64(total ^ SEED_SNAP_LO) ^ SEED_SNAP_HI);
    let hi = splitmix64(splitmix64(total ^ SEED_SNAP_HI) ^ SEED_SNAP_LO);
    key ^= ((hi as ImageKey) << 64) | lo as ImageKey;
    key
}

/// [`span_key`]'s word-skipping scan over the snapshot-node term family.
fn snap_span(off: u64, data: &[u8]) -> ImageKey {
    let mut key = 0;
    let mut chunks = data.chunks_exact(8);
    let mut at = off;
    for w in chunks.by_ref() {
        if u64::from_le_bytes(w.try_into().expect("8-byte chunk")) != 0 {
            for (i, &b) in w.iter().enumerate() {
                if b != 0 {
                    key ^= snap_byte_term(at + i as u64, b);
                }
            }
        }
        at += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b != 0 {
            key ^= snap_byte_term(at + i as u64, b);
        }
    }
    key
}

/// Key delta for overwriting the bytes `old` at `off` with `new`
/// (`old.len() == new.len()`). XOR the result into a maintained key.
///
/// Compares 8-byte words first and only descends to byte terms inside words
/// that actually differ — the incremental `state_key` path mostly re-applies
/// bytes that are already in place, so whole words short-circuit.
pub fn write_delta(off: u64, old: &[u8], new: &[u8]) -> ImageKey {
    debug_assert_eq!(old.len(), new.len());
    let mut d = 0;
    let mut o_chunks = old.chunks_exact(8);
    let mut n_chunks = new.chunks_exact(8);
    let mut pos = 0u64;
    for (ow, nw) in o_chunks.by_ref().zip(n_chunks.by_ref()) {
        let owv = u64::from_le_bytes(ow.try_into().expect("8-byte chunk"));
        let nwv = u64::from_le_bytes(nw.try_into().expect("8-byte chunk"));
        if owv != nwv {
            for (i, (&o, &n)) in ow.iter().zip(nw).enumerate() {
                if o != n {
                    let at = off + pos + i as u64;
                    d ^= byte_term(at, o) ^ byte_term(at, n);
                }
            }
        }
        pos += 8;
    }
    for (i, (&o, &n)) in o_chunks.remainder().iter().zip(n_chunks.remainder()).enumerate() {
        if o != n {
            let at = off + pos + i as u64;
            d ^= byte_term(at, o) ^ byte_term(at, n);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_images_hash_to_zero() {
        assert_eq!(image_key(&[0u8; 100]), 0);
        assert_eq!(image_key(&[0u8; 9000]), 0);
        assert_eq!(image_key(&[]), 0);
    }

    #[test]
    fn key_is_content_determined() {
        let mut a = vec![0u8; 512];
        a[10] = 3;
        a[500] = 7;
        let mut b = vec![0u8; 512];
        b[500] = 7;
        b[10] = 3;
        assert_eq!(image_key(&a), image_key(&b));
        b[10] = 4;
        assert_ne!(image_key(&a), image_key(&b));
    }

    #[test]
    fn position_matters() {
        let mut a = vec![0u8; 64];
        a[1] = 5;
        let mut b = vec![0u8; 64];
        b[2] = 5;
        assert_ne!(image_key(&a), image_key(&b));
    }

    #[test]
    fn incremental_matches_full() {
        let mut img: Vec<u8> = (0..1000).map(|i| (i * 7 % 256) as u8).collect();
        let mut key = image_key(&img);
        let new = [9u8, 0, 255, 3, 3];
        let off = 123u64;
        key ^= write_delta(off, &img[123..128], &new);
        img[123..128].copy_from_slice(&new);
        assert_eq!(key, image_key(&img));
    }

    #[test]
    fn write_delta_of_identical_bytes_is_zero() {
        let old = [1u8, 2, 3];
        assert_eq!(write_delta(40, &old, &old), 0);
    }

    /// Per-byte reference implementations: the word-scanning fast paths must
    /// be bit-identical to these on every length and alignment.
    fn image_key_naive(img: &[u8]) -> ImageKey {
        let mut key = 0;
        for (i, &b) in img.iter().enumerate() {
            key ^= byte_term(i as u64, b);
        }
        key
    }

    fn write_delta_naive(off: u64, old: &[u8], new: &[u8]) -> ImageKey {
        let mut d = 0;
        for (i, (&o, &n)) in old.iter().zip(new).enumerate() {
            let at = off + i as u64;
            d ^= byte_term(at, o) ^ byte_term(at, n);
        }
        d
    }

    #[test]
    fn word_scan_matches_naive_on_all_lengths() {
        // Lengths straddling word boundaries, with zero runs and dense data.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 100, 257] {
            let img: Vec<u8> =
                (0..len).map(|i| if i % 5 == 0 { 0 } else { (i * 31 % 256) as u8 }).collect();
            assert_eq!(image_key(&img), image_key_naive(&img), "len={len}");
        }
    }

    fn span_key_naive(off: u64, data: &[u8]) -> ImageKey {
        let mut key = 0;
        for (i, &b) in data.iter().enumerate() {
            key ^= byte_term(off + i as u64, b);
        }
        key
    }

    #[test]
    fn span_key_matches_naive_on_all_lengths_and_offsets() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 100, 257] {
            let data: Vec<u8> =
                (0..len).map(|i| if i % 5 == 0 { 0 } else { (i * 31 % 256) as u8 }).collect();
            // Unaligned offsets must not change the scan result: terms are
            // per absolute byte position, not per word boundary.
            for off in [0u64, 1, 3, 8, 13, 4096] {
                assert_eq!(span_key(off, &data), span_key_naive(off, &data), "len={len} off={off}");
            }
        }
    }

    #[test]
    fn span_key_composes_into_image_key() {
        let img: Vec<u8> = (0..200).map(|i| (i * 7 % 256) as u8).collect();
        let (a, b) = img.split_at(77);
        assert_eq!(span_key(0, a) ^ span_key(77, b), image_key(&img));
    }

    #[test]
    fn run_term_distinguishes_offset_and_length() {
        assert_ne!(run_term(0, 8), run_term(8, 8));
        assert_ne!(run_term(0, 8), run_term(0, 16));
        assert_ne!(run_term(0, 0), run_term(0, 1));
        // And it never degenerates to zero for a zero-length run at 0.
        assert_ne!(run_term(0, 0), 0);
    }

    #[test]
    fn snap_key_frames_and_namespaces() {
        // Framing is positional over head||body: the same concatenation
        // splits to the same key, different contents or lengths do not.
        assert_eq!(snap_key(b"ab", b"cd"), snap_key(b"ab", b"cd"));
        assert_eq!(
            snap_span(0, b"abcd"),
            snap_span(0, b"ab") ^ snap_span(2, b"cd"),
            "snap spans compose positionally"
        );
        assert_ne!(snap_key(b"ab", b"cd"), snap_key(b"ab", b"ce"));
        // Trailing zeros are invisible to byte terms but not to the key.
        assert_ne!(snap_key(b"a", b"\0"), snap_key(b"a", b""));
        assert_ne!(snap_key(b"", b""), 0);
        // Independent namespace: identical bytes key differently than the
        // image family.
        assert_ne!(snap_key(b"", b"xyz"), span_key(0, b"xyz"));
    }

    #[test]
    fn write_delta_matches_naive_on_all_lengths() {
        for len in [0usize, 1, 7, 8, 9, 17, 40, 129] {
            let old: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            // Differs only sparsely so most words short-circuit.
            let new: Vec<u8> =
                old.iter().enumerate().map(|(i, &b)| if i % 11 == 3 { b ^ 0x40 } else { b }).collect();
            for off in [0u64, 1, 8, 4096] {
                assert_eq!(
                    write_delta(off, &old, &new),
                    write_delta_naive(off, &old, &new),
                    "len={len} off={off}"
                );
            }
        }
    }
}
