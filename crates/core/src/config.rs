//! Test-harness configuration.

/// Configuration for one Chipmunk test run.
#[derive(Debug, Clone)]
pub struct TestConfig {
    /// Size of the simulated PM devices in bytes.
    pub device_size: u64,
    /// Maximum number of in-flight writes replayed per crash state (the
    /// paper's configurable cap, §3.3). The full set is always checked in
    /// addition. `None` = exhaustive.
    pub cap: Option<usize>,
    /// Safety valve: maximum number of crash states generated per crash
    /// point regardless of `cap`.
    pub max_states_per_point: u64,
    /// Coalesce address-contiguous non-temporal stores into single logical
    /// writes (the paper's file-data heuristic, §3.2).
    pub coalesce_data: bool,
    /// Run the usability probe (create a file in every directory, then
    /// delete every file) on each crash state.
    pub probe: bool,
    /// Stop checking a workload after its first violation.
    pub stop_on_first: bool,
    /// Compare inode numbers between crash state and oracle. Off by default:
    /// recovery may legally renumber inodes as long as the namespace and
    /// contents are right.
    pub compare_ino: bool,
    /// Test under the eADR persistence model: the caches are persistent, so
    /// every store is durable the moment it lands — there is no in-flight
    /// set and crash states are exact point-in-time snapshots. The paper's
    /// §3.6 argues Chipmunk ports to new persistence models by adjusting
    /// the logger and replayer; this flag is that port.
    pub eadr: bool,
    /// Ablation control for Observation 7: enumerate large subsets before
    /// small ones (default small-first). With `stop_on_first`, small-first
    /// reaches buggy crash states in far fewer mounts because "buggy crash
    /// states usually involve few writes".
    pub large_first_subsets: bool,
    /// Worker threads for crash-state checking and workload sharding. The
    /// harness checks the subsets at a crash point concurrently over
    /// independent copy-on-write overlays of the shared base image, and the
    /// bench frontends shard workload streams across the same count; results
    /// are always committed in canonical enumeration order, so reports and
    /// counters are bit-identical for any value. `1` (the default) runs
    /// fully serial.
    pub threads: usize,
    /// Crash-state dedup cache: subsets whose replayed bytes produce an
    /// identical image over the same base (coalesced subsets frequently
    /// collide) reuse the first check's result instead of remounting.
    /// Observationally identical to `false` — reports, counters, coverage
    /// and traces are unchanged — except for wall time and the
    /// `dedup_hits` counter.
    pub dedup: bool,
    /// Prefix-shared workload execution: the batched runners cache live
    /// oracle/record/replay state per `(kind, op-prefix)` and resume each
    /// workload from the deepest cached prefix instead of re-running mkfs
    /// and the shared ops. Consulted by `bench`'s cached batch runner (the
    /// single-workload [`crate::test_workload`] entry point has no batch to
    /// share prefixes across). Observationally identical to `false` except
    /// for wall time and the `prefix_hits`/`prefix_ops_saved` counters.
    pub prefix_cache: bool,
    /// Delta subset replay: on the serial path, step between adjacent crash
    /// states of a point by applying/undoing the few writes they differ in
    /// (one undo-logged overlay per point) instead of rebuilding a fresh
    /// overlay per state; checker mount/probe mutations roll back through
    /// the same undo marks. Observationally identical to `false`.
    pub delta_replay: bool,
    /// Cross-point memoization: crash states whose *content* (base image +
    /// replayed subset) recurs at a later crash point reuse the memoized
    /// mount/walk/probe artifacts instead of remounting. The oracle
    /// comparison always runs per state (it depends on the crash point).
    /// Observationally identical to `false` except for wall time and the
    /// `memo_hits` counter.
    pub cross_dedup: bool,
    /// Scoped checking: compare file *contents* against the oracle only for
    /// paths the in-flight operation can touch (its targets, their parents,
    /// and hard-link aliases); structure and metadata are always compared
    /// for every path. The full-compare escape hatch is `false`.
    pub scoped_check: bool,
    /// Debug mode: run the scoped and the full comparison on every state
    /// and panic if their verdicts disagree. Implies the full tree walk.
    pub scoped_validate: bool,
    /// Prefix-tree-aware parallel scheduling: with `threads > 1` the batched
    /// runners partition whole prefix subtrees across workers (each with its
    /// own `PrefixCache`), so `prefix_cache` stays effective instead of being
    /// disabled by parallelism. Subtree assignment is deterministic (sorted
    /// subtree keys, round-robin) and results commit in canonical batch
    /// order, so all outcomes and counters stay bit-identical across thread
    /// counts. `false` falls back to plain workload sharding (the pre-compose
    /// behavior). No effect at `threads <= 1`.
    pub par_prefix: bool,
    /// Fault isolation for the checking pipeline: run every checker stage
    /// (mount, walk, compare, probe) under `catch_unwind`, so a file-system
    /// panic while checking a crash state becomes a
    /// [`Violation::RecoveryPanic`](crate::report::Violation::RecoveryPanic)
    /// finding instead of tearing down the sweep — the in-process analogue
    /// of the paper's VM isolation. `false` restores fail-fast panics (for
    /// debugging the harness itself).
    pub sandbox: bool,
    /// Deterministic recovery watchdog: the fuel budget, in simulated device
    /// ops, that one mount+walk (or probe) of a crash state may spend before
    /// it is declared a
    /// [`Violation::RecoveryHang`](crate::report::Violation::RecoveryHang).
    /// Counted in device ops rather than wall-clock so verdicts are
    /// bit-identical at any thread count. Requires `sandbox`. `None`
    /// disables the watchdog.
    pub recovery_fuel: Option<u64>,
    /// Representative-state checking: cluster crash states by a behavioral
    /// signature ([`crashgen::behavior_sig`](crate::crashgen::behavior_sig)
    /// plus the crash point's check context), run the full check pipeline
    /// only on the first state of each class, and skip the rest as long as
    /// the representative stayed violation-free. A class whose
    /// representative reports *any* violation expands: every later member
    /// is checked exhaustively, so no bug is ever reported from an
    /// unchecked state and a hit class degrades to today's exhaustive
    /// behavior. Class tables are per workload, updated only at canonical
    /// commit, and live in prefix-cache checkpoints — outcomes are
    /// bit-identical across thread counts and `prefix_cache` settings.
    /// Unlike the exact-image fast paths this one is lossy by design
    /// (Pathfinder-style representative testing): a violation unique to a
    /// skipped member of a clean class would be missed, which CI pins
    /// against the 25-bug corpus (zero missed bugs) and the
    /// `CHIPMUNK_REP_VALIDATE` cross-check. Counted by `rep_classes` /
    /// `rep_skipped` / `rep_expansions`.
    pub rep_check: bool,
    /// Debug mode for `rep_check`: force-check every state the
    /// representative layer would skip and panic if one of them reports a
    /// violation (the signature failed to be a checker congruence). The
    /// committed outcome stays byte-identical to plain `rep_check` runs.
    /// Also enabled process-wide by setting `CHIPMUNK_REP_VALIDATE=1`.
    pub rep_validate: bool,
    /// Structurally-shared oracle snapshots: build each per-op oracle tree
    /// by advancing the previous snapshot across the op's footprint
    /// (re-walking only the paths the op could have touched, sharing every
    /// untouched node by `Arc`) instead of deep-walking the whole tree per
    /// op, and let the diffs skip nodes whose content hashes match the
    /// oracle's. Hash equality uses the same 128-bit-collision assumption
    /// the dedup/memo layers already make; an op whose footprint cannot be
    /// named falls back to a full walk. Observationally identical to
    /// `false` — verdicts, reports and semantic counters are unchanged —
    /// except for wall time, memory, and the `oracle_subtrees_pruned` /
    /// `oracle_snap_bytes_shared` counters, so the knob stays out of
    /// [`semantic_knobs`](Self::semantic_knobs).
    pub shared_oracle: bool,
    /// Record the content key of every committed crash state into
    /// [`TestOutcome::state_keys`](crate::TestOutcome), in canonical commit
    /// order (the campaign store folds them into its persistent per-FS
    /// crash-state bitmaps). Off by default — the vector grows with
    /// `crash_states` and most callers never look at it. Purely additive
    /// observability: verdicts, counters and reports are unaffected, so the
    /// knob stays out of [`semantic_knobs`](Self::semantic_knobs) like the
    /// other non-semantic switches.
    pub collect_state_keys: bool,
}

/// Default [`TestConfig::recovery_fuel`] budget. A full mount + walk of the
/// default 4 MiB device spends well under 2 M fuel units (≈ 1 unit per device
/// op + 1 per 64 bytes moved) on every file system in this workspace; 50 M
/// gives a > 25× margin while still bounding an injected infinite recovery
/// loop to well under a second of spinning.
pub const DEFAULT_RECOVERY_FUEL: u64 = 50_000_000;

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            device_size: 4 * 1024 * 1024,
            cap: None,
            max_states_per_point: 4096,
            coalesce_data: true,
            probe: true,
            stop_on_first: false,
            compare_ino: false,
            eadr: false,
            large_first_subsets: false,
            threads: 1,
            dedup: true,
            prefix_cache: true,
            delta_replay: true,
            cross_dedup: true,
            scoped_check: true,
            scoped_validate: false,
            par_prefix: true,
            sandbox: true,
            recovery_fuel: Some(DEFAULT_RECOVERY_FUEL),
            rep_check: true,
            rep_validate: false,
            shared_oracle: true,
            collect_state_keys: false,
        }
    }
}

impl TestConfig {
    /// The configuration used for fuzzing campaigns: cap of two writes per
    /// crash state (§4.2 — "a cap of two writes … does not affect its
    /// ability to find bugs in practice") and early exit.
    pub fn fuzzing() -> Self {
        TestConfig { cap: Some(2), stop_on_first: true, ..Default::default() }
    }

    /// Returns a copy with the given replay cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Returns a copy with the given worker-thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The outcome-affecting knobs as stable `(key, value)` string pairs —
    /// what a repro bundle must persist for a replay to reach the same
    /// verdict. The pure performance knobs (`threads`, `dedup`,
    /// `prefix_cache`, `delta_replay`, `cross_dedup`, `scoped_check`,
    /// `par_prefix`) are deliberately absent: they are observationally
    /// identical by construction, so a bundle replays correctly under any of
    /// them. `rep_check` is absent too: bundles replay one pinned crash
    /// state through the single-state path, which never consults the
    /// representative layer.
    pub fn semantic_knobs(&self) -> Vec<(&'static str, String)> {
        fn opt(v: Option<u64>) -> String {
            match v {
                Some(x) => x.to_string(),
                None => "none".into(),
            }
        }
        vec![
            ("device_size", self.device_size.to_string()),
            ("cap", opt(self.cap.map(|c| c as u64))),
            ("max_states_per_point", self.max_states_per_point.to_string()),
            ("coalesce_data", self.coalesce_data.to_string()),
            ("probe", self.probe.to_string()),
            ("stop_on_first", self.stop_on_first.to_string()),
            ("compare_ino", self.compare_ino.to_string()),
            ("eadr", self.eadr.to_string()),
            ("large_first_subsets", self.large_first_subsets.to_string()),
            ("sandbox", self.sandbox.to_string()),
            ("recovery_fuel", opt(self.recovery_fuel)),
        ]
    }

    /// Sets one knob from its [`semantic_knobs`](Self::semantic_knobs)
    /// string form. Unknown keys are errors so a bundle written by a newer
    /// build fails loudly instead of silently replaying under wrong knobs.
    pub fn set_knob(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn b(v: &str) -> Result<bool, String> {
            v.parse().map_err(|_| format!("bad bool {v:?}"))
        }
        fn n(v: &str) -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad number {v:?}"))
        }
        fn opt_n(v: &str) -> Result<Option<u64>, String> {
            if v == "none" { Ok(None) } else { n(v).map(Some) }
        }
        match key {
            "device_size" => self.device_size = n(value)?,
            "cap" => self.cap = opt_n(value)?.map(|c| c as usize),
            "max_states_per_point" => self.max_states_per_point = n(value)?,
            "coalesce_data" => self.coalesce_data = b(value)?,
            "probe" => self.probe = b(value)?,
            "stop_on_first" => self.stop_on_first = b(value)?,
            "compare_ino" => self.compare_ino = b(value)?,
            "eadr" => self.eadr = b(value)?,
            "large_first_subsets" => self.large_first_subsets = b(value)?,
            "sandbox" => self.sandbox = b(value)?,
            "recovery_fuel" => self.recovery_fuel = opt_n(value)?,
            _ => return Err(format!("unknown config knob {key:?}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = TestConfig::default();
        assert!(c.cap.is_none());
        assert!(c.coalesce_data);
        assert!(c.probe);
        assert_eq!(TestConfig::fuzzing().cap, Some(2));
        assert_eq!(TestConfig::default().with_cap(5).cap, Some(5));
        assert_eq!(c.threads, 1);
        assert!(c.dedup);
        assert_eq!(TestConfig::default().with_threads(4).threads, 4);
        assert_eq!(TestConfig::default().with_threads(0).threads, 1);
        assert!(c.prefix_cache && c.delta_replay && c.cross_dedup && c.scoped_check);
        assert!(!c.scoped_validate);
        assert!(c.par_prefix);
        assert!(c.sandbox);
        assert_eq!(c.recovery_fuel, Some(DEFAULT_RECOVERY_FUEL));
        assert!(c.rep_check);
        assert!(!c.rep_validate);
        assert!(c.shared_oracle);
        assert!(!c.collect_state_keys);
    }

    #[test]
    fn semantic_knobs_round_trip() {
        let src = TestConfig {
            device_size: 8 * 1024 * 1024,
            cap: Some(3),
            stop_on_first: true,
            eadr: true,
            recovery_fuel: None,
            ..Default::default()
        };
        let mut dst = TestConfig::default();
        for (k, v) in src.semantic_knobs() {
            dst.set_knob(k, &v).unwrap();
        }
        for ((k1, v1), (k2, v2)) in src.semantic_knobs().iter().zip(dst.semantic_knobs()) {
            assert_eq!((*k1, v1), (k2, &v2));
        }
        assert_eq!(dst.cap, Some(3));
        assert_eq!(dst.recovery_fuel, None);
        assert!(dst.set_knob("threads", "4").is_err());
        assert!(dst.set_knob("cap", "many").is_err());
        // Perf-only knobs never round-trip through bundles.
        assert!(dst.set_knob("rep_check", "true").is_err());
        assert!(dst.set_knob("shared_oracle", "true").is_err());
    }
}
