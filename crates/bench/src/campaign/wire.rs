//! Wire form of one workload's campaign result.
//!
//! A [`WRes`] is what the journal records per completed workload and what
//! task result files hold: the outcome counters, the crash-state /
//! coverage bitmap bits it set, its violation reports (string form), and —
//! for corpus-worthy fuzzer workloads — the wire-form ops. Serialization
//! is deterministic (field order fixed, sets sorted), so the merged
//! campaign document and its fingerprint are byte-identical however the
//! results were produced.

use chipmunk::{BugReport, TestOutcome};

use crate::jsonout::JVal;

/// JSON number from a small unsigned integer. `JVal` numbers are `f64`, so
/// this is exact only below 2^53 — counters, indices and bitmap bits all
/// are; full 64-bit hashes travel as hex strings instead.
pub(crate) fn ju(n: u64) -> JVal {
    debug_assert!(n < (1u64 << 53), "u64 too large for exact JSON number");
    JVal::Num(n as f64)
}

/// Required u64 field lookup.
pub(crate) fn jval_u64(v: &JVal, key: &str) -> Result<u64, String> {
    v.get(key).and_then(JVal::as_u64).ok_or_else(|| format!("missing/bad field {key:?}"))
}

fn jstr(v: &JVal, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JVal::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/bad field {key:?}"))
}

/// One violation report in string form (class/detail/stage are the stable
/// strings the triage layer already keys on; the enum itself never needs to
/// be reconstructed from the store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Workload name.
    pub workload: String,
    /// Index of the op whose crash point produced the state.
    pub op_seq: u64,
    /// Description of that op.
    pub op_desc: String,
    /// Crash phase (display form).
    pub phase: String,
    /// Human-readable subset description.
    pub subset: String,
    /// Crash-point ordinal, when committed by the harness.
    pub point: Option<u64>,
    /// Indices of the replayed in-flight writes.
    pub subset_ids: Vec<u64>,
    /// Violation class (stable string).
    pub class: String,
    /// Violation detail line.
    pub detail: String,
    /// Checker stage, when the violation carries one.
    pub stage: Option<String>,
}

impl WireReport {
    /// Converts a harness report.
    pub fn from_report(r: &BugReport) -> Self {
        WireReport {
            workload: r.workload.clone(),
            op_seq: r.op_seq as u64,
            op_desc: r.op_desc.clone(),
            phase: r.phase.to_string(),
            subset: r.subset.clone(),
            point: r.point,
            subset_ids: r.subset_ids.iter().map(|&i| i as u64).collect(),
            class: r.violation.class().to_string(),
            detail: r.violation.detail().to_string(),
            stage: r.violation.stage().map(|s| crate::repro::stage_name(s).to_string()),
        }
    }

    /// Serializes the report.
    pub fn to_jval(&self) -> JVal {
        JVal::Obj(vec![
            ("workload".into(), JVal::Str(self.workload.clone())),
            ("op_seq".into(), ju(self.op_seq)),
            ("op_desc".into(), JVal::Str(self.op_desc.clone())),
            ("phase".into(), JVal::Str(self.phase.clone())),
            ("subset".into(), JVal::Str(self.subset.clone())),
            ("point".into(), self.point.map(ju).unwrap_or(JVal::Null)),
            ("subset_ids".into(), JVal::Arr(self.subset_ids.iter().map(|&i| ju(i)).collect())),
            ("class".into(), JVal::Str(self.class.clone())),
            ("detail".into(), JVal::Str(self.detail.clone())),
            (
                "stage".into(),
                self.stage.clone().map(JVal::Str).unwrap_or(JVal::Null),
            ),
        ])
    }

    /// Reconstructs a harness [`BugReport`] (for triage over merged store
    /// results). The class/detail/stage strings are the stable wire form,
    /// so the round trip is exact for every class the harness emits; an
    /// unknown class (a newer store) comes back as `RuntimeError` rather
    /// than failing the whole merge.
    pub fn to_bug_report(&self) -> BugReport {
        use chipmunk::report::{CrashPhase, Stage, Violation};
        let phase = match self.phase.as_str() {
            "after syscall" => CrashPhase::AfterSyscall,
            "after fsync" => CrashPhase::AfterFsync,
            _ => CrashPhase::DuringSyscall,
        };
        let stage = self
            .stage
            .as_deref()
            .and_then(|s| crate::repro::stage_from(s).ok())
            .unwrap_or(Stage::Worker);
        let d = || self.detail.clone();
        let violation = match self.class.as_str() {
            "unmountable" => Violation::Unmountable(d()),
            "corrupt-state" => Violation::CorruptState(d()),
            "atomicity" => Violation::AtomicityViolation(d()),
            "synchrony" => Violation::SynchronyViolation(d()),
            "unusable" => Violation::UnusableState(d()),
            "oracle-divergence" => Violation::OracleDivergence(d()),
            "recovery-panic" => Violation::RecoveryPanic { stage, payload: d() },
            "recovery-hang" => Violation::RecoveryHang { stage, payload: d() },
            _ => Violation::RuntimeError(d()),
        };
        BugReport {
            workload: self.workload.clone(),
            op_seq: self.op_seq as usize,
            op_desc: self.op_desc.clone(),
            phase,
            subset: self.subset.clone(),
            point: self.point,
            subset_ids: self.subset_ids.iter().map(|&i| i as usize).collect(),
            violation,
        }
    }

    /// Parses a report back.
    pub fn from_jval(v: &JVal) -> Result<Self, String> {
        let point = match v.get("point") {
            Some(JVal::Null) | None => None,
            Some(p) => Some(p.as_u64().ok_or("report: bad point")?),
        };
        let stage = match v.get("stage") {
            Some(JVal::Null) | None => None,
            Some(s) => Some(s.as_str().ok_or("report: bad stage")?.to_string()),
        };
        let subset_ids = v
            .get("subset_ids")
            .and_then(JVal::as_arr)
            .ok_or("report: missing subset_ids")?
            .iter()
            .map(|i| i.as_u64().ok_or_else(|| "report: bad subset id".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(WireReport {
            workload: jstr(v, "workload")?,
            op_seq: jval_u64(v, "op_seq")?,
            op_desc: jstr(v, "op_desc")?,
            phase: jstr(v, "phase")?,
            subset: jstr(v, "subset")?,
            point,
            subset_ids,
            class: jstr(v, "class")?,
            detail: jstr(v, "detail")?,
            stage,
        })
    }
}

/// One workload's campaign result, in storable form.
#[derive(Debug, Clone, PartialEq)]
pub struct WRes {
    /// Workload name.
    pub name: String,
    /// Counters copied from [`TestOutcome`], in a fixed order (see
    /// [`COUNTER_NAMES`]).
    pub counters: [u64; 20],
    /// Sorted, deduplicated crash-state bitmap bits this workload set
    /// (folded `state_keys` — see `TestConfig::collect_state_keys`).
    pub state_bits: Vec<u64>,
    /// Sorted, deduplicated coverage bitmap bits.
    pub cov_bits: Vec<u64>,
    /// Fuzz tasks only: the exact coverage hashes this workload saw first
    /// (sorted) — replayed to rebuild the fuzzer's cumulative seen-set and
    /// feedback trajectory on resume.
    pub cov_new: Vec<u64>,
    /// Violation reports, in commit order.
    pub reports: Vec<WireReport>,
    /// Wire-form ops, kept for corpus-worthy workloads (fuzzer finds and
    /// new-coverage inputs).
    pub ops: Option<Vec<String>>,
}

/// Names of the [`WRes::counters`] slots, in order. The three `rep_*`
/// slots were appended after the 12-slot layout shipped, the two
/// `oracle_*` slots after the 15-slot one, and the three host-I/O
/// observability slots (`io_retries` / `tasks_quarantined` /
/// `degraded_mode`) after the 17-slot one; [`WRes::from_jval`] still
/// accepts 12-, 15- and 17-counter journal lines (older stores) by
/// zero-padding. The host-I/O slots are always 0 in journaled per-workload
/// results — the in-memory harness performs no host I/O, and stamping
/// host-level numbers into `WRes` would break the byte-identical-merge
/// invariant under fault injection; real host-I/O counts travel in the
/// worker summaries and `run.json` instead.
pub const COUNTER_NAMES: [&str; 20] = [
    "crash_points",
    "crash_states",
    "dedup_hits",
    "memo_hits",
    "prefix_hits",
    "prefix_ops_saved",
    "sched_subtrees",
    "sched_subtree_max_depth",
    "recovery_panics",
    "recovery_hangs",
    "sandbox_retries",
    "fuel_exhausted",
    "rep_classes",
    "rep_skipped",
    "rep_expansions",
    "oracle_subtrees_pruned",
    "oracle_snap_bytes_shared",
    "io_retries",
    "tasks_quarantined",
    "degraded_mode",
];

impl WRes {
    /// Builds the wire result from a harness outcome. `bitmap_bits` folds
    /// keys/coverage into bit indices; `cov_new` carries the exact new
    /// coverage hashes (fuzz tasks); `ops` the wire-form workload when it is
    /// corpus-worthy.
    pub fn from_outcome(
        out: &TestOutcome,
        cov: &std::collections::HashSet<u64>,
        bitmap_bits: u64,
        cov_new: Vec<u64>,
        ops: Option<Vec<String>>,
    ) -> Self {
        let mask = bitmap_bits - 1;
        let fold = |xs: &mut Vec<u64>| {
            xs.sort_unstable();
            xs.dedup();
        };
        let mut state_bits: Vec<u64> = out.state_keys.iter().map(|&k| k & mask).collect();
        fold(&mut state_bits);
        let mut cov_bits: Vec<u64> = cov.iter().map(|&h| h & mask).collect();
        fold(&mut cov_bits);
        WRes {
            name: out.workload.clone(),
            counters: [
                out.crash_points,
                out.crash_states,
                out.dedup_hits,
                out.memo_hits,
                out.prefix_hits,
                out.prefix_ops_saved,
                out.sched_subtrees,
                out.sched_subtree_max_depth,
                out.recovery_panics,
                out.recovery_hangs,
                out.sandbox_retries,
                out.fuel_exhausted,
                out.rep_classes,
                out.rep_skipped,
                out.rep_expansions,
                out.oracle_subtrees_pruned,
                out.oracle_snap_bytes_shared,
                out.io_retries,
                out.tasks_quarantined,
                out.degraded_mode,
            ],
            state_bits,
            cov_bits,
            cov_new,
            reports: out.reports.iter().map(WireReport::from_report).collect(),
            ops,
        }
    }

    /// Serializes the result (compact, single-line via `JVal::render`).
    pub fn to_jval(&self) -> JVal {
        let bits = |xs: &[u64]| JVal::Arr(xs.iter().map(|&b| ju(b)).collect());
        let mut fields = vec![
            ("name".into(), JVal::Str(self.name.clone())),
            (
                "counters".into(),
                JVal::Arr(self.counters.iter().map(|&c| ju(c)).collect()),
            ),
            ("state_bits".into(), bits(&self.state_bits)),
            ("cov_bits".into(), bits(&self.cov_bits)),
            (
                "cov_new".into(),
                JVal::Arr(self.cov_new.iter().map(|&h| JVal::Str(format!("{h:016x}"))).collect()),
            ),
            (
                "reports".into(),
                JVal::Arr(self.reports.iter().map(WireReport::to_jval).collect()),
            ),
        ];
        if let Some(ops) = &self.ops {
            fields.push((
                "ops".into(),
                JVal::Arr(ops.iter().map(|l| JVal::Str(l.clone())).collect()),
            ));
        }
        JVal::Obj(fields)
    }

    /// Parses a result back.
    pub fn from_jval(v: &JVal) -> Result<Self, String> {
        let counters_arr = v.get("counters").and_then(JVal::as_arr).ok_or("wres: missing counters")?;
        // 12 (pre-rep_check), 15 (pre-shared_oracle) and 17 (pre-host-io)
        // are older layouts; missing slots stay 0.
        if ![20, 17, 15, 12].contains(&counters_arr.len()) {
            return Err(format!(
                "wres: expected 12, 15, 17 or 20 counters, got {}",
                counters_arr.len()
            ));
        }
        let mut counters = [0u64; 20];
        for (slot, c) in counters.iter_mut().zip(counters_arr) {
            *slot = c.as_u64().ok_or("wres: bad counter")?;
        }
        let bits = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(JVal::as_arr)
                .ok_or_else(|| format!("wres: missing {key}"))?
                .iter()
                .map(|b| b.as_u64().ok_or_else(|| format!("wres: bad {key} entry")))
                .collect()
        };
        let cov_new = v
            .get("cov_new")
            .and_then(JVal::as_arr)
            .ok_or("wres: missing cov_new")?
            .iter()
            .map(|h| {
                h.as_str()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| "wres: bad cov_new hash".to_string())
            })
            .collect::<Result<Vec<u64>, String>>()?;
        let reports = v
            .get("reports")
            .and_then(JVal::as_arr)
            .ok_or("wres: missing reports")?
            .iter()
            .map(WireReport::from_jval)
            .collect::<Result<Vec<_>, String>>()?;
        let ops = match v.get("ops") {
            None | Some(JVal::Null) => None,
            Some(o) => Some(
                o.as_arr()
                    .ok_or("wres: bad ops")?
                    .iter()
                    .map(|l| l.as_str().map(str::to_string).ok_or_else(|| "wres: bad op line".to_string()))
                    .collect::<Result<Vec<_>, String>>()?,
            ),
        };
        Ok(WRes {
            name: jstr(v, "name")?,
            counters,
            state_bits: bits("state_bits")?,
            cov_bits: bits("cov_bits")?,
            cov_new,
            reports,
            ops,
        })
    }
}

/// 64-bit FNV-1a — the store's fingerprint hash (stable, dependency-free).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = if seed == 0 { 0xcbf2_9ce4_8422_2325 } else { seed };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk::{CrashPhase, Violation};

    fn sample() -> WRes {
        WRes {
            name: "seq1-0007".into(),
            counters: [9, 120, 40, 3, 1, 14, 2, 3, 0, 0, 0, 0, 5, 60, 2, 180, 4096, 0, 0, 0],
            state_bits: vec![1, 5, 4095],
            cov_bits: vec![0, 77],
            cov_new: vec![0x0123_4567_89ab_cdef, u64::MAX],
            reports: vec![WireReport {
                workload: "seq1-0007".into(),
                op_seq: 2,
                op_desc: "fsync /a".into(),
                phase: CrashPhase::DuringSyscall.to_string(),
                subset: "writes {0, 3}".into(),
                point: Some(7),
                subset_ids: vec![0, 3],
                class: "atomicity".into(),
                detail: "torn directory entry".into(),
                stage: Some("compare".into()),
            }],
            ops: Some(vec!["creat /a".into(), "fsync /a".into()]),
        }
    }

    #[test]
    fn wres_round_trips_through_the_parser() {
        let w = sample();
        let line = w.to_jval().render();
        assert!(!line.contains('\n'), "journal lines must be single-line");
        let back = WRes::from_jval(&crate::jsonout::parse(&line).unwrap()).unwrap();
        assert_eq!(back, w);

        // Without ops (the common ACE case) the field is absent entirely.
        let mut no_ops = w;
        no_ops.ops = None;
        let back = WRes::from_jval(&crate::jsonout::parse(&no_ops.to_jval().render()).unwrap())
            .unwrap();
        assert_eq!(back, no_ops);
    }

    #[test]
    fn wres_accepts_legacy_twelve_counter_lines() {
        // A journal written before the rep_check counters existed carries
        // 12-element counter arrays; they parse with the rep slots zeroed.
        let legacy = r#"{"name":"w","counters":[9,120,40,3,1,14,2,3,0,0,0,0],"state_bits":[],"cov_bits":[],"cov_new":[],"reports":[]}"#;
        let w = WRes::from_jval(&crate::jsonout::parse(legacy).unwrap()).unwrap();
        assert_eq!(w.counters[..12], [9, 120, 40, 3, 1, 14, 2, 3, 0, 0, 0, 0]);
        assert_eq!(w.counters[12..], [0; 8], "rep/oracle/host-io slots default to zero");
        let bad = legacy.replace("[9,120,40,3,1,14,2,3,0,0,0,0]", "[9,120,40]");
        assert!(WRes::from_jval(&crate::jsonout::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn wres_from_outcome_folds_and_sorts() {
        let mut out = TestOutcome { workload: "w".into(), ..Default::default() };
        out.crash_points = 3;
        out.crash_states = 5;
        out.state_keys = vec![4096 + 7, 7, 9, 7]; // folds collide mod 4096
        let report = chipmunk::BugReport {
            workload: "w".into(),
            op_seq: 0,
            op_desc: "creat /f".into(),
            phase: CrashPhase::AfterFsync,
            subset: "s".into(),
            point: None,
            subset_ids: vec![1],
            violation: Violation::Unmountable("bad super".into()),
        };
        out.reports.push(report);
        let cov: std::collections::HashSet<u64> = [10u64, 4096 + 10, 3].into_iter().collect();
        let w = WRes::from_outcome(&out, &cov, 4096, vec![], None);
        assert_eq!(w.state_bits, vec![7, 9], "folded, sorted, deduplicated");
        assert_eq!(w.cov_bits, vec![3, 10]);
        assert_eq!(w.counters[0], 3);
        assert_eq!(w.reports.len(), 1);
        assert_eq!(w.reports[0].class, "unmountable");
        assert_eq!(w.reports[0].point, None);
        // Stage travels only for the sandbox classes (recovery panic/hang).
        assert_eq!(w.reports[0].stage, None);
    }
}
