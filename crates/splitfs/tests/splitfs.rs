//! Functional, crash, and per-bug tests for the SplitFS analogue.

use chipmunk::{test_workload, TestConfig};
use pmem::PmDevice;
use splitfs::{SplitFs, SplitFsKind};
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet, Op, OpenFlags, Workload,
};

const DEV: u64 = 4 * 1024 * 1024;

fn fixed_kind() -> SplitFsKind {
    SplitFsKind { opts: FsOptions::fixed() }
}

fn kind_with(bugs: &[BugId]) -> SplitFsKind {
    SplitFsKind { opts: FsOptions::with_bugs(BugSet::only(bugs)) }
}

fn fresh(kind: &SplitFsKind) -> SplitFs<PmDevice> {
    kind.mkfs(PmDevice::new(DEV)).unwrap()
}

#[test]
fn staged_writes_read_back_before_relink() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 100, b"staged data").unwrap();
    // Before any checkpoint, reads must merge the staging area.
    assert_eq!(fs.stat("/f").unwrap().size, 111);
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[100..], b"staged data");
    assert_eq!(&data[..100], &[0u8; 100][..]);
    let mut buf = [0u8; 6];
    fs.pread(fd, 100, &mut buf).unwrap();
    assert_eq!(&buf, b"staged");
    fs.close(fd).unwrap(); // relink
    assert_eq!(&fs.read_file("/f").unwrap()[100..], b"staged data");
}

#[test]
fn metadata_ops_visible_without_kernel_sync() {
    // Metadata ops live in the kernel component's page cache plus the op
    // log; they must be fully visible crash-free without any sync. (The
    // crash paths are exercised through the chipmunk pipeline below, which
    // owns the device and can snapshot it.)
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    fs.mkdir("/d").unwrap();
    fs.creat("/d/f").unwrap();
    fs.link("/d/f", "/g").unwrap();
    let fd = fs.open("/g", OpenFlags::RDWR).unwrap();
    fs.pwrite(fd, 0, b"xyz").unwrap();
    assert_eq!(fs.read_file("/g").unwrap(), b"xyz");
    assert_eq!(fs.stat("/d/f").unwrap().nlink, 2);
    fs.close(fd).unwrap();
    assert_eq!(fs.read_file("/d/f").unwrap(), b"xyz");
}

#[test]
fn rename_moves_staged_data() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/a", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, b"payload").unwrap();
    // Rename while data is still staged.
    fs.rename("/a", "/b").unwrap();
    assert_eq!(fs.read_file("/b").unwrap(), b"payload");
    assert!(fs.read_file("/a").is_err());
    fs.close(fd).unwrap();
    assert_eq!(fs.read_file("/b").unwrap(), b"payload");
}

#[test]
fn truncate_clips_staged_data() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[9u8; 1000]).unwrap();
    fs.truncate("/f", 10).unwrap();
    assert_eq!(fs.read_file("/f").unwrap(), vec![9u8; 10]);
    fs.close(fd).unwrap();
    assert_eq!(fs.read_file("/f").unwrap(), vec![9u8; 10]);
}

#[test]
fn two_descriptors_merge_correctly_crash_free() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let a = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    let b = fs.open("/f", OpenFlags::RDWR).unwrap();
    fs.pwrite(a, 0, &[1u8; 100]).unwrap();
    fs.pwrite(b, 50, &[2u8; 100]).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..50], &[1u8; 50][..]);
    assert_eq!(&data[50..150], &[2u8; 100][..]);
    fs.close(a).unwrap();
    fs.close(b).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[50..150], &[2u8; 100][..]);
}

// ---- chipmunk pipeline ----

fn wl(name: &str, ops: Vec<Op>) -> Workload {
    Workload::new(name, ops)
}

#[test]
fn fixed_splitfs_passes_core_workloads() {
    let kind = fixed_kind();
    let workloads = vec![
        wl("creat", vec![Op::Creat { path: "/A".into() }]),
        wl(
            "write",
            vec![Op::WritePath { path: "/f".into(), off: 0, size: 1000 }],
        ),
        wl(
            "mkdir-write",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::WritePath { path: "/d/f".into(), off: 0, size: 500 },
            ],
        ),
        wl(
            "link-unlink",
            vec![
                Op::Creat { path: "/f".into() },
                Op::Link { old: "/f".into(), new: "/g".into() },
                Op::Unlink { path: "/f".into() },
            ],
        ),
        wl(
            "write-rename",
            vec![
                Op::WritePath { path: "/a".into(), off: 0, size: 700 },
                Op::Rename { old: "/a".into(), new: "/b".into() },
            ],
        ),
        wl(
            "truncate",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
                Op::Truncate { path: "/f".into(), size: 77 },
            ],
        ),
        wl(
            "two-fds",
            vec![
                Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::CREAT_TRUNC },
                Op::Open { slot: 1, path: "/f".into(), flags: OpenFlags::RDWR },
                Op::Pwrite { slot: 0, off: 0, size: 100 },
                Op::Pwrite { slot: 1, off: 50, size: 100 },
                Op::Close { slot: 0 },
                Op::Close { slot: 1 },
            ],
        ),
        wl(
            "two-fd-appends",
            vec![
                Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::CREAT_TRUNC },
                Op::Open {
                    slot: 1,
                    path: "/f".into(),
                    flags: OpenFlags { create: false, excl: false, trunc: false, append: true },
                },
                Op::Write { slot: 0, size: 64 },
                Op::Open {
                    slot: 2,
                    path: "/f".into(),
                    flags: OpenFlags { create: false, excl: false, trunc: false, append: true },
                },
                Op::Write { slot: 1, size: 64 },
                Op::Write { slot: 2, size: 64 },
                Op::Close { slot: 0 },
                Op::Close { slot: 1 },
                Op::Close { slot: 2 },
            ],
        ),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed SplitFS violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        assert!(out.crash_states > 0, "{}", w.name);
    }
}

#[test]
fn bug21_trailing_metadata_dropped() {
    let kind = kind_with(&[BugId::B21]);
    let w = wl(
        "b21",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 256 },
            Op::Mkdir { path: "/d".into() },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"),
        "bug 21 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B21));
}

#[test]
fn bug22_second_descriptor_wins() {
    let kind = kind_with(&[BugId::B22]);
    let w = wl(
        "b22",
        vec![
            Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::CREAT_TRUNC },
            Op::Open { slot: 1, path: "/f".into(), flags: OpenFlags::RDWR },
            Op::Pwrite { slot: 0, off: 0, size: 100 },
            Op::Pwrite { slot: 1, off: 200, size: 100 },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| matches!(
            r.violation.class(),
            "synchrony" | "atomicity"
        )),
        "bug 22 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B22));
}

#[test]
fn bug23_stale_append_base() {
    let kind = kind_with(&[BugId::B23]);
    let append = OpenFlags { create: false, excl: false, trunc: false, append: true };
    let w = wl(
        "b23",
        vec![
            Op::Creat { path: "/f".into() },
            Op::Open { slot: 0, path: "/f".into(), flags: append },
            Op::Open { slot: 1, path: "/f".into(), flags: append },
            Op::Write { slot: 0, size: 64 },
            Op::Write { slot: 1, size: 64 },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| matches!(
            r.violation.class(),
            "synchrony" | "atomicity"
        )),
        "bug 23 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B23));
}

#[test]
fn bug24_checkpoint_without_kernel_commit() {
    let kind = kind_with(&[BugId::B24]);
    // A large WritePath crosses the relink threshold: its close triggers
    // the checkpoint.
    let w = wl("b24", vec![Op::WritePath { path: "/f".into(), off: 0, size: 8192 }]);
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"),
        "bug 24 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B24));
}

#[test]
fn bug25_rename_resurrects_old_name() {
    let kind = kind_with(&[BugId::B25]);
    let w = wl(
        "b25",
        vec![
            Op::WritePath { path: "/a".into(), off: 0, size: 300 },
            Op::Rename { old: "/a".into(), new: "/b".into() },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| {
            matches!(r.violation.class(), "synchrony" | "atomicity")
                && r.violation.detail().contains("\"a\"")
        }),
        "bug 25 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B25));
}

#[test]
fn fixed_splitfs_clean_on_trigger_workloads() {
    let kind = fixed_kind();
    let append = OpenFlags { create: false, excl: false, trunc: false, append: true };
    let workloads = vec![
        wl(
            "t21",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 256 },
                Op::Mkdir { path: "/d".into() },
            ],
        ),
        wl(
            "t23",
            vec![
                Op::Creat { path: "/f".into() },
                Op::Open { slot: 0, path: "/f".into(), flags: append },
                Op::Open { slot: 1, path: "/f".into(), flags: append },
                Op::Write { slot: 0, size: 64 },
                Op::Write { slot: 1, size: 64 },
            ],
        ),
        wl(
            "t25",
            vec![
                Op::WritePath { path: "/a".into(), off: 0, size: 300 },
                Op::Rename { old: "/a".into(), new: "/b".into() },
            ],
        ),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed SplitFS violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
    }
}
