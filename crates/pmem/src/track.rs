//! [`ReadTracker`]: a transparent [`PmBackend`] wrapper recording which
//! *clean* device words a mounted file system reads.
//!
//! The harness's footprint memoization (see `chipmunk::harness`) checks one
//! crash state while recording the set of device lines the whole check —
//! mount recovery, tree walk, oracle comparison, usability probe — actually
//! consumed from the *crash image* (as opposed to bytes the checker itself
//! wrote first). Because the checker is deterministic, any other image that
//! agrees with the recorded one on exactly those lines drives the identical
//! execution and therefore reaches the identical verdict.
//!
//! The tracking rule that makes this an induction-proof footprint:
//!
//! * every byte range passed to [`PmBackend::read`] is recorded at
//!   [`WORD`] granularity (the 8-byte PM atomicity unit — fine enough that
//!   reading one inode field does not drag its neighbors into the
//!   footprint), **except** sub-ranges the checker has
//!   already overwritten through this wrapper (dirty-byte exclusion — those
//!   bytes are a function of the execution so far, not of the image);
//! * writes ([`PmBackend::store`], [`PmBackend::memcpy_nt`],
//!   [`PmBackend::memset_nt`]) mark their exact byte ranges dirty;
//! * dirty exclusion is byte-precise while recording is word-coarse, so
//!   the recorded set can only *over*-approximate the true dependency — a
//!   conservative direction (a match demands more agreement than strictly
//!   necessary, never less).
//!
//! The wrapper changes no behavior: all operations forward to the inner
//! backend (including cost accounting), so verdicts, coverage, and the fuel
//! watchdog are bit-identical with and without it. A `cap` bounds the
//! recorded set; once exceeded the tracker stops recording and
//! [`ReadTracker::clean_words`] returns `None` (callers then give up on
//! footprinting rather than hold giant word vectors).
//!
//! Internally clean reads are kept as coalesced *byte intervals* — one
//! `O(log n)` map operation per read instead of one set insert per word —
//! and expanded to word indices only once, at collection time. Recording is
//! on the hot path of every footprint-recorder check, so this matters.

use std::{
    cell::{Cell, RefCell},
    collections::BTreeMap,
};

use crate::{
    backend::{PmBackend, WORD},
    cost::SimCost,
};

/// See the module docs. Construct with [`ReadTracker::new`], run the check
/// with the tracker as the device (or `&mut` it), then collect
/// [`ReadTracker::clean_words`].
pub struct ReadTracker<D> {
    inner: D,
    /// Coalesced byte ranges (start → end) read before being dirtied.
    /// `RefCell` because [`PmBackend::read`] takes `&self`; backends are
    /// single-threaded by contract (`Send`, not `Sync`).
    clean: RefCell<BTreeMap<u64, u64>>,
    /// Total bytes covered by `clean` (kept incrementally for the cap).
    covered: Cell<u64>,
    /// The clean range most recently grown — checkers re-read the same
    /// blocks constantly (page-cache peeks, per-entry header reads), so most
    /// reads land inside it and skip the map entirely.
    last_clean: Cell<(u64, u64)>,
    /// Coalesced byte ranges (start → end) the checker wrote.
    dirty: BTreeMap<u64, u64>,
    /// Recording stops (and the clean set is discarded) past this many words.
    cap: usize,
    overflowed: Cell<bool>,
}

impl<D: PmBackend> ReadTracker<D> {
    /// Wraps `inner`, recording up to `cap` clean words.
    pub fn new(inner: D, cap: usize) -> Self {
        ReadTracker {
            inner,
            clean: RefCell::new(BTreeMap::new()),
            covered: Cell::new(0),
            last_clean: Cell::new((0, 0)),
            dirty: BTreeMap::new(),
            cap,
            overflowed: Cell::new(false),
        }
    }

    /// The recorded clean-read words, sorted ascending — or `None` if the
    /// set overflowed `cap` (footprinting should be abandoned).
    pub fn clean_words(&self) -> Option<Vec<u32>> {
        if self.overflowed.get() {
            return None;
        }
        let clean = self.clean.borrow();
        let mut words: Vec<u32> = Vec::new();
        for (&s, &e) in clean.iter() {
            let w0 = (s / WORD) as u32;
            let w1 = ((e - 1) / WORD) as u32;
            // Two ranges separated by a sub-word gap can share a boundary
            // word; ranges are sorted, so a duplicate can only be the last
            // word pushed.
            let start = if words.last() == Some(&w0) { w0 + 1 } else { w0 };
            words.extend(start..=w1);
            if words.len() > self.cap {
                return None;
            }
        }
        Some(words)
    }

    /// Records the clean sub-ranges of a read of `[off, off + len)`.
    fn record_read(&self, off: u64, len: u64) {
        if len == 0 || self.overflowed.get() {
            return;
        }
        let end = off + len;
        // Fast path: the whole read lies in an already-recorded clean range
        // (recording it again is a no-op — clean ranges only grow, and a
        // word once recorded clean stays recorded even if later dirtied).
        let (ls, le) = self.last_clean.get();
        if off >= ls && end <= le {
            return;
        }
        let mut pos = off;
        // Skip a dirty interval already covering the start.
        if let Some((_, &e)) = self.dirty.range(..=pos).next_back() {
            if e > pos {
                pos = e.min(end);
            }
        }
        let mut clean = self.clean.borrow_mut();
        for (&s, &e) in self.dirty.range(pos..end) {
            if s > pos {
                self.last_clean.set(Self::push_range(&mut clean, &self.covered, pos, s));
            }
            pos = e.min(end);
            if pos >= end {
                break;
            }
        }
        if pos < end {
            self.last_clean.set(Self::push_range(&mut clean, &self.covered, pos, end));
        }
        // Bytes covered bound the word count from below; once even that
        // exceeds the cap the exact count can only be larger — stop.
        if self.covered.get() / WORD > self.cap as u64 {
            self.overflowed.set(true);
            clean.clear();
        }
    }

    /// Inserts `[start, end)` (`start < end`), coalescing touching ranges
    /// and keeping the covered-byte total current. Returns the coalesced
    /// range the insertion landed in.
    fn push_range(
        clean: &mut BTreeMap<u64, u64>,
        covered: &Cell<u64>,
        start: u64,
        end: u64,
    ) -> (u64, u64) {
        let mut s = start;
        let mut e = end;
        let mut absorbed = 0;
        if let Some((&ps, &pe)) = clean.range(..=s).next_back() {
            if pe >= s {
                if pe >= e {
                    return (ps, pe); // already covered
                }
                s = ps;
                e = e.max(pe);
                absorbed += pe - ps;
                clean.remove(&ps);
            }
        }
        let keys: Vec<u64> = clean.range(s..=e).map(|(&k, _)| k).collect();
        for k in keys {
            let ke = clean.remove(&k).expect("interval present");
            absorbed += ke - k;
            e = e.max(ke);
        }
        clean.insert(s, e);
        covered.set(covered.get() + (e - s) - absorbed);
        (s, e)
    }

    /// Marks `[off, off + len)` dirty, coalescing adjacent intervals.
    fn mark_dirty(&mut self, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut start = off;
        let mut end = off + len;
        if let Some((&s, &e)) = self.dirty.range(..=start).next_back() {
            if e >= start {
                if e >= end {
                    return; // already covered
                }
                start = s;
                end = end.max(e);
                self.dirty.remove(&s);
            }
        }
        while let Some((&s, &e)) = self.dirty.range(start..=end).next() {
            self.dirty.remove(&s);
            end = end.max(e);
        }
        self.dirty.insert(start, end);
    }
}

impl<D: PmBackend> PmBackend for ReadTracker<D> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.record_read(off, buf.len() as u64);
        self.inner.read(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        self.mark_dirty(off, data.len() as u64);
        self.inner.store(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        self.mark_dirty(off, data.len() as u64);
        self.inner.memcpy_nt(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        self.mark_dirty(off, len);
        self.inner.memset_nt(off, val, len);
    }

    fn flush(&mut self, off: u64, len: u64) {
        self.inner.flush(off, len);
    }

    fn fence(&mut self) {
        self.inner.fence();
    }

    fn note_media_read(&mut self, len: u64) {
        self.inner.note_media_read(len);
    }

    fn sim_cost(&self) -> SimCost {
        self.inner.sim_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmDevice;

    fn tracker(len: u64) -> ReadTracker<PmDevice> {
        ReadTracker::new(PmDevice::new(len), 1 << 16)
    }

    #[test]
    fn clean_reads_are_recorded_per_word() {
        let t = tracker(4096);
        let mut b = [0u8; 8];
        t.read(0, &mut b);
        t.read(130, &mut b); // [130, 138): straddles words 16 and 17
        let mut big = [0u8; 200];
        t.read(250, &mut big); // [250, 450): words 31..=56
        let mut want = vec![0, 16, 17];
        want.extend(31..=56u32);
        assert_eq!(t.clean_words().unwrap(), want);
    }

    #[test]
    fn dirty_bytes_are_excluded_byte_precisely() {
        let mut t = tracker(4096);
        t.store(64, &[1u8; 64]); // exactly words 8..=15
        let mut b = [0u8; 64];
        t.read(64, &mut b); // fully dirty: not recorded
        assert_eq!(t.clean_words().unwrap(), Vec::<u32>::new());
        // A read overlapping dirty and clean bytes records the clean words.
        let mut b2 = [0u8; 128];
        t.read(64, &mut b2); // [64,192): dirty [64,128), clean [128,192)
        assert_eq!(t.clean_words().unwrap(), (16..=23).collect::<Vec<u32>>());
        // Sub-word dirty range: the clean tail of the word still records it.
        t.store(256, &[2u8; 4]);
        let mut b3 = [0u8; 8];
        t.read(256, &mut b3); // dirty [256,260), clean [260,264) in word 32
        let mut want: Vec<u32> = (16..=23).collect();
        want.push(32);
        assert_eq!(t.clean_words().unwrap(), want);
    }

    #[test]
    fn dirty_intervals_coalesce_across_write_kinds() {
        let mut t = tracker(4096);
        t.memcpy_nt(100, &[1u8; 20]);
        t.memset_nt(120, 0, 30);
        t.store(90, &[3u8; 10]);
        let mut b = [0u8; 60];
        t.read(90, &mut b); // [90,150) fully dirty
        assert_eq!(t.clean_words().unwrap(), Vec::<u32>::new());
        let mut b2 = [0u8; 70];
        t.read(90, &mut b2); // [90,160): clean tail [150,160) → words 18, 19
        assert_eq!(t.clean_words().unwrap(), vec![18, 19]);
    }

    #[test]
    fn overflow_discards_the_set() {
        let t = ReadTracker::new(PmDevice::new(1 << 20), 4);
        let mut b = [0u8; 8];
        for i in 0..6u64 {
            t.read(i * 8, &mut b);
        }
        assert!(t.clean_words().is_none());
    }

    #[test]
    fn forwarding_preserves_device_contents() {
        let mut t = tracker(4096);
        t.memcpy_nt(10, b"hello");
        t.fence();
        let mut b = [0u8; 5];
        t.read(10, &mut b);
        assert_eq!(&b, b"hello");
    }
}
