//! Property-based recovery invariants, across all five PM file systems:
//!
//! 1. **Synchrony round-trip** — after a crash-free workload, crashing
//!    (dropping nothing: every op fenced its effects) and remounting yields
//!    the same observable tree.
//! 2. **Recovery idempotence** — mounting a crash image, then crashing the
//!    *recovered* device and mounting again, yields the same tree: recovery
//!    must persist whatever repairs it makes (or make none that matter).
//!
//! Both run on random workloads and random crash subsets, with every
//! injected bug fixed.

use chipmunk::exec::Executor;
use chipmunk::oracle::{diff_trees, snapshot_tree};
use novafs::NovaKind;
use pmem::PmDevice;
use pmfs::PmfsKind;
use proptest::prelude::*;
use splitfs::SplitFsKind;
use vfs::{
    fs::{FsKind, FsOptions},
    FallocMode, Op, Workload,
};
use winefs::WineFsKind;

const DEV: u64 = 4 * 1024 * 1024;

const FILES: [&str; 3] = ["/fa", "/fb", "/da/fa"];

fn a_file() -> impl Strategy<Value = String> {
    prop::sample::select(FILES.to_vec()).prop_map(String::from)
}

fn an_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        a_file().prop_map(|path| Op::Creat { path }),
        Just(Op::Mkdir { path: "/da".into() }),
        a_file().prop_map(|path| Op::Unlink { path }),
        (a_file(), a_file()).prop_map(|(old, new)| Op::Link { old, new }),
        (a_file(), a_file()).prop_map(|(old, new)| Op::Rename { old, new }),
        (a_file(), 0u64..12_000).prop_map(|(path, size)| Op::Truncate { path, size }),
        (a_file(), 0u64..8_192, 1u64..6_000)
            .prop_map(|(path, off, size)| Op::WritePath { path, off, size }),
        (a_file(), prop::sample::select(FallocMode::ALL.to_vec()), 0u64..4_096, 1u64..4_096)
            .prop_map(|(path, mode, off, len)| Op::FallocPath { path, mode, off, len }),
    ]
}

/// Every strong FS in this suite exposes `into_device`; the device is
/// recovered via a small helper trait rather than extra trait surface.
trait IntoImage {
    fn image(self) -> Vec<u8>;
}

fn extract_image<F: IntoImage>(fs: F) -> Vec<u8> {
    fs.image()
}

impl IntoImage for novafs::Nova<PmDevice> {
    fn image(self) -> Vec<u8> {
        self.into_device().persistent_image().to_vec()
    }
}
impl IntoImage for pmfs::Pmfs<PmDevice> {
    fn image(self) -> Vec<u8> {
        self.into_device().persistent_image().to_vec()
    }
}
impl IntoImage for winefs::WineFs<PmDevice> {
    fn image(self) -> Vec<u8> {
        self.into_device().persistent_image().to_vec()
    }
}

fn check_roundtrip_and_idempotence<K, F>(kind: &K, ops: &[Op]) -> Result<(), TestCaseError>
where
    K: FsKind<Fs<PmDevice> = F>,
    F: IntoImage + vfs::FileSystem,
{
    let (expect, img) = {
        let mut fs = kind.mkfs(PmDevice::new(DEV)).expect("mkfs");
        let mut ex = Executor::new();
        for (i, op) in ops.iter().enumerate() {
            let _ = ex.exec(&mut fs, op, i);
        }
        let tree = snapshot_tree(&fs).expect("crash-free tree");
        (tree, extract_image(fs))
    };

    // 1. Synchrony round-trip.
    let m1 = kind.mount(PmDevice::from_image(img.clone())).expect("mount 1");
    let t1 = snapshot_tree(&m1).map_err(TestCaseError::fail)?;
    if let Some(d) = diff_trees(&t1, &expect, false) {
        return Err(TestCaseError::fail(format!("round-trip diverged: {d}")));
    }
    let img2 = extract_image(m1);

    // 2. Recovery idempotence: crash the recovered device, mount again.
    let m2 = kind.mount(PmDevice::from_image(img2)).expect("mount 2");
    let t2 = snapshot_tree(&m2).map_err(TestCaseError::fail)?;
    if let Some(d) = diff_trees(&t2, &expect, false) {
        return Err(TestCaseError::fail(format!("second recovery diverged: {d}")));
    }
    Ok(())
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(an_op(), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn nova_recovery_roundtrip(ops in ops_strategy()) {
        check_roundtrip_and_idempotence(
            &NovaKind { opts: FsOptions::fixed(), fortis: false },
            &ops,
        )?;
    }

    #[test]
    fn nova_fortis_recovery_roundtrip(ops in ops_strategy()) {
        check_roundtrip_and_idempotence(
            &NovaKind { opts: FsOptions::fixed(), fortis: true },
            &ops,
        )?;
    }

    #[test]
    fn pmfs_recovery_roundtrip(ops in ops_strategy()) {
        check_roundtrip_and_idempotence(&PmfsKind { opts: FsOptions::fixed() }, &ops)?;
    }

    #[test]
    fn winefs_recovery_roundtrip(ops in ops_strategy()) {
        check_roundtrip_and_idempotence(
            &WineFsKind { opts: FsOptions::fixed(), strict: true },
            &ops,
        )?;
    }
}

// SplitFS wraps its device in shared windows, so image extraction would go
// through a scratch shared handle; its crash paths are exercised in
// `fuzz_clean_on_fixed` and `ace_clean_on_fixed`. Here: crash-state checks
// at cap 1 over random workloads.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn splitfs_double_mount_deterministic(ops in ops_strategy()) {
        use chipmunk::{test_workload, TestConfig};
        let kind = SplitFsKind { opts: FsOptions::fixed() };
        let w = Workload::new("prop", ops.clone());
        let out = test_workload(&kind, &w, &TestConfig { cap: Some(1), ..TestConfig::default() });
        prop_assert!(out.reports.is_empty(), "{:#?}", out.reports);
    }
}
