//! Config, error, and RNG types backing the `proptest!` macro.

use rand::{rngs::StdRng, SeedableRng};

/// Per-test configuration (only the fields this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case. Upstream distinguishes `Fail` from `Reject`; this
/// shim only fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG strategies draw from. Seeds derive from the test's path and the
/// case index, so runs are reproducible everywhere with no state file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut state = h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let seed = rand::splitmix64(&mut state);
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
