//! Bug reports and triage.
//!
//! Chipmunk emits a report per detected inconsistency with enough detail to
//! reproduce it: the workload, the system call, the crash point, the subset
//! of in-flight writes replayed, and the violated property. Fuzzing
//! campaigns produce many duplicates (multiple crash states trigger the same
//! bug), so [`triage`] clusters reports by lexical similarity, as the
//! paper's extended Syzkaller does (§3.4.2).

use std::collections::BTreeSet;

/// Where the simulated crash was injected relative to the system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// In the middle of a system call (atomicity is checked).
    DuringSyscall,
    /// After the system call returned (synchrony is checked).
    AfterSyscall,
    /// After an fsync-family call on a weak-guarantee file system.
    AfterFsync,
}

impl std::fmt::Display for CrashPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPhase::DuringSyscall => write!(f, "during syscall"),
            CrashPhase::AfterSyscall => write!(f, "after syscall"),
            CrashPhase::AfterFsync => write!(f, "after fsync"),
        }
    }
}

/// The checker stage a sandboxed failure was caught in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Mounting the crash state (file-system recovery).
    Mount,
    /// Walking the recovered tree.
    Walk,
    /// Comparing the recovered tree against the oracle states.
    Compare,
    /// The usability probe.
    Probe,
    /// A harness worker thread, outside any per-stage guard.
    Worker,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Mount => write!(f, "mount"),
            Stage::Walk => write!(f, "walk"),
            Stage::Compare => write!(f, "compare"),
            Stage::Probe => write!(f, "probe"),
            Stage::Worker => write!(f, "worker"),
        }
    }
}

/// The consistency property a crash state violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The file system refused to mount the crash state.
    Unmountable(String),
    /// Mounting succeeded but reading the tree surfaced corruption
    /// (unreadable file or directory, failed checksum, ...).
    CorruptState(String),
    /// A crash during a syscall left a state matching neither the
    /// before-state nor the after-state.
    AtomicityViolation(String),
    /// A crash after a syscall lost some of its supposedly durable effects.
    SynchronyViolation(String),
    /// The mounted state could not be exercised (create/delete probe
    /// failed).
    UnusableState(String),
    /// The recorded run and the oracle run disagreed on a syscall result —
    /// a functional (non-crash) divergence.
    OracleDivergence(String),
    /// The file system reported an internal invariant violation during the
    /// recorded run (KASAN/BUG() analogue).
    RuntimeError(String),
    /// The file system panicked while the sandbox was checking a crash state
    /// (the in-process analogue of a kernel oops during recovery — several of
    /// the paper's 23 bugs are exactly this).
    RecoveryPanic {
        /// The checker stage the panic unwound from.
        stage: Stage,
        /// The panic message.
        payload: String,
    },
    /// Recovery exceeded its deterministic fuel budget — the simulated-op
    /// analogue of a recovery loop that never terminates.
    RecoveryHang {
        /// The checker stage the watchdog fired in.
        stage: Stage,
        /// Human-readable description including the exhausted budget.
        payload: String,
    },
}

impl Violation {
    /// Short class name (stable; used as the primary triage key).
    pub fn class(&self) -> &'static str {
        match self {
            Violation::Unmountable(_) => "unmountable",
            Violation::CorruptState(_) => "corrupt-state",
            Violation::AtomicityViolation(_) => "atomicity",
            Violation::SynchronyViolation(_) => "synchrony",
            Violation::UnusableState(_) => "unusable",
            Violation::OracleDivergence(_) => "oracle-divergence",
            Violation::RuntimeError(_) => "runtime-error",
            Violation::RecoveryPanic { .. } => "recovery-panic",
            Violation::RecoveryHang { .. } => "recovery-hang",
        }
    }

    /// The detail message.
    pub fn detail(&self) -> &str {
        match self {
            Violation::Unmountable(s)
            | Violation::CorruptState(s)
            | Violation::AtomicityViolation(s)
            | Violation::SynchronyViolation(s)
            | Violation::UnusableState(s)
            | Violation::OracleDivergence(s)
            | Violation::RuntimeError(s) => s,
            Violation::RecoveryPanic { payload, .. }
            | Violation::RecoveryHang { payload, .. } => payload,
        }
    }

    /// The stage a sandboxed failure was caught in, for the sandbox classes.
    pub fn stage(&self) -> Option<Stage> {
        match self {
            Violation::RecoveryPanic { stage, .. } | Violation::RecoveryHang { stage, .. } => {
                Some(*stage)
            }
            _ => None,
        }
    }
}

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugReport {
    /// Workload name.
    pub workload: String,
    /// Index of the system call the crash point belongs to.
    pub op_seq: usize,
    /// Description of that system call.
    pub op_desc: String,
    /// Crash point position.
    pub phase: CrashPhase,
    /// Which in-flight writes were replayed to build the state.
    pub subset: String,
    /// Global crash-point ordinal (the value of the crash-point counter when
    /// this point was visited). Identifies the exact fence within `op_seq`,
    /// which the shrinker and repro bundles need for single-state replay.
    pub point: Option<u64>,
    /// Indices into the coalesced in-flight write list that were replayed to
    /// build the state (the machine-readable form of `subset`).
    pub subset_ids: Vec<usize>,
    /// The violated property.
    pub violation: Violation,
}

impl BugReport {
    /// Renders the report as the multi-line text form shown to users.
    pub fn to_text(&self) -> String {
        format!(
            "BUG: {} violation\n  workload: {}\n  crash point: {} {} (op #{})\n  replayed \
             writes: {}\n  detail: {}\n",
            self.violation.class(),
            self.workload,
            self.phase,
            self.op_desc,
            self.op_seq,
            self.subset,
            self.violation.detail()
        )
    }

    fn tokens(&self) -> BTreeSet<String> {
        let mut t: BTreeSet<String> = BTreeSet::new();
        t.insert(format!("class:{}", self.violation.class()));
        if let Some(stage) = self.violation.stage() {
            t.insert(format!("stage:{stage}"));
        }
        for w in self.op_desc.split(|c: char| !c.is_alphanumeric() && c != '/') {
            if !w.is_empty() {
                t.insert(w.to_string());
            }
        }
        for w in self
            .violation
            .detail()
            .split(|c: char| !c.is_alphanumeric() && c != '/')
        {
            // Skip pure numbers: offsets and sizes vary between duplicates
            // of the same bug.
            if !w.is_empty() && !w.chars().all(|c| c.is_ascii_digit()) {
                t.insert(w.to_string());
            }
        }
        t
    }
}

impl BugReport {
    /// Renders the report as a single JSON object (hand-rolled writer — the
    /// report structure is flat enough that a serialization framework would
    /// be overkill). Used to export fuzzing-campaign results for external
    /// triage dashboards, mirroring the paper's Syzkaller UI integration.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let point = match self.point {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        let ids = self
            .subset_ids
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"workload\":\"{}\",\"op_seq\":{},\"op\":\"{}\",\"phase\":\"{}\",\
             \"subset\":\"{}\",\"point\":{},\"subset_ids\":[{}],\"class\":\"{}\",\
             \"detail\":\"{}\"}}",
            esc(&self.workload),
            self.op_seq,
            esc(&self.op_desc),
            self.phase,
            esc(&self.subset),
            point,
            ids,
            self.violation.class(),
            esc(self.violation.detail()),
        )
    }
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Clusters reports by lexical similarity (greedy single-link, Jaccard over
/// word tokens). Returns clusters as index lists; reports within a cluster
/// are likely duplicates of one root cause.
pub fn triage(reports: &[BugReport], threshold: f64) -> Vec<Vec<usize>> {
    let toks: Vec<BTreeSet<String>> = reports.iter().map(|r| r.tokens()).collect();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for i in 0..reports.len() {
        let mut placed = false;
        for c in clusters.iter_mut() {
            if c.iter().any(|&j| {
                // Gate on the class AND the sandbox stage: a recovery panic
                // caught at mount and one caught during the walk are distinct
                // failure modes even when their payloads read alike.
                reports[i].violation.class() == reports[j].violation.class()
                    && reports[i].violation.stage() == reports[j].violation.stage()
                    && jaccard(&toks[i], &toks[j]) >= threshold
            }) {
                c.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push(vec![i]);
        }
    }
    clusters
}

/// Picks the minimal exemplar of a triage cluster: the report reached through
/// the fewest workload ops, breaking ties by fewest replayed writes and then
/// by position. Shrunk repros (short workloads, small subsets) win over the
/// raw finds they minimize, so each bug class surfaces its smallest witness.
pub fn exemplar(reports: &[BugReport], cluster: &[usize]) -> usize {
    *cluster
        .iter()
        .min_by_key(|&&i| (reports[i].op_seq, reports[i].subset_ids.len(), i))
        .expect("exemplar of empty cluster")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(class: u8, op: &str, detail: &str) -> BugReport {
        BugReport {
            workload: "w".into(),
            op_seq: 0,
            op_desc: op.into(),
            phase: CrashPhase::DuringSyscall,
            subset: "[]".into(),
            point: None,
            subset_ids: Vec::new(),
            violation: match class {
                0 => Violation::AtomicityViolation(detail.into()),
                1 => Violation::SynchronyViolation(detail.into()),
                _ => Violation::Unmountable(detail.into()),
            },
        }
    }

    #[test]
    fn near_duplicates_cluster_together() {
        let reports = vec![
            report(0, "rename(/foo, /bar)", "/bar missing (expected to exist)"),
            report(0, "rename(/foo, /baz)", "/baz missing (expected to exist)"),
            report(2, "truncate(/f, 100)", "journal entry address out of range"),
        ];
        let clusters = triage(&reports, 0.4);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![2]);
    }

    #[test]
    fn different_classes_never_merge() {
        let reports = vec![
            report(0, "link(/a, /b)", "x y z"),
            report(1, "link(/a, /b)", "x y z"),
        ];
        assert_eq!(triage(&reports, 0.1).len(), 2);
    }

    #[test]
    fn numbers_are_ignored_as_tokens() {
        let a = report(0, "pwrite(/f, off=0, n=100)", "contents differ at offset 4096");
        let b = report(0, "pwrite(/f, off=8192, n=200)", "contents differ at offset 64");
        assert_eq!(triage(&[a, b], 0.5).len(), 1);
    }

    #[test]
    fn json_escapes_and_round_trips_fields() {
        let r = BugReport {
            workload: "w\"q".into(),
            op_seq: 3,
            op_desc: "rename(/a, /b)".into(),
            phase: CrashPhase::AfterSyscall,
            subset: "[nt#0@0x10+8]".into(),
            point: Some(17),
            subset_ids: vec![0, 2],
            violation: Violation::SynchronyViolation("line1\nline2".into()),
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"op_seq\":3"));
        assert!(j.contains("w\\\"q"), "{j}");
        assert!(j.contains("line1\\nline2"), "{j}");
        assert!(j.contains("\"class\":\"synchrony\""));
        assert!(j.contains("\"point\":17"), "{j}");
        assert!(j.contains("\"subset_ids\":[0,2]"), "{j}");
        let none = BugReport { point: None, subset_ids: vec![], ..r };
        assert!(none.to_json().contains("\"point\":null"));
    }

    #[test]
    fn sandbox_classes_are_stable() {
        let p = Violation::RecoveryPanic { stage: Stage::Mount, payload: "boom".into() };
        let h = Violation::RecoveryHang { stage: Stage::Walk, payload: "out of fuel".into() };
        // These strings are persisted in JSON baselines and matched by CI
        // smoke assertions; changing them is a breaking change.
        assert_eq!(p.class(), "recovery-panic");
        assert_eq!(h.class(), "recovery-hang");
        assert_eq!(p.detail(), "boom");
        assert_eq!(h.detail(), "out of fuel");
        assert_eq!(p.stage(), Some(Stage::Mount));
        assert_eq!(h.stage(), Some(Stage::Walk));
        assert_eq!(Violation::RuntimeError("x".into()).stage(), None);
    }

    #[test]
    fn chaos_findings_triage_like_ordinary_violations() {
        let sandbox = |stage, payload: &str, hang: bool| BugReport {
            workload: "w".into(),
            op_seq: 0,
            op_desc: "creat(/foo)".into(),
            phase: CrashPhase::DuringSyscall,
            subset: "[]".into(),
            point: None,
            subset_ids: Vec::new(),
            violation: if hang {
                Violation::RecoveryHang { stage, payload: payload.into() }
            } else {
                Violation::RecoveryPanic { stage, payload: payload.into() }
            },
        };
        let reports = vec![
            sandbox(Stage::Mount, "mount: journal replay deref null entry", false),
            sandbox(Stage::Mount, "mount: journal replay deref null entry", false),
            sandbox(Stage::Mount, "mount: recovery exceeded fuel budget", true),
            report(0, "creat(/foo)", "file missing after crash"),
        ];
        let clusters = triage(&reports, 0.4);
        // Duplicate panics merge; panic vs hang vs atomicity never merge,
        // even with identical op descriptions (class-gated).
        assert_eq!(clusters, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn same_class_different_stage_never_merges() {
        // Regression: the class gate alone let a recovery panic at mount and
        // one during the walk dedup into a single group when their payloads
        // were similar enough.
        let at = |stage| BugReport {
            workload: "w".into(),
            op_seq: 0,
            op_desc: "rename(/a, /b)".into(),
            phase: CrashPhase::DuringSyscall,
            subset: "[]".into(),
            point: None,
            subset_ids: Vec::new(),
            violation: Violation::RecoveryPanic {
                stage,
                payload: "journal replay deref null entry".into(),
            },
        };
        let reports = vec![at(Stage::Mount), at(Stage::Walk), at(Stage::Mount)];
        let clusters = triage(&reports, 0.1);
        assert_eq!(clusters, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn exemplar_prefers_fewest_ops_then_smallest_subset() {
        let mut a = report(0, "rename(/foo, /bar)", "/bar missing");
        a.op_seq = 7;
        a.subset_ids = vec![0, 1, 2];
        let mut b = report(0, "rename(/foo, /baz)", "/baz missing");
        b.op_seq = 2;
        b.subset_ids = vec![0, 1];
        let mut c = report(0, "rename(/foo, /qux)", "/qux missing");
        c.op_seq = 2;
        c.subset_ids = vec![0];
        let reports = vec![a, b, c];
        assert_eq!(exemplar(&reports, &[0, 1, 2]), 2);
        assert_eq!(exemplar(&reports, &[0, 1]), 1);
        assert_eq!(exemplar(&reports, &[0]), 0);
    }

    #[test]
    fn report_text_contains_key_fields() {
        let r = report(2, "mkdir(/d)", "bad magic");
        let t = r.to_text();
        assert!(t.contains("unmountable"));
        assert!(t.contains("mkdir(/d)"));
        assert!(t.contains("bad magic"));
    }
}
