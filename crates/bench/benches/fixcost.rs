//! Criterion (wall-clock) versions of the Observation 2 fix-cost
//! microbenchmarks, plus core-framework benchmarks: crash-state checking
//! throughput and the record pipeline.
//!
//! The deterministic simulated-PM-time versions (the numbers EXPERIMENTS.md
//! compares against the paper) live in `cargo run -p bench --bin fixcost`;
//! these wall-clock runs demonstrate the same ordering on host time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use novafs::NovaKind;
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet, Op, Workload,
};

const DEV: u64 = 8 * 1024 * 1024;

fn rename_overwrite(bugs: BugSet, iters: u64) {
    let kind = NovaKind { opts: FsOptions::with_bugs(bugs), fortis: false };
    let mut fs = kind.mkfs(PmDevice::new(DEV)).expect("mkfs");
    fs.creat("/target").expect("creat");
    for i in 0..iters {
        let fd = fs.open("/t.tmp", vfs::OpenFlags::CREAT_TRUNC).expect("open");
        fs.pwrite(fd, 0, &vfs::workload::fill_data(i as usize, 0, 128)).expect("pwrite");
        fs.close(fd).expect("close");
        fs.rename("/t.tmp", "/target").expect("rename");
    }
}

fn link_loop(bugs: BugSet, iters: u64) {
    let kind = NovaKind { opts: FsOptions::with_bugs(bugs), fortis: false };
    let mut fs = kind.mkfs(PmDevice::new(DEV)).expect("mkfs");
    fs.creat("/f").expect("creat");
    for i in 0..iters {
        let name = format!("/l{}", i % 8);
        fs.link("/f", &name).expect("link");
        fs.unlink(&name).expect("unlink");
    }
}

fn bench_fixcost(c: &mut Criterion) {
    let mut g = c.benchmark_group("observation2");
    g.sample_size(20);
    for (label, bugs) in [
        ("rename_overwrite/buggy", BugSet::only(&[BugId::B04, BugId::B05])),
        ("rename_overwrite/fixed", BugSet::fixed()),
    ] {
        g.bench_function(label, |b| b.iter(|| rename_overwrite(bugs, 50)));
    }
    for (label, bugs) in [
        ("link/buggy", BugSet::only(&[BugId::B06])),
        ("link/fixed", BugSet::fixed()),
    ] {
        g.bench_function(label, |b| b.iter(|| link_loop(bugs, 50)));
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    use chipmunk::{test_workload, TestConfig};
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let w = Workload::new(
        "bench",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::WritePath { path: "/d/f".into(), off: 0, size: 4096 },
            Op::Rename { old: "/d/f".into(), new: "/g".into() },
            Op::Unlink { path: "/g".into() },
        ],
    );
    for cap in [Some(2), None] {
        let cfg = TestConfig { cap, ..TestConfig::default() };
        let kind = NovaKind { opts: FsOptions::fixed(), fortis: false };
        g.bench_with_input(
            BenchmarkId::new("nova_test_workload", format!("{cap:?}")),
            &cfg,
            |b, cfg| b.iter(|| test_workload(&kind, &w, cfg)),
        );
    }
    g.finish();
}

fn bench_memset(c: &mut Criterion) {
    use pmem::{CowDevice, PmBackend};
    let mut g = c.benchmark_group("cow_memset");
    g.sample_size(20);
    let base = vec![0u8; DEV as usize];
    g.bench_function("memset_nt/4MiB", |b| {
        b.iter(|| {
            let mut cow = CowDevice::new(&base);
            cow.memset_nt(0, 0xee, 4 * 1024 * 1024);
            // Benchmark-visible invariant: the chunked memset dirties only
            // overlay pages — one per 4 KiB — never an O(len) temporary.
            assert_eq!(cow.dirty_pages(), 1024);
            cow.dirty_pages()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fixcost, bench_pipeline, bench_memset);
criterion_main!(benches);
