//! Crash-state generation: in-flight tracking, coalescing, subset
//! enumeration (§3.3), and the delta replayer that steps between adjacent
//! crash states instead of rebuilding each from scratch.

use pmem::{write_delta, CowDevice, ImageKey, PmBackend, UndoMark};
use pmlog::LogEntry;

/// One logical in-flight write awaiting a fence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// Destination offset.
    pub off: u64,
    /// Data.
    pub data: Vec<u8>,
    /// Whether the write came from a non-temporal store (candidate for
    /// data-write coalescing).
    pub nt: bool,
}

impl PendingWrite {
    /// Builds from a log write entry.
    pub fn from_entry(e: &LogEntry) -> Option<PendingWrite> {
        match e {
            LogEntry::Nt { off, data } => {
                Some(PendingWrite { off: *off, data: data.clone(), nt: true })
            }
            LogEntry::Flush { off, data } => {
                Some(PendingWrite { off: *off, data: data.clone(), nt: false })
            }
            // Plain stores appear only in eADR logs, where they are durable
            // on landing.
            LogEntry::Store { off, data } => {
                Some(PendingWrite { off: *off, data: data.clone(), nt: false })
            }
            _ => None,
        }
    }
}

/// Coalesces address-contiguous consecutive non-temporal writes into single
/// logical writes — the paper's file-data heuristic: a large non-temporal
/// memcpy "usually indicates a file data write", and replaying its pieces
/// independently adds states without adding bugs found.
pub fn coalesce(writes: &[PendingWrite]) -> Vec<PendingWrite> {
    let mut out: Vec<PendingWrite> = Vec::with_capacity(writes.len());
    for w in writes {
        if let Some(last) = out.last_mut() {
            if last.nt && w.nt && last.off + last.data.len() as u64 == w.off {
                last.data.extend_from_slice(&w.data);
                continue;
            }
        }
        out.push(w.clone());
    }
    out
}

/// Enumerates the subsets of `n` in-flight writes to replay, in increasing
/// subset size (Observation 7: buggy crash states usually involve few
/// writes, so small subsets first finds bugs quickly).
///
/// The empty subset is excluded (it equals the already-checked base state).
/// With a `cap`, subsets larger than the cap are skipped but the *full* set
/// is always included — it is the state an actual crash immediately before
/// the fence would most plausibly leave, and it is the next base. At most
/// `max_states` subsets are returned.
pub fn enumerate_subsets(n: usize, cap: Option<usize>, max_states: u64) -> Vec<Vec<usize>> {
    enumerate_subsets_ordered(n, cap, max_states, false)
}

/// [`enumerate_subsets`] with an explicit size order. `large_first` visits
/// big subsets before small ones — the ablation control for Observation 7
/// (with stop-on-first, small-first should reach the buggy state in far
/// fewer mounts, because buggy crash states usually involve few writes).
pub fn enumerate_subsets_ordered(
    n: usize,
    cap: Option<usize>,
    max_states: u64,
    large_first: bool,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let limit = cap.unwrap_or(n).min(n);
    let sizes: Vec<usize> = if large_first {
        (1..=limit).rev().collect()
    } else {
        (1..=limit).collect()
    };
    // The full set must always be present (it is the state a crash
    // immediately before the fence would most plausibly leave, and it is the
    // next base). Unless the enumeration itself reaches it within budget, a
    // slot is reserved for it up front so appending it never exceeds
    // `max_states` and never overwrites an already-enumerated subset.
    let available: u64 = sizes.iter().fold(0u64, |acc, &k| acc.saturating_add(binom(n, k)));
    let full_within_enum = limit == n && (large_first || available <= max_states);
    let budget = if full_within_enum { max_states } else { max_states.saturating_sub(1) };
    'outer: for size in sizes {
        for combo in Combinations::new(n, size) {
            if out.len() as u64 >= budget {
                break 'outer;
            }
            out.push(combo);
        }
    }
    if !full_within_enum {
        out.push((0..n).collect());
    }
    out
}

/// Binomial coefficient with saturating arithmetic (only compared against
/// state budgets, so saturation on huge inputs is harmless).
fn binom(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut r: u64 = 1;
    for i in 0..k {
        r = r.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    r
}

/// Iterator over k-combinations of `0..n` in lexicographic order.
struct Combinations {
    n: usize,
    k: usize,
    cur: Vec<usize>,
    done: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Self {
        Combinations { n, k, cur: (0..k).collect(), done: k > n }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let item = self.cur.clone();
        // Advance.
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cur[i] < self.n - (self.k - i) {
                self.cur[i] += 1;
                for j in i + 1..self.k {
                    self.cur[j] = self.cur[j - 1] + 1;
                }
                break;
            }
        }
        Some(item)
    }
}

/// Applies the writes selected by `subset` (in program order) onto `img`.
pub fn apply_subset(img: &mut pmem::CowDevice<'_>, writes: &[PendingWrite], subset: &[usize]) {
    let mut order = subset.to_vec();
    order.sort_unstable();
    for &i in &order {
        img.apply(writes[i].off, &writes[i].data);
    }
}

/// Delta replayer over the crash states of one crash point.
///
/// Holds a single undo-logged [`CowDevice`] over the point's base image and
/// steps it between subsets with [`SubsetWalker::goto`]: the applied writes
/// form a stack, and moving to the next subset pops to the common prefix
/// and pushes the rest — consecutive subsets in the canonical enumeration
/// share long prefixes, so transitions replay O(1) writes on average rather
/// than rebuilding the whole overlay.
///
/// Alongside the device, the walker maintains the state's [`ImageKey`]
/// incrementally (the XOR-composable content hash — see [`pmem::hash`]):
/// each applied write XORs in its byte-level delta, and each pop restores
/// the key snapshot taken at push time. The key therefore always equals
/// `pmem::image_key` of the materialized state, independent of the path
/// taken to reach it.
///
/// Checker mutations (mount-time recovery, the usability probe) roll back
/// through the same undo log: take a [`SubsetWalker::mark`] before
/// mounting, mount on `&mut *walker.device()`, and
/// [`SubsetWalker::undo_to`] afterwards. The key is untouched by this —
/// it tracks the *replayed* state, not transient checker writes.
pub struct SubsetWalker<'a> {
    cow: CowDevice<'a>,
    /// Applied write indices with, per entry, the undo mark and key value
    /// captured just before applying it.
    stack: Vec<(usize, UndoMark, ImageKey)>,
    key: ImageKey,
    scratch: Vec<u8>,
}

impl<'a> SubsetWalker<'a> {
    /// A walker positioned at the bare base state. `base_key` must be the
    /// [`ImageKey`] of `base` (maintained incrementally by the caller as
    /// the base evolves across fences; `pmem::image_key(base)` to seed).
    pub fn new(base: &'a [u8], base_key: ImageKey) -> Self {
        SubsetWalker {
            cow: CowDevice::new_with_undo(base),
            stack: Vec::new(),
            key: base_key,
            scratch: Vec::new(),
        }
    }

    /// Moves the device to the state `base + subset`. `subset` must be
    /// sorted ascending (enumeration order), matching program-order replay.
    pub fn goto(&mut self, writes: &[PendingWrite], subset: &[usize]) {
        debug_assert!(subset.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        // Pop to the longest stack prefix that is also a prefix of `subset`.
        let mut common = 0;
        while common < self.stack.len()
            && common < subset.len()
            && self.stack[common].0 == subset[common]
        {
            common += 1;
        }
        while self.stack.len() > common {
            let (_, mark, key) = self.stack.pop().expect("len > common >= 0");
            self.cow.undo_to(mark);
            self.key = key;
        }
        for &i in &subset[common..] {
            self.push_write(writes, i);
        }
    }

    fn push_write(&mut self, writes: &[PendingWrite], i: usize) {
        let w = &writes[i];
        let mark = self.cow.mark();
        let key = self.key;
        self.scratch.resize(w.data.len(), 0);
        self.cow.read(w.off, &mut self.scratch);
        self.key ^= write_delta(w.off, &self.scratch, &w.data);
        self.cow.apply(w.off, &w.data);
        self.stack.push((i, mark, key));
    }

    /// The [`ImageKey`] of the current state.
    pub fn key(&self) -> ImageKey {
        self.key
    }

    /// The device, positioned at the current state. Mount on `&mut *dev`
    /// (not by value) so the walker keeps ownership.
    pub fn device(&mut self) -> &mut CowDevice<'a> {
        &mut self.cow
    }

    /// Undo mark protecting subsequent checker mutations.
    pub fn mark(&self) -> UndoMark {
        self.cow.mark()
    }

    /// Rolls checker mutations back to `mark`.
    pub fn undo_to(&mut self, mark: UndoMark) {
        self.cow.undo_to(mark);
    }
}

/// 128-bit key identifying the *effective* bytes a subset lays over the
/// base image — the byte image after program-order replay, independent of
/// which particular writes produced it.
///
/// Two subsets that overlay identical bytes at identical offsets get equal
/// keys even when they differ as index sets (e.g. `{1}` vs `{0, 1}` when
/// write 1 fully covers write 0, or adjacent writes vs one coalesced write
/// spanning both ranges). The harness uses this for its crash-state dedup
/// cache: such states mount and check identically, so the second one can
/// reuse the first one's result.
pub fn state_key(writes: &[PendingWrite], subset: &[usize]) -> u128 {
    let mut order = subset.to_vec();
    order.sort_unstable();
    // Latest-writer-wins: walk the subset in reverse program order and keep,
    // for each write, only the byte ranges not covered by a later write.
    let mut segs: Vec<(u64, &[u8])> = Vec::new();
    let mut covered: Vec<(u64, u64)> = Vec::new(); // sorted, disjoint [start, end)
    for &i in order.iter().rev() {
        let w = &writes[i];
        let (ws, we) = (w.off, w.off + w.data.len() as u64);
        let mut cur = ws;
        for &(cs, ce) in covered.iter() {
            if ce <= cur {
                continue;
            }
            if cs >= we {
                break;
            }
            let hole_end = cs.min(we);
            if cur < hole_end {
                segs.push((cur, &w.data[(cur - ws) as usize..(hole_end - ws) as usize]));
            }
            cur = cur.max(ce);
            if cur >= we {
                break;
            }
        }
        if cur < we {
            segs.push((cur, &w.data[(cur - ws) as usize..(we - ws) as usize]));
        }
        insert_interval(&mut covered, ws, we);
    }
    segs.sort_by_key(|&(o, _)| o);
    // Hash maximal contiguous runs as (start offset, bytes..., run length),
    // so different segmentations of the same byte image hash identically.
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142;
    let mut feed = |b: u8| {
        h1 = (h1 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        h2 = (h2 ^ b as u64).wrapping_mul(0x3f58_76dd_9049_13a5) ^ (h2 >> 29);
    };
    let mut i = 0;
    while i < segs.len() {
        let start = segs[i].0;
        for b in start.to_le_bytes() {
            feed(b);
        }
        let mut end = start;
        while i < segs.len() && segs[i].0 == end {
            for &b in segs[i].1 {
                feed(b);
            }
            end += segs[i].1.len() as u64;
            i += 1;
        }
        for b in (end - start).to_le_bytes() {
            feed(b);
        }
    }
    ((h1 as u128) << 64) | h2 as u128
}

/// Merges `[ws, we)` into a sorted list of disjoint intervals.
fn insert_interval(covered: &mut Vec<(u64, u64)>, ws: u64, we: u64) {
    if ws >= we {
        return;
    }
    let mut merged = (ws, we);
    let mut out = Vec::with_capacity(covered.len() + 1);
    let mut placed = false;
    for &(cs, ce) in covered.iter() {
        if ce < merged.0 {
            out.push((cs, ce));
        } else if cs > merged.1 {
            if !placed {
                out.push(merged);
                placed = true;
            }
            out.push((cs, ce));
        } else {
            merged = (merged.0.min(cs), merged.1.max(ce));
        }
    }
    if !placed {
        out.push(merged);
    }
    *covered = out;
}

/// Human-readable description of a subset for bug reports.
pub fn describe_subset(writes: &[PendingWrite], subset: &[usize]) -> String {
    let parts: Vec<String> = subset
        .iter()
        .map(|&i| {
            let w = &writes[i];
            format!(
                "{}#{i}@{:#x}+{}",
                if w.nt { "nt" } else { "flush" },
                w.off,
                w.data.len()
            )
        })
        .collect();
    format!("[{}] of {} in-flight", parts.join(", "), writes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_of_three_exhaustive() {
        let s = enumerate_subsets(3, None, 1 << 20);
        // 2^3 - 1 = 7 non-empty subsets.
        assert_eq!(s.len(), 7);
        // Ordered by size.
        assert!(s[0].len() == 1 && s[1].len() == 1 && s[2].len() == 1);
        assert!(s[3].len() == 2 && s[6].len() == 3);
        // All distinct.
        let set: std::collections::HashSet<Vec<usize>> = s.iter().cloned().collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn paper_counts_hold() {
        // "For n in-flight writes, there will be 2^n - 1 crash states."
        for n in 1..=10 {
            let s = enumerate_subsets(n, None, u64::MAX);
            assert_eq!(s.len(), (1usize << n) - 1, "n={n}");
        }
    }

    #[test]
    fn cap_keeps_small_subsets_plus_full() {
        let s = enumerate_subsets(5, Some(2), 1 << 20);
        // C(5,1) + C(5,2) + full = 5 + 10 + 1.
        assert_eq!(s.len(), 16);
        assert_eq!(s.last().unwrap().len(), 5);
        assert!(s[..15].iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn cap_equal_to_n_is_exhaustive_without_duplicate_full() {
        let s = enumerate_subsets(3, Some(3), 1 << 20);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn large_first_reverses_size_order_only() {
        let small = enumerate_subsets_ordered(4, None, u64::MAX, false);
        let large = enumerate_subsets_ordered(4, None, u64::MAX, true);
        assert_eq!(small.len(), 15);
        assert_eq!(large.len(), 15);
        // Same subsets, opposite size progression.
        let a: std::collections::HashSet<Vec<usize>> = small.iter().cloned().collect();
        let b: std::collections::HashSet<Vec<usize>> = large.iter().cloned().collect();
        assert_eq!(a, b);
        assert_eq!(small[0].len(), 1);
        assert_eq!(large[0].len(), 4);
        assert_eq!(small.last().unwrap().len(), 4);
        assert_eq!(large.last().unwrap().len(), 1);
    }

    #[test]
    fn large_first_with_cap_still_includes_full_set() {
        let s = enumerate_subsets_ordered(5, Some(2), 1 << 20, true);
        assert!(s.iter().any(|c| c.len() == 5));
        assert_eq!(s[0].len(), 2);
    }

    #[test]
    fn max_states_truncates() {
        let s = enumerate_subsets(10, None, 20);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn zero_inflight_yields_nothing() {
        assert!(enumerate_subsets(0, None, 100).is_empty());
    }

    #[test]
    fn truncation_with_cap_preserves_budget_without_losing_enumerated_subsets() {
        // Regression: `out.len() == max_states && limit < n` used to
        // overwrite the last enumerated subset with the full set. The budget
        // now reserves the full set's slot up front instead.
        let s = enumerate_subsets(5, Some(2), 4);
        assert_eq!(s.len(), 4, "budget must hold exactly");
        assert_eq!(*s.last().unwrap(), vec![0, 1, 2, 3, 4], "full set present");
        // The enumerated prefix is exactly the first budget-1 subsets of the
        // untruncated enumeration — nothing skipped, nothing overwritten.
        let untruncated = enumerate_subsets(5, Some(2), u64::MAX);
        assert_eq!(&s[..3], &untruncated[..3]);
        let set: std::collections::HashSet<Vec<usize>> = s.iter().cloned().collect();
        assert_eq!(set.len(), 4, "no duplicates");
    }

    #[test]
    fn truncation_without_cap_still_includes_full_set() {
        // With no cap but a state budget, small-first enumeration never
        // reaches the full set on its own; it must still be included.
        let s = enumerate_subsets(10, None, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(*s.last().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn large_first_truncation_keeps_budget_and_full_set() {
        let s = enumerate_subsets_ordered(10, None, 20, true);
        assert_eq!(s.len(), 20);
        // Large-first emits the full set first; no slot is reserved.
        assert_eq!(s[0].len(), 10);
    }

    #[test]
    fn budget_of_one_with_cap_yields_only_the_full_set() {
        let s = enumerate_subsets(5, Some(2), 1);
        assert_eq!(s, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn state_key_equates_overwritten_and_coalesced_subsets() {
        let writes = vec![
            PendingWrite { off: 0, data: vec![7u8; 8], nt: true },
            PendingWrite { off: 0, data: vec![9u8; 8], nt: true },   // covers #0
            PendingWrite { off: 8, data: vec![3u8; 8], nt: true },
            PendingWrite { off: 0, data: {
                let mut d = vec![9u8; 8];
                d.extend_from_slice(&[3u8; 8]);
                d
            }, nt: true },                                            // == #1 then #2
        ];
        // Write 1 fully covers write 0: {1} and {0,1} leave identical bytes.
        assert_eq!(state_key(&writes, &[1]), state_key(&writes, &[0, 1]));
        // Adjacent writes {1,2} equal the single spanning write {3}.
        assert_eq!(state_key(&writes, &[1, 2]), state_key(&writes, &[3]));
        // Genuinely different images differ.
        assert_ne!(state_key(&writes, &[0]), state_key(&writes, &[1]));
        assert_ne!(state_key(&writes, &[1]), state_key(&writes, &[1, 2]));
        // Index order never matters (program order is recovered internally).
        assert_eq!(state_key(&writes, &[1, 0]), state_key(&writes, &[0, 1]));
    }

    #[test]
    fn state_key_distinguishes_offset_and_gap_layouts() {
        let writes = vec![
            PendingWrite { off: 0, data: vec![5u8; 4], nt: true },
            PendingWrite { off: 4, data: vec![5u8; 4], nt: true },
            PendingWrite { off: 8, data: vec![5u8; 4], nt: true },
        ];
        // Same bytes at a different offset is a different state.
        assert_ne!(state_key(&writes, &[0]), state_key(&writes, &[1]));
        // Contiguous [0,8) differs from gapped {[0,4), [8,12)}.
        assert_ne!(state_key(&writes, &[0, 1]), state_key(&writes, &[0, 2]));
        // The empty subset is the base state and keys consistently.
        assert_eq!(state_key(&writes, &[]), state_key(&writes, &[]));
        assert_ne!(state_key(&writes, &[]), state_key(&writes, &[0]));
    }

    #[test]
    fn coalesce_merges_contiguous_nt_runs() {
        let w = |off: u64, len: usize, nt: bool| PendingWrite {
            off,
            data: vec![1u8; len],
            nt,
        };
        let v = vec![w(0, 64, true), w(64, 64, true), w(128, 64, true), w(512, 8, false)];
        let c = coalesce(&v);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].data.len(), 192);
        assert!(!c[1].nt);
    }

    #[test]
    fn coalesce_keeps_non_contiguous_and_flush_separate() {
        let w = |off: u64, len: usize, nt: bool| PendingWrite {
            off,
            data: vec![1u8; len],
            nt,
        };
        let v = vec![w(0, 64, true), w(128, 64, true), w(192, 64, false), w(256, 64, false)];
        assert_eq!(coalesce(&v).len(), 4);
    }

    proptest::proptest! {
        /// Large-first enumeration is always a permutation of small-first
        /// (same subsets, same cap semantics, full set always present when
        /// capped) for any n/cap combination.
        #[test]
        fn ordered_enumeration_is_a_permutation(
            n in 1usize..10,
            cap in proptest::option::of(1usize..10),
        ) {
            let a = enumerate_subsets_ordered(n, cap, u64::MAX, false);
            let b = enumerate_subsets_ordered(n, cap, u64::MAX, true);
            let sa: std::collections::HashSet<Vec<usize>> = a.iter().cloned().collect();
            let sb: std::collections::HashSet<Vec<usize>> = b.iter().cloned().collect();
            proptest::prop_assert_eq!(a.len(), b.len());
            proptest::prop_assert_eq!(&sa, &sb);
            proptest::prop_assert!(sa.contains(&(0..n).collect::<Vec<_>>()));
        }
    }

    fn materialize(base: &[u8], writes: &[PendingWrite], subset: &[usize]) -> Vec<u8> {
        let mut cow = pmem::CowDevice::new(base);
        apply_subset(&mut cow, writes, subset);
        use pmem::PmBackend;
        cow.read_vec(0, base.len() as u64)
    }

    #[test]
    fn walker_tracks_device_and_key_across_transitions() {
        let mut base = vec![0u8; 8192];
        base[100] = 42;
        let writes = vec![
            PendingWrite { off: 0, data: vec![1u8; 16], nt: true },
            PendingWrite { off: 8, data: vec![2u8; 16], nt: true }, // overlaps #0
            PendingWrite { off: 4000, data: vec![3u8; 200], nt: true }, // crosses page
            PendingWrite { off: 100, data: vec![0u8; 4], nt: false }, // zeroes base bytes
        ];
        let subsets = enumerate_subsets(writes.len(), None, u64::MAX);
        let mut walker = SubsetWalker::new(&base, pmem::image_key(&base));
        use pmem::PmBackend;
        for s in &subsets {
            walker.goto(&writes, s);
            let want = materialize(&base, &writes, s);
            let got = walker.device().read_vec(0, base.len() as u64);
            assert_eq!(got, want, "device mismatch at subset {s:?}");
            assert_eq!(walker.key(), pmem::image_key(&want), "key mismatch at {s:?}");
        }
        // Jump back to an early subset: pops must restore exactly.
        walker.goto(&writes, &[1]);
        assert_eq!(walker.key(), pmem::image_key(&materialize(&base, &writes, &[1])));
    }

    #[test]
    fn walker_checker_mutations_roll_back_without_touching_key() {
        let base = vec![0u8; 4096];
        let writes = vec![PendingWrite { off: 0, data: vec![7u8; 8], nt: true }];
        let mut walker = SubsetWalker::new(&base, 0);
        walker.goto(&writes, &[0]);
        let key = walker.key();
        let m = walker.mark();
        use pmem::PmBackend;
        walker.device().store(2000, &[9u8; 64]); // "recovery" mutation
        walker.device().store(4, &[5u8; 8]); // overlapping the replayed write
        walker.undo_to(m);
        assert_eq!(walker.key(), key);
        let img = walker.device().read_vec(0, 4096);
        assert_eq!(img, materialize(&base, &writes, &[0]));
    }

    proptest::proptest! {
        /// Delta replay + undo is byte-identical to a from-scratch
        /// `CowDevice::new` + `apply_subset` for random write sets and
        /// random subset visit sequences, and the incrementally maintained
        /// image key always equals the recomputed one.
        #[test]
        fn delta_replay_matches_from_scratch(
            seed in 0u64..1000,
            n_writes in 1usize..6,
            n_visits in 1usize..12,
        ) {
            // Deterministic pseudo-random writes and visit order from the seed.
            let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let base: Vec<u8> = (0..4096u64).map(|i| (i % 251) as u8).collect();
            let writes: Vec<PendingWrite> = (0..n_writes)
                .map(|_| {
                    let off = next() % 4000;
                    let len = 1 + (next() % 96) as usize;
                    let data: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
                    PendingWrite { off, data, nt: next() % 2 == 0 }
                })
                .collect();
            let mut walker = SubsetWalker::new(&base, pmem::image_key(&base));
            use pmem::PmBackend;
            for _ in 0..n_visits {
                // Random subset, sorted ascending.
                let mask = next() as usize % (1 << n_writes);
                let subset: Vec<usize> = (0..n_writes).filter(|i| mask & (1 << i) != 0).collect();
                walker.goto(&writes, &subset);
                // Random checker-style mutation, rolled back via a mark.
                let m = walker.mark();
                walker.device().store(next() % 4000, &[(next() % 256) as u8; 8]);
                walker.undo_to(m);
                let want = materialize(&base, &writes, &subset);
                let got = walker.device().read_vec(0, base.len() as u64);
                proptest::prop_assert_eq!(&got, &want);
                proptest::prop_assert_eq!(walker.key(), pmem::image_key(&want));
            }
        }
    }

    #[test]
    fn apply_subset_respects_program_order() {
        let base = vec![0u8; 4096];
        let writes = vec![
            PendingWrite { off: 0, data: vec![1u8; 8], nt: true },
            PendingWrite { off: 0, data: vec![2u8; 8], nt: true },
        ];
        let mut cow = pmem::CowDevice::new(&base);
        // Pass indices out of order: program order must still hold.
        apply_subset(&mut cow, &writes, &[1, 0]);
        let mut buf = [0u8; 8];
        use pmem::PmBackend;
        cow.read(0, &mut buf);
        assert_eq!(buf, [2u8; 8]);
    }
}
