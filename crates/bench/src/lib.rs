#![warn(missing_docs)]

//! Shared machinery for the evaluation harnesses (one binary per paper
//! table/figure — see DESIGN.md §4 for the index).

use std::time::{Duration, Instant};

use chipmunk::{test_workload, TestConfig, TestOutcome};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmfs::PmfsKind;
use splitfs::SplitFsKind;
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet, Cov, FsName, Workload,
};
use winefs::WineFsKind;
use xfsdax::XfsDaxKind;
use workloads::{
    ace::{seq1, seq2, seq3_metadata, AceMode},
    fuzz::{FuzzConfig, Fuzzer},
};

/// Rank-2 helper: run a generic closure against the `FsKind` for a given
/// file system (the kinds are distinct types, so plain closures cannot be
/// generic over them).
pub trait WithKind {
    /// The result type.
    type Out;
    /// Invoked with the concrete kind.
    fn call<K: FsKind>(self, kind: K) -> Self::Out;
}

/// Dispatches `w` to the concrete [`FsKind`] for `fs` built from `opts`.
pub fn dispatch<W: WithKind>(fs: FsName, opts: FsOptions, w: W) -> W::Out {
    match fs {
        FsName::Nova => w.call(NovaKind { opts, fortis: false }),
        FsName::NovaFortis => w.call(NovaKind { opts, fortis: true }),
        FsName::Pmfs => w.call(PmfsKind { opts }),
        FsName::WineFs => w.call(WineFsKind { opts, strict: true }),
        FsName::SplitFs => w.call(SplitFsKind { opts }),
        FsName::Ext4Dax => w.call(Ext4DaxKind { opts }),
        FsName::XfsDax => w.call(XfsDaxKind { opts }),
    }
}

/// The ACE mode appropriate for a file system.
pub fn mode_for(fs: FsName) -> AceMode {
    if matches!(fs, FsName::Ext4Dax | FsName::XfsDax) {
        AceMode::Weak
    } else {
        AceMode::Strong
    }
}

/// Result of hunting one bug with one frontend.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// CPU time until the first violation.
    pub elapsed: Duration,
    /// Workloads executed until then.
    pub workloads: u64,
    /// Crash states checked until then.
    pub states: u64,
    /// The first report's violation class.
    pub class: String,
    /// The first report's one-line description.
    pub detail: String,
    /// Whether the injected bug's code path was traced during the finding
    /// run (ground-truth attribution).
    pub traced: bool,
}

struct AceHunt<'a> {
    bug: BugId,
    cfg: &'a TestConfig,
    max_seq3: usize,
}

impl WithKind for AceHunt<'_> {
    type Out = (Option<HuntResult>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let start = Instant::now();
        let mode = mode_for(kind.name());
        let mut workloads = 0u64;
        let mut states = 0u64;
        let seq3: Box<dyn Iterator<Item = Workload>> = if mode == AceMode::Strong {
            Box::new(seq3_metadata().step_by(37).take(self.max_seq3))
        } else {
            Box::new(std::iter::empty())
        };
        for w in seq1(mode).into_iter().chain(seq2(mode)).chain(seq3) {
            workloads += 1;
            let out = test_workload(&kind, &w, self.cfg);
            states += out.crash_states;
            if let Some(r) = out.reports.first() {
                return (
                    Some(HuntResult {
                        elapsed: start.elapsed(),
                        workloads,
                        states,
                        class: r.violation.class().to_string(),
                        detail: format!("{} @ {}", r.op_desc, r.violation.detail()),
                        traced: out.traced_bugs.contains(&self.bug),
                    }),
                    workloads,
                    states,
                );
            }
        }
        (None, workloads, states)
    }
}

/// Hunts `bug` (enabled in isolation) with the ACE frontend: seq-1, then
/// seq-2, then a deterministic sample of seq-3-metadata. Returns the find
/// (if any) plus total workloads and crash states examined.
pub fn hunt_with_ace(bug: BugId, cfg: &TestConfig, max_seq3: usize) -> (Option<HuntResult>, u64, u64) {
    let opts = FsOptions::with_bugs(BugSet::only(&[bug]));
    dispatch(bug.info().fs, opts, AceHunt { bug, cfg, max_seq3 })
}

struct FuzzHunt<'a> {
    bug: BugId,
    cfg: &'a TestConfig,
    seed: u64,
    budget: u64,
}

impl WithKind for FuzzHunt<'_> {
    type Out = (Option<HuntResult>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let start = Instant::now();
        let cov = kind.options().cov.clone();
        let mut fuzzer = Fuzzer::new(self.seed, FuzzConfig::default());
        let mut seen = std::collections::HashSet::new();
        let mut states = 0u64;
        for i in 0..self.budget {
            let w = fuzzer.next_workload();
            cov.clear();
            let out = test_workload(&kind, &w, self.cfg);
            states += out.crash_states;
            let new = cov.merge_into(&mut seen);
            fuzzer.feedback(&w, new);
            if let Some(r) = out.reports.first() {
                return (
                    Some(HuntResult {
                        elapsed: start.elapsed(),
                        workloads: i + 1,
                        states,
                        class: r.violation.class().to_string(),
                        detail: format!("{} @ {}", r.op_desc, r.violation.detail()),
                        traced: out.traced_bugs.contains(&self.bug),
                    }),
                    i + 1,
                    states,
                );
            }
        }
        (None, self.budget, states)
    }
}

/// Hunts `bug` (enabled in isolation) with the fuzzer frontend under the
/// paper's fuzzing configuration (crash-state cap of two, early exit).
pub fn hunt_with_fuzzer(
    bug: BugId,
    cfg: &TestConfig,
    seed: u64,
    budget: u64,
) -> (Option<HuntResult>, u64, u64) {
    let opts = FsOptions {
        bugs: BugSet::only(&[bug]),
        cov: Cov::enabled(),
        ..Default::default()
    };
    dispatch(bug.info().fs, opts, FuzzHunt { bug, cfg, seed, budget })
}

struct SuiteRun<'a> {
    workloads: Vec<Workload>,
    cfg: &'a TestConfig,
}

/// Aggregate counters from running a suite.
#[derive(Debug, Default, Clone)]
pub struct SuiteStats {
    /// Workloads executed.
    pub workloads: u64,
    /// Crash points visited.
    pub crash_points: u64,
    /// Crash states checked.
    pub crash_states: u64,
    /// Violations reported.
    pub reports: u64,
    /// In-flight write counts at each crash point.
    pub inflight: Vec<usize>,
    /// Wall time.
    pub elapsed: Duration,
}

impl WithKind for SuiteRun<'_> {
    type Out = SuiteStats;

    fn call<K: FsKind>(self, kind: K) -> SuiteStats {
        let start = Instant::now();
        let mut s = SuiteStats::default();
        for w in &self.workloads {
            let out: TestOutcome = test_workload(&kind, w, self.cfg);
            s.workloads += 1;
            s.crash_points += out.crash_points;
            s.crash_states += out.crash_states;
            s.reports += out.reports.len() as u64;
            s.inflight.extend(out.inflight_sizes);
        }
        s.elapsed = start.elapsed();
        s
    }
}

/// Runs a workload suite on `fs` with the given bug set, returning
/// aggregate statistics.
pub fn run_suite(
    fs: FsName,
    bugs: BugSet,
    workloads: Vec<Workload>,
    cfg: &TestConfig,
) -> SuiteStats {
    dispatch(fs, FsOptions::with_bugs(bugs), SuiteRun { workloads, cfg })
}

/// The five strong-guarantee systems of the evaluation, in Table 1 order.
pub const STRONG_SYSTEMS: [FsName; 5] = [
    FsName::Nova,
    FsName::NovaFortis,
    FsName::Pmfs,
    FsName::WineFs,
    FsName::SplitFs,
];

/// Formats a duration compactly for tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reaches_each_fs() {
        struct NameOf;
        impl WithKind for NameOf {
            type Out = FsName;
            fn call<K: FsKind>(self, kind: K) -> FsName {
                kind.name()
            }
        }
        for fs in STRONG_SYSTEMS.into_iter().chain([FsName::Ext4Dax, FsName::XfsDax]) {
            assert_eq!(dispatch(fs, FsOptions::fixed(), NameOf), fs);
        }
    }

    #[test]
    fn ace_hunt_finds_an_easy_bug_quickly() {
        let cfg = TestConfig { stop_on_first: true, ..TestConfig::default() };
        let (hit, workloads, _) = hunt_with_ace(BugId::B04, &cfg, 0);
        let hit = hit.expect("bug 4 must fall to ACE");
        assert!(hit.traced);
        assert_eq!(hit.class, "atomicity");
        assert!(workloads <= 56 + 3136);
    }

    #[test]
    fn suite_stats_accumulate() {
        let cfg = TestConfig::default();
        let ws = seq1(AceMode::Strong).into_iter().take(5).collect();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws, &cfg);
        assert_eq!(s.workloads, 5);
        assert!(s.crash_states > 0);
        assert_eq!(s.reports, 0);
        assert_eq!(s.inflight.len() as u64, s.crash_points);
    }
}
