//! Measures what the incremental engine buys during shrinking: hunts one
//! bug (arg 1, default 14) with the fuzzer, then delta-debugs the find
//! twice — once with the prefix cache on (the shipping configuration) and
//! once with it off — printing wall times, candidate counts, and the
//! op/subset shrink factors. The candidate counts are identical across rows
//! by construction (the cache is a pure performance layer); only the time
//! column moves. The source of the EXPERIMENTS.md "Shrinking" numbers.
//!
//! Arg 2 (default 4000) is the fuzzing budget; arg 3 overrides the seed.

use bench::{hunt_with_fuzzer, shrink_to_bundle};
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

fn main() {
    let number: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(14);
    let budget: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let seed: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xf16 + number as u64);
    let info = bug_table()
        .iter()
        .find(|b| b.id.number() == number)
        .unwrap_or_else(|| panic!("no bug #{number} in the Table 1 corpus"));

    // Large-first subsets so the find carries a maximal crash subset — the
    // raw material for the subset pass (mirrors `hunt --shrink`).
    let cfg = TestConfig { large_first_subsets: true, ..TestConfig::fuzzing() };
    let (hit, w, s) = hunt_with_fuzzer(info.id, &cfg, seed, budget);
    let hit = hit.unwrap_or_else(|| {
        panic!("bug {number} not found within {budget} fuzz workloads ({w} run, {s} states)")
    });
    println!(
        "bug {number} on {}: find after {} workloads | {} ops, subset of {} | {}",
        info.fs,
        hit.workloads,
        hit.workload.ops.len(),
        hit.report.subset_ids.len(),
        hit.class,
    );

    for (label, cfg) in [
        ("prefix-on ", cfg.clone()),
        ("prefix-off", TestConfig { prefix_cache: false, ..cfg.clone() }),
    ] {
        let t = std::time::Instant::now();
        let (bundle, stats) =
            shrink_to_bundle(info.fs, &[info.id], &hit.workload, &hit.report, &cfg, seed)
                .expect("find must shrink");
        println!(
            "{label} total={:?} ops {} -> {} ({} candidates) subset {} -> {} ({} candidates) point={}",
            t.elapsed(),
            stats.ops_before,
            stats.ops_after,
            stats.op_candidates,
            stats.subset_before,
            stats.subset_after,
            stats.state_candidates,
            bundle.point,
        );
    }
}
