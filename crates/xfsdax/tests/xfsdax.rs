//! Functional and crash tests for the XFS-DAX analogue.

use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    FsError, FileType, Op, OpenFlags, Workload,
};
use xfsdax::{XfsDax, XfsDaxKind};

const DEV: u64 = 8 * 1024 * 1024;

fn fresh() -> XfsDax<PmDevice> {
    XfsDax::mkfs(PmDevice::new(DEV), &FsOptions::default()).unwrap()
}

fn crash_and_remount(fs: XfsDax<PmDevice>) -> Result<XfsDax<PmDevice>, FsError> {
    let img = fs.into_device().persistent_image().to_vec();
    XfsDax::mount(PmDevice::from_image(img), &FsOptions::default())
}

#[test]
fn create_write_read_roundtrip() {
    let mut fs = fresh();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 10, b"xfs extents").unwrap();
    fs.close(fd).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[10..], b"xfs extents");
    assert_eq!(fs.stat("/f").unwrap().ftype, FileType::Regular);
}

#[test]
fn contiguous_writes_build_one_extent() {
    let mut fs = fresh();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    // 5 sequential blocks: the allocator should grow one extent.
    fs.pwrite(fd, 0, &vec![7u8; 5 * 4096]).unwrap();
    fs.close(fd).unwrap();
    let st = fs.stat("/f").unwrap();
    assert_eq!(st.blocks, 5);
    assert_eq!(fs.read_file("/f").unwrap(), vec![7u8; 5 * 4096]);
}

#[test]
fn sync_persists_and_remount_recovers() {
    let mut fs = fresh();
    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &vec![3u8; 10_000]).unwrap();
    fs.close(fd).unwrap();
    fs.link("/d/f", "/g").unwrap();
    fs.sync().unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.read_file("/d/f").unwrap(), vec![3u8; 10_000]);
    assert_eq!(fs2.stat("/g").unwrap().nlink, 2);
}

#[test]
fn unsynced_state_lost_but_mountable() {
    let mut fs = fresh();
    fs.creat("/gone").unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.stat("/gone"), Err(FsError::NotFound));
}

#[test]
fn truncate_and_punch_and_zero() {
    let mut fs = fresh();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &vec![9u8; 12_288]).unwrap();
    fs.fallocate(fd, vfs::FallocMode::PunchHole, 4096, 4096).unwrap();
    assert_eq!(fs.stat("/f").unwrap().blocks, 2);
    fs.fallocate(fd, vfs::FallocMode::ZeroRange, 0, 100).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert!(data[..100].iter().all(|&b| b == 0));
    assert!(data[4096..8192].iter().all(|&b| b == 0));
    assert_eq!(data[100], 9);
    fs.truncate("/f", 5).unwrap();
    fs.truncate("/f", 100).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..5], &[0u8; 5][..]); // zero-ranged earlier
    assert!(data[5..].iter().all(|&b| b == 0));
    fs.close(fd).unwrap();
}

#[test]
fn allocation_groups_spread_files() {
    let mut fs = fresh();
    // Different inodes hash to different AGs; all writes must still work
    // and be disjoint.
    for i in 0..8 {
        let p = format!("/f{i}");
        let fd = fs.open(&p, OpenFlags::CREAT_TRUNC).unwrap();
        fs.pwrite(fd, 0, &vec![i as u8 + 1; 8192]).unwrap();
        fs.close(fd).unwrap();
    }
    fs.sync().unwrap();
    let fs2 = crash_and_remount(fs).unwrap();
    for i in 0..8 {
        assert_eq!(fs2.read_file(&format!("/f{i}")).unwrap(), vec![i as u8 + 1; 8192]);
    }
}

#[test]
fn block_reuse_waits_for_commit() {
    // The ordered-mode reuse rule: blocks freed by an uncommitted unlink
    // must not be recycled for in-place data before the commit lands.
    let mut fs = fresh();
    let fd = fs.open("/victim", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &vec![1u8; 8192]).unwrap();
    fs.close(fd).unwrap();
    fs.sync().unwrap();
    fs.unlink("/victim").unwrap();
    let fd = fs.open("/new", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &vec![2u8; 8192]).unwrap();
    fs.close(fd).unwrap();
    // Crash before any post-unlink sync: /victim must be fully intact.
    let fs2 = crash_and_remount(fs).unwrap();
    assert_eq!(fs2.read_file("/victim").unwrap(), vec![1u8; 8192]);
}

#[test]
fn xattrs_roundtrip() {
    let mut fs = fresh();
    fs.creat("/f").unwrap();
    fs.setxattr("/f", "user.a", b"1").unwrap();
    fs.setxattr("/f", "user.b", b"2").unwrap();
    fs.removexattr("/f", "user.a").unwrap();
    assert_eq!(fs.removexattr("/f", "user.a"), Err(FsError::NotFound));
}

#[test]
fn chipmunk_weak_suite_is_clean() {
    use chipmunk::{test_workload, TestConfig};
    let kind = XfsDaxKind::default();
    assert!(!kind.guarantees().strong);
    let workloads = vec![
        Workload::new(
            "w1",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::WritePath { path: "/d/f".into(), off: 0, size: 3000 },
                Op::FsyncPath { path: "/d/f".into() },
                Op::Rename { old: "/d/f".into(), new: "/g".into() },
                Op::Sync,
            ],
        ),
        Workload::new(
            "w2",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 9000 },
                Op::Truncate { path: "/f".into(), size: 100 },
                Op::FsyncPath { path: "/f".into() },
            ],
        ),
    ];
    for w in &workloads {
        let out = test_workload(&kind, w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "XFS-DAX violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        assert!(out.crash_states > 0);
    }
}
