//! File-based shared work queue: lease + heartbeat files.
//!
//! Claiming task `n` creates `leases/task-<n>.lease` with `create_new`
//! (atomic on every real file system — exactly one claimant wins). The
//! lease records the worker id and pid; the runner heartbeats it (rewrites
//! the file, refreshing the mtime) after every journaled workload. A lease
//! is **stale** — reclaimable — when its recorded pid is provably dead
//! (`/proc/<pid>` gone on Linux), when both pid and worker id are this very
//! claimant's (an in-process predecessor that was interrupted; a worker's
//! claims are sequential, so a live self-claim cannot exist — but another
//! worker sharing the process is live), or when its heartbeat is older than
//! the TTL (the portable fallback, and the only signal across machines on a
//! shared store). Completed tasks are never claimed: the
//! committed result file is checked first.

use std::path::PathBuf;

use crate::jsonout::{self, JVal};

use super::store::CampaignStore;
use super::wire::ju;

/// Outcome of a claim attempt.
pub enum Claim {
    /// This worker owns the task; run it, then `release` (or let a crash
    /// leave the lease for reclamation).
    Claimed(Lease),
    /// Another live worker holds the lease.
    Busy,
    /// The task already has a committed result.
    Done,
}

/// A held lease. Dropping it does **not** release the file — a crashed
/// worker must leave its lease behind for the stale check; release is
/// explicit on success.
pub struct Lease {
    path: PathBuf,
    worker: String,
}

impl Lease {
    /// Refreshes the heartbeat (rewrite → fresh mtime). Failures are
    /// swallowed: a missed heartbeat only risks needless reclamation, and
    /// duplicate execution is harmless (results are deterministic and
    /// journal appends are first-writer-wins).
    pub fn heartbeat(&self) {
        let _ = std::fs::write(&self.path, lease_body(&self.worker));
    }

    /// Releases the lease after the task's result is committed.
    pub fn release(self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn lease_body(worker: &str) -> String {
    let mut line = JVal::Obj(vec![
        ("worker".into(), JVal::Str(worker.to_string())),
        ("pid".into(), ju(std::process::id() as u64)),
    ])
    .render();
    line.push('\n');
    line
}

/// Whether `pid` is a live process. Linux reads `/proc`; elsewhere the
/// answer is "unknown" (`true`), leaving staleness to the TTL.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        PathBuf::from(format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// The claim side of the queue.
pub struct WorkQueue<'a> {
    store: &'a CampaignStore,
    worker: String,
    /// Heartbeat age beyond which a lease whose pid cannot be proven dead
    /// is still considered stale.
    ttl: std::time::Duration,
}

impl<'a> WorkQueue<'a> {
    /// A queue handle for `worker` (a human-readable id for lease files).
    pub fn new(store: &'a CampaignStore, worker: &str, ttl: std::time::Duration) -> Self {
        WorkQueue { store, worker: worker.to_string(), ttl }
    }

    /// Attempts to claim task `id`.
    pub fn claim(&self, id: usize) -> Claim {
        if self.store.result_exists(id) {
            return Claim::Done;
        }
        let path = self.store.lease_path(id);
        match self.try_create(&path) {
            Some(lease) => Claim::Claimed(lease),
            None => {
                if self.is_stale(&path) {
                    // Reclaim: remove the dead worker's lease, then race for
                    // the replacement like any other claimant.
                    let _ = std::fs::remove_file(&path);
                    match self.try_create(&path) {
                        Some(lease) => Claim::Claimed(lease),
                        None => Claim::Busy,
                    }
                } else {
                    Claim::Busy
                }
            }
        }
    }

    fn try_create(&self, path: &PathBuf) -> Option<Lease> {
        let mut f = std::fs::OpenOptions::new().write(true).create_new(true).open(path).ok()?;
        use std::io::Write;
        let _ = f.write_all(lease_body(&self.worker).as_bytes());
        let _ = f.sync_data();
        Some(Lease { path: path.clone(), worker: self.worker.clone() })
    }

    /// Stale = provably dead pid, our own pid *and* worker id (a previous
    /// interrupted run of this very worker — the pid alone is not enough,
    /// since several workers may share a process), or heartbeat older than
    /// the TTL. An unreadable or unparsable lease (torn write of a dying
    /// worker) falls back to the TTL on its file age.
    fn is_stale(&self, path: &PathBuf) -> bool {
        let meta = match std::fs::metadata(path) {
            Ok(m) => m,
            Err(_) => return false, // released under us — claim will retry
        };
        let age_expired = meta
            .modified()
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > self.ttl);
        let body = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| jsonout::parse(text.trim()).ok());
        let pid = body.as_ref().and_then(|v| v.get("pid").and_then(JVal::as_u64));
        let ours = body
            .as_ref()
            .and_then(|v| v.get("worker").and_then(JVal::as_str))
            .is_some_and(|w| w == self.worker);
        match pid {
            Some(pid) => {
                (pid as u32 == std::process::id() && ours)
                    || !pid_alive(pid as u32)
                    || age_expired
            }
            None => age_expired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignSpec;
    use std::time::Duration;

    fn store(tag: &str) -> CampaignStore {
        let dir = std::env::temp_dir().join(format!("chipmunk-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CampaignStore::open_or_init(&dir, &CampaignSpec::default()).unwrap()
    }

    #[test]
    fn claim_is_exclusive_and_done_wins() {
        let s = store("claim");
        let q = WorkQueue::new(&s, "w0", Duration::from_secs(3600));
        let lease = match q.claim(0) {
            Claim::Claimed(l) => l,
            _ => panic!("first claim must win"),
        };
        std::fs::write(s.lease_path(1), "{\"worker\":\"other\",\"pid\":1}\n").unwrap();
        assert!(matches!(q.claim(1), Claim::Busy), "live foreign lease is busy");
        // Same pid but a different worker id: a sibling worker sharing this
        // process is live, not an interrupted predecessor.
        std::fs::write(
            s.lease_path(2),
            format!("{{\"worker\":\"sibling\",\"pid\":{}}}\n", std::process::id()),
        )
        .unwrap();
        assert!(matches!(q.claim(2), Claim::Busy), "in-process sibling lease is busy");
        lease.release();
        s.write_result(0, &[]).unwrap();
        assert!(matches!(q.claim(0), Claim::Done));
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn dead_pid_and_self_pid_leases_are_reclaimed() {
        let s = store("stale");
        let q = WorkQueue::new(&s, "w0", Duration::from_secs(3600));
        // A pid that cannot exist (pid_max is < 2^22 by default; u32::MAX
        // is far beyond any real configuration).
        std::fs::write(
            s.lease_path(0),
            format!("{{\"worker\":\"gone\",\"pid\":{}}}\n", u32::MAX - 1),
        )
        .unwrap();
        assert!(matches!(q.claim(0), Claim::Claimed(_)), "dead pid lease is reclaimed");
        // Our own pid *and* worker id: an interrupted in-process
        // predecessor of this very worker.
        std::fs::write(
            s.lease_path(1),
            format!("{{\"worker\":\"w0\",\"pid\":{}}}\n", std::process::id()),
        )
        .unwrap();
        assert!(matches!(q.claim(1), Claim::Claimed(_)), "self lease is reclaimed");
        let _ = std::fs::remove_dir_all(&s.dir);
    }

    #[test]
    fn expired_heartbeat_is_reclaimed_even_with_live_pid() {
        let s = store("ttl");
        // TTL of zero: any lease is immediately stale by age. pid 1 is
        // always alive (init), so this exercises the TTL arm specifically.
        let q = WorkQueue::new(&s, "w0", Duration::from_millis(0));
        std::fs::write(s.lease_path(0), "{\"worker\":\"slow\",\"pid\":1}\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.claim(0), Claim::Claimed(_)));
        // Garbage lease contents also fall back to the TTL.
        std::fs::write(s.lease_path(1), "not json").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.claim(1), Claim::Claimed(_)));
        let _ = std::fs::remove_dir_all(&s.dir);
    }
}
