//! The paper's end-to-end methodology, reproduced: run Chipmunk against the
//! *as-released* file systems, triage the reports, attribute each cluster to
//! a root cause, "fix" it (disable the injected bug), and repeat until the
//! suite runs clean — counting unique bugs by unique fixes, exactly as §4.4
//! does ("the number of bugs is based on the number of unique fixes
//! required to patch all of the bugs").
//!
//! ```sh
//! cargo run --release -p bench --bin campaign [threads]
//! ```
//!
//! `threads` (default 1) shards crash-state checking and workload batches;
//! rounds, clusters, and fixes are identical for any value.

use bench::{dispatch, mode_for, run_batch, WithKind, STRONG_SYSTEMS};
use chipmunk::{exemplar, report::triage, BugReport, TestConfig};
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet, FsName, Workload,
};
use workloads::ace::{seq1, seq2};

struct Iteration<'a> {
    cfg: &'a TestConfig,
}

impl WithKind for Iteration<'_> {
    type Out = (Vec<BugReport>, std::collections::BTreeSet<BugId>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let mode = mode_for(kind.name());
        let mut reports = Vec::new();
        let mut traced = std::collections::BTreeSet::new();
        let mut workloads = 0u64;
        let mut dedup = 0u64;
        let threads = self.cfg.threads.max(1);
        let batch_len = if threads <= 1 { 1 } else { threads * 2 };
        let mut stream = seq1(mode).into_iter().chain(seq2(mode).step_by(3));
        'outer: loop {
            let batch: Vec<Workload> = stream.by_ref().take(batch_len).collect();
            if batch.is_empty() {
                break;
            }
            for (out, _cov) in run_batch(&kind, &batch, self.cfg) {
                workloads += 1;
                dedup += out.dedup_hits;
                if !out.reports.is_empty() {
                    traced.extend(out.traced_bugs.iter().copied());
                    reports.extend(out.reports);
                }
                if reports.len() >= 600 {
                    break 'outer; // plenty for one triage round
                }
            }
        }
        (reports, traced, workloads, dedup)
    }
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let cfg = TestConfig { cap: Some(2), ..TestConfig::default() }.with_threads(threads);
    println!("threads = {threads}");
    let mut fixed_groups: std::collections::BTreeSet<u32> = Default::default();
    let (mut dedup_total, mut workloads_total) = (0u64, 0u64);

    println!("iterative find → triage → fix → re-run campaign (ACE seq-1 + sampled seq-2)\n");
    for fs in STRONG_SYSTEMS {
        let mut bugs = BugSet::as_released();
        // Only this file system's bugs matter for its run; the others are
        // irrelevant to the dispatched kind.
        let mut round = 0;
        loop {
            round += 1;
            let (reports, traced, workloads, dedup) =
                dispatch(fs, FsOptions::with_bugs(bugs), Iteration { cfg: &cfg });
            dedup_total += dedup;
            workloads_total += workloads;
            if reports.is_empty() {
                println!("{fs}: clean after {round} rounds ({workloads} workloads in the last)");
                break;
            }
            let clusters = triage(&reports, 0.4);
            // "Fix" the bugs whose injected code ran during the failing
            // workloads (the developer diagnoses the cluster back to its
            // root cause; the trace is our stand-in for that diagnosis).
            // NOVA-Fortis inherits all of NOVA's code, so NOVA bugs are
            // among its fixable causes.
            let relevant: Vec<BugId> = traced
                .iter()
                .copied()
                .filter(|b| {
                    b.info().fs == fs || (fs == FsName::NovaFortis && b.info().fs == FsName::Nova)
                })
                .collect();
            println!(
                "{fs}: round {round}: {} reports in {} clusters -> fixing {:?}",
                reports.len(),
                clusters.len(),
                relevant.iter().map(|b| b.number()).collect::<Vec<_>>()
            );
            // One minimal exemplar per cluster (fewest ops, then smallest
            // replayed subset): the report a developer would debug first,
            // and the one `hunt --shrink` would package as the bundle.
            for cluster in &clusters {
                let e = &reports[exemplar(&reports, cluster)];
                println!(
                    "    [{} x{}] {} | {} @ op {} | {} in subset",
                    e.violation.class(),
                    cluster.len(),
                    e.workload,
                    e.op_desc,
                    e.op_seq,
                    e.subset_ids.len(),
                );
            }
            if relevant.is_empty() {
                println!("{fs}: reports without traced cause — stopping");
                break;
            }
            for b in relevant {
                bugs = bugs.without(b);
                fixed_groups.insert(b.info().fix_group);
            }
        }
    }

    // The four fuzzer-only bugs never fall to ACE; account for them
    // separately so the tally matches Table 1's frontier.
    println!(
        "\n{workloads_total} workloads tested; {dedup_total} crash states served from the \
         dedup cache"
    );
    let ace_only = fixed_groups.len();
    println!(
        "\nunique fixes applied by the ACE campaign: {ace_only} (paper: ACE finds 19 of 23; \
         the remaining {} need the fuzzer — see `table1`)",
        23 - ace_only.min(23)
    );
    let _ = FsName::Ext4Dax;
}
