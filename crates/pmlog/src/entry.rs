//! Log entry types recorded during a workload run.

/// A record of one intercepted persistence operation or harness marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// A cache-line write-back: the captured contents of the written-back
    /// lines at flush time. `off` is line-aligned.
    Flush {
        /// Line-aligned destination offset.
        off: u64,
        /// Contents of the written-back lines.
        data: Vec<u8>,
    },
    /// A non-temporal store (from `memcpy_nt`/`memset_nt`).
    Nt {
        /// Destination offset.
        off: u64,
        /// The stored bytes.
        data: Vec<u8>,
    },
    /// A plain cached store. Only recorded when the logger runs in eADR
    /// mode (persistent caches make every store durable, so the replayer
    /// needs to see them); invisible to the default epoch-model logger,
    /// matching function-level interception.
    Store {
        /// Destination offset.
        off: u64,
        /// The stored bytes.
        data: Vec<u8>,
    },
    /// A store fence: everything logged before this entry is persistent once
    /// the fence completes.
    Fence,
    /// A harness marker (not produced by the file system).
    Marker(Marker),
}

impl LogEntry {
    /// Returns `true` for entries that represent in-flight data (flushes and
    /// non-temporal stores).
    pub fn is_write(&self) -> bool {
        matches!(self, LogEntry::Flush { .. } | LogEntry::Nt { .. } | LogEntry::Store { .. })
    }

    /// Destination and data of a write entry, if this is one.
    pub fn as_write(&self) -> Option<(u64, &[u8])> {
        match self {
            LogEntry::Flush { off, data }
            | LogEntry::Nt { off, data }
            | LogEntry::Store { off, data } => Some((*off, data)),
            _ => None,
        }
    }
}

/// Identifies the system call a group of writes belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Index of the operation within the workload.
    pub seq: usize,
    /// Human-readable description, e.g. `rename("/foo", "/bar")`.
    pub desc: String,
}

/// Harness markers inserted into the log at system-call boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    /// Start of system call `op`.
    SyscallBegin(OpRecord),
    /// End of system call `seq`; `ok` records whether it succeeded.
    SyscallEnd {
        /// Index of the operation within the workload.
        seq: usize,
        /// Whether the call returned success.
        ok: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_entry_classification() {
        let f = LogEntry::Flush { off: 64, data: vec![1, 2] };
        let n = LogEntry::Nt { off: 0, data: vec![3] };
        assert!(f.is_write());
        assert!(n.is_write());
        assert!(!LogEntry::Fence.is_write());
        assert_eq!(f.as_write(), Some((64, &[1u8, 2][..])));
        assert_eq!(LogEntry::Fence.as_write(), None);
    }
}
