//! The PMFS undo journal: variable-length byte-range records.
//!
//! Unlike NOVA's word-granularity lite journal, PMFS journals arbitrary
//! byte ranges (a whole 56-byte dentry, an inode field run). Records are
//! written from the start of the journal block; the persistent tail (total
//! record bytes) activates the transaction, and committing resets the tail
//! to zero **without erasing the records** — the stale bytes left behind
//! are what bug 16's replay walks into.

use pmem::PmBackend;
use vfs::{covpoint, BugId, BugSet, BugTrace, Cov, FsError, FsResult};

use crate::layout::{Geometry, BLOCK};

/// Offset of the persistent tail within the journal block.
const JTAIL: u64 = 0;
/// First record offset.
const JRECS: u64 = 16;
/// Maximum bytes a record may cover.
pub const MAX_RECORD_DATA: u64 = 64;

fn pad8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

/// A pending undo transaction.
pub struct Txn {
    bytes: u64,
}

/// Begins a transaction covering the absolute byte ranges `ranges`
/// (address, length). Old contents are recorded, flushed, and activated.
pub fn txn_begin<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    ranges: &[(u64, u64)],
) -> FsResult<Txn> {
    let jbase = geo.journal * BLOCK;
    let mut pos = JRECS;
    for &(addr, len) in ranges {
        debug_assert!(len > 0 && len <= MAX_RECORD_DATA);
        debug_assert!(addr + len <= geo.total_blocks * BLOCK);
        if pos + 16 + pad8(len) > BLOCK {
            return Err(FsError::NoSpace);
        }
        let old = dev.read_vec(addr, len);
        dev.store_u64(jbase + pos, addr);
        dev.store_u64(jbase + pos + 8, len);
        dev.store(jbase + pos + 16, &old);
        pos += 16 + pad8(len);
    }
    dev.flush(jbase + JRECS, pos - JRECS);
    dev.fence();
    dev.persist_u64(jbase + JTAIL, pos - JRECS);
    Ok(Txn { bytes: pos - JRECS })
}

/// Commits: resets the tail; record bytes stay behind.
pub fn txn_commit<D: PmBackend>(dev: &mut D, geo: &Geometry, txn: Txn) {
    let _ = txn.bytes;
    dev.persist_u64(geo.journal * BLOCK + JTAIL, 0);
}

/// Recovery: rolls back an active transaction by restoring the recorded
/// old bytes (reverse order).
///
/// The fixed walk stops exactly at the persistent tail. With bug 16, the
/// walk instead continues until it sees a zero address word — trusting
/// whatever stale record lengths it meets beyond the tail, and erroring
/// out of the journal area.
pub fn recover<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    bugs: BugSet,
    cov: &Cov,
    trace: &BugTrace,
) -> FsResult<bool> {
    let jbase = geo.journal * BLOCK;
    let tail = dev.read_u64(jbase + JTAIL);
    if tail == 0 {
        return Ok(false);
    }
    covpoint!(cov);
    if tail > BLOCK - JRECS {
        return Err(FsError::Unmountable(format!(
            "journal tail {tail} exceeds the journal block"
        )));
    }
    // Collect records first (so rollback can apply them in reverse).
    let mut recs: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut pos = JRECS;
    loop {
        if bugs.has(BugId::B16) {
            // BUG 16 (logic): the loop keys on a zero address sentinel
            // instead of the transaction tail, walking into stale records
            // from earlier transactions.
            trace.hit(BugId::B16);
            if pos + 16 > BLOCK {
                covpoint!(cov, 1);
                return Err(FsError::Unmountable(format!(
                    "journal replay walked out of the journal area at offset {pos}"
                )));
            }
            if dev.read_u64(jbase + pos) == 0 {
                break;
            }
        } else if pos >= JRECS + tail {
            break;
        }
        let addr = dev.read_u64(jbase + pos);
        let len = dev.read_u64(jbase + pos + 8);
        if len == 0 || len > MAX_RECORD_DATA || pos + 16 + len > BLOCK {
            covpoint!(cov, 2);
            return Err(FsError::Unmountable(format!(
                "journal record at offset {pos} has invalid length {len}"
            )));
        }
        if addr + len > geo.total_blocks * BLOCK {
            covpoint!(cov, 3);
            return Err(FsError::Unmountable(format!(
                "journal record at offset {pos} targets out-of-range address {addr:#x}"
            )));
        }
        let old = dev.read_vec(jbase + pos + 16, len);
        recs.push((addr, old));
        pos += 16 + pad8(len);
    }
    for (addr, old) in recs.iter().rev() {
        dev.store(*addr, old);
        dev.flush(*addr, old.len() as u64);
    }
    dev.fence();
    dev.persist_u64(jbase + JTAIL, 0);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmDevice;

    fn setup() -> (PmDevice, Geometry) {
        let size = 4 << 20;
        (PmDevice::new(size), Geometry::for_device(size).unwrap())
    }

    #[test]
    fn rollback_restores_ranges() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(1);
        dev.persist(a, &[1u8; 56]);
        let _txn = txn_begin(&mut dev, &geo, &[(a, 56)]).unwrap();
        dev.persist(a, &[9u8; 56]);
        // Crash without commit.
        let rolled =
            recover(&mut dev, &geo, BugSet::fixed(), &Cov::disabled(), &BugTrace::new()).unwrap();
        assert!(rolled);
        assert_eq!(dev.read_vec(a, 56), vec![1u8; 56]);
    }

    #[test]
    fn commit_prevents_rollback_but_leaves_stale_bytes() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(2);
        dev.persist_u64(a, 7);
        let txn = txn_begin(&mut dev, &geo, &[(a, 8)]).unwrap();
        dev.persist_u64(a, 8);
        txn_commit(&mut dev, &geo, txn);
        assert!(!recover(&mut dev, &geo, BugSet::fixed(), &Cov::disabled(), &BugTrace::new())
            .unwrap());
        assert_eq!(dev.read_u64(a), 8);
        // Stale record bytes remain.
        assert_ne!(dev.read_u64(geo.journal * BLOCK + JRECS), 0);
    }

    #[test]
    fn bug16_walks_into_stale_records() {
        let (mut dev, geo) = setup();
        // Transaction A: long (several records), committed.
        let base = geo.inode_off(1);
        let ranges: Vec<(u64, u64)> = (0..6).map(|i| (base + i * 64, 56)).collect();
        for &(a, l) in &ranges {
            dev.persist(a, &vec![0xa5u8; l as usize]);
        }
        let txn = txn_begin(&mut dev, &geo, &ranges).unwrap();
        txn_commit(&mut dev, &geo, txn);
        // Transaction B: short, crashes mid-flight.
        let _txn = txn_begin(&mut dev, &geo, &[(base, 8)]).unwrap();
        let trace = BugTrace::new();
        let r = recover(&mut dev, &geo, BugSet::only(&[BugId::B16]), &Cov::disabled(), &trace);
        assert!(matches!(r, Err(FsError::Unmountable(_))), "{r:?}");
        assert!(trace.contains(BugId::B16));
        // The fixed walk handles the same image.
        let (mut dev2, _) = setup();
        for &(a, l) in &ranges {
            dev2.persist(a, &vec![0xa5u8; l as usize]);
        }
        let txn = txn_begin(&mut dev2, &geo, &ranges).unwrap();
        txn_commit(&mut dev2, &geo, txn);
        let _txn = txn_begin(&mut dev2, &geo, &[(base, 8)]).unwrap();
        assert!(recover(&mut dev2, &geo, BugSet::fixed(), &Cov::disabled(), &BugTrace::new())
            .unwrap());
    }
}
