//! Regenerates **Table 1**: the bug corpus — every injected bug hunted with
//! the frontend hierarchy the paper uses (ACE first, the fuzzer for what
//! ACE misses), plus the ext4-DAX control that must come up clean.
//!
//! ```sh
//! cargo run --release -p bench --bin table1 [fuzz_budget]
//! ```

use bench::{fmt_dur, hunt_with_ace, hunt_with_fuzzer, mode_for, run_suite};
use chipmunk::TestConfig;
use vfs::{bugs::bug_table, BugSet, FsName};
use workloads::ace::seq1;

fn main() {
    let fuzz_budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    let ace_cfg = TestConfig { stop_on_first: true, ..TestConfig::default() };
    let fuzz_cfg = TestConfig::fuzzing();

    println!("Table 1: bugs found by Chipmunk, their consequences, and affected system calls");
    println!("(each bug hunted in isolation; 'found by' is the first frontend to expose it)\n");
    println!(
        "{:>4} {:<11} {:<46} {:<13} {:<6} {:<7} {:>9} {:>8}",
        "Bug", "FS", "Consequence", "Type", "Found", "Via", "Time", "States"
    );
    println!("{}", "-".repeat(110));

    let mut found_unique: std::collections::BTreeSet<u32> = Default::default();
    let mut ace_unique: std::collections::BTreeSet<u32> = Default::default();
    let mut fuzz_only_unique: std::collections::BTreeSet<u32> = Default::default();

    for info in bug_table() {
        let (ace_hit, _, _) = hunt_with_ace(info.id, &ace_cfg, 400);
        let (via, hit) = match ace_hit {
            Some(h) => ("ACE", Some(h)),
            None => {
                let (fh, _, _) =
                    hunt_with_fuzzer(info.id, &fuzz_cfg, 0xace + info.id.number() as u64, fuzz_budget);
                ("fuzzer", fh)
            }
        };
        let (found, time, states, traced) = match &hit {
            Some(h) => ("yes", fmt_dur(h.elapsed), h.states, h.traced),
            None => ("NO", "-".into(), 0, false),
        };
        if hit.is_some() {
            found_unique.insert(info.fix_group);
            if via == "ACE" {
                ace_unique.insert(info.fix_group);
            } else {
                fuzz_only_unique.insert(info.fix_group);
            }
        }
        println!(
            "{:>4} {:<11} {:<46} {:<13} {:<6} {:<7} {:>9} {:>8}{}",
            info.id.number(),
            info.fs.to_string(),
            info.consequence,
            info.kind.to_string(),
            found,
            if hit.is_some() { via } else { "-" },
            time,
            states,
            if traced { "" } else { "  [!untraced]" },
        );
    }

    // The DAX controls: the full weak-mode seq-1 suite must be clean on
    // both mature file systems.
    let dax = run_suite(
        FsName::Ext4Dax,
        BugSet::as_released(),
        seq1(mode_for(FsName::Ext4Dax)),
        &TestConfig::default(),
    );
    let xfs = run_suite(
        FsName::XfsDax,
        BugSet::as_released(),
        seq1(mode_for(FsName::XfsDax)),
        &TestConfig::default(),
    );

    println!("{}", "-".repeat(110));
    println!(
        "unique bugs found: {} of 23  (ACE: {}, fuzzer-only: {})",
        found_unique.len(),
        ace_unique.len(),
        fuzz_only_unique.len()
    );
    println!(
        "ext4-DAX control:  {} workloads, {} crash states, {} violations (paper: none found)",
        dax.workloads, dax.crash_states, dax.reports
    );
    println!(
        "XFS-DAX control:   {} workloads, {} crash states, {} violations (paper: none found)",
        xfs.workloads, xfs.crash_states, xfs.reports
    );
    println!(
        "\npaper: 23 unique bugs (25 instances); ACE finds 19, the fuzzer adds bugs 19, 20, \
         22, 23; ext4-DAX clean"
    );
}
