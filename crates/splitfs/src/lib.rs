#![warn(missing_docs)]

//! A SplitFS-style hybrid PM file system (SOSP '19), strict mode.
//!
//! SplitFS splits responsibilities between a user-space library and a
//! kernel file system: data operations are served from user space at
//! memory speed, while metadata operations are passed to an ext4-DAX
//! kernel component. Strict mode — the configuration the paper tests —
//! makes *every* operation synchronous and atomic through an *optimized
//! operation log* in PM (all five SplitFS bugs in Table 1 live in this
//! logging machinery, §5.1 Observation 1).
//!
//! This reproduction splits one PM device into two windows:
//!
//! * the **kernel window** holds a full [`ext4dax`] instance (the kernel
//!   component, weak guarantees on its own);
//! * the **U-Split window** holds the operation log and the staging area.
//!
//! Operation flow (strict mode):
//!
//! * a data write copies the payload into the staging area and appends a
//!   `Data` log entry — durable and atomic once the log tail is published;
//!   the kernel component is not involved;
//! * a metadata operation is applied to the kernel component's page cache
//!   (volatile!) and logged — the log entry, not the kernel journal, makes
//!   it durable;
//! * a **checkpoint** (on close-with-staged-data, fsync, sync, or every 32
//!   operations) relinks staged data into the kernel component, forces its
//!   journal (`sync`), and truncates the log;
//! * recovery mounts the kernel component, replays the log in order
//!   (metadata ops re-applied, staged extents relinked), then checkpoints.
//!
//! Injected bugs: 21 (replay uses the last *data* entry as the end marker,
//! dropping trailing metadata entries), 22 (replay keeps only the most
//! recent descriptor's staged extents per file), 23 (append entries record
//! a stale per-descriptor base offset), 24 (checkpoint truncates the log
//! without forcing the kernel journal), 25 (replay applies metadata first
//! and data second, re-creating renamed-away names).

pub mod fsimpl;
pub mod oplog;

pub use fsimpl::SplitFs;

use pmem::PmBackend;
use vfs::{
    fs::{FsKind, FsOptions, Guarantees},
    FsName, FsResult,
};

/// Factory for [`SplitFs`] instances (strict mode).
#[derive(Debug, Clone, Default)]
pub struct SplitFsKind {
    /// Construction options.
    pub opts: FsOptions,
}

impl FsKind for SplitFsKind {
    type Fs<D: PmBackend> = SplitFs<D>;

    fn name(&self) -> FsName {
        FsName::SplitFs
    }

    fn options(&self) -> &FsOptions {
        &self.opts
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        Self { opts }
    }

    fn guarantees(&self) -> Guarantees {
        // Strict mode: synchronous and atomic, including data writes.
        Guarantees { strong: true, atomic_data_writes: true, data_checksums: false }
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        SplitFs::mkfs(dev, &self.opts)
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        SplitFs::mount(dev, &self.opts)
    }
}
