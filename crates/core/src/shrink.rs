//! Delta-debugging minimization of violating `(workload, crash subset)`
//! pairs (ROADMAP item 3).
//!
//! A fuzzing find is typically heavyweight: dozens of ops, a large replayed
//! subset. [`shrink`] reduces it in two ddmin passes while preserving the
//! violation *class* (and, for sandbox classes, the checker stage) — not the
//! exact message bytes, which legitimately change as the workload shrinks:
//!
//! 1. **ops**: ddmin over the workload's operations, re-running the full
//!    checker per candidate through a shared [`PrefixCache`] so candidates
//!    that share an op prefix reuse oracle/record/replay work;
//! 2. **subset**: ddmin over the reported crash subset, re-checking one
//!    crash state per candidate via [`check_one_state`] instead of
//!    enumerating the point.
//!
//! Both passes only ever *remove* elements, so the result is monotone by
//! construction: shrunk ops are a subsequence of the original ops and the
//! shrunk subset is a subset of the original subset.

use vfs::{FsKind, Op, Workload};

use crate::{
    config::TestConfig,
    harness::check_one_state,
    prefix::{test_workload_cached, PrefixCache},
    report::{BugReport, Stage, Violation},
};

/// Whether a violation belongs to the class (and stage) being preserved.
pub fn matches_class(class: &str, stage: Option<Stage>, v: &Violation) -> bool {
    v.class() == class && v.stage() == stage
}

/// Work counters of one shrink run — the data behind the "shrink factor"
/// numbers in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Workload ops before / after the op pass.
    pub ops_before: usize,
    /// Workload ops after the op pass.
    pub ops_after: usize,
    /// Crash-subset size before / after the subset pass.
    pub subset_before: usize,
    /// Crash-subset size after the subset pass.
    pub subset_after: usize,
    /// Full-checker candidate runs during the op pass (including the
    /// confirmation runs).
    pub op_candidates: u64,
    /// Single-state checks during the subset pass.
    pub state_candidates: u64,
}

/// A minimized repro: the shrunk workload plus the report its full-checker
/// run produced for the preserved class (carrying the crash-point ordinal
/// and the shrunk subset in `point` / `subset_ids`).
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized workload (a subsequence of the original ops).
    pub workload: Workload,
    /// The violation report on the minimized pair.
    pub report: BugReport,
    /// Work counters.
    pub stats: ShrinkStats,
}

/// Runs the full checker on `ops` and returns the first report matching the
/// preserved class, if any.
fn first_match<K: FsKind>(
    cache: &mut PrefixCache<K>,
    name: &str,
    ops: &[Op],
    cfg: &TestConfig,
    class: &str,
    stage: Option<Stage>,
    candidates: &mut u64,
) -> Option<BugReport> {
    *candidates += 1;
    let wl = Workload::new(name, ops.to_vec());
    let (out, _, _) = test_workload_cached(cache, &wl, cfg);
    out.reports.into_iter().find(|r| matches_class(class, stage, &r.violation))
}

/// Splits `items` into `n` contiguous chunks (the last ones may be shorter).
fn chunk_bounds(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.min(len).max(1);
    let per = len.div_ceil(n);
    (0..len).step_by(per).map(|lo| (lo, (lo + per).min(len))).collect()
}

/// Classic ddmin over `items`: `test` returns `true` when the candidate
/// still triggers. Only removals are attempted, so the result is a
/// subsequence of the input. `items` itself must trigger.
fn ddmin<T: Clone>(items: &[T], mut test: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let bounds = chunk_bounds(cur.len(), n);
        let mut reduced = false;
        // Reduce to a single chunk.
        for &(lo, hi) in &bounds {
            if hi - lo == cur.len() {
                continue;
            }
            let cand = cur[lo..hi].to_vec();
            if test(&cand) {
                cur = cand;
                n = 2;
                reduced = true;
                break;
            }
        }
        if !reduced {
            // Reduce to a complement (remove one chunk).
            for &(lo, hi) in &bounds {
                if hi - lo == cur.len() {
                    continue;
                }
                let cand: Vec<T> =
                    cur[..lo].iter().chain(cur[hi..].iter()).cloned().collect();
                if test(&cand) {
                    cur = cand;
                    n = (n - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Minimizes a violating `(workload, crash subset)` pair while preserving
/// `report.violation`'s class and stage.
///
/// `cfg` supplies the semantic knobs (cap, device size, eADR, ...); shrink
/// candidates run with `stop_on_first` forced off so an earlier violation of
/// a *different* class can never shadow the preserved one, and reuse the
/// prefix cache, delta replay and scoped checking exactly as a sweep would.
///
/// Errors are infrastructure problems: the original pair not reproducing
/// under `cfg`, or a report without a crash-point ordinal.
pub fn shrink<K: FsKind>(
    kind: &K,
    workload: &Workload,
    report: &BugReport,
    cfg: &TestConfig,
) -> Result<Shrunk, String> {
    let class = report.violation.class();
    let stage = report.violation.stage();
    let mut cfg = cfg.clone();
    cfg.stop_on_first = false;
    let mut stats = ShrinkStats {
        ops_before: workload.ops.len(),
        subset_before: report.subset_ids.len(),
        ..Default::default()
    };

    // ---- Pass 1: ddmin over workload ops ----
    let mut cache = PrefixCache::new(kind, &cfg);
    let mut n_cand = 0u64;
    if first_match(&mut cache, &workload.name, &workload.ops, &cfg, class, stage, &mut n_cand)
        .is_none()
    {
        return Err(format!(
            "workload {:?} does not reproduce a {class} violation under this config",
            workload.name
        ));
    }
    let ops = ddmin(&workload.ops, |cand| {
        first_match(&mut cache, &workload.name, cand, &cfg, class, stage, &mut n_cand).is_some()
    });
    // Confirmation run: the report whose point/subset the subset pass
    // minimizes (identical to the last successful candidate run — the
    // checker is deterministic — but re-obtained for clarity).
    let min_wl = Workload::new(&workload.name, ops);
    let base = first_match(
        &mut cache, &workload.name, &min_wl.ops, &cfg, class, stage, &mut n_cand,
    )
    .expect("minimized workload reproduces by construction");
    stats.ops_after = min_wl.ops.len();
    stats.op_candidates = n_cand;

    // ---- Pass 2: ddmin over the crash subset ----
    let point = base
        .point
        .ok_or_else(|| "report carries no crash-point ordinal to minimize".to_string())?;
    let mut s_cand = 0u64;
    let mut try_subset = |sub: &[usize]| -> bool {
        s_cand += 1;
        match check_one_state(kind, &min_wl, &cfg, point, sub) {
            Ok(p) => p.violation.as_ref().is_some_and(|v| matches_class(class, stage, v)),
            Err(_) => false,
        }
    };
    // ddmin never tests the empty candidate; the bare base image at the
    // point is a legal crash state, so try it explicitly.
    let subset = if base.subset_ids.is_empty() || try_subset(&[]) {
        Vec::new()
    } else {
        ddmin(&base.subset_ids, |cand| try_subset(cand))
    };
    stats.subset_after = subset.len();
    stats.state_candidates = s_cand;

    // Final verdict on the minimized pair, for the report's detail text.
    let probe = check_one_state(kind, &min_wl, &cfg, point, &subset)?;
    let violation = probe
        .violation
        .filter(|v| matches_class(class, stage, v))
        .ok_or_else(|| "minimized state no longer reproduces (nondeterminism?)".to_string())?;
    let report = BugReport {
        workload: min_wl.name.clone(),
        op_seq: probe.op_seq,
        op_desc: probe.op_desc,
        phase: probe.phase,
        subset: format!("{:?} of {} in-flight (shrunk)", subset, probe.n_writes),
        point: Some(point),
        subset_ids: subset,
        violation,
    };
    Ok(Shrunk { workload: min_wl, report, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_single_culprit() {
        let items: Vec<u32> = (0..32).collect();
        let mut calls = 0;
        let out = ddmin(&items, |c| {
            calls += 1;
            c.contains(&17)
        });
        assert_eq!(out, vec![17]);
        // Binary-search-like behavior, not a linear scan of singletons.
        assert!(calls < 64, "{calls} calls");
    }

    #[test]
    fn ddmin_keeps_conjunction_of_culprits() {
        let items: Vec<u32> = (0..16).collect();
        let out = ddmin(&items, |c| c.contains(&3) && c.contains(&12));
        assert_eq!(out, vec![3, 12]);
    }

    #[test]
    fn ddmin_result_is_a_subsequence() {
        let items: Vec<u32> = (0..20).collect();
        let out = ddmin(&items, |c| c.iter().filter(|&&x| x % 3 == 0).count() >= 3);
        let mut it = items.iter();
        assert!(out.iter().all(|x| it.any(|y| y == x)), "{out:?}");
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for len in 1..20usize {
            for n in 1..25usize {
                let b = chunk_bounds(len, n);
                assert_eq!(b[0].0, 0);
                assert_eq!(b.last().unwrap().1, len);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }
}
