//! The §3.6 persistence-model experiment the paper argues for but does not
//! run: port Chipmunk to the **eADR** model (persistent caches — every
//! store durable on landing, no flushes or fences needed for durability)
//! and re-hunt the corpus.
//!
//! Expected shape (the paper's Observation 1 and §3.6 discussion): the PM
//! programming errors — missing flushes and fences — become unobservable,
//! because eADR makes the forgotten operations unnecessary; the logic bugs
//! remain, "and we expect Chipmunk would be a valuable tool for testing
//! file systems built for a variety of persistence models."
//!
//! ```sh
//! cargo run --release -p bench --bin eadr [fuzz_budget]
//! ```

use bench::{hunt_with_ace, hunt_with_fuzzer};
use chipmunk::TestConfig;
use vfs::bugs::{bug_table, BugKind};

fn main() {
    let fuzz_budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    let adr = TestConfig { stop_on_first: true, ..TestConfig::default() };
    let eadr = TestConfig { stop_on_first: true, eadr: true, ..TestConfig::default() };

    println!("bug detectability under the epoch (ADR) model vs the eADR model\n");
    println!("{:>4} {:<11} {:<6} {:>8} {:>8}", "Bug", "FS", "Type", "ADR", "eADR");
    println!("{}", "-".repeat(42));
    let mut pm_gone = 0;
    let mut pm_total = 0;
    let mut logic_found = 0;
    let mut logic_total = 0;
    for info in bug_table() {
        let hunt = |cfg: &TestConfig| {
            if info.ace_findable {
                hunt_with_ace(info.id, cfg, 200).0
            } else {
                hunt_with_fuzzer(info.id, cfg, 0xead + info.id.number() as u64, fuzz_budget).0
            }
        };
        let under_adr = hunt(&adr).is_some();
        let under_eadr = hunt(&eadr).is_some();
        println!(
            "{:>4} {:<11} {:<6} {:>8} {:>8}",
            info.id.number(),
            info.fs.to_string(),
            info.kind.to_string(),
            if under_adr { "found" } else { "-" },
            if under_eadr { "found" } else { "-" },
        );
        match info.kind {
            BugKind::Pm => {
                pm_total += 1;
                if !under_eadr {
                    pm_gone += 1;
                }
            }
            BugKind::Logic => {
                logic_total += 1;
                if under_eadr {
                    logic_found += 1;
                }
            }
        }
    }
    println!("{}", "-".repeat(42));
    println!(
        "PM-programming bugs unobservable under eADR: {pm_gone}/{pm_total} \
         (expected: all — the missing flush/fence no longer matters)"
    );
    println!(
        "logic bugs still detected under eADR:        {logic_found}/{logic_total} \
         (expected: all — Observation 1 transcends the persistence model)"
    );
}
