//! Differential witnesses for the structurally-shared oracle
//! (`TestConfig::shared_oracle`): building snapshots incrementally with
//! content-hashed, `Arc`-shared subtrees — and pruning hash-equal subtrees
//! out of the oracle diffs — is a pure performance optimization. A sweep
//! with it on must find exactly the same violations, from the same states,
//! with the same counters, as the deep-copy oracle it replaced.

use std::collections::BTreeSet;

use bench::hunt_with_ace;
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

/// The whole injected-bug corpus, hunted with ACE at 1 and 4 worker
/// threads, shared oracle on vs off: found-ness, the full first report,
/// and every count to the find must be byte-identical, while the off side
/// leaves both oracle counters at zero.
#[test]
fn corpus_shared_oracle_on_vs_off_identical_verdicts() {
    let mut seen_groups = BTreeSet::new();
    let mut found = 0u64;
    let mut pruned_total = 0u64;
    let mut shared_total = 0u64;
    for info in bug_table().iter().filter(|b| seen_groups.insert(b.fix_group)) {
        if !info.ace_findable {
            continue;
        }
        let bug = info.id.number();
        for threads in [1usize, 4] {
            let on = TestConfig {
                stop_on_first: true,
                ..TestConfig::default().with_threads(threads)
            };
            let off = TestConfig { shared_oracle: false, ..on.clone() };
            let (a, aw, astates) = hunt_with_ace(info.id, &on, 400);
            let (b, bw, bstates) = hunt_with_ace(info.id, &off, 400);
            let cell = format!("bug {bug} threads={threads}");
            assert_eq!(a.is_some(), b.is_some(), "{cell}: found-ness diverged");
            assert_eq!(aw, bw, "{cell}: workloads to the find diverged");
            assert_eq!(astates, bstates, "{cell}: crash states diverged");
            if let (Some(a), Some(b)) = (&a, &b) {
                assert_eq!(a.class, b.class, "{cell}: violation class diverged");
                assert_eq!(
                    format!("{:?}", a.report),
                    format!("{:?}", b.report),
                    "{cell}: first report diverged"
                );
                assert_eq!(a.workloads, b.workloads, "{cell}");
                assert_eq!(a.states, b.states, "{cell}");
                assert_eq!(a.dedup_hits, b.dedup_hits, "{cell}");
                assert_eq!(a.memo_hits, b.memo_hits, "{cell}");
                assert_eq!(a.rep_skipped, b.rep_skipped, "{cell}");
                assert_eq!(a.prefix_hits, b.prefix_hits, "{cell}");
                assert_eq!(
                    b.oracle_subtrees_pruned, 0,
                    "{cell}: the deep-copy oracle must not prune"
                );
                assert_eq!(
                    b.oracle_snap_bytes_shared, 0,
                    "{cell}: the deep-copy oracle must not share"
                );
                if threads == 1 {
                    found += 1;
                    pruned_total += a.oracle_subtrees_pruned;
                    shared_total += a.oracle_snap_bytes_shared;
                }
            }
        }
    }
    assert!(found > 0, "the corpus hunt must find bugs");
    assert!(pruned_total > 0, "hash pruning must engage across the corpus");
    assert!(shared_total > 0, "snapshot sharing must engage across the corpus");
}
