//! Hunts one injected bug (by Table 1 number) with both frontends, printing
//! time-to-find, work counters, and dedup hit counts. The measurement tool
//! behind the "Parallel scaling" section of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p bench --bin hunt -- <bug#> [threads] [fuzz_budget] [seed] [nodedup]
//! ```

use bench::{fmt_dur, hunt_with_ace, hunt_with_fuzzer};
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

fn main() {
    let mut args = std::env::args().skip(1);
    let number: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xf16 + number as u64);
    let dedup = args.next().as_deref() != Some("nodedup");

    let info = bug_table()
        .iter()
        .find(|b| b.id.number() == number)
        .unwrap_or_else(|| panic!("no bug #{number} in the Table 1 corpus"));
    let ace_cfg = TestConfig { stop_on_first: true, dedup, ..TestConfig::default() }
        .with_threads(threads);
    let fuzz_cfg = TestConfig { dedup, ..TestConfig::fuzzing() }.with_threads(threads);

    println!("bug {number} on {} (threads = {threads}, dedup = {dedup})", info.fs);
    if info.ace_findable {
        match hunt_with_ace(info.id, &ace_cfg, 400) {
            (Some(h), w, s) => println!(
                "  ACE : found in {:>8} | {w} workloads, {s} states, {} dedup hits | {}",
                fmt_dur(h.elapsed),
                h.dedup_hits,
                h.class
            ),
            (None, w, s) => println!("  ACE : not found | {w} workloads, {s} states"),
        }
    } else {
        println!("  ACE : not findable (fuzzer-only bug)");
    }
    match hunt_with_fuzzer(info.id, &fuzz_cfg, seed, budget) {
        (Some(h), w, s) => println!(
            "  fuzz: found in {:>8} | {w} workloads, {s} states, {} dedup hits | {}",
            fmt_dur(h.elapsed),
            h.dedup_hits,
            h.class
        ),
        (None, w, s) => {
            println!("  fuzz: not found within {budget} | {w} workloads, {s} states");
        }
    }
}
