//! Differential witnesses for the incremental crash-state engine: every
//! cache/scoping layer (prefix cache, delta replay, cross-point memo, scoped
//! checking) is a pure performance optimization, so toggling them must not
//! change a single result bit.

use bench::{dispatch, run_batch, run_batch_cached, run_suite, WithKind};
use chipmunk::{PrefixCache, TestConfig, TestOutcome};
use vfs::{
    fs::{FsKind, FsOptions},
    BugSet, FsName, Workload,
};
use workloads::ace::{seq1, AceMode};

fn fingerprint(o: &TestOutcome) -> String {
    format!(
        "{:?}|{}|{}|{}|{:?}|{:?}",
        o.reports, o.crash_points, o.crash_states, o.dedup_hits, o.inflight_sizes, o.traced_bugs
    )
}

/// Full ACE seq-1 on NOVA (with the fixed injected-bug corpus): per-workload
/// outcomes and coverage with every incremental layer enabled must equal the
/// all-layers-off baseline.
#[test]
fn full_seq1_nova_layers_do_not_change_outcomes() {
    struct Diff {
        ws: Vec<Workload>,
    }
    impl WithKind for Diff {
        type Out = ();
        fn call<K: FsKind>(self, kind: K) {
            let on = TestConfig::default();
            let off = TestConfig {
                prefix_cache: false,
                scoped_check: false,
                delta_replay: false,
                cross_dedup: false,
                ..TestConfig::default()
            };
            let mut cache = PrefixCache::new(&kind, &on);
            let fast = run_batch_cached(&kind, &self.ws, &on, Some(&mut cache));
            // Fresh shared sinks for the baseline pass so cumulative
            // `traced_bugs` snapshots start from the same point.
            let base_kind = kind.with_options(kind.options().with_fresh_sinks());
            let slow = run_batch(&base_kind, &self.ws, &off);
            assert_eq!(fast.len(), slow.len());
            for (w, ((a, cov_a), (b, cov_b))) in self.ws.iter().zip(fast.iter().zip(&slow)) {
                // The memo layer is off in the baseline; everything else
                // must match bit for bit.
                assert_eq!(fingerprint(a), fingerprint(b), "outcome diverged on {}", w.name);
                assert_eq!(cov_a, cov_b, "coverage diverged on {}", w.name);
            }
            let prefix_hits: u64 = fast.iter().map(|(o, _)| o.prefix_hits).sum();
            assert!(prefix_hits > 0, "the cache must have engaged");
        }
    }
    let ws = seq1(AceMode::Strong);
    dispatch(FsName::Nova, FsOptions::with_bugs(BugSet::fixed()), Diff { ws });
}

/// The suite runner's aggregate counters are identical across every layer
/// combination (dedup stays on so its counter is comparable).
#[test]
fn suite_counters_identical_across_layer_combinations() {
    let ws: Vec<Workload> = seq1(AceMode::Strong).into_iter().take(12).collect();
    let configs = [
        TestConfig::default(),
        TestConfig { prefix_cache: false, ..TestConfig::default() },
        TestConfig { delta_replay: false, scoped_check: false, ..TestConfig::default() },
        TestConfig {
            prefix_cache: false,
            delta_replay: false,
            scoped_check: false,
            cross_dedup: false,
            ..TestConfig::default()
        },
    ];
    let base = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &configs[3]);
    for cfg in &configs[..3] {
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), cfg);
        assert_eq!(s.crash_points, base.crash_points);
        assert_eq!(s.crash_states, base.crash_states);
        assert_eq!(s.dedup_hits, base.dedup_hits);
        assert_eq!(s.reports, base.reports);
        assert_eq!(s.inflight, base.inflight);
        assert_eq!(format!("{:?}", s.bug_reports), format!("{:?}", base.bug_reports));
    }
}
